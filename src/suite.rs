//! Workspace umbrella crate: re-exports the public API of every Roadrunner
//! crate so examples and integration tests can use one import root.
pub use roadrunner as core;
pub use roadrunner_baselines as baselines;
pub use roadrunner_http as http;
pub use roadrunner_platform as platform;
pub use roadrunner_serial as serial;
pub use roadrunner_vkernel as vkernel;
pub use roadrunner_wasi as wasi;
pub use roadrunner_wasm as wasm;
