//! Property tests for the incremental HTTP parser: feeding a message in
//! arbitrary byte-chunk splits must yield the identical parse as feeding
//! it in one shot, and no prefix strictly shorter than the full message
//! may ever produce a message.
//!
//! This is the invariant the baselines' streaming path leans on — TCP
//! delivers HTTP heads and bodies at whatever chunk boundaries the link
//! model produces, and the reassembled message must not depend on them.

use proptest::prelude::*;
use roadrunner_http::{MessageReader, Request, Response};

/// Splitmix-style generator so chunk boundaries derive deterministically
/// from the proptest-provided seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Splits `raw` into random contiguous chunks (each 1..=max_chunk bytes).
fn random_chunks(raw: &[u8], seed: u64, max_chunk: usize) -> Vec<Vec<u8>> {
    let mut rng = Mix(seed);
    let mut chunks = Vec::new();
    let mut pos = 0;
    while pos < raw.len() {
        let take = 1 + rng.below(max_chunk as u64) as usize;
        let end = (pos + take).min(raw.len());
        chunks.push(raw[pos..end].to_vec());
        pos = end;
    }
    chunks
}

/// A deterministic pseudo-random body that exercises every byte value.
fn body_of(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Mix(seed ^ 0xB0D7);
    (0..len).map(|_| rng.next() as u8).collect()
}

fn parse_request_oneshot(raw: &[u8]) -> Request {
    let mut reader = MessageReader::new();
    reader.feed(raw);
    reader.try_request().expect("well-formed").expect("complete")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunked_feeding_matches_oneshot_request_parse(
        body_len in 0usize..5_000,
        max_chunk in 1usize..512,
        seed in any::<u64>(),
    ) {
        let body = body_of(body_len, seed);
        let request = Request::post("/invoke", body.clone()).with_header("x-tenant", "acme");
        let raw = request.to_bytes();
        let expected = parse_request_oneshot(&raw);

        let mut reader = MessageReader::new();
        let chunks = random_chunks(&raw, seed, max_chunk);
        for (i, chunk) in chunks.iter().enumerate() {
            let is_last = i + 1 == chunks.len();
            let parsed = reader.try_request().expect("never malformed mid-stream");
            // No strict prefix may complete the message.
            prop_assert!(parsed.is_none(), "parsed early at chunk {i}");
            reader.feed(chunk);
            if is_last {
                let parsed = reader.try_request().expect("well-formed")
                    .expect("all bytes fed");
                prop_assert_eq!(&parsed.method, &expected.method);
                prop_assert_eq!(&parsed.path, &expected.path);
                prop_assert_eq!(&parsed.headers, &expected.headers);
                prop_assert_eq!(&parsed.body[..], &expected.body[..]);
                prop_assert_eq!(reader.buffered(), 0);
            }
        }
    }

    #[test]
    fn chunked_feeding_matches_oneshot_response_parse(
        body_len in 0usize..5_000,
        max_chunk in 1usize..512,
        seed in any::<u64>(),
    ) {
        let body = body_of(body_len, seed);
        let response = Response::ok(body.clone());
        let raw = response.to_bytes();

        let mut oneshot = MessageReader::new();
        oneshot.feed(&raw);
        let expected = oneshot.try_response().unwrap().unwrap();

        let mut reader = MessageReader::new();
        for chunk in random_chunks(&raw, seed, max_chunk) {
            reader.feed(&chunk);
        }
        let parsed = reader.try_response().unwrap().expect("all bytes fed");
        prop_assert_eq!(parsed.status, expected.status);
        prop_assert_eq!(&parsed.reason, &expected.reason);
        prop_assert_eq!(&parsed.body[..], &expected.body[..]);
        prop_assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn chunked_transfer_encoding_survives_any_split(
        chunk_sizes in proptest::collection::vec(1usize..600, 1..6),
        max_chunk in 1usize..64,
        seed in any::<u64>(),
    ) {
        // Build a chunked-framed request by hand from random chunk sizes.
        let mut body = Vec::new();
        let mut framed = Vec::new();
        framed.extend_from_slice(
            b"POST /chunked HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        );
        for (i, &size) in chunk_sizes.iter().enumerate() {
            let data = body_of(size, seed.wrapping_add(i as u64));
            framed.extend_from_slice(format!("{size:x}\r\n").as_bytes());
            framed.extend_from_slice(&data);
            framed.extend_from_slice(b"\r\n");
            body.extend_from_slice(&data);
        }
        framed.extend_from_slice(b"0\r\n\r\n");

        let expected = parse_request_oneshot(&framed);
        prop_assert_eq!(&expected.body[..], &body[..]);

        let mut reader = MessageReader::new();
        let chunks = random_chunks(&framed, seed ^ 0xC4A2, max_chunk);
        for chunk in &chunks[..chunks.len() - 1] {
            reader.feed(chunk);
            prop_assert!(reader.try_request().expect("never malformed").is_none());
        }
        reader.feed(chunks.last().expect("framed message is non-empty"));
        let parsed = reader.try_request().unwrap().expect("all bytes fed");
        prop_assert_eq!(&parsed.body[..], &body[..]);
        prop_assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn pipelined_messages_parse_identically_under_any_split(
        first_len in 0usize..1_000,
        second_len in 0usize..1_000,
        max_chunk in 1usize..256,
        seed in any::<u64>(),
    ) {
        let a = Request::post("/a", body_of(first_len, seed));
        let b = Request::post("/b", body_of(second_len, seed ^ 1));
        let mut raw = a.to_bytes().to_vec();
        raw.extend_from_slice(&b.to_bytes());

        let mut reader = MessageReader::new();
        for chunk in random_chunks(&raw, seed ^ 0x99, max_chunk) {
            reader.feed(&chunk);
        }
        let first = reader.try_request().unwrap().expect("first message complete");
        let second = reader.try_request().unwrap().expect("second message complete");
        prop_assert_eq!(&first.path, "/a");
        prop_assert_eq!(&second.path, "/b");
        prop_assert_eq!(&first.body[..], &a.body[..]);
        prop_assert_eq!(&second.body[..], &b.body[..]);
        prop_assert!(reader.try_request().unwrap().is_none());
    }
}
