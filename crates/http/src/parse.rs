//! Incremental HTTP/1.1 parsing.
//!
//! [`MessageReader`] accumulates stream chunks until a full message
//! (head + content-length or chunked body) is available, then yields the
//! parsed message. Parsing walks and copies every byte — the
//! deserialization-side cost of HTTP transports.

use std::error::Error;
use std::fmt;

use bytes::{Bytes, BytesMut};

use crate::message::{Request, Response};

/// Error raised by the HTTP parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed message (bad start line, header, or chunk framing).
    Parse(String),
    /// The stream ended before a full message arrived.
    Incomplete,
    /// The underlying transport failed.
    Transport(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Parse(msg) => write!(f, "http parse error: {msg}"),
            HttpError::Incomplete => write!(f, "incomplete http message"),
            HttpError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl Error for HttpError {}

/// A parsed start line + headers, before the body is attached.
#[derive(Debug, Clone)]
struct Head {
    start_line: String,
    headers: Vec<(String, String)>,
    body_len: BodyLen,
    head_bytes: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyLen {
    Fixed(usize),
    Chunked,
}

fn parse_head(buf: &[u8]) -> Result<Option<Head>, HttpError> {
    let Some(head_end) = find_double_crlf(buf) else {
        return Ok(None);
    };
    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Parse("head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let start_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| HttpError::Parse("empty start line".into()))?
        .to_owned();
    let mut headers = Vec::new();
    let mut body_len = BodyLen::Fixed(0);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Parse(format!("bad header line `{line}`")))?;
        let name = name.trim().to_owned();
        let value = value.trim().to_owned();
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::Parse(format!("bad content-length `{value}`")))?;
            body_len = BodyLen::Fixed(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding")
            && value.eq_ignore_ascii_case("chunked")
        {
            body_len = BodyLen::Chunked;
        }
        headers.push((name, value));
    }
    Ok(Some(Head { start_line, headers, body_len, head_bytes: head_end + 4 }))
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes a chunked body if complete; returns `(body, consumed)`.
/// A decoded message body: the bytes plus how much of the input buffer
/// they consumed (chunked framing included).
type DecodedBody = (Bytes, usize);

fn decode_chunked(buf: &[u8]) -> Result<Option<DecodedBody>, HttpError> {
    let mut body = BytesMut::new();
    let mut pos = 0usize;
    loop {
        let Some(line_end) = buf[pos..].windows(2).position(|w| w == b"\r\n") else {
            return Ok(None);
        };
        let size_line = std::str::from_utf8(&buf[pos..pos + line_end])
            .map_err(|_| HttpError::Parse("chunk size is not UTF-8".into()))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| HttpError::Parse(format!("bad chunk size `{size_line}`")))?;
        let data_start = pos + line_end + 2;
        let data_end = data_start + size;
        if buf.len() < data_end + 2 {
            return Ok(None);
        }
        if &buf[data_end..data_end + 2] != b"\r\n" {
            return Err(HttpError::Parse("chunk not terminated by CRLF".into()));
        }
        if size == 0 {
            return Ok(Some((body.freeze(), data_end + 2)));
        }
        body.extend_from_slice(&buf[data_start..data_end]);
        pos = data_end + 2;
    }
}

/// Incremental reader: feed chunks, poll for complete messages.
#[derive(Debug, Default)]
pub struct MessageReader {
    buf: BytesMut,
}

impl MessageReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk received from the transport.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn try_head(&self) -> Result<Option<(Head, Option<DecodedBody>)>, HttpError> {
        let Some(head) = parse_head(&self.buf)? else {
            return Ok(None);
        };
        let rest = &self.buf[head.head_bytes..];
        let body = match head.body_len {
            BodyLen::Fixed(n) => {
                if rest.len() < n {
                    None
                } else {
                    Some((Bytes::copy_from_slice(&rest[..n]), n))
                }
            }
            BodyLen::Chunked => decode_chunked(rest)?,
        };
        Ok(Some((head, body)))
    }

    fn consume(&mut self, head_bytes: usize, body_bytes: usize) {
        let _ = self.buf.split_to(head_bytes + body_bytes);
    }

    /// Attempts to parse a complete request from the buffered bytes.
    ///
    /// # Errors
    ///
    /// [`HttpError::Parse`] on malformed input. `Ok(None)` simply means
    /// more bytes are needed.
    pub fn try_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some((head, body)) = self.try_head()? else {
            return Ok(None);
        };
        let Some((body, consumed)) = body else {
            return Ok(None);
        };
        let mut parts = head.start_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::Parse("missing method".into()))?
            .to_owned();
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Parse("missing path".into()))?
            .to_owned();
        let version = parts.next().unwrap_or_default();
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Parse(format!("unsupported version `{version}`")));
        }
        self.consume(head.head_bytes, consumed);
        Ok(Some(Request { method, path, headers: head.headers, body }))
    }

    /// Attempts to parse a complete response from the buffered bytes.
    ///
    /// # Errors
    ///
    /// [`HttpError::Parse`] on malformed input. `Ok(None)` simply means
    /// more bytes are needed.
    pub fn try_response(&mut self) -> Result<Option<Response>, HttpError> {
        let Some((head, body)) = self.try_head()? else {
            return Ok(None);
        };
        let Some((body, consumed)) = body else {
            return Ok(None);
        };
        let mut parts = head.start_line.splitn(3, ' ');
        let version = parts.next().unwrap_or_default();
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Parse(format!("unsupported version `{version}`")));
        }
        let status: u16 = parts
            .next()
            .ok_or_else(|| HttpError::Parse("missing status".into()))?
            .parse()
            .map_err(|_| HttpError::Parse("bad status code".into()))?;
        let reason = parts.next().unwrap_or_default().to_owned();
        self.consume(head.head_bytes, consumed);
        Ok(Some(Response { status, reason, headers: head.headers, body }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::post("/invoke", b"hello".as_slice()).with_header("x-k", "v");
        let mut reader = MessageReader::new();
        reader.feed(&req.to_bytes());
        let parsed = reader.try_request().unwrap().unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/invoke");
        assert_eq!(parsed.header("x-k"), Some("v"));
        assert_eq!(&parsed.body[..], b"hello");
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok(b"result".as_slice());
        let mut reader = MessageReader::new();
        reader.feed(&resp.to_bytes());
        let parsed = reader.try_response().unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(&parsed.body[..], b"result");
    }

    #[test]
    fn partial_feeds_return_none_until_complete() {
        let raw = Request::post("/f", vec![7u8; 100]).to_bytes();
        let mut reader = MessageReader::new();
        for chunk in raw.chunks(9) {
            reader.feed(chunk);
        }
        // All fed now; but verify None mid-way with a fresh reader.
        let mut partial = MessageReader::new();
        partial.feed(&raw[..raw.len() - 1]);
        assert!(partial.try_request().unwrap().is_none());
        assert!(reader.try_request().unwrap().is_some());
    }

    #[test]
    fn pipelined_messages_parse_in_order() {
        let mut reader = MessageReader::new();
        reader.feed(&Request::post("/a", b"1".as_slice()).to_bytes());
        reader.feed(&Request::post("/b", b"2".as_slice()).to_bytes());
        assert_eq!(reader.try_request().unwrap().unwrap().path, "/a");
        assert_eq!(reader.try_request().unwrap().unwrap().path, "/b");
        assert!(reader.try_request().unwrap().is_none());
    }

    #[test]
    fn chunked_body_decodes() {
        let raw = b"POST /c HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let mut reader = MessageReader::new();
        reader.feed(raw);
        let req = reader.try_request().unwrap().unwrap();
        assert_eq!(&req.body[..], b"wikipedia");
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn incomplete_chunked_waits() {
        let raw = b"POST /c HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nwi";
        let mut reader = MessageReader::new();
        reader.feed(raw);
        assert!(reader.try_request().unwrap().is_none());
        reader.feed(b"ki\r\n0\r\n\r\n");
        assert_eq!(&reader.try_request().unwrap().unwrap().body[..], b"wiki");
    }

    #[test]
    fn malformed_inputs_error() {
        let mut reader = MessageReader::new();
        reader.feed(b"NOT-HTTP\r\n\r\n");
        assert!(reader.try_request().is_err());

        let mut reader = MessageReader::new();
        reader.feed(b"POST /f HTTP/1.1\r\ncontent-length: abc\r\n\r\n");
        assert!(reader.try_request().is_err());

        let mut reader = MessageReader::new();
        reader.feed(b"POST /f FTP/9\r\ncontent-length: 0\r\n\r\n");
        assert!(reader.try_request().is_err());

        let mut reader = MessageReader::new();
        reader.feed(b"HTTP/1.1 abc OK\r\ncontent-length: 0\r\n\r\n");
        assert!(reader.try_response().is_err());
    }

    #[test]
    fn bad_chunk_framing_errors() {
        let raw = b"POST /c HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nwikiXX0\r\n\r\n";
        let mut reader = MessageReader::new();
        reader.feed(raw);
        assert!(reader.try_request().is_err());
    }

    #[test]
    fn large_binary_bodies_survive() {
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let raw = Request::post("/big", body.clone()).to_bytes();
        let mut reader = MessageReader::new();
        reader.feed(&raw);
        let parsed = reader.try_request().unwrap().unwrap();
        assert_eq!(&parsed.body[..], &body[..]);
    }
}
