//! HTTP/1.1 message types and serialization.

use bytes::{Bytes, BytesMut};

/// An HTTP request.
///
/// ```
/// # use roadrunner_http::Request;
/// let req = Request::post("/invoke", b"payload".as_slice())
///     .with_header("x-function", "fn-b");
/// assert_eq!(req.header("X-FUNCTION"), Some("fn-b"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request target path.
    pub path: String,
    /// Header list in insertion order.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Bytes,
}

impl Request {
    /// Builds a POST request carrying `body`.
    pub fn post(path: impl Into<String>, body: impl Into<Bytes>) -> Self {
        Self {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Builds a bodyless GET request.
    pub fn get(path: impl Into<String>) -> Self {
        Self { method: "GET".into(), path: path.into(), headers: Vec::new(), body: Bytes::new() }
    }

    /// Adds a header (chainable).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Serializes head + body into one buffer — the copy HTTP-based
    /// transports pay to assemble a message.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.body.len() + 128);
        out.extend_from_slice(self.method.as_bytes());
        out.extend_from_slice(b" ");
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        let mut has_len = false;
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !has_len {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out.freeze()
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header list in insertion order.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Bytes,
}

impl Response {
    /// A `200 OK` response carrying `body`.
    pub fn ok(body: impl Into<Bytes>) -> Self {
        Self { status: 200, reason: "OK".into(), headers: Vec::new(), body: body.into() }
    }

    /// A response with an arbitrary status.
    pub fn with_status(status: u16, reason: impl Into<String>, body: impl Into<Bytes>) -> Self {
        Self { status, reason: reason.into(), headers: Vec::new(), body: body.into() }
    }

    /// Adds a header (chainable).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Serializes head + body into one buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.body.len() + 128);
        out.extend_from_slice(b"HTTP/1.1 ");
        out.extend_from_slice(self.status.to_string().as_bytes());
        out.extend_from_slice(b" ");
        out.extend_from_slice(self.reason.as_bytes());
        out.extend_from_slice(b"\r\n");
        let mut has_len = false;
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !has_len {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out.freeze()
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_serialization_shape() {
        let req = Request::post("/f", b"body".as_slice()).with_header("Host", "edge-0");
        let raw = req.to_bytes();
        let text = std::str::from_utf8(&raw).unwrap();
        assert!(text.starts_with("POST /f HTTP/1.1\r\n"));
        assert!(text.contains("Host: edge-0\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nbody"));
    }

    #[test]
    fn explicit_content_length_not_duplicated() {
        let req = Request::post("/f", b"xy".as_slice()).with_header("Content-Length", "2");
        let raw = req.to_bytes();
        let text = std::str::from_utf8(&raw).unwrap();
        assert_eq!(text.matches("ontent-").count(), 1);
    }

    #[test]
    fn response_serialization_shape() {
        let resp = Response::with_status(404, "Not Found", Bytes::new());
        let text = resp.to_bytes();
        let text = std::str::from_utf8(&text).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-length: 0\r\n"));
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let resp = Response::ok(Bytes::new()).with_header("X-Trace", "abc");
        assert_eq!(resp.header("x-trace"), Some("abc"));
        assert_eq!(resp.header("missing"), None);
    }

    #[test]
    fn get_has_empty_body() {
        assert!(Request::get("/health").body.is_empty());
    }
}
