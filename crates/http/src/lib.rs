//! Minimal HTTP/1.1 over virtual-kernel streams.
//!
//! "Serverless functions typically exchange data via network protocols
//! such as HTTP" (paper §1) — this crate is that protocol layer for the
//! reproduction's baselines: message framing with content-length and
//! chunked bodies, an incremental parser, and client/server exchange
//! helpers over the virtual kernel's TCP and Unix streams.
//!
//! Costs modelled: building/parsing a message head
//! ([`roadrunner_vkernel::CostModel::http_head_ns`]) and the copy that
//! assembles head + body into one send buffer. The per-chunk socket
//! costs come from the underlying stream.
//!
//! ```
//! use bytes::Bytes;
//! use roadrunner_http::{Request, MessageReader};
//!
//! let raw = Request::post("/invoke", Bytes::from_static(b"payload")).to_bytes();
//! let mut reader = MessageReader::new();
//! reader.feed(&raw);
//! let parsed = reader.try_request().unwrap().unwrap();
//! assert_eq!(parsed.path, "/invoke");
//! ```

pub mod exchange;
pub mod message;
pub mod parse;

pub use exchange::{post, read_request, read_response, send_request, send_response, Stream};
pub use message::{Request, Response};
pub use parse::{HttpError, MessageReader};
