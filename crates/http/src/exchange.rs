//! Request/response exchange over virtual-kernel streams.
//!
//! Provides the client/server halves the baselines use: a [`Stream`]
//! abstraction over TCP and Unix endpoints, plus helpers that pay the
//! realistic costs — head build/parse time and the copy assembling head
//! and body into one send buffer.

use bytes::Bytes;
use roadrunner_vkernel::node::Sandbox;
use roadrunner_vkernel::tcp::TcpEndpoint;
use roadrunner_vkernel::unix::UnixEndpoint;
use roadrunner_vkernel::VkError;

use crate::message::{Request, Response};
use crate::parse::{HttpError, MessageReader};

/// A bidirectional byte stream (TCP or Unix endpoint).
pub trait Stream {
    /// Sends bytes, charging `caller` for the transfer.
    fn send(&mut self, caller: &Sandbox, data: &[u8]) -> Result<usize, VkError>;
    /// Receives the next segment (empty when nothing is ready, `None`
    /// when the peer closed).
    fn recv(&mut self, caller: &Sandbox) -> Result<Option<Bytes>, VkError>;
}

impl Stream for TcpEndpoint {
    fn send(&mut self, caller: &Sandbox, data: &[u8]) -> Result<usize, VkError> {
        TcpEndpoint::send(self, caller, data)
    }

    fn recv(&mut self, caller: &Sandbox) -> Result<Option<Bytes>, VkError> {
        TcpEndpoint::recv(self, caller)
    }
}

impl Stream for UnixEndpoint {
    fn send(&mut self, caller: &Sandbox, data: &[u8]) -> Result<usize, VkError> {
        UnixEndpoint::send(self, caller, data)
    }

    fn recv(&mut self, caller: &Sandbox) -> Result<Option<Bytes>, VkError> {
        UnixEndpoint::recv(self, caller)
    }
}

fn transport_err(e: VkError) -> HttpError {
    HttpError::Transport(e.to_string())
}

/// Sends `request` over `stream`, charging head-build time and the
/// head+body assembly copy to `caller`.
///
/// # Errors
///
/// [`HttpError::Transport`] if the stream rejects the send.
pub fn send_request(
    stream: &mut impl Stream,
    caller: &Sandbox,
    request: &Request,
) -> Result<(), HttpError> {
    let cost = caller.cost();
    caller.charge_user(cost.http_head_ns + cost.memcpy_ns(request.body.len()));
    let raw = request.to_bytes();
    stream.send(caller, &raw).map_err(transport_err)?;
    Ok(())
}

/// Sends `response` over `stream` (same cost shape as requests).
///
/// # Errors
///
/// [`HttpError::Transport`] if the stream rejects the send.
pub fn send_response(
    stream: &mut impl Stream,
    caller: &Sandbox,
    response: &Response,
) -> Result<(), HttpError> {
    let cost = caller.cost();
    caller.charge_user(cost.http_head_ns + cost.memcpy_ns(response.body.len()));
    let raw = response.to_bytes();
    stream.send(caller, &raw).map_err(transport_err)?;
    Ok(())
}

/// Maximum consecutive empty reads before the exchange reports
/// [`HttpError::Incomplete`] (in the simulator, data queued by a peer is
/// visible immediately, so emptiness means nothing more is coming).
const MAX_IDLE_READS: u32 = 3;

fn read_message<M>(
    stream: &mut impl Stream,
    caller: &Sandbox,
    mut poll: impl FnMut(&mut MessageReader) -> Result<Option<M>, HttpError>,
) -> Result<M, HttpError> {
    let mut reader = MessageReader::new();
    let mut idle = 0;
    loop {
        if let Some(msg) = poll(&mut reader)? {
            let cost = caller.cost();
            caller.charge_user(cost.http_head_ns);
            return Ok(msg);
        }
        match stream.recv(caller).map_err(transport_err)? {
            None => return Err(HttpError::Incomplete),
            Some(seg) if seg.is_empty() => {
                idle += 1;
                if idle >= MAX_IDLE_READS {
                    return Err(HttpError::Incomplete);
                }
            }
            Some(seg) => {
                idle = 0;
                reader.feed(&seg);
            }
        }
    }
}

/// Reads one complete request from `stream`.
///
/// # Errors
///
/// [`HttpError::Incomplete`] if the peer closed or stalled mid-message,
/// [`HttpError::Parse`] on malformed bytes.
pub fn read_request(stream: &mut impl Stream, caller: &Sandbox) -> Result<Request, HttpError> {
    read_message(stream, caller, MessageReader::try_request)
}

/// Reads one complete response from `stream`.
///
/// # Errors
///
/// Same failure modes as [`read_request`].
pub fn read_response(stream: &mut impl Stream, caller: &Sandbox) -> Result<Response, HttpError> {
    read_message(stream, caller, MessageReader::try_response)
}

/// Client convenience: POST `body` to `path` and await the response.
///
/// # Errors
///
/// Any [`HttpError`] from sending or reading.
pub fn post(
    stream: &mut impl Stream,
    caller: &Sandbox,
    path: &str,
    body: Bytes,
) -> Result<Response, HttpError> {
    send_request(stream, caller, &Request::post(path, body))?;
    read_response(stream, caller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_vkernel::net::Link;
    use roadrunner_vkernel::tcp::TcpConn;
    use roadrunner_vkernel::unix::UnixConn;
    use roadrunner_vkernel::{CostModel, VirtualClock};
    use std::sync::Arc;

    fn sandboxes() -> (Sandbox, Sandbox) {
        let clock = VirtualClock::new();
        let cost = Arc::new(CostModel::paper_testbed());
        (
            Sandbox::detached("client", clock.clone(), Arc::clone(&cost)),
            Sandbox::detached("server", clock, cost),
        )
    }

    #[test]
    fn full_exchange_over_tcp() {
        let (ca, sb) = sandboxes();
        let (mut client, mut server) = TcpConn::establish(&ca, Link::loopback("lo"));
        send_request(&mut client, &ca, &Request::post("/invoke", b"data".as_slice())).unwrap();
        let req = read_request(&mut server, &sb).unwrap();
        assert_eq!(req.path, "/invoke");
        assert_eq!(&req.body[..], b"data");
        send_response(&mut server, &sb, &Response::ok(b"done".as_slice())).unwrap();
        let resp = read_response(&mut client, &ca).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body[..], b"done");
    }

    #[test]
    fn full_exchange_over_unix() {
        let (ca, sb) = sandboxes();
        let (mut client, mut server) = UnixConn::pair();
        let resp_body = {
            send_request(&mut client, &ca, &Request::post("/f", vec![9u8; 200_000])).unwrap();
            let req = read_request(&mut server, &sb).unwrap();
            assert_eq!(req.body.len(), 200_000);
            send_response(&mut server, &sb, &Response::ok(req.body.clone())).unwrap();
            read_response(&mut client, &ca).unwrap().body
        };
        assert_eq!(resp_body.len(), 200_000);
        assert!(resp_body.iter().all(|&b| b == 9));
    }

    #[test]
    fn post_helper() {
        let (ca, sb) = sandboxes();
        let (mut client, mut server) = UnixConn::pair();
        // Server responds after the client's send; run client send first.
        send_request(&mut client, &ca, &Request::post("/x", b"ping".as_slice())).unwrap();
        let req = read_request(&mut server, &sb).unwrap();
        send_response(&mut server, &sb, &Response::ok(req.body)).unwrap();
        let resp = read_response(&mut client, &ca).unwrap();
        assert_eq!(&resp.body[..], b"ping");
    }

    #[test]
    fn stalled_stream_reports_incomplete() {
        let (ca, sb) = sandboxes();
        let (mut client, mut server) = UnixConn::pair();
        // Send only half a message.
        let raw = Request::post("/x", vec![0u8; 64]).to_bytes();
        Stream::send(&mut client, &ca, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(read_request(&mut server, &sb).unwrap_err(), HttpError::Incomplete);
    }

    #[test]
    fn closed_stream_reports_incomplete() {
        let (ca, sb) = sandboxes();
        let (client, mut server) = UnixConn::pair();
        let _ = ca;
        client.close();
        assert_eq!(read_request(&mut server, &sb).unwrap_err(), HttpError::Incomplete);
    }

    #[test]
    fn exchange_charges_cpu_time() {
        let (ca, sb) = sandboxes();
        let (mut client, mut server) = UnixConn::pair();
        send_request(&mut client, &ca, &Request::post("/f", vec![1u8; 1 << 20])).unwrap();
        let _ = read_request(&mut server, &sb).unwrap();
        assert!(ca.account().user_ns() > 0, "client pays head build + body copy");
        assert!(ca.account().kernel_ns() > 0, "client pays socket copies");
        assert!(sb.account().kernel_ns() > 0, "server pays receive copies");
    }
}
