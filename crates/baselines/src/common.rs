//! Shared types for baseline transfer measurements.

use bytes::Bytes;
use roadrunner_platform::TransferTiming;
use roadrunner_serial::Value;
use roadrunner_vkernel::Nanos;

/// Result of one baseline transfer: end-to-end timing plus the
/// serialization share (the quantity Fig. 6b/7c/8c isolate) and the
/// payload as reconstructed at the target.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Virtual time from "source starts sending" to "target has the
    /// reconstructed value".
    pub latency_ns: Nanos,
    /// Time spent serializing at the source.
    pub serialize_ns: Nanos,
    /// Time spent deserializing at the target.
    pub deserialize_ns: Nanos,
    /// The structured value as the target decoded it.
    pub received_value: Value,
    /// Flat representation of the received value (for checksums).
    pub received_flat: Bytes,
}

impl BaselineOutcome {
    /// Total serialization overhead (both directions).
    pub fn serialization_ns(&self) -> Nanos {
        self.serialize_ns + self.deserialize_ns
    }

    /// Transfer time excluding serialization work.
    pub fn transfer_only_ns(&self) -> Nanos {
        self.latency_ns.saturating_sub(self.serialization_ns())
    }

    /// Phase attribution for the workflow engines: serialization is the
    /// source's preparation, deserialization the target's consumption,
    /// everything in between the transfer proper.
    pub fn timing(&self) -> TransferTiming {
        TransferTiming {
            prepare_ns: self.serialize_ns,
            transfer_ns: self.transfer_only_ns(),
            consume_ns: self.deserialize_ns,
        }
    }
}

/// Clamps a pair's placement map and node attributions onto the first
/// `active_nodes` nodes — the shared logic behind
/// [`RuncPair::clamp_placements`](crate::RuncPair::clamp_placements) and
/// [`WasmedgePair::clamp_placements`](crate::WasmedgePair::clamp_placements).
///
/// # Panics
///
/// Panics if `active_nodes` is zero.
pub(crate) fn clamp_placement_map(
    placements: &mut std::collections::HashMap<String, usize>,
    endpoints: [&mut usize; 2],
    active_nodes: usize,
) {
    assert!(active_nodes > 0, "a cluster keeps at least one active node");
    let last = active_nodes - 1;
    for node in endpoints {
        *node = (*node).min(last);
    }
    for node in placements.values_mut() {
        *node = (*node).min(last);
    }
}

/// Extracts the flat byte representation from a decoded value, mirroring
/// [`roadrunner_serial::Payload::flat`] for the supported payload shapes.
pub fn flat_of(value: &Value) -> Bytes {
    match value {
        Value::Str(s) => Bytes::copy_from_slice(s.as_bytes()),
        Value::Bytes(b) => b.clone(),
        other => Bytes::from(roadrunner_serial::binary::to_binary(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_share_math() {
        let o = BaselineOutcome {
            latency_ns: 100,
            serialize_ns: 30,
            deserialize_ns: 20,
            received_value: Value::Null,
            received_flat: Bytes::new(),
        };
        assert_eq!(o.serialization_ns(), 50);
        assert_eq!(o.transfer_only_ns(), 50);
        let timing = o.timing();
        assert_eq!(timing.prepare_ns, 30);
        assert_eq!(timing.transfer_ns, 50);
        assert_eq!(timing.consume_ns, 20);
        assert_eq!(timing.total_ns(), o.latency_ns);
    }

    #[test]
    fn flat_of_strings_and_bytes() {
        assert_eq!(&flat_of(&Value::from("abc"))[..], b"abc");
        assert_eq!(&flat_of(&Value::from(vec![1u8, 2]))[..], &[1, 2]);
        assert!(!flat_of(&Value::from(5i64)).is_empty());
    }
}
