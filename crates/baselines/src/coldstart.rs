//! Cold-start and execution-latency models for Fig. 2a.
//!
//! Containers pay image unpack + runtime initialization at cold start and
//! a per-invocation platform overhead (ingress, containerized runtime
//! layers) at execution time. Wasm functions load a small binary into a
//! fresh VM; execution is interpreted (real instruction counts from our
//! engine) plus WASI overhead for host access. The constants below encode
//! the testbed description plus the paper's observed proportions:
//! Wasm cold starts far below container cold starts, Wasm execution
//! *faster* without WASI ("Hello World") and *slower* with WASI
//! ("Resize Image").

use std::sync::Arc;

use roadrunner::guest::{self, ResizeSpec, RESIZE_INPUT_PATH};
use roadrunner_vkernel::{CostModel, Nanos, Testbed};
use roadrunner_wasi::WasiCtx;
use roadrunner_wasm::{encode, EngineLimits, Instance, Linker};

/// Container image size measured by the paper (Fig. 2a): 76.9 MB.
pub const CONTAINER_IMAGE_BYTES: u64 = 76_900_000;
/// Wasm "Hello World" binary size from the paper: 3.19 MB (a realistic
/// Rust release build; our hand-assembled module is far smaller, so the
/// paper's value is used for the artifact-size series).
pub const PAPER_WASM_HELLO_BYTES: u64 = 3_190_000;
/// Per-invocation platform overhead of the warm container path (HTTP
/// ingress hop + containerized runtime layers) — why even "Hello World"
/// takes visible time in a container.
pub const CONTAINER_INVOKE_NS: Nanos = 1_000_000;
/// Per-invocation overhead of calling directly into a resident Wasm VM.
pub const WASM_INVOKE_NS: Nanos = 100_000;
/// Native instruction cost (2 GHz, superscalar) — the container runs the
/// same logical work compiled natively.
pub const NATIVE_INSTR_NS: f64 = 0.15;

/// One bar group of Fig. 2a.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStartSample {
    /// Series label (`cont-hello`, `wasm-resize`, …).
    pub label: String,
    /// Cold-start latency.
    pub cold_ns: Nanos,
    /// Warm execution latency.
    pub exec_ns: Nanos,
    /// Deployable artifact size in bytes.
    pub artifact_bytes: u64,
}

/// Container cold start: pull/unpack the image from disk + runtime init.
pub fn container_cold_ns(cost: &CostModel, image_bytes: u64) -> Nanos {
    (image_bytes as f64 / cost.image_unpack_bytes_per_ns).round() as Nanos
        + cost.container_init_ns
}

/// Wasm cold start: decode + instantiate the binary.
pub fn wasm_cold_ns(cost: &CostModel, binary_bytes: u64) -> Nanos {
    (binary_bytes as f64 / cost.wasm_load_bytes_per_ns).round() as Nanos + cost.wasm_init_ns
}

/// A system's two-tier instantiation cost model: the **full** tier
/// (decode + instantiate from the artifact — today's cold start) and
/// the **restore** tier (resume a pre-built snapshot — Faasta-style
/// sub-millisecond instantiation for Wasm, CRIU-style checkpoint
/// restore for containers). A warm pool pays the full tier the first
/// time a (function, node) slot is built and the restore tier on every
/// later miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdStartTiers {
    /// Full decode + instantiate cost.
    pub full_ns: Nanos,
    /// Snapshot-restore cost (strictly below `full_ns` for any
    /// realistic artifact).
    pub restore_ns: Nanos,
}

/// Wasm snapshot-restore tier: copy the pre-instantiated VM image
/// (linear memory + globals, ≈ the binary's footprint) back into place
/// and remap its pages — no decode, no validation, no init. This is the
/// Faasta claim: restore cost is pure memory movement, which for a
/// few-MB guest lands well under 1 ms.
pub fn wasm_snapshot_restore_ns(cost: &CostModel, binary_bytes: u64) -> Nanos {
    let bytes = binary_bytes as usize;
    cost.memcpy_ns(bytes) + cost.page_map_ns_for(bytes)
}

/// Container checkpoint-restore tier: copy the checkpoint image back,
/// remap it, and re-enter the runtime (a handful of context switches
/// and syscalls for namespaces, cgroups and the supervisor hop). Far
/// cheaper than a full image unpack + init, but still orders of
/// magnitude above the Wasm restore.
pub fn container_restore_ns(cost: &CostModel, checkpoint_bytes: u64) -> Nanos {
    let bytes = checkpoint_bytes as usize;
    cost.memcpy_ns(bytes)
        + cost.page_map_ns_for(bytes)
        + 4 * cost.ctx_switch_ns
        + 16 * cost.syscall_ns
}

/// Both tiers for a Wasm function with the given binary size.
pub fn wasm_tiers(cost: &CostModel, binary_bytes: u64) -> ColdStartTiers {
    ColdStartTiers {
        full_ns: wasm_cold_ns(cost, binary_bytes),
        restore_ns: wasm_snapshot_restore_ns(cost, binary_bytes),
    }
}

/// Both tiers for a container with the given image size. The checkpoint
/// a restore copies is the *resident* state, far smaller than the
/// on-disk image — modeled as a quarter of it (compressed layers,
/// shared page cache).
pub fn container_tiers(cost: &CostModel, image_bytes: u64) -> ColdStartTiers {
    ColdStartTiers {
        full_ns: container_cold_ns(cost, image_bytes),
        restore_ns: container_restore_ns(cost, image_bytes / 4),
    }
}

/// Counts the instructions a module executes for `export` (run in a
/// throwaway metering instance).
fn measure_instr_count(module: roadrunner_wasm::Module, export: &str) -> u64 {
    let mut linker = Linker::new();
    roadrunner_wasi::register::<WasiCtx>(&mut linker);
    let bed = Testbed::new(1, 4, 8 << 30, CostModel::paper_testbed());
    let sandbox = bed.node(0).sandbox("meter");
    let mut ctx = WasiCtx::new(sandbox);
    if module.imports.iter().any(|i| i.name == "path_open") {
        ctx.put_file(RESIZE_INPUT_PATH, vec![0x55; 4 << 20]);
    }
    let mut inst =
        Instance::new(module, &linker, EngineLimits::default(), Box::new(ctx)).expect("meters");
    inst.invoke(export, &[]).expect("metered run succeeds");
    inst.instr_count()
}

/// Fig. 2a, container + "Hello World".
pub fn container_hello(cost: &CostModel) -> ColdStartSample {
    let work = measure_instr_count(guest::hello_world(), "_start");
    ColdStartSample {
        label: "cont-hello".into(),
        cold_ns: container_cold_ns(cost, CONTAINER_IMAGE_BYTES),
        exec_ns: CONTAINER_INVOKE_NS + (work as f64 * NATIVE_INSTR_NS).round() as Nanos,
        artifact_bytes: CONTAINER_IMAGE_BYTES,
    }
}

/// Fig. 2a, Wasm + "Hello World" (no WASI): really runs the guest.
pub fn wasm_hello(testbed: &Arc<Testbed>) -> ColdStartSample {
    let cost = testbed.cost();
    let module = guest::hello_world();
    let binary_len = encode::encode(&module).len() as u64;
    let sandbox = testbed.node(0).sandbox("wasm-hello");
    let mut inst = Instance::new(
        module,
        &Linker::new(),
        EngineLimits::default(),
        Box::new(()),
    )
    .expect("hello instantiates");
    inst.invoke("_start", &[]).expect("hello runs");
    let exec_ns =
        WASM_INVOKE_NS + (inst.instr_count() as f64 * cost.wasm_instr_ns).round() as Nanos;
    sandbox.charge_user(exec_ns);
    ColdStartSample {
        label: "wasm-hello".into(),
        cold_ns: wasm_cold_ns(cost, PAPER_WASM_HELLO_BYTES.max(binary_len)),
        exec_ns,
        artifact_bytes: PAPER_WASM_HELLO_BYTES.max(binary_len),
    }
}

/// Fig. 2a, container + "Resize Image": native work, no WASI tax.
pub fn container_resize(cost: &CostModel, spec: ResizeSpec) -> ColdStartSample {
    let work = measure_instr_count(resize_with_input(spec).0, "_start");
    // Native file reads are cheap relative to the WASI path: charge the
    // raw copies only.
    let io_ns = cost.memcpy_ns(spec.input_len() as usize + spec.output_len() as usize);
    ColdStartSample {
        label: "cont-resize".into(),
        cold_ns: container_cold_ns(cost, CONTAINER_IMAGE_BYTES),
        exec_ns: CONTAINER_INVOKE_NS
            + (work as f64 * NATIVE_INSTR_NS).round() as Nanos
            + io_ns,
        artifact_bytes: CONTAINER_IMAGE_BYTES,
    }
}

fn resize_with_input(spec: ResizeSpec) -> (roadrunner_wasm::Module, Vec<u8>) {
    let module = guest::resize_image(spec);
    let img: Vec<u8> = (0..spec.input_len()).map(|i| (i % 256) as u8).collect();
    (module, img)
}

/// Fig. 2a, Wasm + "Resize Image" (WASI): really runs the guest through
/// `path_open`/`fd_read`/`fd_write`, paying every boundary crossing.
pub fn wasm_resize(testbed: &Arc<Testbed>, spec: ResizeSpec) -> ColdStartSample {
    let cost = testbed.cost();
    let (module, img) = resize_with_input(spec);
    let binary = encode::encode(&module);
    let binary_len = binary.len() as u64;
    let sandbox = testbed.node(0).sandbox("wasm-resize");
    let user_before = sandbox.account().user_ns();
    let mut linker = Linker::new();
    roadrunner_wasi::register::<WasiCtx>(&mut linker);
    let mut ctx = WasiCtx::new(sandbox.clone());
    ctx.put_file(RESIZE_INPUT_PATH, img);
    let mut inst =
        Instance::new(module, &linker, EngineLimits::default(), Box::new(ctx)).expect("resize");
    inst.invoke("_start", &[]).expect("resize runs");
    let wasi_ns = sandbox.account().user_ns() - user_before;
    let exec_ns = WASM_INVOKE_NS
        + (inst.instr_count() as f64 * cost.wasm_instr_ns).round() as Nanos
        + wasi_ns;
    ColdStartSample {
        label: "wasm-resize".into(),
        cold_ns: wasm_cold_ns(cost, binary_len.max(47_800)),
        exec_ns,
        artifact_bytes: binary_len.max(47_800),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bed() -> Arc<Testbed> {
        Arc::new(Testbed::paper())
    }

    #[test]
    fn wasm_cold_start_is_far_below_container() {
        let cost = CostModel::paper_testbed();
        let cont = container_cold_ns(&cost, CONTAINER_IMAGE_BYTES);
        let wasm = wasm_cold_ns(&cost, PAPER_WASM_HELLO_BYTES);
        assert!(wasm * 5 < cont, "wasm {wasm} vs container {cont}");
    }

    #[test]
    fn restore_tier_is_far_below_full_build_for_both_systems() {
        let cost = CostModel::paper_testbed();
        let wasm = wasm_tiers(&cost, PAPER_WASM_HELLO_BYTES);
        let cont = container_tiers(&cost, CONTAINER_IMAGE_BYTES);
        assert!(
            wasm.restore_ns * 100 < wasm.full_ns,
            "wasm restore {} vs full {}",
            wasm.restore_ns,
            wasm.full_ns
        );
        assert!(
            cont.restore_ns * 100 < cont.full_ns,
            "container restore {} vs full {}",
            cont.restore_ns,
            cont.full_ns
        );
    }

    #[test]
    fn wasm_snapshot_restore_is_sub_millisecond() {
        // The Faasta headline: snapshot-style instantiation restores a
        // paper-sized Wasm guest in under 1 ms.
        let cost = CostModel::paper_testbed();
        let restore = wasm_snapshot_restore_ns(&cost, PAPER_WASM_HELLO_BYTES);
        assert!(restore < 1_000_000, "restore {restore} ns must be < 1 ms");
        // ... while the container restore is not (it is still far below
        // the full unpack + init).
        let cont = container_tiers(&cost, CONTAINER_IMAGE_BYTES);
        assert!(cont.restore_ns > 1_000_000);
    }

    #[test]
    fn hello_wasm_executes_faster_than_container() {
        let bed = bed();
        let cont = container_hello(bed.cost());
        let wasm = wasm_hello(&bed);
        assert!(
            wasm.exec_ns < cont.exec_ns,
            "no-WASI wasm ({}) must beat container ({})",
            wasm.exec_ns,
            cont.exec_ns
        );
    }

    #[test]
    fn resize_wasm_executes_slower_than_container() {
        let bed = bed();
        let spec = ResizeSpec { width: 512, height: 512 };
        let cont = container_resize(bed.cost(), spec);
        let wasm = wasm_resize(&bed, spec);
        assert!(
            wasm.exec_ns > cont.exec_ns,
            "WASI wasm ({}) must trail container ({})",
            wasm.exec_ns,
            cont.exec_ns
        );
    }

    #[test]
    fn artifact_sizes_match_figure() {
        let bed = bed();
        let cont = container_hello(bed.cost());
        let wasm = wasm_hello(&bed);
        assert_eq!(cont.artifact_bytes, 76_900_000);
        assert_eq!(wasm.artifact_bytes, 3_190_000);
    }
}
