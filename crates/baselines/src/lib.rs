//! State-of-the-art baselines for the Roadrunner evaluation.
//!
//! The paper compares against two runtimes (§6.1):
//!
//! * [`runc`] — native containers exchanging data over HTTP with
//!   host-speed serialization, the performance *upper bound* ("the best
//!   achievable performance with Wasm" is approaching this);
//! * [`wasmedge`] — state-of-the-art Wasm functions exchanging data over
//!   HTTP through WASI with slow, single-threaded in-VM serialization —
//!   the system Roadrunner improves by 44–89 %.
//!
//! [`coldstart`] additionally models Fig. 2a (cold start, execution
//! latency and artifact size for containers vs Wasm).

pub mod coldstart;
pub mod common;
pub mod runc;
pub mod wasmedge;

pub use common::BaselineOutcome;
pub use runc::RuncPair;
pub use wasmedge::WasmedgePair;
