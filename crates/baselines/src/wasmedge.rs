//! The WasmEdge-like Wasm baseline.
//!
//! State-of-the-art Wasm serverless functions exchange data over HTTP
//! through WASI: the guest serializes *inside* the VM (single-threaded,
//! interpreted — the paper's Fig. 2b attributes up to 60 % of I/O time to
//! this), then pushes the byte stream through `sock_send` in small
//! chunks, paying a guest↔host boundary crossing plus a copy out of
//! linear memory for every chunk. The receiver mirrors this. Nothing
//! overlaps: serialization, sending and receiving run strictly one after
//! another.
//!
//! The guests are real modules from the SDK ([`roadrunner::guest::wasi_sender`]
//! / [`wasi_receiver`](roadrunner::guest::wasi_receiver)); their chunk
//! loops execute instruction by instruction. One documented substitution:
//! the serialization *bytes* are produced by the host-side codec while
//! the *cost* is charged at the calibrated in-VM rate (DESIGN.md §6) —
//! writing a full text encoder in raw Wasm instructions would change no
//! measured quantity.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use roadrunner::guest::{self, ALLOCATE, DEALLOCATE};
use roadrunner_platform::{DataPlane, PlatformError, TransferTiming};
use roadrunner_serial::{text, Payload};
use roadrunner_vkernel::node::Sandbox;
use roadrunner_vkernel::tcp::TcpConn;
use roadrunner_vkernel::{Nanos, Testbed};
use roadrunner_wasi::sock::TcpSocket;
use roadrunner_wasi::WasiCtx;
use roadrunner_wasm::types::Value;
use roadrunner_wasm::{EngineLimits, Instance, Linker};

use crate::common::{flat_of, BaselineOutcome};

/// A connected pair of WasmEdge-style functions (`a` → `b`).
pub struct WasmedgePair {
    testbed: Arc<Testbed>,
    node_a: usize,
    node_b: usize,
    sandbox_a: Sandbox,
    sandbox_b: Sandbox,
    sender: Instance,
    receiver: Instance,
    fd_a: u32,
    fd_b: u32,
    placements: HashMap<String, usize>,
}

impl std::fmt::Debug for WasmedgePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WasmedgePair")
            .field("a", &self.sandbox_a.account().name())
            .field("b", &self.sandbox_b.account().name())
            .finish_non_exhaustive()
    }
}

fn wasi_linker() -> Linker {
    let mut linker = Linker::new();
    roadrunner_wasi::register::<WasiCtx>(&mut linker);
    linker
}

impl WasmedgePair {
    /// Deploys the pair on `node_a`/`node_b` and connects them over the
    /// appropriate link.
    ///
    /// # Panics
    ///
    /// Panics if the SDK guests fail to instantiate (a bug, not an input
    /// condition).
    pub fn establish(testbed: Arc<Testbed>, node_a: usize, node_b: usize) -> Self {
        let sandbox_a = testbed.node(node_a).sandbox("wasmedge-a");
        let sandbox_b = testbed.node(node_b).sandbox("wasmedge-b");
        let link = Arc::clone(testbed.link_between(node_a, node_b));
        let (ea, eb) = TcpConn::establish(&sandbox_a, link);
        let linker = wasi_linker();

        let mut ctx_a = WasiCtx::new(sandbox_a.clone());
        let fd_a = ctx_a.add_socket(Box::new(TcpSocket::new(ea)));
        let sender = Instance::new(
            guest::wasi_sender(),
            &linker,
            EngineLimits::default(),
            Box::new(ctx_a),
        )
        .expect("sender instantiates");

        let mut ctx_b = WasiCtx::new(sandbox_b.clone());
        let fd_b = ctx_b.add_socket(Box::new(TcpSocket::new(eb)));
        let receiver = Instance::new(
            guest::wasi_receiver(),
            &linker,
            EngineLimits::default(),
            Box::new(ctx_b),
        )
        .expect("receiver instantiates");

        Self {
            testbed,
            node_a,
            node_b,
            sandbox_a,
            sandbox_b,
            sender,
            receiver,
            fd_a,
            fd_b,
            placements: HashMap::new(),
        }
    }

    /// Sandbox of the source function.
    pub fn sandbox_a(&self) -> &Sandbox {
        &self.sandbox_a
    }

    /// Sandbox of the target function.
    pub fn sandbox_b(&self) -> &Sandbox {
        &self.sandbox_b
    }

    /// Testbed nodes the pair's VMs run on, `(source, target)`.
    pub fn nodes(&self) -> (usize, usize) {
        (self.node_a, self.node_b)
    }

    /// Records that workflow function `function` runs on `node`
    /// (chainable), so the concurrent engine attributes the function's
    /// phases to that node's resources via [`DataPlane::placement`].
    pub fn place(mut self, function: impl Into<String>, node: usize) -> Self {
        self.placements.insert(function.into(), node);
        self
    }

    /// Clamps every recorded placement (and the pair's node attribution)
    /// onto the first `active_nodes` nodes, so a map written for a larger
    /// cluster keeps attributing work to live timelines after the active
    /// set shrank. Note the load generator never consults this map — its
    /// `Placed` wrapper overrides placement per instance — so clamping
    /// only matters when a pair is driven directly (e.g. handed to
    /// `execute_concurrent` against downsized `SchedResources`).
    ///
    /// # Panics
    ///
    /// Panics if `active_nodes` is zero.
    pub fn clamp_placements(&mut self, active_nodes: usize) {
        crate::common::clamp_placement_map(
            &mut self.placements,
            [&mut self.node_a, &mut self.node_b],
            active_nodes,
        );
    }

    fn invoke_charged(
        instance: &mut Instance,
        sandbox: &Sandbox,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, PlatformError> {
        let before_mem = instance.memory().map(|m| m.len()).unwrap_or(0);
        instance.reset_instr_count();
        let result = instance
            .invoke(func, args)
            .map_err(|t| PlatformError::Transfer(format!("guest `{func}` trapped: {t}")));
        let instr = instance.instr_count();
        sandbox.charge_user((instr as f64 * sandbox.cost().wasm_instr_ns).round() as Nanos);
        let after_mem = instance.memory().map(|m| m.len()).unwrap_or(0);
        if after_mem > before_mem {
            sandbox.account().alloc((after_mem - before_mem) as u64);
        }
        result
    }

    /// Transfers one payload and returns the timing breakdown.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Transfer`] if a guest traps or decoding fails.
    pub fn transfer(&mut self, payload: &Payload) -> Result<BaselineOutcome, PlatformError> {
        let clock = self.testbed.clock().clone();
        let cost = Arc::clone(self.testbed.cost());
        let started = clock.now();

        // --- Source guest: the function's working state (the raw value)
        // already lives in its linear memory; serialization creates a
        // *second*, linearized copy next to it — this doubled footprint
        // is where Roadrunner's RAM savings come from (§6.5).
        let state_addr = Self::invoke_charged(
            &mut self.sender,
            &self.sandbox_a,
            ALLOCATE,
            &[Value::I32(payload.flat().len() as i32)],
        )?[0]
            .as_i32()
            .expect("allocator returns address");
        self.sender
            .memory_mut()
            .expect("sender has memory")
            .write(state_addr as u32, payload.flat())
            .map_err(|t| PlatformError::Transfer(t.to_string()))?;

        // Serialize in-VM (single-threaded).
        let encoded = text::to_text(payload.value());
        let serialize_ns =
            cost.serialize_wasm_ns(payload.flat().len(), payload.value_nodes());
        self.sandbox_a.charge_user(serialize_ns);
        // The serialized document lives in guest memory too.
        let addr = Self::invoke_charged(
            &mut self.sender,
            &self.sandbox_a,
            ALLOCATE,
            &[Value::I32(encoded.len() as i32)],
        )?[0]
            .as_i32()
            .expect("allocator returns address");
        self.sender
            .memory_mut()
            .expect("sender has memory")
            .write(addr as u32, encoded.as_bytes())
            .map_err(|t| PlatformError::Transfer(t.to_string()))?;
        // Their HTTP client builds a request head around the body.
        self.sandbox_a.charge_user(cost.http_head_ns);

        // --- Stream through WASI sock_send, chunk by chunk.
        let errno = Self::invoke_charged(
            &mut self.sender,
            &self.sandbox_a,
            "send_all",
            &[
                Value::I32(self.fd_a as i32),
                Value::I32(addr),
                Value::I32(encoded.len() as i32),
            ],
        )?[0]
            .as_i32()
            .expect("send_all returns errno");
        if errno != 0 {
            return Err(PlatformError::Transfer(format!("send_all errno {errno}")));
        }

        // --- Target guest: drain sock_recv, then parse + deserialize.
        let out_addr = Self::invoke_charged(
            &mut self.receiver,
            &self.sandbox_b,
            "recv_all",
            &[Value::I32(self.fd_b as i32)],
        )?[0]
            .as_i32()
            .expect("recv_all returns address");
        let out_len = Self::invoke_charged(&mut self.receiver, &self.sandbox_b, "last_len", &[])?
            [0]
            .as_i32()
            .expect("last_len returns length");
        self.sandbox_b.charge_user(cost.http_head_ns);
        let body = self
            .receiver
            .memory()
            .expect("receiver has memory")
            .read(out_addr as u32, out_len as u32)
            .map_err(|t| PlatformError::Transfer(t.to_string()))?
            .to_vec();
        let body = std::str::from_utf8(&body)
            .map_err(|e| PlatformError::Transfer(format!("body not UTF-8: {e}")))?;
        let value = text::from_text(body)
            .map_err(|e| PlatformError::Transfer(format!("deserialize failed: {e}")))?;
        let deserialize_ns =
            cost.deserialize_wasm_ns(payload.flat().len(), payload.value_nodes());
        self.sandbox_b.charge_user(deserialize_ns);
        let latency_ns = clock.now() - started;

        // The receiver materializes the decoded value next to the raw
        // document before the document is released.
        self.sandbox_b.account().alloc(payload.flat().len() as u64);
        self.sandbox_b.account().free(payload.flat().len() as u64);

        // Release guest buffers for the next repetition (LIFO order).
        Self::invoke_charged(&mut self.sender, &self.sandbox_a, DEALLOCATE, &[Value::I32(addr)])?;
        Self::invoke_charged(
            &mut self.sender,
            &self.sandbox_a,
            DEALLOCATE,
            &[Value::I32(state_addr)],
        )?;
        Self::invoke_charged(
            &mut self.receiver,
            &self.sandbox_b,
            DEALLOCATE,
            &[Value::I32(out_addr)],
        )?;

        let received_flat = flat_of(&value);
        Ok(BaselineOutcome {
            latency_ns,
            serialize_ns,
            deserialize_ns,
            received_value: value,
            received_flat,
        })
    }
}

/// Workflow-engine integration: the pair carries any edge of the DAG,
/// paying the full in-VM serialize → WASI-chunk stream → deserialize
/// path on the edge's raw bytes.
impl DataPlane for WasmedgePair {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        _from: &str,
        _to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let outcome = WasmedgePair::transfer(self, &Payload::opaque(payload))?;
        let timing = outcome.timing();
        Ok((outcome.received_flat, Some(timing)))
    }

    fn placement(&self, function: &str) -> Option<usize> {
        self.placements.get(function).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_serial::payload::PayloadKind;

    fn payload(size: usize) -> Payload {
        Payload::synthetic(PayloadKind::Text, 11, size)
    }

    #[test]
    fn placement_map_feeds_the_concurrent_engine() {
        let bed = Arc::new(Testbed::paper());
        let pair =
            WasmedgePair::establish(Arc::clone(&bed), 0, 1).place("src", 0).place("sink", 1);
        assert_eq!(pair.nodes(), (0, 1));
        assert_eq!(DataPlane::placement(&pair, "src"), Some(0));
        assert_eq!(DataPlane::placement(&pair, "sink"), Some(1));
        assert_eq!(DataPlane::placement(&pair, "ghost"), None);
    }

    #[test]
    fn clamping_rehomes_the_map_onto_the_active_set() {
        let bed = Arc::new(Testbed::paper());
        let mut pair =
            WasmedgePair::establish(Arc::clone(&bed), 0, 1).place("src", 0).place("sink", 1);
        pair.clamp_placements(1);
        assert_eq!(pair.nodes(), (0, 0));
        assert_eq!(DataPlane::placement(&pair, "sink"), Some(0));
        assert_eq!(DataPlane::placement(&pair, "src"), Some(0));
    }

    #[test]
    fn transfer_preserves_value_across_vms() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
        let p = payload(100_000);
        let out = pair.transfer(&p).unwrap();
        assert_eq!(&out.received_value, p.value());
        assert_eq!(&out.received_flat[..], &p.flat()[..]);
    }

    #[test]
    fn serialization_dominates_intra_node() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
        let p = payload(2_000_000);
        let out = pair.transfer(&p).unwrap();
        let share = out.serialization_ns() as f64 / out.latency_ns as f64;
        assert!(share > 0.4, "wasm serialization share was {share}");
    }

    #[test]
    fn repeated_transfers_reuse_guest_heap() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
        let p = payload(50_000);
        let first = pair.transfer(&p).unwrap();
        let second = pair.transfer(&p).unwrap();
        assert_eq!(first.received_value, second.received_value);
        // LIFO dealloc keeps the guest heap from growing monotonically.
        let pages = pair.sender.memory().unwrap().size_pages();
        pair.transfer(&p).unwrap();
        assert_eq!(pair.sender.memory().unwrap().size_pages(), pages);
    }

    #[test]
    fn guests_pay_many_boundary_crossings() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
        pair.transfer(&payload(500_000)).unwrap();
        let tx_calls = pair.sender.data::<WasiCtx>().unwrap().call_count;
        // 500 kB serialized at 8 KiB per sock_send ≈ 62+ crossings.
        assert!(tx_calls > 50, "sender made only {tx_calls} WASI calls");
    }

    #[test]
    fn inter_node_pays_wire_time() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 1);
        let out = pair.transfer(&payload(1_000_000)).unwrap();
        assert!(out.latency_ns >= bed.wan().wire_ns(1_000_000));
    }

    #[test]
    fn structured_payloads_round_trip() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
        let p = Payload::synthetic(PayloadKind::SensorRecords, 5, 5_000);
        let out = pair.transfer(&p).unwrap();
        assert_eq!(&out.received_value, p.value());
    }

    #[test]
    fn data_plane_transfer_pays_in_vm_serialization() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
        let payload = Bytes::from(vec![0xCDu8; 40_000]);
        let (received, timing) =
            DataPlane::transfer_detailed(&mut pair, "a", "b", payload.clone()).unwrap();
        assert_eq!(&received[..], &payload[..]);
        let timing = timing.expect("baselines attribute every edge");
        // In-VM serialization dominates the prepare phase.
        assert!(timing.prepare_ns >= bed.cost().serialize_wasm_ns(40_000, 0));
    }
}
