//! The RunC-like container baseline.
//!
//! Native functions in containers exchanging data over HTTP: serialize at
//! host speed, POST the document, parse and deserialize at the target.
//! The paper uses this as the performance *upper bound* achievable
//! without Roadrunner's mechanisms ("we compare against RunC (container)
//! as an upper bound for performance", §6.1): host-native serialization
//! is cheap (~15 % of transfer, Fig. 2b) and tokio-style streaming
//! overlaps stages.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use roadrunner_http::{read_request, read_response, send_request, send_response, Request, Response};
use roadrunner_platform::{DataPlane, PlatformError, TransferTiming};
use roadrunner_serial::{text, Payload};
use roadrunner_vkernel::node::Sandbox;
use roadrunner_vkernel::tcp::{TcpConn, TcpEndpoint};
use roadrunner_vkernel::Testbed;

use crate::common::{flat_of, BaselineOutcome};

/// A connected pair of container functions (`a` → `b`) exchanging data
/// over HTTP.
pub struct RuncPair {
    testbed: Arc<Testbed>,
    node_a: usize,
    node_b: usize,
    sandbox_a: Sandbox,
    sandbox_b: Sandbox,
    client: TcpEndpoint,
    server: TcpEndpoint,
    placements: HashMap<String, usize>,
}

impl std::fmt::Debug for RuncPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuncPair")
            .field("a", &self.sandbox_a.account().name())
            .field("b", &self.sandbox_b.account().name())
            .finish_non_exhaustive()
    }
}

impl RuncPair {
    /// Deploys the pair on `node_a`/`node_b` of `testbed` and establishes
    /// the HTTP connection (charging the TCP handshake).
    pub fn establish(testbed: Arc<Testbed>, node_a: usize, node_b: usize) -> Self {
        let sandbox_a = testbed.node(node_a).sandbox("runc-a");
        let sandbox_b = testbed.node(node_b).sandbox("runc-b");
        let link = Arc::clone(testbed.link_between(node_a, node_b));
        let (client, server) = TcpConn::establish(&sandbox_a, link);
        Self {
            testbed,
            node_a,
            node_b,
            sandbox_a,
            sandbox_b,
            client,
            server,
            placements: HashMap::new(),
        }
    }

    /// Sandbox of the source container.
    pub fn sandbox_a(&self) -> &Sandbox {
        &self.sandbox_a
    }

    /// Sandbox of the target container.
    pub fn sandbox_b(&self) -> &Sandbox {
        &self.sandbox_b
    }

    /// Testbed nodes the pair's containers run on, `(source, target)`.
    pub fn nodes(&self) -> (usize, usize) {
        (self.node_a, self.node_b)
    }

    /// Records that workflow function `function` runs on `node`
    /// (chainable), so the concurrent engine attributes the function's
    /// phases to that node's resources via [`DataPlane::placement`].
    pub fn place(mut self, function: impl Into<String>, node: usize) -> Self {
        self.placements.insert(function.into(), node);
        self
    }

    /// Clamps every recorded placement (and the pair's node attribution)
    /// onto the first `active_nodes` nodes, so a map written for a larger
    /// cluster keeps attributing work to live timelines after the active
    /// set shrank. Note the load generator never consults this map — its
    /// `Placed` wrapper overrides placement per instance — so clamping
    /// only matters when a pair is driven directly (e.g. handed to
    /// `execute_concurrent` against downsized `SchedResources`).
    ///
    /// # Panics
    ///
    /// Panics if `active_nodes` is zero.
    pub fn clamp_placements(&mut self, active_nodes: usize) {
        crate::common::clamp_placement_map(
            &mut self.placements,
            [&mut self.node_a, &mut self.node_b],
            active_nodes,
        );
    }

    /// Transfers one payload and returns the timing breakdown.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Transfer`] if the HTTP exchange or decoding
    /// fails.
    pub fn transfer(&mut self, payload: &Payload) -> Result<BaselineOutcome, PlatformError> {
        let clock = self.testbed.clock().clone();
        let cost = self.testbed.cost();
        let started = clock.now();

        // Source: host-speed serialization (the text codec really runs;
        // time is charged from the calibrated model). The container holds
        // its working state plus the serialized copy.
        self.sandbox_a.account().alloc(payload.flat().len() as u64);
        let encoded = text::to_text(payload.value());
        let encoded_len = encoded.len();
        self.sandbox_a.account().alloc(encoded_len as u64);
        let serialize_ns =
            cost.serialize_host_ns(payload.flat().len(), payload.value_nodes());
        self.sandbox_a.charge_user(serialize_ns);

        // HTTP POST to the target.
        let request = Request::post("/invoke", Bytes::from(encoded));
        send_request(&mut self.client, &self.sandbox_a, &request)
            .map_err(|e| PlatformError::Transfer(e.to_string()))?;

        // Target: read, parse, deserialize at host speed. The received
        // document and the decoded value coexist briefly.
        let received = read_request(&mut self.server, &self.sandbox_b)
            .map_err(|e| PlatformError::Transfer(e.to_string()))?;
        self.sandbox_b.account().alloc(received.body.len() as u64);
        let body = std::str::from_utf8(&received.body)
            .map_err(|e| PlatformError::Transfer(format!("body not UTF-8: {e}")))?;
        let value = text::from_text(body)
            .map_err(|e| PlatformError::Transfer(format!("deserialize failed: {e}")))?;
        self.sandbox_b.account().alloc(payload.flat().len() as u64);
        let deserialize_ns =
            cost.deserialize_host_ns(payload.flat().len(), payload.value_nodes());
        self.sandbox_b.charge_user(deserialize_ns);
        let latency_ns = clock.now() - started;
        self.sandbox_b.account().free((received.body.len() + payload.flat().len()) as u64);
        self.sandbox_a.account().free((payload.flat().len() + encoded_len) as u64);

        // Ack (tiny; outside the measured window like the paper's
        // "until the target function receives it").
        send_response(&mut self.server, &self.sandbox_b, &Response::ok(Bytes::from_static(b"ok")))
            .map_err(|e| PlatformError::Transfer(e.to_string()))?;
        let _ = read_response(&mut self.client, &self.sandbox_a)
            .map_err(|e| PlatformError::Transfer(e.to_string()))?;

        let received_flat = flat_of(&value);
        Ok(BaselineOutcome {
            latency_ns,
            serialize_ns,
            deserialize_ns,
            received_value: value,
            received_flat,
        })
    }
}

/// Workflow-engine integration: the pair carries any edge of the DAG
/// (its two containers stand in for whichever functions the edge names),
/// wrapping the raw bytes as an opaque payload that the HTTP path must
/// serialize and deserialize like any other value.
impl DataPlane for RuncPair {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        _from: &str,
        _to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let outcome = RuncPair::transfer(self, &Payload::opaque(payload))?;
        let timing = outcome.timing();
        Ok((outcome.received_flat, Some(timing)))
    }

    fn placement(&self, function: &str) -> Option<usize> {
        self.placements.get(function).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_serial::payload::PayloadKind;

    fn payload(size: usize) -> Payload {
        Payload::synthetic(PayloadKind::Text, 7, size)
    }

    #[test]
    fn placement_map_feeds_the_concurrent_engine() {
        let bed = Arc::new(Testbed::paper());
        let pair = RuncPair::establish(Arc::clone(&bed), 0, 1).place("src", 0).place("sink", 1);
        assert_eq!(pair.nodes(), (0, 1));
        assert_eq!(DataPlane::placement(&pair, "src"), Some(0));
        assert_eq!(DataPlane::placement(&pair, "sink"), Some(1));
        assert_eq!(DataPlane::placement(&pair, "ghost"), None);
    }

    #[test]
    fn clamping_rehomes_the_map_onto_the_active_set() {
        let bed = Arc::new(Testbed::paper());
        let mut pair =
            RuncPair::establish(Arc::clone(&bed), 0, 1).place("src", 0).place("sink", 1);
        pair.clamp_placements(1);
        assert_eq!(pair.nodes(), (0, 0));
        assert_eq!(DataPlane::placement(&pair, "sink"), Some(0));
        assert_eq!(DataPlane::placement(&pair, "src"), Some(0));
    }

    #[test]
    fn intra_node_transfer_preserves_value() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 0);
        let p = payload(100_000);
        let out = pair.transfer(&p).unwrap();
        assert_eq!(&out.received_value, p.value());
        assert_eq!(&out.received_flat[..], &p.flat()[..]);
        assert!(out.latency_ns > 0);
    }

    #[test]
    fn inter_node_pays_wire_time() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 1);
        let p = payload(1_000_000);
        let out = pair.transfer(&p).unwrap();
        let wire = bed.wan().wire_ns(1_000_000);
        assert!(out.latency_ns >= wire, "{} < {wire}", out.latency_ns);
    }

    #[test]
    fn serialization_is_minor_share_at_host_speed() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 1);
        let p = payload(5_000_000);
        let out = pair.transfer(&p).unwrap();
        let share = out.serialization_ns() as f64 / out.latency_ns as f64;
        assert!(share < 0.25, "host serialization share was {share}");
    }

    #[test]
    fn both_containers_consume_cpu() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 0);
        pair.transfer(&payload(500_000)).unwrap();
        assert!(pair.sandbox_a().account().user_ns() > 0);
        assert!(pair.sandbox_a().account().kernel_ns() > 0);
        assert!(pair.sandbox_b().account().user_ns() > 0);
        assert!(pair.sandbox_b().account().kernel_ns() > 0);
    }

    #[test]
    fn structured_payloads_round_trip() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 0);
        let p = Payload::synthetic(PayloadKind::SensorRecords, 3, 10_000);
        let out = pair.transfer(&p).unwrap();
        assert_eq!(&out.received_value, p.value());
    }

    #[test]
    fn data_plane_transfer_breaks_down_phases() {
        let bed = Arc::new(Testbed::paper());
        let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 1);
        let payload = Bytes::from(vec![0xABu8; 50_000]);
        let (received, timing) =
            DataPlane::transfer_detailed(&mut pair, "a", "b", payload.clone()).unwrap();
        assert_eq!(&received[..], &payload[..]);
        let timing = timing.expect("baselines attribute every edge");
        assert!(timing.prepare_ns > 0, "serialization charged to prepare");
        assert!(timing.consume_ns > 0, "deserialization charged to consume");
        assert!(timing.transfer_ns >= bed.wan().wire_ns(50_000));
    }
}
