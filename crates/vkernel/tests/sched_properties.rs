//! Property-based tests for the scheduling primitives: timelines must be
//! monotone and work-conserving under arbitrary reservation sequences,
//! and elastic resizing must preserve surviving reservations.

use proptest::prelude::*;
use roadrunner_vkernel::sched::{SchedResources, Timeline};

proptest! {
    /// `free_at` never moves backwards under any reservation sequence:
    /// reserving work can only keep lanes busy longer.
    #[test]
    fn free_at_is_monotone_under_reservations(
        capacity in 1usize..6,
        ops in proptest::collection::vec((0u64..50_000, 0u64..10_000), 1..60),
    ) {
        let mut tl = Timeline::new("t", capacity);
        let mut last_free = tl.free_at();
        for (earliest, duration) in ops {
            let start = tl.reserve(earliest, duration);
            // The grant honors the caller's ready time.
            prop_assert!(start >= earliest || duration == 0);
            let free = tl.free_at();
            prop_assert!(
                free >= last_free,
                "free_at went backwards: {last_free} -> {free}"
            );
            last_free = free;
            // busy_until bounds free_at from above.
            prop_assert!(tl.busy_until() >= free);
        }
    }

    /// Total reserved time equals the sum of nonzero durations, and the
    /// makespan never exceeds the fully serialized schedule.
    #[test]
    fn reserved_time_accounts_every_duration(
        capacity in 1usize..5,
        ops in proptest::collection::vec((0u64..1_000, 0u64..5_000), 1..40),
    ) {
        let mut tl = Timeline::new("t", capacity);
        let mut total = 0u64;
        let mut horizon = 0u64;
        for (earliest, duration) in ops {
            tl.reserve(earliest, duration);
            total += duration;
            horizon = horizon.max(earliest) + duration;
        }
        prop_assert_eq!(tl.reserved_ns(), total);
        prop_assert!(tl.busy_until() <= horizon);
    }

    /// Growing and then shrinking a mesh preserves every surviving
    /// pair's reservations and retires the rest — total link-reserved
    /// time is invariant under resizing.
    #[test]
    fn mesh_resizing_conserves_reserved_time(
        base in 2usize..5,
        grow in 0usize..3,
        reserves in proptest::collection::vec((0usize..6, 0usize..6, 1u64..10_000), 0..30),
    ) {
        let cores: Vec<u32> = vec![2; base];
        let mut res = SchedResources::mesh(&cores);
        for _ in 0..grow {
            res.add_node(2);
        }
        let n = res.node_count();
        let mut expected = 0u64;
        for (a, b, d) in reserves {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            res.link_between(a, b).reserve(0, d);
            expected += d;
        }
        while res.node_count() > 2 {
            res.remove_last_node();
        }
        prop_assert_eq!(res.link_reserved().0, expected);
    }
}
