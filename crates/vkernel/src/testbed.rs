//! The assembled testbed: nodes plus links, wired like the paper's setup.

use std::sync::Arc;

use crate::clock::VirtualClock;
use crate::costmodel::CostModel;
use crate::net::Link;
use crate::node::Node;

/// A complete simulated deployment: nodes sharing one virtual clock and
/// cost model, inter-node links, and a loopback link per node.
///
/// [`Testbed::paper`] reproduces §6.2: two 4-core/8 GB VMs connected by a
/// 100 Mbit/s link with 1 ms RTT. Beyond the paper,
/// [`ClusterSpec`](crate::cluster::ClusterSpec) builds N-node testbeds
/// with heterogeneous nodes and a per-pair link mesh; everything below
/// the testbed (shims, baselines, engines) is topology-agnostic.
///
/// ```
/// # use roadrunner_vkernel::Testbed;
/// let bed = Testbed::paper();
/// assert_eq!(bed.nodes().len(), 2);
/// assert_eq!(bed.node(0).cores(), 4);
/// ```
#[derive(Debug)]
pub struct Testbed {
    clock: VirtualClock,
    cost: Arc<CostModel>,
    nodes: Vec<Arc<Node>>,
    wan: Arc<Link>,
    /// Per-pair links (upper-triangular order) for cluster-built
    /// testbeds; `None` means every inter-node pair shares `wan`.
    pair_links: Option<Vec<Arc<Link>>>,
    /// Scheduling lanes per pair link — how many transfers a pair
    /// carries concurrently before they queue. Mirrored into
    /// [`SchedResources::for_testbed`](crate::sched::SchedResources::for_testbed).
    link_lanes: usize,
    loopbacks: Vec<Arc<Link>>,
}

impl Testbed {
    /// Builds a testbed of `node_count` nodes with the given cost model.
    pub fn new(node_count: usize, cores: u32, ram_bytes: u64, cost: CostModel) -> Self {
        assert!(node_count >= 1, "a testbed needs at least one node");
        let clock = VirtualClock::new();
        let cost = Arc::new(cost);
        let nodes: Vec<_> = (0..node_count)
            .map(|i| {
                Node::new(format!("node-{i}"), cores, ram_bytes, clock.clone(), Arc::clone(&cost))
            })
            .collect();
        let wan = Link::new(
            "wan",
            cost.net_bandwidth_bps,
            cost.net_rtt_ns,
            cost.mtu_bytes,
        );
        let loopbacks = (0..node_count).map(|i| Link::loopback(format!("lo-{i}"))).collect();
        Self { clock, cost, nodes, wan, pair_links: None, link_lanes: 1, loopbacks }
    }

    /// Assembles a cluster testbed: heterogeneous nodes plus one link per
    /// node pair (flattened upper-triangular order). Used by
    /// [`ClusterSpec::build`](crate::cluster::ClusterSpec::build).
    pub(crate) fn from_cluster(
        specs: Vec<crate::cluster::NodeSpec>,
        cost: CostModel,
        pair_links: Vec<Arc<Link>>,
        link_lanes: usize,
    ) -> Self {
        assert!(!specs.is_empty(), "a testbed needs at least one node");
        debug_assert_eq!(pair_links.len(), specs.len() * specs.len().saturating_sub(1) / 2);
        let clock = VirtualClock::new();
        let cost = Arc::new(cost);
        let nodes: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Node::new(
                    format!("node-{i}"),
                    s.cores,
                    s.ram_bytes,
                    clock.clone(),
                    Arc::clone(&cost),
                )
            })
            .collect();
        // `wan()` keeps meaning "the first inter-node link" so existing
        // telemetry helpers stay usable on clusters; single-node clusters
        // get a default-shaped placeholder that nothing routes over.
        let wan = pair_links.first().cloned().unwrap_or_else(|| {
            Link::new("wan", cost.net_bandwidth_bps, cost.net_rtt_ns, cost.mtu_bytes)
        });
        let loopbacks = (0..specs.len()).map(|i| Link::loopback(format!("lo-{i}"))).collect();
        Self { clock, cost, nodes, wan, pair_links: Some(pair_links), link_lanes, loopbacks }
    }

    /// Whether this testbed carries one link per node pair (cluster
    /// layout) rather than a single shared WAN.
    pub fn has_pair_links(&self) -> bool {
        self.pair_links.is_some()
    }

    /// Scheduling lanes per pair link (1 unless the cluster spec raised
    /// it with [`ClusterSpec::link_lanes`](crate::cluster::ClusterSpec::link_lanes)).
    pub fn link_lanes(&self) -> usize {
        self.link_lanes
    }

    /// The paper's two-node edge–cloud testbed (§6.2).
    pub fn paper() -> Self {
        Self::new(2, 4, 8 << 30, CostModel::paper_testbed())
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// Node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }

    /// The shared WAN link between any two distinct nodes.
    pub fn wan(&self) -> &Arc<Link> {
        &self.wan
    }

    /// The loopback link of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn loopback(&self, i: usize) -> &Arc<Link> {
        &self.loopbacks[i]
    }

    /// Link to use between node `a` and node `b` (loopback when equal;
    /// the pair's own link on cluster testbeds, the shared WAN
    /// otherwise).
    pub fn link_between(&self, a: usize, b: usize) -> &Arc<Link> {
        if a == b {
            return self.loopback(a);
        }
        match &self.pair_links {
            Some(links) => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                assert!(hi < self.nodes.len(), "link_between({a}, {b}) is out of range");
                &links[crate::sched::pair_index(self.nodes.len(), lo, hi)]
            }
            None => self.wan(),
        }
    }

    /// Resets link reservations and every sandbox account — called between
    /// benchmark repetitions.
    pub fn reset_telemetry(&self) {
        self.wan.reset();
        for link in self.pair_links.iter().flatten() {
            link.reset();
        }
        for lo in &self.loopbacks {
            lo.reset();
        }
        for node in &self.nodes {
            for account in node.accounts() {
                account.reset();
            }
        }
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_6_2() {
        let bed = Testbed::paper();
        assert_eq!(bed.nodes().len(), 2);
        assert_eq!(bed.node(0).cores(), 4);
        assert_eq!(bed.node(0).ram_bytes(), 8 << 30);
        // Effective bandwidth implied by the paper's own Fig. 8a series
        // (see CostModel::net_bandwidth_bps docs).
        assert_eq!(bed.wan().bandwidth_bps(), 700_000_000);
        assert_eq!(bed.wan().rtt_ns(), 1_000_000);
    }

    #[test]
    fn link_between_picks_loopback_for_same_node() {
        let bed = Testbed::paper();
        assert_eq!(bed.link_between(0, 0).name(), "lo-0");
        assert_eq!(bed.link_between(0, 1).name(), "wan");
        assert_eq!(bed.link_between(1, 0).name(), "wan");
    }

    #[test]
    fn nodes_share_one_clock() {
        let bed = Testbed::paper();
        bed.node(0).clock().advance(5);
        assert_eq!(bed.node(1).clock().now(), 5);
    }

    #[test]
    fn reset_telemetry_clears_accounts_and_links() {
        let bed = Testbed::paper();
        let sb = bed.node(0).sandbox("fn");
        sb.charge_user(100);
        bed.wan().reserve(0, 1 << 20);
        bed.reset_telemetry();
        assert_eq!(sb.account().total_cpu_ns(), 0);
        let done = bed.wan().reserve(0, 0);
        assert_eq!(done, bed.wan().propagation_ns());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_testbed_panics() {
        Testbed::new(0, 4, 1, CostModel::paper_testbed());
    }
}
