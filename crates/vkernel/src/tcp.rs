//! TCP-like byte streams across links.
//!
//! A [`TcpConn`] carries bytes between two sandboxes over a [`Link`]
//! (inter-node WAN or host loopback). Segments are stamped with their
//! arrival time from the link's bandwidth/RTT model; receivers *wait*
//! (advance the clock without consuming CPU) until data lands. Sends pay a
//! user→kernel copy and receives a kernel→user copy plus the wakeup
//! context switch — the standard path the paper's baselines ride.
//!
//! A zero-copy lane ([`TcpEndpoint::send_spliced`] / [`TcpEndpoint::recv_spliced`])
//! models `splice` between a pipe and the socket: page references move and
//! only page-map costs are charged. Roadrunner's virtual data hose uses
//! this lane.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::VkError;
use crate::net::Link;
use crate::node::Sandbox;
use crate::Nanos;

#[derive(Debug)]
struct TimedSeg {
    data: Bytes,
    arrives_at: Nanos,
    /// Whether the segment was placed with splice (no user-space copy on
    /// the sending side; the receiving side may still choose either lane).
    spliced: bool,
}

#[derive(Debug, Default)]
struct Direction {
    queue: VecDeque<TimedSeg>,
    closed: bool,
}

#[derive(Debug)]
struct Shared {
    dirs: [Direction; 2],
    link: Arc<Link>,
}

/// One endpoint of an established TCP-like connection.
#[derive(Debug)]
pub struct TcpEndpoint {
    shared: Arc<Mutex<Shared>>,
    tx: usize,
}

/// Factory for established TCP-like connections.
#[derive(Debug)]
pub struct TcpConn;

impl TcpConn {
    /// Establishes a connection over `link`, charging the connecting
    /// sandbox one RTT of setup latency (SYN/SYN-ACK) plus two syscalls.
    pub fn establish(client: &Sandbox, link: Arc<Link>) -> (TcpEndpoint, TcpEndpoint) {
        let cost = client.cost();
        client.charge_kernel(2 * cost.syscall_ns);
        client.clock().advance(link.rtt_ns());
        let shared = Arc::new(Mutex::new(Shared {
            dirs: [Direction::default(), Direction::default()],
            link,
        }));
        (
            TcpEndpoint { shared: Arc::clone(&shared), tx: 0 },
            TcpEndpoint { shared, tx: 1 },
        )
    }
}

impl TcpEndpoint {
    /// Sends `data` the ordinary way: syscalls per chunk plus a
    /// user→kernel copy; transmission is scheduled on the link.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if this direction was shut down.
    pub fn send(&self, caller: &Sandbox, data: &[u8]) -> Result<usize, VkError> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut shared = self.shared.lock();
        if shared.dirs[self.tx].closed {
            return Err(VkError::Closed);
        }
        let cost = caller.cost();
        let chunk = cost.io_chunk_bytes.max(1);
        let syscalls = data.len().div_ceil(chunk) as u64;
        caller.charge_kernel(syscalls * cost.syscall_ns + cost.memcpy_ns(data.len()));
        let arrives_at = shared.link.reserve(caller.clock().now(), data.len());
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + chunk).min(data.len());
            let mut seg = bytes::BytesMut::with_capacity(end - offset);
            seg.extend_from_slice(&data[offset..end]);
            shared.dirs[self.tx].queue.push_back(TimedSeg {
                data: seg.freeze(),
                arrives_at,
                spliced: false,
            });
            offset = end;
        }
        Ok(data.len())
    }

    /// Zero-copy send: `splice` moves page references from a pipe into the
    /// socket; only page-map cost is charged, no byte copy.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if this direction was shut down.
    pub fn send_spliced(&self, caller: &Sandbox, data: Bytes) -> Result<usize, VkError> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut shared = self.shared.lock();
        if shared.dirs[self.tx].closed {
            return Err(VkError::Closed);
        }
        let cost = caller.cost();
        caller.charge_kernel(cost.syscall_ns + cost.page_map_ns_for(data.len()));
        let arrives_at = shared.link.reserve(caller.clock().now(), data.len());
        let n = data.len();
        shared.dirs[self.tx].queue.push_back(TimedSeg { data, arrives_at, spliced: true });
        Ok(n)
    }

    /// Receives the next segment, blocking (in virtual time) until it has
    /// arrived, then paying the kernel→user copy and wakeup switch.
    /// Returns `Ok(None)` when the peer closed and the stream is drained.
    pub fn recv(&self, caller: &Sandbox) -> Result<Option<Bytes>, VkError> {
        let mut shared = self.shared.lock();
        let dir = &mut shared.dirs[1 - self.tx];
        let cost = caller.cost();
        match dir.queue.pop_front() {
            Some(seg) => {
                caller.clock().advance_to(seg.arrives_at);
                caller.charge_kernel(
                    cost.syscall_ns + cost.ctx_switch_ns + cost.memcpy_ns(seg.data.len()),
                );
                let mut out = bytes::BytesMut::with_capacity(seg.data.len());
                out.extend_from_slice(&seg.data);
                Ok(Some(out.freeze()))
            }
            None if dir.closed => Ok(None),
            None => {
                caller.charge_kernel(cost.syscall_ns);
                Ok(Some(Bytes::new()))
            }
        }
    }

    /// Zero-copy receive: `splice` from the socket towards a pipe. Page
    /// references move; no byte copy, no user wakeup.
    pub fn recv_spliced(&self, caller: &Sandbox) -> Result<Option<Bytes>, VkError> {
        let mut shared = self.shared.lock();
        let dir = &mut shared.dirs[1 - self.tx];
        let cost = caller.cost();
        match dir.queue.pop_front() {
            Some(seg) => {
                caller.clock().advance_to(seg.arrives_at);
                caller.charge_kernel(cost.syscall_ns + cost.page_map_ns_for(seg.data.len()));
                Ok(Some(seg.data))
            }
            None if dir.closed => Ok(None),
            None => {
                caller.charge_kernel(cost.syscall_ns);
                Ok(Some(Bytes::new()))
            }
        }
    }

    /// Whether the next pending segment was sent through the splice lane.
    /// Diagnostic used by tests.
    pub fn next_is_spliced(&self) -> Option<bool> {
        let shared = self.shared.lock();
        shared.dirs[1 - self.tx].queue.front().map(|s| s.spliced)
    }

    /// Shuts down this endpoint's sending direction.
    pub fn close(&self) {
        let mut shared = self.shared.lock();
        shared.dirs[self.tx].closed = true;
    }

    /// Duplicates this endpoint handle (like `dup(2)`): both handles
    /// refer to the same underlying connection end.
    pub fn clone_handle(&self) -> TcpEndpoint {
        TcpEndpoint { shared: Arc::clone(&self.shared), tx: self.tx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::costmodel::CostModel;

    fn pair(link: Arc<Link>) -> (TcpEndpoint, TcpEndpoint, Sandbox, Sandbox) {
        let clock = VirtualClock::new();
        let cost = Arc::new(CostModel::paper_testbed());
        let a = Sandbox::detached("a", clock.clone(), Arc::clone(&cost));
        let b = Sandbox::detached("b", clock, cost);
        let (ea, eb) = TcpConn::establish(&a, link);
        (ea, eb, a, b)
    }

    fn drain(ep: &TcpEndpoint, sb: &Sandbox) -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            match ep.recv(sb).unwrap() {
                None => return out,
                Some(seg) if seg.is_empty() => return out,
                Some(seg) => out.extend_from_slice(&seg),
            }
        }
    }

    #[test]
    fn establish_costs_one_rtt() {
        let clock = VirtualClock::new();
        let cost = Arc::new(CostModel::paper_testbed());
        let a = Sandbox::detached("a", clock.clone(), cost);
        let link = Link::paper_wan("wan");
        let _conn = TcpConn::establish(&a, link.clone());
        assert!(clock.now() >= link.rtt_ns());
    }

    #[test]
    fn bytes_round_trip_across_wan() {
        let (ea, eb, sa, sb) = pair(Link::paper_wan("wan"));
        ea.send(&sa, b"over the wire").unwrap();
        ea.close();
        assert_eq!(drain(&eb, &sb), b"over the wire");
    }

    #[test]
    fn receiver_waits_for_wire_time() {
        let (ea, eb, sa, sb) = pair(Link::paper_wan("wan"));
        let start = sa.clock().now();
        let payload = vec![0u8; 1_000_000];
        ea.send(&sa, &payload).unwrap();
        ea.close();
        drain(&eb, &sb);
        let elapsed = sb.clock().now() - start;
        let wire = Link::paper_wan("ref").wire_ns(1_000_000);
        assert!(elapsed >= wire, "elapsed {elapsed} < wire {wire}");
    }

    #[test]
    fn loopback_is_fast() {
        let (ea, eb, sa, sb) = pair(Link::loopback("lo"));
        let start = sa.clock().now();
        ea.send(&sa, &vec![0u8; 1_000_000]).unwrap();
        ea.close();
        drain(&eb, &sb);
        let elapsed = sb.clock().now() - start;
        assert!(elapsed < 3_000_000, "loopback took {elapsed} ns");
    }

    #[test]
    fn spliced_lane_preserves_pointer_identity() {
        let (ea, eb, sa, sb) = pair(Link::loopback("lo"));
        let data = Bytes::from(vec![7u8; 8192]);
        let ptr = data.as_ptr();
        ea.send_spliced(&sa, data).unwrap();
        assert_eq!(eb.next_is_spliced(), Some(true));
        let got = eb.recv_spliced(&sb).unwrap().unwrap();
        assert_eq!(got.as_ptr(), ptr);
    }

    #[test]
    fn send_after_close_fails() {
        let (ea, _eb, sa, _sb) = pair(Link::loopback("lo"));
        ea.close();
        assert_eq!(ea.send(&sa, b"x").unwrap_err(), VkError::Closed);
        assert_eq!(
            ea.send_spliced(&sa, Bytes::from_static(b"x")).unwrap_err(),
            VkError::Closed
        );
    }

    #[test]
    fn empty_send_is_noop() {
        let (ea, _eb, sa, _sb) = pair(Link::loopback("lo"));
        let before = sa.kernel_ns();
        assert_eq!(ea.send(&sa, b"").unwrap(), 0);
        assert_eq!(sa.kernel_ns(), before);
    }

    #[test]
    fn spliced_send_charges_less_than_copy_send() {
        let link = Link::loopback("lo");
        let clock = VirtualClock::new();
        let cost = Arc::new(CostModel::paper_testbed());
        let copy_sb = Sandbox::detached("c", clock.clone(), Arc::clone(&cost));
        let gift_sb = Sandbox::detached("g", clock, cost);
        let (ec, _kc) = TcpConn::establish(&copy_sb, link.clone());
        let (eg, _kg) = TcpConn::establish(&gift_sb, link);
        let copy_before = copy_sb.kernel_ns();
        let gift_before = gift_sb.kernel_ns();
        let payload = vec![0u8; 1 << 20];
        ec.send(&copy_sb, &payload).unwrap();
        eg.send_spliced(&gift_sb, Bytes::from(payload)).unwrap();
        assert!(gift_sb.kernel_ns() - gift_before < copy_sb.kernel_ns() - copy_before);
    }
}
