//! cgroup-style per-sandbox resource accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Nanos;

/// Per-sandbox resource telemetry, mirroring what the paper reads from the
/// cgroup of each container: user-space CPU time, kernel-space CPU time,
/// and memory (current and peak).
///
/// Handles are cheaply cloneable and thread-safe; all charging methods take
/// `&self`.
///
/// ```
/// # use roadrunner_vkernel::ResourceAccount;
/// let acct = ResourceAccount::new("fn-a");
/// acct.charge_user(500);
/// acct.charge_kernel(200);
/// acct.alloc(4096);
/// assert_eq!(acct.total_cpu_ns(), 700);
/// assert_eq!(acct.ram_peak(), 4096);
/// ```
#[derive(Debug, Default)]
pub struct ResourceAccount {
    name: String,
    user_ns: AtomicU64,
    kernel_ns: AtomicU64,
    ram_current: AtomicU64,
    ram_peak: AtomicU64,
}

impl ResourceAccount {
    /// Creates a fresh account labelled `name` (the sandbox/function name).
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Arc::new(Self { name: name.into(), ..Self::default() })
    }

    /// Sandbox name this account belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Charges `ns` of user-space CPU time.
    pub fn charge_user(&self, ns: Nanos) {
        self.user_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Charges `ns` of kernel-space CPU time.
    pub fn charge_kernel(&self, ns: Nanos) {
        self.kernel_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an allocation of `bytes`, updating the peak watermark.
    pub fn alloc(&self, bytes: u64) {
        let new = self.ram_current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.ram_peak.fetch_max(new, Ordering::Relaxed);
    }

    /// Records a release of `bytes`. Saturates at zero rather than
    /// panicking so accounting bugs degrade to warnings in reports instead
    /// of aborting simulations.
    pub fn free(&self, bytes: u64) {
        let mut current = self.ram_current.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.ram_current.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Accumulated user-space CPU time.
    pub fn user_ns(&self) -> Nanos {
        self.user_ns.load(Ordering::Relaxed)
    }

    /// Accumulated kernel-space CPU time.
    pub fn kernel_ns(&self) -> Nanos {
        self.kernel_ns.load(Ordering::Relaxed)
    }

    /// Total CPU time (user + kernel).
    pub fn total_cpu_ns(&self) -> Nanos {
        self.user_ns() + self.kernel_ns()
    }

    /// Currently allocated memory in bytes.
    pub fn ram_current(&self) -> u64 {
        self.ram_current.load(Ordering::Relaxed)
    }

    /// Peak allocated memory in bytes.
    pub fn ram_peak(&self) -> u64 {
        self.ram_peak.load(Ordering::Relaxed)
    }

    /// Resets CPU counters and the peak watermark (current RAM is kept).
    /// Used between benchmark repetitions.
    pub fn reset(&self) {
        self.user_ns.store(0, Ordering::Relaxed);
        self.kernel_ns.store(0, Ordering::Relaxed);
        let current = self.ram_current.load(Ordering::Relaxed);
        self.ram_peak.store(current, Ordering::Relaxed);
    }

    /// CPU utilisation (0.0–1.0 per core) over a window of `window_ns`,
    /// as the paper's "% CPU usage" panels report it.
    pub fn cpu_utilisation(&self, window_ns: Nanos) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.total_cpu_ns() as f64 / window_ns as f64
    }
}

/// A snapshot of an account's counters, convenient for diffing before and
/// after an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccountSnapshot {
    /// User-space CPU nanoseconds at snapshot time.
    pub user_ns: Nanos,
    /// Kernel-space CPU nanoseconds at snapshot time.
    pub kernel_ns: Nanos,
    /// Current RAM in bytes at snapshot time.
    pub ram_current: u64,
    /// Peak RAM in bytes at snapshot time.
    pub ram_peak: u64,
}

impl AccountSnapshot {
    /// Takes a snapshot of `account`.
    pub fn of(account: &ResourceAccount) -> Self {
        Self {
            user_ns: account.user_ns(),
            kernel_ns: account.kernel_ns(),
            ram_current: account.ram_current(),
            ram_peak: account.ram_peak(),
        }
    }

    /// Counter deltas from `earlier` to `self` (peak is reported as the
    /// later absolute peak, since peaks do not subtract meaningfully).
    pub fn since(&self, earlier: &AccountSnapshot) -> AccountSnapshot {
        AccountSnapshot {
            user_ns: self.user_ns.saturating_sub(earlier.user_ns),
            kernel_ns: self.kernel_ns.saturating_sub(earlier.kernel_ns),
            ram_current: self.ram_current,
            ram_peak: self.ram_peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_independently() {
        let a = ResourceAccount::new("x");
        a.charge_user(10);
        a.charge_kernel(20);
        a.charge_user(5);
        assert_eq!(a.user_ns(), 15);
        assert_eq!(a.kernel_ns(), 20);
        assert_eq!(a.total_cpu_ns(), 35);
    }

    #[test]
    fn ram_peak_tracks_high_water() {
        let a = ResourceAccount::new("x");
        a.alloc(100);
        a.alloc(50);
        a.free(120);
        a.alloc(10);
        assert_eq!(a.ram_current(), 40);
        assert_eq!(a.ram_peak(), 150);
    }

    #[test]
    fn free_saturates_at_zero() {
        let a = ResourceAccount::new("x");
        a.alloc(10);
        a.free(100);
        assert_eq!(a.ram_current(), 0);
    }

    #[test]
    fn reset_clears_cpu_keeps_ram() {
        let a = ResourceAccount::new("x");
        a.charge_user(5);
        a.alloc(64);
        a.reset();
        assert_eq!(a.total_cpu_ns(), 0);
        assert_eq!(a.ram_current(), 64);
        assert_eq!(a.ram_peak(), 64);
    }

    #[test]
    fn utilisation_is_cpu_over_window() {
        let a = ResourceAccount::new("x");
        a.charge_user(500);
        a.charge_kernel(500);
        assert!((a.cpu_utilisation(10_000) - 0.1).abs() < 1e-9);
        assert_eq!(a.cpu_utilisation(0), 0.0);
    }

    #[test]
    fn snapshot_diff() {
        let a = ResourceAccount::new("x");
        a.charge_user(100);
        let before = AccountSnapshot::of(&a);
        a.charge_user(50);
        a.charge_kernel(25);
        let after = AccountSnapshot::of(&a);
        let delta = after.since(&before);
        assert_eq!(delta.user_ns, 50);
        assert_eq!(delta.kernel_ns, 25);
    }

    #[test]
    fn shared_handles_see_same_counters() {
        let a = ResourceAccount::new("x");
        let b = Arc::clone(&a);
        a.charge_user(1);
        b.charge_user(2);
        assert_eq!(a.user_ns(), 3);
    }
}
