//! Chunk-level pipeline timing engine.
//!
//! A data transfer is a chain of *stages* (serialize → copy to kernel →
//! wire → copy to user → deserialize …). Whether stages overlap decides
//! end-to-end latency:
//!
//! * RunC baselines and Roadrunner shims stream chunk-by-chunk (tokio-style
//!   async I/O), so stage `k` of chunk `i` runs concurrently with stage
//!   `k-1` of chunk `i+1` — latency approaches the *bottleneck* stage.
//! * The WasmEdge-like guest is single-threaded and synchronous (paper §1:
//!   "single-threaded execution … forces the processing of complex tasks
//!   to be performed sequentially"), so stage totals *add up*.
//!
//! This distinction is exactly what produces the paper's inter-node gap
//! (Fig. 6a): everyone pays ~8 s of wire time for 100 MB at 100 Mbit/s,
//! but WasmEdge adds its serialization time on top while Roadrunner and
//! RunC hide processing behind the wire.
//!
//! The engine also models fan-out: `n` identical transfers sharing `c`
//! cores and one link (Fig. 9/Fig. 10).

use std::sync::Arc;

use crate::account::ResourceAccount;
use crate::Nanos;

/// Which space a stage's busy time is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// User-space CPU (serialization, VM I/O, HTTP framing).
    User,
    /// Kernel-space CPU (copies across the boundary, syscalls, page maps).
    Kernel,
    /// The wire: occupies the link, consumes no CPU.
    Wire,
}

/// One stage of a transfer pipeline.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Human-readable label (appears in reports, e.g. `serialize`).
    pub label: String,
    /// Account charged for this stage's busy time (`None` for the wire).
    pub account: Option<Arc<ResourceAccount>>,
    /// Whether busy time is user CPU, kernel CPU, or wire occupancy.
    pub space: Space,
    /// Fixed cost per chunk (syscall, context switch, host-call boundary).
    pub fixed_per_chunk_ns: Nanos,
    /// Throughput-dependent cost (ns per payload byte).
    pub ns_per_byte: f64,
    /// One-time lead-in latency before the stage's first chunk
    /// (e.g. link propagation delay, HTTP header parse). Not CPU time.
    pub lead_in_ns: Nanos,
}

impl Stage {
    /// Convenience constructor; lead-in defaults to zero.
    pub fn new(
        label: impl Into<String>,
        account: Option<Arc<ResourceAccount>>,
        space: Space,
        fixed_per_chunk_ns: Nanos,
        ns_per_byte: f64,
    ) -> Self {
        Self {
            label: label.into(),
            account,
            space,
            fixed_per_chunk_ns,
            ns_per_byte,
            lead_in_ns: 0,
        }
    }

    /// Sets the one-time lead-in latency.
    pub fn with_lead_in(mut self, lead_in_ns: Nanos) -> Self {
        self.lead_in_ns = lead_in_ns;
        self
    }

    /// Busy time this stage spends on a chunk of `bytes`.
    pub fn chunk_cost(&self, bytes: usize) -> Nanos {
        self.fixed_per_chunk_ns + (bytes as f64 * self.ns_per_byte).round() as Nanos
    }

    /// Total busy time over a transfer of `total_bytes` in `chunks`
    /// chunks.
    pub fn total_cost(&self, total_bytes: usize, chunks: usize) -> Nanos {
        self.fixed_per_chunk_ns * chunks as Nanos
            + (total_bytes as f64 * self.ns_per_byte).round() as Nanos
    }
}

/// Whether the stages of a transfer overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// Chunk-level streaming: stages run concurrently (RunC, Roadrunner).
    Pipelined,
    /// Strictly sequential stages (single-threaded WasmEdge guest).
    Sequential,
}

/// Result of running a transfer through the engine.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// End-to-end latency in virtual nanoseconds.
    pub latency_ns: Nanos,
    /// Per-stage busy time, in stage order.
    pub stage_busy_ns: Vec<(String, Nanos)>,
}

impl TransferOutcome {
    /// Busy time of the stage labelled `label` (sums duplicates).
    pub fn busy_of(&self, label: &str) -> Nanos {
        self.stage_busy_ns
            .iter()
            .filter(|(l, _)| l == label)
            .map(|(_, ns)| ns)
            .sum()
    }
}

/// Runs a transfer of `total_bytes` through `stages`, split into chunks of
/// `chunk_bytes`, and charges every stage's busy time to its account.
///
/// Latency is computed from the chunk-level schedule; accounts are charged
/// "off clock" (the caller decides how to advance the shared clock, since
/// concurrent transfers overlap in time).
///
/// # Panics
///
/// Panics if `stages` is empty or `chunk_bytes` is zero.
pub fn run(
    stages: &[Stage],
    total_bytes: usize,
    chunk_bytes: usize,
    overlap: Overlap,
) -> TransferOutcome {
    assert!(!stages.is_empty(), "a transfer needs at least one stage");
    assert!(chunk_bytes > 0, "chunk size must be positive");

    let full_chunks = total_bytes / chunk_bytes;
    let tail = total_bytes % chunk_bytes;
    let mut chunk_sizes: Vec<usize> = vec![chunk_bytes; full_chunks];
    if tail > 0 || total_bytes == 0 {
        chunk_sizes.push(tail);
    }
    let n_chunks = chunk_sizes.len();

    let latency_ns = match overlap {
        Overlap::Pipelined => {
            // stage_free[s] = when stage s finishes its latest chunk.
            let mut stage_free: Vec<Nanos> = stages.iter().map(|s| s.lead_in_ns).collect();
            let mut chunk_done: Nanos = 0;
            for &size in &chunk_sizes {
                let mut t = 0; // chunk enters the pipeline at t=0 availability
                for (s, stage) in stages.iter().enumerate() {
                    let start = t.max(stage_free[s]);
                    let done = start + stage.chunk_cost(size);
                    stage_free[s] = done;
                    t = done;
                }
                chunk_done = t;
            }
            chunk_done
        }
        Overlap::Sequential => {
            let mut t: Nanos = 0;
            for stage in stages {
                t += stage.lead_in_ns + stage.total_cost(total_bytes, n_chunks);
            }
            t
        }
    };

    let mut stage_busy_ns = Vec::with_capacity(stages.len());
    for stage in stages {
        let busy = stage.total_cost(total_bytes, n_chunks);
        if let Some(account) = &stage.account {
            match stage.space {
                Space::User => account.charge_user(busy),
                Space::Kernel => account.charge_kernel(busy),
                Space::Wire => {}
            }
        }
        stage_busy_ns.push((stage.label.clone(), busy));
    }

    TransferOutcome { latency_ns, stage_busy_ns }
}

/// Outcome of a fan-out run: `n` identical transfers starting together.
#[derive(Debug, Clone)]
pub struct FanoutOutcome {
    /// Time until *all* branches complete.
    pub makespan_ns: Nanos,
    /// Latency of a single branch run in isolation (lower bound).
    pub single_ns: Nanos,
}

/// Models `n` identical transfers launched simultaneously, sharing
/// `cores` CPUs and (for wire stages) one link.
///
/// Each CPU stage can run on at most `cores` branches at once; the wire is
/// a single shared resource. The makespan is bounded below by the
/// single-branch latency (pipeline fill) and by every stage's aggregate
/// demand divided by its service capacity — the standard bound for a
/// pipelined system under saturation.
///
/// Accounts are charged for all `n` branches.
pub fn run_fanout(
    stages: &[Stage],
    total_bytes: usize,
    chunk_bytes: usize,
    overlap: Overlap,
    n: usize,
    cores: u32,
) -> FanoutOutcome {
    assert!(n > 0, "fan-out degree must be positive");
    let single = run(stages, total_bytes, chunk_bytes, overlap);
    // `run` charged one branch; charge the remaining n-1.
    let n_chunks = chunk_sizes_len(total_bytes, chunk_bytes);
    for stage in stages {
        if let Some(account) = &stage.account {
            let busy = stage.total_cost(total_bytes, n_chunks) * (n as Nanos - 1);
            match stage.space {
                Space::User => account.charge_user(busy),
                Space::Kernel => account.charge_kernel(busy),
                Space::Wire => {}
            }
        }
    }

    let mut makespan = single.latency_ns;
    for stage in stages {
        let busy = stage.total_cost(total_bytes, n_chunks);
        let capacity = match stage.space {
            Space::User | Space::Kernel => cores.max(1) as Nanos,
            Space::Wire => 1,
        };
        let aggregate = busy.saturating_mul(n as Nanos) / capacity + stage.lead_in_ns;
        makespan = makespan.max(aggregate);
    }
    // Sequential (single-threaded) branches additionally serialize their
    // own stages; under contention the CPU-bound portion of all branches
    // shares the cores.
    if overlap == Overlap::Sequential {
        let cpu_total: Nanos = stages
            .iter()
            .filter(|s| s.space != Space::Wire)
            .map(|s| s.total_cost(total_bytes, n_chunks))
            .sum();
        makespan = makespan.max(cpu_total.saturating_mul(n as Nanos) / cores.max(1) as Nanos);
    }

    FanoutOutcome { makespan_ns: makespan, single_ns: single.latency_ns }
}

fn chunk_sizes_len(total_bytes: usize, chunk_bytes: usize) -> usize {
    let full = total_bytes / chunk_bytes;
    if !total_bytes.is_multiple_of(chunk_bytes) || total_bytes == 0 {
        full + 1
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(name: &str) -> Arc<ResourceAccount> {
        ResourceAccount::new(name)
    }

    fn simple_stage(label: &str, ns_per_byte: f64) -> Stage {
        Stage::new(label, None, Space::User, 0, ns_per_byte)
    }

    #[test]
    fn pipelined_latency_approaches_bottleneck() {
        let stages =
            vec![simple_stage("fast", 0.1), simple_stage("slow", 1.0), simple_stage("fast2", 0.1)];
        let total = 10 << 20;
        let out = run(&stages, total, 64 << 10, Overlap::Pipelined);
        let bottleneck = (total as f64 * 1.0) as Nanos;
        let sum: Nanos = (total as f64 * 1.2) as Nanos;
        assert!(out.latency_ns >= bottleneck);
        assert!(out.latency_ns < sum, "pipelining should beat the stage sum");
    }

    #[test]
    fn sequential_latency_is_stage_sum() {
        let stages = vec![simple_stage("a", 0.5), simple_stage("b", 0.5)];
        let total = 1 << 20;
        let out = run(&stages, total, 64 << 10, Overlap::Sequential);
        assert_eq!(out.latency_ns, (total as f64 * 1.0).round() as Nanos);
    }

    #[test]
    fn pipelined_never_slower_than_sequential() {
        for chunk in [4096usize, 65536, 1 << 20] {
            let stages = vec![
                Stage::new("s1", None, Space::User, 500, 0.7),
                Stage::new("s2", None, Space::Kernel, 300, 0.3),
                Stage::new("wire", None, Space::Wire, 0, 80.0).with_lead_in(500_000),
            ];
            let total = 3 << 20;
            let p = run(&stages, total, chunk, Overlap::Pipelined);
            let s = run(&stages, total, chunk, Overlap::Sequential);
            assert!(p.latency_ns <= s.latency_ns, "chunk {chunk}");
        }
    }

    #[test]
    fn lead_in_delays_first_chunk() {
        let stages = vec![simple_stage("a", 0.0).with_lead_in(1_000_000)];
        let out = run(&stages, 10, 10, Overlap::Pipelined);
        assert!(out.latency_ns >= 1_000_000);
    }

    #[test]
    fn accounts_are_charged_by_space() {
        let user = acct("u");
        let kernel = acct("k");
        let stages = vec![
            Stage::new("u-stage", Some(Arc::clone(&user)), Space::User, 0, 1.0),
            Stage::new("k-stage", Some(Arc::clone(&kernel)), Space::Kernel, 0, 2.0),
            Stage::new("wire", Some(Arc::clone(&user)), Space::Wire, 0, 5.0),
        ];
        run(&stages, 1000, 100, Overlap::Pipelined);
        assert_eq!(user.user_ns(), 1000);
        assert_eq!(user.kernel_ns(), 0);
        assert_eq!(kernel.kernel_ns(), 2000);
        // Wire charges nobody even when an account is attached.
        assert_eq!(user.total_cpu_ns(), 1000);
    }

    #[test]
    fn zero_bytes_still_pays_fixed_costs() {
        let stages = vec![Stage::new("a", None, Space::User, 700, 1.0)];
        let out = run(&stages, 0, 4096, Overlap::Pipelined);
        assert_eq!(out.latency_ns, 700);
    }

    #[test]
    fn outcome_busy_lookup() {
        let stages = vec![simple_stage("x", 1.0), simple_stage("y", 2.0)];
        let out = run(&stages, 100, 100, Overlap::Pipelined);
        assert_eq!(out.busy_of("x"), 100);
        assert_eq!(out.busy_of("y"), 200);
        assert_eq!(out.busy_of("missing"), 0);
    }

    #[test]
    fn latency_monotonic_in_bytes() {
        let stages = vec![
            Stage::new("cpu", None, Space::User, 200, 0.9),
            Stage::new("wire", None, Space::Wire, 0, 80.0).with_lead_in(500_000),
        ];
        let mut last = 0;
        for mb in [1usize, 2, 4, 8, 16] {
            let out = run(&stages, mb << 20, 64 << 10, Overlap::Pipelined);
            assert!(out.latency_ns > last, "size {mb} MiB");
            last = out.latency_ns;
        }
    }

    #[test]
    fn fanout_of_one_equals_single() {
        let stages = vec![simple_stage("a", 1.0)];
        let out = run_fanout(&stages, 1000, 100, Overlap::Pipelined, 1, 4);
        assert_eq!(out.makespan_ns, out.single_ns);
    }

    #[test]
    fn fanout_flat_until_cores_exhausted() {
        let stages = vec![Stage::new("cpu", None, Space::User, 0, 1.0)];
        let at =
            |n| run_fanout(&stages, 1_000_000, 65_536, Overlap::Pipelined, n, 4).makespan_ns;
        // With 4 cores, 2 branches fit; 16 do not.
        assert_eq!(at(2), at(1));
        assert!(at(16) > at(4));
        assert!(at(32) >= at(16) * 15 / 10, "beyond cores growth should be ~linear");
    }

    #[test]
    fn fanout_wire_is_single_capacity() {
        let stages = vec![Stage::new("wire", None, Space::Wire, 0, 10.0)];
        let one = run_fanout(&stages, 1_000_000, 65_536, Overlap::Pipelined, 1, 4).makespan_ns;
        let four = run_fanout(&stages, 1_000_000, 65_536, Overlap::Pipelined, 4, 4).makespan_ns;
        assert!(four >= one * 4, "wire must not parallelize across cores");
    }

    #[test]
    fn fanout_charges_all_branches() {
        let a = acct("u");
        let stages = vec![Stage::new("cpu", Some(Arc::clone(&a)), Space::User, 0, 1.0)];
        run_fanout(&stages, 1000, 1000, Overlap::Pipelined, 5, 4);
        assert_eq!(a.user_ns(), 5000);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_list_panics() {
        run(&[], 10, 10, Overlap::Pipelined);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        run(&[simple_stage("a", 1.0)], 10, 0, Overlap::Pipelined);
    }

    #[test]
    #[should_panic(expected = "fan-out degree")]
    fn zero_fanout_panics() {
        run_fanout(&[simple_stage("a", 1.0)], 10, 10, Overlap::Pipelined, 0, 4);
    }
}
