//! Unix-domain stream sockets — the kernel-space IPC mechanism.
//!
//! The paper's kernel-space transfer (§4.2) moves raw bytes between two
//! co-located shims over a Unix socket: one user→kernel copy on `send`,
//! one kernel→user copy on `recv`, plus a context switch when the receiver
//! wakes. No serialization is involved — that is Roadrunner's saving — but
//! the copies and switches remain, which is why kernel-space mode sits
//! between user-space mode and the network path in every figure.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::VkError;
use crate::node::Sandbox;

#[derive(Debug, Default)]
struct Direction {
    queue: VecDeque<Bytes>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Shared {
    /// Direction 0: endpoint A → endpoint B. Direction 1: B → A.
    dirs: [Direction; 2],
}

/// One endpoint of a connected Unix-domain socket pair.
///
/// Created in pairs by [`UnixConn::pair`]; endpoints are `Send` and can be
/// handed to different shims.
#[derive(Debug)]
pub struct UnixEndpoint {
    shared: Arc<Mutex<Shared>>,
    /// Index of the direction this endpoint *sends* on.
    tx: usize,
}

/// Factory for connected Unix-domain socket pairs.
#[derive(Debug)]
pub struct UnixConn;

impl UnixConn {
    /// Creates a connected pair, like `socketpair(2)`.
    ///
    /// ```
    /// # use roadrunner_vkernel::unix::UnixConn;
    /// let (a, b) = UnixConn::pair();
    /// # let _ = (a, b);
    /// ```
    pub fn pair() -> (UnixEndpoint, UnixEndpoint) {
        let shared = Arc::new(Mutex::new(Shared::default()));
        (
            UnixEndpoint { shared: Arc::clone(&shared), tx: 0 },
            UnixEndpoint { shared, tx: 1 },
        )
    }
}

impl UnixEndpoint {
    /// Sends `data`, charging `caller` for the syscalls (one per
    /// [`CostModel::io_chunk_bytes`](crate::CostModel) burst) and the
    /// user→kernel copy.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if the peer has closed the connection.
    pub fn send(&self, caller: &Sandbox, data: &[u8]) -> Result<usize, VkError> {
        let mut shared = self.shared.lock();
        let dir = &mut shared.dirs[self.tx];
        if dir.closed {
            return Err(VkError::Closed);
        }
        if data.is_empty() {
            return Ok(0);
        }
        let cost = caller.cost();
        let chunk = cost.io_chunk_bytes.max(1);
        let syscalls = data.len().div_ceil(chunk) as u64;
        caller.charge_kernel(syscalls * cost.syscall_ns + cost.memcpy_ns(data.len()));
        // The copy into kernel buffers is real: fresh storage per chunk.
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + chunk).min(data.len());
            let mut seg = bytes::BytesMut::with_capacity(end - offset);
            seg.extend_from_slice(&data[offset..end]);
            dir.queue.push_back(seg.freeze());
            offset = end;
        }
        Ok(data.len())
    }

    /// Zero-copy send used by `splice` from a pipe into the socket: the
    /// kernel moves page references; only per-page map cost is charged.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if the peer has closed the connection.
    pub fn send_spliced(&self, caller: &Sandbox, data: Bytes) -> Result<usize, VkError> {
        let mut shared = self.shared.lock();
        let dir = &mut shared.dirs[self.tx];
        if dir.closed {
            return Err(VkError::Closed);
        }
        if data.is_empty() {
            return Ok(0);
        }
        let cost = caller.cost();
        caller.charge_kernel(cost.syscall_ns + cost.page_map_ns_for(data.len()));
        let n = data.len();
        dir.queue.push_back(data);
        Ok(n)
    }

    /// Receives one buffered segment, copying it to user space (the
    /// kernel→user copy of `recv(2)`) and charging the receiver's wakeup
    /// context switch. Returns `Ok(None)` if the peer closed and the
    /// stream is drained, and an empty buffer if no data is ready.
    pub fn recv(&self, caller: &Sandbox) -> Result<Option<Bytes>, VkError> {
        let mut shared = self.shared.lock();
        let dir = &mut shared.dirs[1 - self.tx];
        let cost = caller.cost();
        match dir.queue.pop_front() {
            Some(seg) => {
                caller.charge_kernel(
                    cost.syscall_ns + cost.ctx_switch_ns + cost.memcpy_ns(seg.len()),
                );
                // Real kernel→user copy.
                let mut out = bytes::BytesMut::with_capacity(seg.len());
                out.extend_from_slice(&seg);
                Ok(Some(out.freeze()))
            }
            None if dir.closed => Ok(None),
            None => {
                caller.charge_kernel(cost.syscall_ns);
                Ok(Some(Bytes::new()))
            }
        }
    }

    /// Zero-copy receive used by `splice` from the socket into a pipe:
    /// page references move, no copy, no user-space wakeup.
    pub fn recv_spliced(&self, caller: &Sandbox) -> Result<Option<Bytes>, VkError> {
        let mut shared = self.shared.lock();
        let dir = &mut shared.dirs[1 - self.tx];
        let cost = caller.cost();
        match dir.queue.pop_front() {
            Some(seg) => {
                caller.charge_kernel(cost.syscall_ns + cost.page_map_ns_for(seg.len()));
                Ok(Some(seg))
            }
            None if dir.closed => Ok(None),
            None => {
                caller.charge_kernel(cost.syscall_ns);
                Ok(Some(Bytes::new()))
            }
        }
    }

    /// Bytes currently queued towards this endpoint (i.e. readable).
    pub fn readable_bytes(&self) -> usize {
        let shared = self.shared.lock();
        shared.dirs[1 - self.tx].queue.iter().map(Bytes::len).sum()
    }

    /// Closes this endpoint's sending direction (`shutdown(SHUT_WR)`).
    pub fn close(&self) {
        let mut shared = self.shared.lock();
        shared.dirs[self.tx].closed = true;
    }

    /// Duplicates this endpoint handle (like `dup(2)`): both handles
    /// refer to the same underlying socket end.
    pub fn clone_handle(&self) -> UnixEndpoint {
        UnixEndpoint { shared: Arc::clone(&self.shared), tx: self.tx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::costmodel::CostModel;

    fn sandbox(name: &str) -> Sandbox {
        Sandbox::detached(name, VirtualClock::new(), Arc::new(CostModel::paper_testbed()))
    }

    fn drain(ep: &UnixEndpoint, sb: &Sandbox) -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            match ep.recv(sb).unwrap() {
                None => return out,
                Some(seg) if seg.is_empty() => return out,
                Some(seg) => out.extend_from_slice(&seg),
            }
        }
    }

    #[test]
    fn send_recv_round_trips() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        let sb = sandbox("b");
        a.send(&sa, b"kernel space").unwrap();
        a.close();
        assert_eq!(drain(&b, &sb), b"kernel space");
    }

    #[test]
    fn duplex_directions_are_independent() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        let sb = sandbox("b");
        a.send(&sa, b"to-b").unwrap();
        b.send(&sb, b"to-a").unwrap();
        a.close();
        b.close();
        assert_eq!(drain(&b, &sb), b"to-b");
        assert_eq!(drain(&a, &sa), b"to-a");
    }

    #[test]
    fn send_to_closed_peer_fails() {
        let (a, _b) = UnixConn::pair();
        let sa = sandbox("a");
        a.close();
        assert_eq!(a.send(&sa, b"x").unwrap_err(), VkError::Closed);
    }

    #[test]
    fn large_sends_are_chunked() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        let sb = sandbox("b");
        let cost = CostModel::paper_testbed();
        let data = vec![5u8; cost.io_chunk_bytes * 3 + 17];
        a.send(&sa, &data).unwrap();
        a.close();
        assert_eq!(drain(&b, &sb), data);
    }

    #[test]
    fn recv_copies_bytes() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        let sb = sandbox("b");
        let data = Bytes::from(vec![1u8; 4096]);
        let ptr = data.as_ptr();
        a.send_spliced(&sa, data).unwrap();
        let got = b.recv(&sb).unwrap().unwrap();
        assert_ne!(got.as_ptr(), ptr);
    }

    #[test]
    fn spliced_path_is_zero_copy() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        let sb = sandbox("b");
        let data = Bytes::from(vec![1u8; 4096]);
        let ptr = data.as_ptr();
        a.send_spliced(&sa, data).unwrap();
        let got = b.recv_spliced(&sb).unwrap().unwrap();
        assert_eq!(got.as_ptr(), ptr);
    }

    #[test]
    fn receiver_pays_context_switch() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        let sb = sandbox("b");
        a.send(&sa, b"ping").unwrap();
        b.recv(&sb).unwrap();
        let cost = CostModel::paper_testbed();
        assert!(sb.kernel_ns() >= cost.ctx_switch_ns);
    }

    #[test]
    fn empty_queue_reports_empty_chunk_and_costs_syscall() {
        let (_a, b) = UnixConn::pair();
        let sb = sandbox("b");
        let got = b.recv(&sb).unwrap().unwrap();
        assert!(got.is_empty());
        assert_eq!(sb.kernel_ns(), CostModel::paper_testbed().syscall_ns);
    }

    #[test]
    fn readable_bytes_tracks_queue() {
        let (a, b) = UnixConn::pair();
        let sa = sandbox("a");
        a.send(&sa, b"abcd").unwrap();
        assert_eq!(b.readable_bytes(), 4);
        assert_eq!(a.readable_bytes(), 0);
    }
}
