//! Hosts and sandboxes.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::account::ResourceAccount;
use crate::clock::VirtualClock;
use crate::costmodel::CostModel;
use crate::Nanos;

/// A simulated host: a number of CPU cores plus the sandboxes running on
/// it. Matches one VM of the paper's testbed (4 cores, 8 GB).
#[derive(Debug)]
pub struct Node {
    name: String,
    cores: u32,
    ram_bytes: u64,
    clock: VirtualClock,
    cost: Arc<CostModel>,
    sandboxes: Mutex<Vec<Arc<ResourceAccount>>>,
}

impl Node {
    /// Creates a node with `cores` CPUs sharing `clock` and `cost`.
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        ram_bytes: u64,
        clock: VirtualClock,
        cost: Arc<CostModel>,
    ) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            cores,
            ram_bytes,
            clock,
            cost,
            sandboxes: Mutex::new(Vec::new()),
        })
    }

    /// Host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of CPU cores (bounds effective parallelism in fan-out).
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Installed RAM in bytes.
    pub fn ram_bytes(&self) -> u64 {
        self.ram_bytes
    }

    /// The node's (shared) virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The node's cost model.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Creates a new sandbox (cgroup) on this node and returns its
    /// execution context.
    pub fn sandbox(&self, name: impl Into<String>) -> Sandbox {
        let account = ResourceAccount::new(name);
        self.sandboxes.lock().push(Arc::clone(&account));
        Sandbox { account, clock: self.clock.clone(), cost: Arc::clone(&self.cost) }
    }

    /// Accounts of every sandbox ever created on this node.
    pub fn accounts(&self) -> Vec<Arc<ResourceAccount>> {
        self.sandboxes.lock().clone()
    }
}

/// Execution context of one sandboxed process: its resource account plus
/// handles to the clock and cost model. All virtual-kernel object methods
/// take a `&Sandbox` identifying the calling process, so CPU time lands in
/// the right cgroup — exactly how the paper attributes usage.
#[derive(Debug, Clone)]
pub struct Sandbox {
    account: Arc<ResourceAccount>,
    clock: VirtualClock,
    cost: Arc<CostModel>,
}

impl Sandbox {
    /// Creates a free-standing sandbox (not attached to a [`Node`]) —
    /// convenient in unit tests.
    pub fn detached(name: impl Into<String>, clock: VirtualClock, cost: Arc<CostModel>) -> Self {
        Self { account: ResourceAccount::new(name), clock, cost }
    }

    /// The sandbox's resource account.
    pub fn account(&self) -> &Arc<ResourceAccount> {
        &self.account
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Charges `ns` of user-space CPU: advances the clock and the account.
    pub fn charge_user(&self, ns: Nanos) {
        self.account.charge_user(ns);
        self.clock.advance(ns);
    }

    /// Charges `ns` of kernel-space CPU: advances the clock and the
    /// account.
    pub fn charge_kernel(&self, ns: Nanos) {
        self.account.charge_kernel(ns);
        self.clock.advance(ns);
    }

    /// Records `bytes` of allocation against this sandbox and charges the
    /// allocator cost as user time.
    pub fn alloc(&self, bytes: usize) {
        self.account.alloc(bytes as u64);
        self.charge_user(self.cost.alloc_ns(bytes));
    }

    /// Records a release of `bytes`.
    pub fn free(&self, bytes: usize) {
        self.account.free(bytes as u64);
    }

    /// Convenience passthrough to [`ResourceAccount::user_ns`].
    pub fn user_ns(&self) -> Nanos {
        self.account.user_ns()
    }

    /// Convenience passthrough to [`ResourceAccount::kernel_ns`].
    pub fn kernel_ns(&self) -> Nanos {
        self.account.kernel_ns()
    }

    /// Convenience passthrough to [`ResourceAccount::charge_user`] without
    /// advancing the clock — used by the pipeline engine, which computes
    /// latency itself.
    pub fn charge_user_off_clock(&self, ns: Nanos) {
        self.account.charge_user(ns);
    }

    /// Kernel-time variant of [`Sandbox::charge_user_off_clock`].
    pub fn charge_kernel_off_clock(&self, ns: Nanos) {
        self.account.charge_kernel(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_node() -> Arc<Node> {
        Node::new("n0", 4, 8 << 30, VirtualClock::new(), Arc::new(CostModel::paper_testbed()))
    }

    #[test]
    fn sandbox_charges_advance_clock_and_account() {
        let node = test_node();
        let sb = node.sandbox("fn-a");
        sb.charge_user(100);
        sb.charge_kernel(50);
        assert_eq!(node.clock().now(), 150);
        assert_eq!(sb.user_ns(), 100);
        assert_eq!(sb.kernel_ns(), 50);
    }

    #[test]
    fn off_clock_charges_leave_clock_alone() {
        let node = test_node();
        let sb = node.sandbox("fn-a");
        sb.charge_user_off_clock(100);
        sb.charge_kernel_off_clock(10);
        assert_eq!(node.clock().now(), 0);
        assert_eq!(sb.account().total_cpu_ns(), 110);
    }

    #[test]
    fn alloc_tracks_ram_and_costs_time() {
        let node = test_node();
        let sb = node.sandbox("fn-a");
        sb.alloc(1 << 20);
        assert_eq!(sb.account().ram_current(), 1 << 20);
        assert!(node.clock().now() > 0);
        sb.free(1 << 20);
        assert_eq!(sb.account().ram_current(), 0);
        assert_eq!(sb.account().ram_peak(), 1 << 20);
    }

    #[test]
    fn node_registers_all_sandboxes() {
        let node = test_node();
        node.sandbox("a");
        node.sandbox("b");
        let names: Vec<_> = node.accounts().iter().map(|a| a.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn sandboxes_share_the_node_clock() {
        let node = test_node();
        let a = node.sandbox("a");
        let b = node.sandbox("b");
        a.charge_user(10);
        b.charge_user(20);
        assert_eq!(node.clock().now(), 30);
    }
}
