//! Virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Nanos;

/// A shared, monotonically advancing virtual clock.
///
/// All simulated work advances this clock instead of consuming wall time,
/// which makes multi-hundred-megabyte experiments finish in milliseconds
/// and renders every run bit-for-bit reproducible.
///
/// Cloning a `VirtualClock` yields a handle to the *same* clock.
///
/// ```
/// # use roadrunner_vkernel::VirtualClock;
/// let clock = VirtualClock::new();
/// let handle = clock.clone();
/// clock.advance(500);
/// assert_eq!(handle.now(), 500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta` nanoseconds and returns the new time.
    pub fn advance(&self, delta: Nanos) -> Nanos {
        self.now.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Moves the clock forward to `t` if `t` is later than now; returns the
    /// (possibly unchanged) current time. Used when merging parallel
    /// branches whose completion times were computed independently.
    pub fn advance_to(&self, t: Nanos) -> Nanos {
        self.now.fetch_max(t, Ordering::Relaxed).max(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let clock = VirtualClock::new();
        clock.advance(10);
        clock.advance(5);
        assert_eq!(clock.now(), 15);
    }

    #[test]
    fn clones_share_state() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now(), 7);
        b.advance(3);
        assert_eq!(a.now(), 10);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let clock = VirtualClock::new();
        clock.advance(100);
        assert_eq!(clock.advance_to(50), 100);
        assert_eq!(clock.now(), 100);
        assert_eq!(clock.advance_to(250), 250);
        assert_eq!(clock.now(), 250);
    }
}
