//! N-node cluster topologies beyond the paper's fixed two-VM pair.
//!
//! The paper evaluates Roadrunner on exactly two nodes (§6.2); its
//! motivating scenario is a platform serving many co-scheduled workflows
//! across an edge–cloud continuum. [`ClusterSpec`] describes such a
//! deployment — heterogeneous nodes (per-node cores/RAM) joined by a
//! full mesh of point-to-point links with per-pair bandwidth/RTT — and
//! [`ClusterSpec::build`] assembles it into a [`Testbed`], so everything
//! that runs on the paper testbed (shims, baselines, the workflow
//! engines) runs unchanged on an N-node cluster.
//!
//! ```
//! use roadrunner_vkernel::cluster::{ClusterSpec, LinkSpec, NodeSpec};
//!
//! let bed = ClusterSpec::homogeneous(4, 4, 8 << 30)
//!     .node(NodeSpec::new(16, 32 << 30))          // add a big cloud node
//!     .link(0, 1, LinkSpec::lan())                // fast edge-local pair
//!     .build();
//! assert_eq!(bed.nodes().len(), 5);
//! assert_eq!(bed.node(4).cores(), 16);
//! assert_eq!(bed.link_between(0, 1).bandwidth_bps(), LinkSpec::lan().bandwidth_bps);
//! ```

use std::collections::HashMap;

use crate::costmodel::CostModel;
use crate::net::Link;
use crate::testbed::Testbed;
use crate::Nanos;

/// One node of a cluster: its core count and RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Number of CPU cores.
    pub cores: u32,
    /// RAM in bytes.
    pub ram_bytes: u64,
}

impl NodeSpec {
    /// A node with `cores` cores and `ram_bytes` of RAM.
    pub fn new(cores: u32, ram_bytes: u64) -> Self {
        assert!(cores > 0, "a node needs at least one core");
        Self { cores, ram_bytes }
    }

    /// The paper's VM shape: 4 cores, 8 GB (§6.2).
    pub fn paper_vm() -> Self {
        Self::new(4, 8 << 30)
    }
}

/// One point-to-point link of a cluster: bandwidth, RTT and MTU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Round-trip time in nanoseconds.
    pub rtt_ns: Nanos,
    /// MTU in bytes (per-packet framing granularity).
    pub mtu_bytes: usize,
}

impl LinkSpec {
    /// A link with the given bandwidth and RTT at the standard 1500-byte
    /// MTU.
    pub fn new(bandwidth_bps: u64, rtt_ns: Nanos) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        Self { bandwidth_bps, rtt_ns, mtu_bytes: 1500 }
    }

    /// The WAN shape of `cost`'s calibration (the paper's effective
    /// 700 Mbit/s, 1 ms RTT by default).
    pub fn from_cost(cost: &CostModel) -> Self {
        Self { bandwidth_bps: cost.net_bandwidth_bps, rtt_ns: cost.net_rtt_ns, mtu_bytes: cost.mtu_bytes }
    }

    /// A datacenter-local link: 10 Gbit/s at 100 µs RTT.
    pub fn lan() -> Self {
        Self::new(10_000_000_000, 100_000)
    }

    /// The paper's literal `tc` shape: 100 Mbit/s, 1 ms RTT (§6.2).
    pub fn paper_wan() -> Self {
        Self::new(100_000_000, 1_000_000)
    }

    fn build(&self, name: String) -> std::sync::Arc<Link> {
        Link::new(name, self.bandwidth_bps, self.rtt_ns, self.mtu_bytes)
    }
}

/// Builder for an N-node cluster testbed.
///
/// Nodes are added in index order; every node pair gets the default link
/// unless overridden with [`link`](Self::link). [`build`](Self::build)
/// produces a [`Testbed`] whose [`link_between`](Testbed::link_between)
/// resolves to the pair's own link, and whose
/// [`SchedResources::for_testbed`](crate::sched::SchedResources::for_testbed)
/// mirrors the per-node core counts and the per-pair link mesh.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
    cost: CostModel,
    default_link: Option<LinkSpec>,
    overrides: HashMap<(usize, usize), LinkSpec>,
    link_lanes: usize,
}

impl ClusterSpec {
    /// An empty spec over the paper's cost model; add nodes with
    /// [`node`](Self::node).
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            cost: CostModel::paper_testbed(),
            default_link: None,
            overrides: HashMap::new(),
            link_lanes: 1,
        }
    }

    /// `count` identical nodes of `cores` cores and `ram_bytes` RAM.
    pub fn homogeneous(count: usize, cores: u32, ram_bytes: u64) -> Self {
        let mut spec = Self::new();
        for _ in 0..count {
            spec.nodes.push(NodeSpec::new(cores, ram_bytes));
        }
        spec
    }

    /// An edge–cloud continuum: `edge` paper-shaped edge VMs plus `cloud`
    /// larger cloud nodes (8 cores, 16 GB). Links within a tier are
    /// [`LinkSpec::lan`]; links crossing the tiers keep the default WAN.
    pub fn edge_cloud(edge: usize, cloud: usize) -> Self {
        let mut spec = Self::new();
        for _ in 0..edge {
            spec.nodes.push(NodeSpec::paper_vm());
        }
        for _ in 0..cloud {
            spec.nodes.push(NodeSpec::new(8, 16 << 30));
        }
        let n = edge + cloud;
        for a in 0..n {
            for b in a + 1..n {
                if (a < edge) == (b < edge) {
                    spec.overrides.insert((a, b), LinkSpec::lan());
                }
            }
        }
        spec
    }

    /// Appends a node (chainable).
    pub fn node(mut self, node: NodeSpec) -> Self {
        self.nodes.push(node);
        self
    }

    /// Replaces the cost model (chainable).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the link used by every pair without an override (chainable).
    /// Defaults to [`LinkSpec::from_cost`] of the spec's cost model.
    pub fn default_link(mut self, link: LinkSpec) -> Self {
        self.default_link = Some(link);
        self
    }

    /// Sets how many transfers each pair link carries concurrently
    /// before they queue (chainable; defaults to 1). The lane count is
    /// mirrored into
    /// [`SchedResources::for_testbed`](crate::sched::SchedResources::for_testbed),
    /// including every link a later scale-out creates.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn link_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "a link needs at least one lane");
        self.link_lanes = lanes;
        self
    }

    /// Overrides the link between nodes `a` and `b` (chainable; order of
    /// `a`/`b` does not matter).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` — a node's loopback is not configurable here.
    pub fn link(mut self, a: usize, b: usize, link: LinkSpec) -> Self {
        assert_ne!(a, b, "loopbacks are built automatically, not configured");
        let key = if a < b { (a, b) } else { (b, a) };
        self.overrides.insert(key, link);
        self
    }

    /// Number of nodes currently in the spec.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node core counts, in node order.
    pub fn cores(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.cores).collect()
    }

    /// Assembles the cluster into a [`Testbed`].
    ///
    /// # Panics
    ///
    /// Panics if the spec has no nodes, or if a link override names a
    /// node that does not exist.
    pub fn build(self) -> Testbed {
        assert!(!self.nodes.is_empty(), "a cluster needs at least one node");
        let n = self.nodes.len();
        for &(a, b) in self.overrides.keys() {
            assert!(b < n, "link override ({a}, {b}) names a missing node");
        }
        let default_link = self.default_link.unwrap_or_else(|| LinkSpec::from_cost(&self.cost));
        let mut links = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for a in 0..n {
            for b in a + 1..n {
                let spec = self.overrides.get(&(a, b)).copied().unwrap_or(default_link);
                links.push(spec.build(format!("link-{a}-{b}")));
            }
        }
        Testbed::from_cluster(self.nodes, self.cost, links, self.link_lanes)
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedResources;

    #[test]
    fn homogeneous_cluster_builds_n_nodes() {
        let bed = ClusterSpec::homogeneous(4, 4, 8 << 30).build();
        assert_eq!(bed.nodes().len(), 4);
        assert!(bed.has_pair_links());
        for node in bed.nodes() {
            assert_eq!(node.cores(), 4);
            assert_eq!(node.ram_bytes(), 8 << 30);
        }
    }

    #[test]
    fn heterogeneous_nodes_keep_their_shapes() {
        let bed = ClusterSpec::new()
            .node(NodeSpec::new(2, 4 << 30))
            .node(NodeSpec::new(16, 64 << 30))
            .build();
        assert_eq!(bed.node(0).cores(), 2);
        assert_eq!(bed.node(1).cores(), 16);
        assert_eq!(bed.node(1).ram_bytes(), 64 << 30);
    }

    #[test]
    fn default_links_follow_the_cost_model() {
        let bed = ClusterSpec::homogeneous(3, 4, 1 << 30).build();
        let cost = CostModel::paper_testbed();
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert_eq!(bed.link_between(a, b).bandwidth_bps(), cost.net_bandwidth_bps);
            assert_eq!(bed.link_between(a, b).rtt_ns(), cost.net_rtt_ns);
        }
    }

    #[test]
    fn link_overrides_apply_to_their_pair_only() {
        let bed = ClusterSpec::homogeneous(3, 4, 1 << 30)
            .link(2, 0, LinkSpec::lan())
            .build();
        assert_eq!(bed.link_between(0, 2).bandwidth_bps(), LinkSpec::lan().bandwidth_bps);
        assert_eq!(bed.link_between(2, 0).bandwidth_bps(), LinkSpec::lan().bandwidth_bps);
        assert_eq!(
            bed.link_between(0, 1).bandwidth_bps(),
            CostModel::paper_testbed().net_bandwidth_bps
        );
    }

    #[test]
    fn pair_links_are_distinct_objects() {
        let bed = ClusterSpec::homogeneous(3, 4, 1 << 30).build();
        // Reserving one pair's link leaves the others free.
        bed.link_between(0, 1).reserve(0, 10_000_000);
        let done = bed.link_between(1, 2).reserve(0, 0);
        assert_eq!(done, bed.link_between(1, 2).propagation_ns());
    }

    #[test]
    fn same_node_resolves_to_loopback() {
        let bed = ClusterSpec::homogeneous(2, 4, 1 << 30).build();
        assert_eq!(bed.link_between(1, 1).name(), "lo-1");
    }

    #[test]
    fn edge_cloud_uses_lan_within_tiers_and_wan_across() {
        let bed = ClusterSpec::edge_cloud(2, 2).build();
        assert_eq!(bed.nodes().len(), 4);
        assert_eq!(bed.node(0).cores(), 4);
        assert_eq!(bed.node(2).cores(), 8);
        let lan = LinkSpec::lan().bandwidth_bps;
        let wan = CostModel::paper_testbed().net_bandwidth_bps;
        assert_eq!(bed.link_between(0, 1).bandwidth_bps(), lan); // edge-edge
        assert_eq!(bed.link_between(2, 3).bandwidth_bps(), lan); // cloud-cloud
        assert_eq!(bed.link_between(0, 2).bandwidth_bps(), wan); // cross-tier
        assert_eq!(bed.link_between(1, 3).bandwidth_bps(), wan);
    }

    #[test]
    fn sched_resources_mirror_cluster_topology() {
        let bed = ClusterSpec::new()
            .node(NodeSpec::new(2, 1 << 30))
            .node(NodeSpec::new(8, 1 << 30))
            .node(NodeSpec::new(4, 1 << 30))
            .build();
        let mut res = SchedResources::for_testbed(&bed);
        assert_eq!(res.cpu(0).capacity(), 2);
        assert_eq!(res.cpu(1).capacity(), 8);
        assert_eq!(res.cpu(2).capacity(), 4);
        // Mesh: disjoint pairs schedule independently.
        let a = res.link_between(0, 1).reserve(0, 1_000);
        let b = res.link_between(0, 2).reserve(0, 1_000);
        assert_eq!((a, b), (0, 0));
    }

    #[test]
    fn reset_telemetry_clears_every_pair_link() {
        let bed = ClusterSpec::homogeneous(3, 2, 1 << 30).build();
        bed.link_between(0, 2).reserve(0, 50_000_000);
        bed.reset_telemetry();
        let done = bed.link_between(0, 2).reserve(0, 0);
        assert_eq!(done, bed.link_between(0, 2).propagation_ns());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        ClusterSpec::new().build();
    }

    #[test]
    #[should_panic(expected = "missing node")]
    fn out_of_range_override_panics() {
        ClusterSpec::homogeneous(2, 4, 1 << 30)
            .link(0, 5, LinkSpec::lan())
            .build();
    }

    #[test]
    #[should_panic(expected = "loopbacks")]
    fn self_link_override_panics() {
        let _ = ClusterSpec::homogeneous(2, 4, 1 << 30).link(1, 1, LinkSpec::lan());
    }
}
