//! Error type for virtual-kernel operations.

use std::error::Error;
use std::fmt;

/// Error returned by virtual-kernel objects (pipes, sockets, links).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VkError {
    /// The peer end of a pipe or socket has been closed.
    Closed,
    /// An operation would exceed a configured capacity (e.g. gifting more
    /// pages than a pipe can hold in one call).
    Capacity {
        /// Bytes requested by the operation.
        requested: usize,
        /// Bytes the object can accept.
        available: usize,
    },
    /// No route/link exists between the requested nodes.
    NoRoute {
        /// Source node name.
        from: String,
        /// Destination node name.
        to: String,
    },
    /// The caller passed an argument the kernel object cannot honour.
    InvalidArg(String),
}

impl fmt::Display for VkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VkError::Closed => write!(f, "peer endpoint is closed"),
            VkError::Capacity { requested, available } => {
                write!(f, "capacity exceeded: requested {requested} bytes, available {available}")
            }
            VkError::NoRoute { from, to } => {
                write!(f, "no link between nodes `{from}` and `{to}`")
            }
            VkError::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for VkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(VkError::Closed.to_string().contains("closed"));
        let cap = VkError::Capacity { requested: 10, available: 4 };
        assert!(cap.to_string().contains("10"));
        assert!(cap.to_string().contains("4"));
        let route = VkError::NoRoute { from: "a".into(), to: "b".into() };
        assert!(route.to_string().contains("`a`"));
    }

    #[test]
    fn error_trait_object_safe() {
        let err: Box<dyn Error + Send + Sync> = Box::new(VkError::Closed);
        assert!(err.source().is_none());
    }
}
