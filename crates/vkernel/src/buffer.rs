//! Page-granular segmented buffers.
//!
//! Kernel pipes and socket buffers hold data as runs of page references,
//! not as one contiguous allocation. [`SegBuf`] models that: a FIFO of
//! [`Bytes`] segments. Pushing a *reference* ([`SegBuf::push_ref`]) moves
//! no payload bytes — this is what `vmsplice`/`splice` do — while pushing
//! a *copy* ([`SegBuf::push_copy`]) performs a real `memcpy`, as ordinary
//! `write(2)` does. The distinction is observable in tests via pointer
//! identity, so "zero-copy" claims in higher layers are mechanically
//! checkable.

use std::collections::VecDeque;

use bytes::{Bytes, BytesMut};

/// A FIFO of byte segments, the storage behind pipes and socket buffers.
#[derive(Debug, Default, Clone)]
pub struct SegBuf {
    segments: VecDeque<Bytes>,
    len: usize,
}

impl SegBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total buffered bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (page runs) currently queued.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Enqueues a copy of `data` (a real `memcpy` into fresh storage).
    pub fn push_copy(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let mut buf = BytesMut::with_capacity(data.len());
        buf.extend_from_slice(data);
        self.len += data.len();
        self.segments.push_back(buf.freeze());
    }

    /// Enqueues a reference to `data` without copying (page gifting).
    pub fn push_ref(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.len += data.len();
        self.segments.push_back(data);
    }

    /// Dequeues up to `max` bytes as a single segment without copying.
    ///
    /// If the front segment is larger than `max` it is split (an O(1)
    /// reference-count operation on [`Bytes`]). Returns `None` when empty
    /// or `max == 0`.
    pub fn pop_ref(&mut self, max: usize) -> Option<Bytes> {
        if self.len == 0 || max == 0 {
            return None;
        }
        let front = self.segments.front_mut().expect("len > 0 implies a segment");
        let out = if front.len() <= max {
            self.segments.pop_front().expect("checked non-empty")
        } else {
            front.split_to(max)
        };
        self.len -= out.len();
        Some(out)
    }

    /// Dequeues up to `max` bytes, copying them into fresh storage (the
    /// kernel→user copy of an ordinary `read(2)`).
    pub fn pop_copy(&mut self, max: usize) -> Option<Bytes> {
        let zc = self.pop_ref(max)?;
        let mut buf = BytesMut::with_capacity(zc.len());
        buf.extend_from_slice(&zc);
        Some(buf.freeze())
    }

    /// Dequeues *all* buffered bytes as their original segments.
    pub fn drain_segments(&mut self) -> Vec<Bytes> {
        self.len = 0;
        self.segments.drain(..).collect()
    }

    /// Concatenates the entire content into one contiguous [`Bytes`]
    /// (no copy if a single segment is buffered), leaving the buffer empty.
    pub fn gather(&mut self) -> Bytes {
        if self.segments.len() == 1 {
            self.len = 0;
            return self.segments.pop_front().expect("one segment");
        }
        let mut out = BytesMut::with_capacity(self.len);
        for seg in self.segments.drain(..) {
            out.extend_from_slice(&seg);
        }
        self.len = 0;
        out.freeze()
    }
}

impl From<Bytes> for SegBuf {
    fn from(b: Bytes) -> Self {
        let mut buf = SegBuf::new();
        buf.push_ref(b);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_ref_shares_storage() {
        let data = Bytes::from(vec![1u8; 256]);
        let ptr = data.as_ptr();
        let mut buf = SegBuf::new();
        buf.push_ref(data);
        let out = buf.pop_ref(256).unwrap();
        assert_eq!(out.as_ptr(), ptr, "zero-copy path must not move bytes");
    }

    #[test]
    fn push_copy_does_not_share_storage() {
        let data = vec![2u8; 256];
        let ptr = data.as_ptr();
        let mut buf = SegBuf::new();
        buf.push_copy(&data);
        let out = buf.pop_ref(256).unwrap();
        assert_ne!(out.as_ptr(), ptr, "copy path must duplicate bytes");
        assert_eq!(&out[..], &data[..]);
    }

    #[test]
    fn pop_splits_large_segments() {
        let mut buf = SegBuf::new();
        buf.push_ref(Bytes::from(vec![7u8; 100]));
        let a = buf.pop_ref(30).unwrap();
        let b = buf.pop_ref(100).unwrap();
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 70);
        assert!(buf.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut buf = SegBuf::new();
        buf.push_copy(b"abc");
        buf.push_ref(Bytes::from_static(b"def"));
        let mut out = Vec::new();
        while let Some(seg) = buf.pop_ref(2) {
            out.extend_from_slice(&seg);
        }
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn empty_operations() {
        let mut buf = SegBuf::new();
        assert!(buf.pop_ref(10).is_none());
        assert!(buf.pop_copy(10).is_none());
        buf.push_copy(b"");
        buf.push_ref(Bytes::new());
        assert!(buf.is_empty());
        assert_eq!(buf.segment_count(), 0);
        assert_eq!(buf.gather().len(), 0);
    }

    #[test]
    fn pop_zero_returns_none() {
        let mut buf = SegBuf::from(Bytes::from_static(b"x"));
        assert!(buf.pop_ref(0).is_none());
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn gather_concatenates() {
        let mut buf = SegBuf::new();
        buf.push_copy(b"hello ");
        buf.push_copy(b"world");
        assert_eq!(&buf.gather()[..], b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn gather_single_segment_is_zero_copy() {
        let data = Bytes::from(vec![9u8; 64]);
        let ptr = data.as_ptr();
        let mut buf = SegBuf::from(data);
        assert_eq!(buf.gather().as_ptr(), ptr);
    }

    #[test]
    fn drain_segments_returns_everything() {
        let mut buf = SegBuf::new();
        buf.push_copy(b"ab");
        buf.push_copy(b"cd");
        let segs = buf.drain_segments();
        assert_eq!(segs.len(), 2);
        assert!(buf.is_empty());
    }

    proptest! {
        #[test]
        fn len_is_sum_of_segments(
            ops in proptest::collection::vec(
                prop_oneof![
                    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Ok),
                    (0usize..128).prop_map(Err),
                ],
                0..40,
            )
        ) {
            let mut buf = SegBuf::new();
            let mut model: Vec<u8> = Vec::new();
            let mut popped: Vec<u8> = Vec::new();
            for op in ops {
                match op {
                    Ok(data) => {
                        model.extend_from_slice(&data);
                        buf.push_copy(&data);
                    }
                    Err(max) => {
                        if let Some(seg) = buf.pop_ref(max) {
                            popped.extend_from_slice(&seg);
                        }
                    }
                }
                prop_assert_eq!(buf.len() + popped.len(), model.len());
            }
            popped.extend_from_slice(&buf.gather());
            prop_assert_eq!(popped, model);
        }
    }
}
