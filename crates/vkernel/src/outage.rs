//! Outage schedules: deterministic link/node up–down windows.
//!
//! The paper's testbed is immortal — links and nodes never fail — so the
//! claim that Roadrunner "optimizes communication regardless of the
//! scheduler's decisions" (§2.2) goes untested in exactly the regime
//! where middleware earns its keep: FunLess-style private-edge clusters
//! where one node dying is a big deal. An [`OutageSchedule`] makes the
//! virtual cluster fallible without giving up determinism: every window
//! is fixed up front (explicitly or derived from a seed), so two runs
//! with the same schedule fail at the same virtual nanoseconds.
//!
//! Windows are keyed by **stable node ids**, not node indices: the
//! autoscaler adds and removes nodes mid-run, shifting indices, while a
//! schedule written before the run must keep naming the same physical
//! machine. [`crate::sched::SchedResources`] assigns each node a stable
//! id at construction (`0..n`) and every node added later the next
//! fresh id; `remove_node` retires the id with the node.
//!
//! A window is half-open `[from_ns, until_ns)`: the resource is down at
//! `from_ns` and back up at `until_ns`. A node that is down takes every
//! link touching it down too. [`OutageSchedule::transitions_until`]
//! counts window boundaries that have passed — the *link-health epoch*
//! the transfer memo mixes into its keys so entries recorded under one
//! health regime never replay under another.

use std::collections::HashMap;

use crate::Nanos;

/// One half-open down window `[from_ns, until_ns)` in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First nanosecond the resource is down.
    pub from_ns: Nanos,
    /// First nanosecond the resource is back up (`Nanos::MAX` = never).
    pub until_ns: Nanos,
}

impl OutageWindow {
    /// Whether `at` falls inside the window.
    pub fn covers(&self, at: Nanos) -> bool {
        self.from_ns <= at && at < self.until_ns
    }
}

/// A deterministic schedule of per-node and per-link down windows.
///
/// Keys are **stable node ids** (see the module docs); link windows are
/// stored under the normalized `(min, max)` id pair, so
/// `link_down(3, 1, ..)` and queries for `(1, 3)` agree.
#[derive(Debug, Clone, Default)]
pub struct OutageSchedule {
    node_windows: HashMap<u64, Vec<OutageWindow>>,
    link_windows: HashMap<(u64, u64), Vec<OutageWindow>>,
}

fn pair(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// splitmix64 — the same tiny PRNG the load generator's Poisson
/// sampler uses, so seeded schedules are reproducible everywhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OutageSchedule {
    /// An empty schedule: nothing ever fails. Running the stack with an
    /// empty schedule is byte-identical to running it without one.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the schedule contains no windows at all.
    pub fn is_empty(&self) -> bool {
        self.node_windows.values().all(Vec::is_empty)
            && self.link_windows.values().all(Vec::is_empty)
    }

    /// Marks node `id` down over `[from_ns, until_ns)` (chainable).
    pub fn node_down(mut self, id: u64, from_ns: Nanos, until_ns: Nanos) -> Self {
        if from_ns < until_ns {
            self.node_windows.entry(id).or_default().push(OutageWindow { from_ns, until_ns });
        }
        self
    }

    /// Marks node `id` down forever from `from_ns` — a kill.
    pub fn node_killed(self, id: u64, from_ns: Nanos) -> Self {
        self.node_down(id, from_ns, Nanos::MAX)
    }

    /// Marks the link between nodes `a` and `b` down over
    /// `[from_ns, until_ns)` (chainable; the pair is normalized).
    pub fn link_down(mut self, a: u64, b: u64, from_ns: Nanos, until_ns: Nanos) -> Self {
        if from_ns < until_ns {
            self.link_windows
                .entry(pair(a, b))
                .or_default()
                .push(OutageWindow { from_ns, until_ns });
        }
        self
    }

    /// A deterministic flap schedule derived from `seed`: within
    /// `[0, horizon_ns)`, each of `flaps` windows takes one pseudo-random
    /// link from `node_ids` down for `down_ns`, with start times spread
    /// pseudo-uniformly over the horizon. Same seed, same schedule.
    pub fn seeded_link_flaps(
        seed: u64,
        node_ids: &[u64],
        horizon_ns: Nanos,
        flaps: usize,
        down_ns: Nanos,
    ) -> Self {
        let mut out = Self::new();
        if node_ids.len() < 2 || horizon_ns == 0 {
            return out;
        }
        let mut state = seed;
        for _ in 0..flaps {
            let a = node_ids[(splitmix64(&mut state) % node_ids.len() as u64) as usize];
            let mut b = a;
            while b == a {
                b = node_ids[(splitmix64(&mut state) % node_ids.len() as u64) as usize];
            }
            let from = splitmix64(&mut state) % horizon_ns;
            out = out.link_down(a, b, from, from.saturating_add(down_ns));
        }
        out
    }

    /// The union of this schedule and `other`: every window of both.
    #[must_use]
    pub fn merged_with(mut self, other: Self) -> Self {
        for (id, ws) in other.node_windows {
            self.node_windows.entry(id).or_default().extend(ws);
        }
        for (key, ws) in other.link_windows {
            self.link_windows.entry(key).or_default().extend(ws);
        }
        self
    }

    /// Whether node `id` is down at virtual time `at`.
    pub fn node_down_at(&self, id: u64, at: Nanos) -> bool {
        self.node_windows
            .get(&id)
            .is_some_and(|ws| ws.iter().any(|w| w.covers(at)))
    }

    /// Whether the link between `a` and `b` is down at `at` — true when
    /// the pair has a covering window *or either endpoint node* is down.
    pub fn link_down_at(&self, a: u64, b: u64, at: Nanos) -> bool {
        self.node_down_at(a, at)
            || self.node_down_at(b, at)
            || self
                .link_windows
                .get(&pair(a, b))
                .is_some_and(|ws| ws.iter().any(|w| w.covers(at)))
    }

    /// The number of window boundaries (starts and finite ends) at or
    /// before `at` — the link-health epoch. It is 0 before the first
    /// outage, bumps on every up→down and down→up transition, and never
    /// decreases, so memo entries keyed on it can only replay within one
    /// uninterrupted health regime.
    pub fn transitions_until(&self, at: Nanos) -> u64 {
        let count = |ws: &Vec<OutageWindow>| -> u64 {
            ws.iter()
                .map(|w| {
                    u64::from(w.from_ns <= at) + u64::from(w.until_ns != Nanos::MAX && w.until_ns <= at)
                })
                .sum()
        };
        self.node_windows.values().map(count).sum::<u64>()
            + self.link_windows.values().map(count).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_never_fails() {
        let s = OutageSchedule::new();
        assert!(s.is_empty());
        assert!(!s.node_down_at(0, 0));
        assert!(!s.link_down_at(0, 1, u64::MAX - 1));
        assert_eq!(s.transitions_until(Nanos::MAX), 0);
    }

    #[test]
    fn windows_are_half_open() {
        let s = OutageSchedule::new().node_down(7, 100, 200);
        assert!(!s.node_down_at(7, 99));
        assert!(s.node_down_at(7, 100));
        assert!(s.node_down_at(7, 199));
        assert!(!s.node_down_at(7, 200));
        assert!(!s.node_down_at(8, 150), "other nodes unaffected");
    }

    #[test]
    fn link_pair_is_normalized_and_inherits_node_outages() {
        let s = OutageSchedule::new().link_down(3, 1, 10, 20).node_down(5, 50, 60);
        assert!(s.link_down_at(1, 3, 15));
        assert!(s.link_down_at(3, 1, 15));
        assert!(!s.link_down_at(1, 3, 25));
        // A down node takes every link touching it down.
        assert!(s.link_down_at(5, 0, 55));
        assert!(s.link_down_at(0, 5, 55));
        assert!(!s.link_down_at(0, 1, 55));
    }

    #[test]
    fn kill_never_ends() {
        let s = OutageSchedule::new().node_killed(2, 1_000);
        assert!(!s.node_down_at(2, 999));
        assert!(s.node_down_at(2, Nanos::MAX - 1));
    }

    #[test]
    fn transitions_count_window_boundaries() {
        let s = OutageSchedule::new().node_down(0, 100, 200).link_down(0, 1, 150, 250);
        assert_eq!(s.transitions_until(0), 0);
        assert_eq!(s.transitions_until(100), 1); // node down
        assert_eq!(s.transitions_until(150), 2); // link down
        assert_eq!(s.transitions_until(200), 3); // node up
        assert_eq!(s.transitions_until(300), 4); // link up
        // A kill's MAX end never counts as a transition.
        let k = OutageSchedule::new().node_killed(9, 10);
        assert_eq!(k.transitions_until(Nanos::MAX), 1);
    }

    #[test]
    fn seeded_flaps_are_deterministic_and_span_distinct_endpoints() {
        let ids = [0u64, 1, 2, 3];
        let a = OutageSchedule::seeded_link_flaps(42, &ids, 1_000_000, 8, 5_000);
        let b = OutageSchedule::seeded_link_flaps(42, &ids, 1_000_000, 8, 5_000);
        assert_eq!(format!("{a:?}").len(), format!("{b:?}").len());
        assert!(!a.is_empty());
        // Different seed, different schedule (with overwhelming odds).
        let c = OutageSchedule::seeded_link_flaps(43, &ids, 1_000_000, 8, 5_000);
        let at = |s: &OutageSchedule| {
            (0..1_000_000u64)
                .step_by(1_000)
                .filter(|&t| {
                    ids.iter().any(|&x| ids.iter().any(|&y| x < y && s.link_down_at(x, y, t)))
                })
                .count()
        };
        assert!(at(&a) > 0);
        let _ = at(&c);
    }

    #[test]
    fn degenerate_seeded_inputs_yield_empty_schedules() {
        assert!(OutageSchedule::seeded_link_flaps(1, &[0], 1_000, 4, 10).is_empty());
        assert!(OutageSchedule::seeded_link_flaps(1, &[0, 1], 0, 4, 10).is_empty());
    }
}
