//! The calibrated cost model — every simulation parameter in one place.

use crate::Nanos;

/// Size of a kernel page in bytes; `splice`/`vmsplice` move data at this
/// granularity.
pub const PAGE_SIZE: usize = 4096;

/// Calibrated parameters of the virtual testbed.
///
/// [`CostModel::paper_testbed`] reproduces the environment of the paper's
/// §6.2 (two 4-core 2 GHz VMs, 100 Mbit/s link, 1 ms RTT). The calibration
/// anchors are documented per field; DESIGN.md §7 derives them from the
/// paper's own breakdowns (Fig. 2b, Fig. 6, Fig. 7).
///
/// All `*_bytes_per_ns` fields are throughputs (bytes processed per
/// nanosecond of CPU time; 1.0 == 1 GB/s), all `*_ns` fields are fixed
/// latencies in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---------------------------------------------------------------- CPU
    /// Plain `memcpy` throughput on the host (≈ 8 GB/s on the paper's
    /// Skylake-generation Xeon).
    pub memcpy_bytes_per_ns: f64,
    /// Host-native serialization throughput (text codec). Calibrated so
    /// serialization is ~15 % of a Docker function's transfer time
    /// (Fig. 2b) → ≈ 0.83 GB/s.
    pub serialize_host_bytes_per_ns: f64,
    /// Host-native deserialization throughput (slightly faster: no
    /// escaping decisions, mostly validation + copy).
    pub deserialize_host_bytes_per_ns: f64,
    /// In-VM (interpreted, single-threaded) serialization throughput.
    /// Calibrated so serialization is ~60 % of a Wasm function's transfer
    /// time (Fig. 2b) → ≈ 62 MB/s.
    pub serialize_wasm_bytes_per_ns: f64,
    /// In-VM deserialization throughput.
    pub deserialize_wasm_bytes_per_ns: f64,
    /// Fixed cost per structured-value node during (de)serialization —
    /// tag dispatch, allocation of the node, etc.
    pub serialize_node_ns: Nanos,
    /// Shim ↔ Wasm linear memory throughput per direction (chunked,
    /// bounds-checked host calls through the runtime memory API). This is
    /// the "Wasm VM I/O" penalty of Fig. 6a. Calibrated at ≈ 0.95 GB/s so
    /// Roadrunner (Kernel space) lands ~13 % below RunC intra-node while
    /// Roadrunner (User space) stays clearly below both (§6.3).
    pub vm_io_bytes_per_ns: f64,
    /// Fixed cost of one guest↔host boundary crossing (a host call).
    pub wasm_boundary_ns: Nanos,
    /// Cost of one interpreted Wasm instruction (≈ 300 MIPS interpreter).
    pub wasm_instr_ns: f64,
    /// Memory allocation cost (zeroing + allocator bookkeeping), charged
    /// per byte for large buffers (≈ 20 GB/s).
    pub alloc_bytes_per_ns: f64,

    // ------------------------------------------------------------- kernel
    /// Fixed syscall entry/exit cost.
    pub syscall_ns: Nanos,
    /// Context switch cost (sleep/wake of the peer process on a pipe or
    /// socket rendezvous).
    pub ctx_switch_ns: Nanos,
    /// Cost of moving one page *reference* during `splice`/`vmsplice`
    /// (pipe-buffer bookkeeping, page-table lookups; no byte copies).
    /// The hose moves each page reference three times (user→pipe,
    /// pipe→socket, socket→pipe), so this must stay well below
    /// `memcpy` of a page (≈ 512 ns) for near-zero copy to win.
    pub page_map_ns: Nanos,
    /// Chunk size used by socket send/recv loops (64 KiB, the default
    /// pipe capacity on Linux).
    pub io_chunk_bytes: usize,

    // ------------------------------------------------------------ network
    /// Link bandwidth between nodes, bits per second.
    ///
    /// §6.2 states a 100 Mbit/s `tc` shape, but the paper's own series
    /// contradict it: Fig. 8a reports ≈ 5.5 s for a 480 MB transfer
    /// (≈ 700 Mbit/s effective) where 100 Mbit/s would need ≈ 38 s.
    /// The default uses the effective 700 Mbit/s implied by the measured
    /// figures so latency shapes match;
    /// [`Link::paper_wan`](crate::net::Link::paper_wan) keeps the literal
    /// 100 Mbit/s configuration for sensitivity runs.
    pub net_bandwidth_bps: u64,
    /// Round-trip time between nodes (paper: stable 1 ms).
    pub net_rtt_ns: Nanos,
    /// Loopback "wire" throughput for co-located HTTP (kernel-internal
    /// move; the copies themselves are charged separately).
    pub loopback_bytes_per_ns: f64,
    /// MTU used to estimate per-packet framing overhead.
    pub mtu_bytes: usize,

    // --------------------------------------------------------------- HTTP
    /// Fixed cost to build or parse an HTTP message head.
    pub http_head_ns: Nanos,

    // --------------------------------------------------------- cold start
    /// Container image unpack throughput (disk-bound, ≈ 200 MB/s).
    pub image_unpack_bytes_per_ns: f64,
    /// Container runtime initialization (runc + namespaces + cgroups +
    /// guest init).
    pub container_init_ns: Nanos,
    /// Wasm binary decode+instantiate throughput.
    pub wasm_load_bytes_per_ns: f64,
    /// Wasm VM bring-up (engine + store + linker).
    pub wasm_init_ns: Nanos,
}

impl CostModel {
    /// The calibrated model of the paper's testbed (§6.2).
    pub fn paper_testbed() -> Self {
        Self {
            memcpy_bytes_per_ns: 8.0,
            serialize_host_bytes_per_ns: 0.833,
            deserialize_host_bytes_per_ns: 1.0,
            serialize_wasm_bytes_per_ns: 0.062,
            deserialize_wasm_bytes_per_ns: 0.075,
            serialize_node_ns: 20,
            vm_io_bytes_per_ns: 0.95,
            wasm_boundary_ns: 1_000,
            wasm_instr_ns: 3.3,
            alloc_bytes_per_ns: 20.0,
            syscall_ns: 700,
            ctx_switch_ns: 3_000,
            page_map_ns: 60,
            io_chunk_bytes: 64 * 1024,
            net_bandwidth_bps: 700_000_000,
            net_rtt_ns: 1_000_000,
            loopback_bytes_per_ns: 10.0,
            mtu_bytes: 1500,
            http_head_ns: 10_000,
            image_unpack_bytes_per_ns: 0.2,
            container_init_ns: 1_800_000_000,
            wasm_load_bytes_per_ns: 0.05,
            wasm_init_ns: 40_000_000,
        }
    }

    /// Nanoseconds to `memcpy` `bytes`.
    pub fn memcpy_ns(&self, bytes: usize) -> Nanos {
        per_byte(bytes, self.memcpy_bytes_per_ns)
    }

    /// Nanoseconds to allocate (and zero) a buffer of `bytes`.
    pub fn alloc_ns(&self, bytes: usize) -> Nanos {
        per_byte(bytes, self.alloc_bytes_per_ns)
    }

    /// Nanoseconds to serialize `bytes` of payload spread over `nodes`
    /// structured nodes, at host speed.
    pub fn serialize_host_ns(&self, bytes: usize, nodes: usize) -> Nanos {
        per_byte(bytes, self.serialize_host_bytes_per_ns) + nodes as Nanos * self.serialize_node_ns
    }

    /// Host-speed deserialization of `bytes` over `nodes` nodes.
    pub fn deserialize_host_ns(&self, bytes: usize, nodes: usize) -> Nanos {
        per_byte(bytes, self.deserialize_host_bytes_per_ns)
            + nodes as Nanos * self.serialize_node_ns
    }

    /// In-VM serialization of `bytes` over `nodes` nodes (single-threaded
    /// interpreted guest).
    pub fn serialize_wasm_ns(&self, bytes: usize, nodes: usize) -> Nanos {
        per_byte(bytes, self.serialize_wasm_bytes_per_ns) + nodes as Nanos * self.serialize_node_ns
    }

    /// In-VM deserialization of `bytes` over `nodes` nodes.
    pub fn deserialize_wasm_ns(&self, bytes: usize, nodes: usize) -> Nanos {
        per_byte(bytes, self.deserialize_wasm_bytes_per_ns)
            + nodes as Nanos * self.serialize_node_ns
    }

    /// Nanoseconds for the shim to move `bytes` across the Wasm VM
    /// boundary in one direction (the "Wasm VM I/O" cost).
    pub fn vm_io_ns(&self, bytes: usize) -> Nanos {
        per_byte(bytes, self.vm_io_bytes_per_ns)
    }

    /// Number of pages needed to hold `bytes`.
    pub fn pages(&self, bytes: usize) -> usize {
        bytes.div_ceil(PAGE_SIZE)
    }

    /// Nanoseconds to move the page references of `bytes` through
    /// `splice`/`vmsplice` (no byte copies).
    pub fn page_map_ns_for(&self, bytes: usize) -> Nanos {
        self.pages(bytes) as Nanos * self.page_map_ns
    }

    /// Pure wire time for `bytes` on the inter-node link (excluding
    /// propagation), including per-MTU framing overhead (Ethernet + IP +
    /// TCP headers ≈ 66 bytes per packet).
    pub fn wire_ns(&self, bytes: usize) -> Nanos {
        if bytes == 0 {
            return 0;
        }
        let packets = bytes.div_ceil(self.mtu_bytes.max(1)) as u64;
        let framed = bytes as u64 + packets * 66;
        // bits / (bits/sec) = sec → ns
        framed.saturating_mul(8).saturating_mul(1_000_000_000) / self.net_bandwidth_bps
    }

    /// One-way propagation delay on the inter-node link.
    pub fn propagation_ns(&self) -> Nanos {
        self.net_rtt_ns / 2
    }

    /// Wire time for `bytes` over the loopback interface (co-located
    /// sandboxes talking TCP on one host).
    pub fn loopback_ns(&self, bytes: usize) -> Nanos {
        per_byte(bytes, self.loopback_bytes_per_ns)
    }

    /// Number of I/O chunks a transfer of `bytes` is split into.
    pub fn chunks(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.io_chunk_bytes.max(1)).max(1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

fn per_byte(bytes: usize, bytes_per_ns: f64) -> Nanos {
    debug_assert!(bytes_per_ns > 0.0, "throughput must be positive");
    (bytes as f64 / bytes_per_ns).round() as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_is_fastest_cpu_operation() {
        let m = CostModel::paper_testbed();
        let n = 1 << 20;
        assert!(m.memcpy_ns(n) < m.serialize_host_ns(n, 0));
        assert!(m.serialize_host_ns(n, 0) < m.serialize_wasm_ns(n, 0));
        assert!(m.memcpy_ns(n) < m.vm_io_ns(n));
    }

    #[test]
    fn wasm_serialization_is_an_order_of_magnitude_slower() {
        let m = CostModel::paper_testbed();
        let host = m.serialize_host_ns(1 << 20, 0) as f64;
        let wasm = m.serialize_wasm_ns(1 << 20, 0) as f64;
        assert!(wasm / host > 8.0, "ratio {}", wasm / host);
    }

    #[test]
    fn wire_time_matches_bandwidth() {
        let m = CostModel::paper_testbed();
        // 100 MB at the effective 700 Mbit/s ≈ 1.15 s + framing.
        let t = m.wire_ns(100_000_000);
        assert!(t > 1_100_000_000, "{t}");
        assert!(t < 1_350_000_000, "{t}");
    }

    #[test]
    fn wire_time_zero_for_empty() {
        assert_eq!(CostModel::paper_testbed().wire_ns(0), 0);
    }

    #[test]
    fn page_map_much_cheaper_than_copy_for_large_buffers() {
        let m = CostModel::paper_testbed();
        let bytes = 10 << 20;
        assert!(m.page_map_ns_for(bytes) < m.memcpy_ns(bytes) / 2);
    }

    #[test]
    fn node_costs_add_up() {
        let m = CostModel::paper_testbed();
        assert_eq!(
            m.serialize_host_ns(0, 10),
            10 * m.serialize_node_ns
        );
    }

    #[test]
    fn chunks_rounds_up() {
        let m = CostModel::paper_testbed();
        assert_eq!(m.chunks(0), 1);
        assert_eq!(m.chunks(1), 1);
        assert_eq!(m.chunks(m.io_chunk_bytes), 1);
        assert_eq!(m.chunks(m.io_chunk_bytes + 1), 2);
    }

    #[test]
    fn pages_rounds_up() {
        let m = CostModel::paper_testbed();
        assert_eq!(m.pages(0), 0);
        assert_eq!(m.pages(1), 1);
        assert_eq!(m.pages(PAGE_SIZE), 1);
        assert_eq!(m.pages(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn default_is_paper_testbed() {
        assert_eq!(CostModel::default(), CostModel::paper_testbed());
    }
}
