//! Point-to-point links with bandwidth and propagation delay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Nanos;

/// Per-packet L2–L4 framing overhead (Ethernet + IPv4 + TCP headers).
pub const FRAMING_BYTES: u64 = 66;

/// A shared point-to-point link between two hosts (or a host's loopback).
///
/// Tracks when the link becomes free (`busy_until`) so concurrent senders
/// serialize on the shared bandwidth — this is what bends the inter-node
/// fan-out curves (Fig. 10) once the 100 Mbit/s pipe saturates.
#[derive(Debug)]
pub struct Link {
    name: String,
    bandwidth_bps: u64,
    rtt_ns: Nanos,
    mtu_bytes: usize,
    busy_until: AtomicU64,
}

impl Link {
    /// Creates a link. `bandwidth_bps` is in bits per second.
    pub fn new(
        name: impl Into<String>,
        bandwidth_bps: u64,
        rtt_ns: Nanos,
        mtu_bytes: usize,
    ) -> Arc<Self> {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        assert!(mtu_bytes > 0, "link MTU must be positive");
        Arc::new(Self {
            name: name.into(),
            bandwidth_bps,
            rtt_ns,
            mtu_bytes,
            busy_until: AtomicU64::new(0),
        })
    }

    /// The paper's shaped inter-node link: 100 Mbit/s, 1 ms RTT.
    pub fn paper_wan(name: impl Into<String>) -> Arc<Self> {
        Self::new(name, 100_000_000, 1_000_000, 1500)
    }

    /// A host-local loopback: effectively memory-speed with a tiny RTT.
    pub fn loopback(name: impl Into<String>) -> Arc<Self> {
        // 80 Gbit/s ≈ 10 GB/s kernel-internal move; 60 µs RTT.
        Self::new(name, 80_000_000_000, 60_000, 65536)
    }

    /// Link name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Configured round-trip time.
    pub fn rtt_ns(&self) -> Nanos {
        self.rtt_ns
    }

    /// One-way propagation delay.
    pub fn propagation_ns(&self) -> Nanos {
        self.rtt_ns / 2
    }

    /// Pure transmission time of `bytes` including per-MTU framing.
    pub fn wire_ns(&self, bytes: usize) -> Nanos {
        if bytes == 0 {
            return 0;
        }
        let packets = bytes.div_ceil(self.mtu_bytes) as u64;
        let framed = bytes as u64 + packets * FRAMING_BYTES;
        framed.saturating_mul(8).saturating_mul(1_000_000_000) / self.bandwidth_bps
    }

    /// Reserves the link for `bytes` starting no earlier than `now`.
    /// Returns the time the last bit leaves the wire at the far end
    /// (transmission + propagation), accounting for earlier reservations.
    pub fn reserve(&self, now: Nanos, bytes: usize) -> Nanos {
        let tx = self.wire_ns(bytes);
        let mut observed = self.busy_until.load(Ordering::Relaxed);
        loop {
            let start = observed.max(now);
            let done = start + tx;
            match self.busy_until.compare_exchange_weak(
                observed,
                done,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return done + self.propagation_ns(),
                Err(v) => observed = v,
            }
        }
    }

    /// Forgets prior reservations (between benchmark repetitions).
    pub fn reset(&self) {
        self.busy_until.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let link = Link::paper_wan("wan");
        assert!(link.wire_ns(2_000_000) > 2 * link.wire_ns(999_000));
        assert_eq!(link.wire_ns(0), 0);
    }

    #[test]
    fn hundred_mb_takes_about_eight_seconds_on_paper_wan() {
        let link = Link::paper_wan("wan");
        let t = link.wire_ns(100_000_000);
        assert!((8.0..9.0).contains(&(t as f64 / 1e9)), "{t}");
    }

    #[test]
    fn loopback_is_orders_of_magnitude_faster() {
        let wan = Link::paper_wan("wan");
        let lo = Link::loopback("lo");
        assert!(wan.wire_ns(1 << 20) > 100 * lo.wire_ns(1 << 20));
    }

    #[test]
    fn reservations_serialize_bandwidth() {
        let link = Link::paper_wan("wan");
        let a = link.reserve(0, 1_000_000);
        let b = link.reserve(0, 1_000_000);
        // Second transfer starts after the first's transmission finishes.
        assert!(b >= a + link.wire_ns(1_000_000) - link.propagation_ns());
    }

    #[test]
    fn reserve_includes_propagation() {
        let link = Link::paper_wan("wan");
        let done = link.reserve(0, 0);
        assert_eq!(done, link.propagation_ns());
    }

    #[test]
    fn reset_clears_backlog() {
        let link = Link::paper_wan("wan");
        link.reserve(0, 10_000_000);
        link.reset();
        let done = link.reserve(0, 1500);
        assert!(done < 1_000_000 + link.propagation_ns());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        Link::new("bad", 0, 0, 1500);
    }
}
