//! Deterministic virtual kernel and network simulator.
//!
//! The Roadrunner paper measures its system on a two-node testbed (4-core
//! 2 GHz VMs, 8 GB RAM, Ubuntu 22.04, a 100 Mbit/s link with 1 ms RTT) and
//! reads CPU and memory telemetry from cgroups. This crate substitutes that
//! testbed with a *virtual-time* simulator so the evaluation is
//! deterministic and laptop-runnable while still **actually moving every
//! payload byte** (so data integrity is testable end to end).
//!
//! The pieces:
//!
//! * [`VirtualClock`] — monotonically advancing virtual nanoseconds.
//! * [`CostModel`] — every calibrated parameter of the simulation in one
//!   documented struct ([`CostModel::paper_testbed`] reproduces the paper's
//!   environment).
//! * [`ResourceAccount`] — cgroup-style per-sandbox accounting: user-space
//!   CPU time, kernel-space CPU time, current/peak RAM. These are the raw
//!   series behind the paper's Fig. 7–10 panels (e)–(h).
//! * [`buffer`] — page-granular segmented buffers over [`bytes::Bytes`];
//!   zero-copy means *moving page references*, copies are real `memcpy`s.
//! * [`pipe`] — kernel pipes with `vmsplice` (page gifting from user
//!   memory) and `splice` (page moves between pipe and socket) — the
//!   building blocks of Roadrunner's virtual data hose (paper §4.3,
//!   Algorithm 1).
//! * [`unix`] — Unix-domain stream sockets, the kernel-space transfer
//!   mechanism (paper §4.2).
//! * [`tcp`] — a TCP-like byte stream between nodes with bandwidth and RTT
//!   from the link model.
//! * [`pipeline`] — a chunk-level pipeline timing engine that models
//!   whether transfer stages overlap (tokio-style streaming in RunC and in
//!   Roadrunner shims) or execute strictly sequentially (the
//!   single-threaded WasmEdge guest).
//! * [`sched`] — discrete-event scheduling primitives (per-resource
//!   timelines, a deterministic event queue) that let the platform's DAG
//!   executor overlap independent workflow edges in virtual time while
//!   contended cores and links serialize.
//! * [`node`] / [`testbed`] — hosts, sandboxes and links wired into the
//!   paper's topology.
//! * [`cluster`] — N-node topologies beyond the paper's two-VM pair:
//!   heterogeneous nodes joined by a per-pair link mesh, built into the
//!   same [`Testbed`] everything else already runs on.
//! * [`outage`] — deterministic link/node up–down schedules that make
//!   the cluster fallible: timelines reject reservations during a down
//!   window so the platform's engines see transfer failures and retry.
//!
//! # Example
//!
//! ```
//! use roadrunner_vkernel::{CostModel, Testbed};
//!
//! let bed = Testbed::paper();
//! let sandbox = bed.node(0).sandbox("fn-a");
//! sandbox.charge_user(1_000);
//! assert_eq!(sandbox.user_ns(), 1_000);
//! assert_eq!(bed.cost().net_bandwidth_bps, CostModel::paper_testbed().net_bandwidth_bps);
//! ```

pub mod account;
pub mod buffer;
pub mod clock;
pub mod cluster;
pub mod costmodel;
pub mod error;
pub mod net;
pub mod node;
pub mod outage;
pub mod pipe;
pub mod pipeline;
pub mod sched;
pub mod tcp;
pub mod testbed;
pub mod unix;

pub use account::ResourceAccount;
pub use clock::VirtualClock;
pub use cluster::{ClusterSpec, LinkSpec, NodeSpec};
pub use costmodel::CostModel;
pub use error::VkError;
pub use net::Link;
pub use node::Node;
pub use outage::{OutageSchedule, OutageWindow};
pub use pipeline::{Overlap, Space, Stage, TransferOutcome};
pub use sched::{EventQueue, NodeView, ResourceView, SchedResources, Timeline};
pub use testbed::Testbed;

/// Virtual time in nanoseconds.
pub type Nanos = u64;

/// Converts virtual nanoseconds to floating-point seconds (for reports).
pub fn secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}
