//! Kernel pipes with `splice`/`vmsplice` — the virtual data hose.
//!
//! The paper's network transfer (§4.3, Algorithm 1) builds a *virtual data
//! hose*: user-space pages are **gifted** into a pipe with `vmsplice(2)`
//! (the kernel takes references to the caller's pages instead of copying
//! them) and then **moved** between the pipe and a socket with `splice(2)`
//! (reference moves between kernel buffers). The only per-byte work left
//! is page-table bookkeeping, charged here as
//! [`CostModel::page_map_ns`](crate::CostModel) per 4 KiB page.
//!
//! Copying entry points ([`Pipe::write`]/[`Pipe::read`]) model ordinary
//! `write(2)`/`read(2)` for comparison; tests verify via pointer identity
//! that the splice paths really do not move payload bytes.

use bytes::Bytes;

use crate::buffer::SegBuf;
use crate::costmodel::PAGE_SIZE;
use crate::error::VkError;
use crate::node::Sandbox;

/// Default pipe capacity (matches Linux: 16 pages = 64 KiB).
pub const DEFAULT_CAPACITY: usize = 16 * PAGE_SIZE;

/// A unidirectional kernel pipe.
#[derive(Debug)]
pub struct Pipe {
    buf: SegBuf,
    capacity: usize,
    write_open: bool,
    read_open: bool,
}

impl Default for Pipe {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl Pipe {
    /// Creates a pipe with the given capacity in bytes.
    ///
    /// The simulator does not block writers; capacity determines syscall
    /// batching (a transfer of `n` bytes costs `ceil(n / capacity)`
    /// syscalls, as a real writer loops when the pipe fills).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: SegBuf::new(),
            capacity: capacity.max(PAGE_SIZE),
            write_open: true,
            read_open: true,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered in the pipe.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Closes the write end. Subsequent writes fail; reads drain what is
    /// left and then return `Ok(None)`.
    pub fn close_write(&mut self) {
        self.write_open = false;
    }

    /// Closes the read end. Subsequent writes fail with a broken pipe.
    pub fn close_read(&mut self) {
        self.read_open = false;
    }

    fn check_writable(&self) -> Result<(), VkError> {
        if !self.write_open || !self.read_open {
            return Err(VkError::Closed);
        }
        Ok(())
    }

    /// Ordinary `write(2)`: copies `data` from user space into kernel pipe
    /// buffers. Charges syscalls (one per capacity-sized burst) plus a
    /// user→kernel `memcpy`, all as kernel time of `caller`.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if either end is closed.
    pub fn write(&mut self, caller: &Sandbox, data: &[u8]) -> Result<usize, VkError> {
        self.check_writable()?;
        if data.is_empty() {
            return Ok(0);
        }
        let cost = caller.cost();
        let syscalls = data.len().div_ceil(self.capacity) as u64;
        caller.charge_kernel(syscalls * cost.syscall_ns + cost.memcpy_ns(data.len()));
        self.buf.push_copy(data);
        Ok(data.len())
    }

    /// `vmsplice(2)` with `SPLICE_F_GIFT`: moves page *references* from
    /// user memory into the pipe without copying. Charges syscalls plus
    /// per-page map cost as kernel time of `caller`.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if either end is closed.
    pub fn vmsplice_gift(&mut self, caller: &Sandbox, data: Bytes) -> Result<usize, VkError> {
        self.check_writable()?;
        if data.is_empty() {
            return Ok(0);
        }
        let cost = caller.cost();
        let syscalls = data.len().div_ceil(self.capacity) as u64;
        caller.charge_kernel(syscalls * cost.syscall_ns + cost.page_map_ns_for(data.len()));
        let n = data.len();
        self.buf.push_ref(data);
        Ok(n)
    }

    /// `splice(2)` *into* the pipe from another kernel buffer (e.g. a
    /// socket): reference move, no copy.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if either end is closed.
    pub fn splice_in(&mut self, caller: &Sandbox, data: Bytes) -> Result<usize, VkError> {
        self.check_writable()?;
        if data.is_empty() {
            return Ok(0);
        }
        let cost = caller.cost();
        caller.charge_kernel(cost.syscall_ns + cost.page_map_ns_for(data.len()));
        let n = data.len();
        self.buf.push_ref(data);
        Ok(n)
    }

    /// Ordinary `read(2)`: copies up to `max` bytes from the pipe into a
    /// fresh user buffer. Returns `Ok(None)` when the pipe is drained and
    /// the write end closed.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if the read end was closed.
    pub fn read(&mut self, caller: &Sandbox, max: usize) -> Result<Option<Bytes>, VkError> {
        if !self.read_open {
            return Err(VkError::Closed);
        }
        let cost = caller.cost();
        match self.buf.pop_copy(max) {
            Some(chunk) => {
                caller.charge_kernel(cost.syscall_ns + cost.memcpy_ns(chunk.len()));
                Ok(Some(chunk))
            }
            None if !self.write_open => Ok(None),
            None => {
                // A real read would block; the simulator charges the
                // syscall and reports no data.
                caller.charge_kernel(cost.syscall_ns);
                Ok(Some(Bytes::new()))
            }
        }
    }

    /// `splice(2)` *out of* the pipe towards another kernel buffer:
    /// removes up to `max` bytes as a reference, no copy. Returns
    /// `Ok(None)` when drained and the write end closed.
    ///
    /// # Errors
    ///
    /// [`VkError::Closed`] if the read end was closed.
    pub fn splice_out(&mut self, caller: &Sandbox, max: usize) -> Result<Option<Bytes>, VkError> {
        if !self.read_open {
            return Err(VkError::Closed);
        }
        let cost = caller.cost();
        match self.buf.pop_ref(max) {
            Some(chunk) => {
                caller.charge_kernel(cost.syscall_ns + cost.page_map_ns_for(chunk.len()));
                Ok(Some(chunk))
            }
            None if !self.write_open => Ok(None),
            None => {
                caller.charge_kernel(cost.syscall_ns);
                Ok(Some(Bytes::new()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::costmodel::CostModel;
    use std::sync::Arc;

    fn sandbox() -> Sandbox {
        Sandbox::detached("test", VirtualClock::new(), Arc::new(CostModel::paper_testbed()))
    }

    #[test]
    fn write_then_read_round_trips() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        pipe.write(&sb, b"hello pipe").unwrap();
        pipe.close_write();
        let got = pipe.read(&sb, 1024).unwrap().unwrap();
        assert_eq!(&got[..], b"hello pipe");
        assert_eq!(pipe.read(&sb, 1024).unwrap(), None);
    }

    #[test]
    fn vmsplice_is_zero_copy() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        let data = Bytes::from(vec![3u8; 8192]);
        let ptr = data.as_ptr();
        pipe.vmsplice_gift(&sb, data).unwrap();
        let out = pipe.splice_out(&sb, 8192).unwrap().unwrap();
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn write_is_copying() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        let data = vec![4u8; 4096];
        pipe.write(&sb, &data).unwrap();
        let out = pipe.splice_out(&sb, 4096).unwrap().unwrap();
        assert_ne!(out.as_ptr(), data.as_ptr());
        assert_eq!(&out[..], &data[..]);
    }

    #[test]
    fn gift_charges_less_kernel_time_than_copy_for_big_buffers() {
        let cost = Arc::new(CostModel::paper_testbed());
        let copy_sb =
            Sandbox::detached("copy", VirtualClock::new(), Arc::clone(&cost));
        let gift_sb = Sandbox::detached("gift", VirtualClock::new(), cost);
        let data = vec![0u8; 1 << 20];
        Pipe::default().write(&copy_sb, &data).unwrap();
        Pipe::default().vmsplice_gift(&gift_sb, Bytes::from(data)).unwrap();
        // memcpy at 8 GB/s = 131 µs/MiB vs 256 pages * 150 ns = 38 µs.
        assert!(gift_sb.kernel_ns() < copy_sb.kernel_ns());
    }

    #[test]
    fn syscall_count_scales_with_capacity() {
        let cost = Arc::new(CostModel::paper_testbed());
        let small_sb = Sandbox::detached("s", VirtualClock::new(), Arc::clone(&cost));
        let big_sb = Sandbox::detached("b", VirtualClock::new(), cost);
        let data = vec![0u8; 1 << 20];
        Pipe::new(4096).write(&small_sb, &data).unwrap();
        Pipe::new(1 << 20).write(&big_sb, &data).unwrap();
        assert!(small_sb.kernel_ns() > big_sb.kernel_ns());
    }

    #[test]
    fn closed_pipe_rejects_writes() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        pipe.close_read();
        assert_eq!(pipe.write(&sb, b"x").unwrap_err(), VkError::Closed);
        assert_eq!(pipe.vmsplice_gift(&sb, Bytes::from_static(b"x")).unwrap_err(), VkError::Closed);
    }

    #[test]
    fn closed_reader_rejects_reads() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        pipe.close_read();
        assert_eq!(pipe.read(&sb, 1).unwrap_err(), VkError::Closed);
    }

    #[test]
    fn empty_open_pipe_reports_empty_chunk() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        let got = pipe.read(&sb, 16).unwrap().unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn splice_in_then_out_preserves_identity() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        let data = Bytes::from(vec![9u8; 4096]);
        let ptr = data.as_ptr();
        pipe.splice_in(&sb, data).unwrap();
        let out = pipe.splice_out(&sb, usize::MAX).unwrap().unwrap();
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn empty_payload_operations_are_noops() {
        let sb = sandbox();
        let mut pipe = Pipe::default();
        assert_eq!(pipe.write(&sb, b"").unwrap(), 0);
        assert_eq!(pipe.vmsplice_gift(&sb, Bytes::new()).unwrap(), 0);
        assert_eq!(pipe.splice_in(&sb, Bytes::new()).unwrap(), 0);
        assert_eq!(sb.kernel_ns(), 0);
    }
}
