//! Discrete-event scheduling primitives over the virtual clock.
//!
//! The workflow engine above (`roadrunner-platform`) executes arbitrary
//! DAGs: independent edges genuinely overlap in virtual time while
//! contended resources — a node's cores, the shared WAN link — serialize
//! the work placed on them. This module provides the three pieces that
//! schedule needs:
//!
//! * [`Timeline`] — one resource of integral capacity `c` (a 4-core CPU
//!   is a capacity-4 timeline, the WAN link capacity 1). Reservations are
//!   placed greedily on the earliest-free lane, the classic list-scheduler
//!   discipline.
//! * [`EventQueue`] — a deterministic min-heap of timed events. Ties are
//!   broken by insertion order, so identical runs replay identically.
//! * [`SchedResources`] — the timelines of a whole testbed (per-node CPU
//!   plus the shared inter-node link), ready for the executor to reserve
//!   against. Capacity is **elastic**: [`SchedResources::add_node`] /
//!   [`SchedResources::remove_last_node`] grow and shrink the active node
//!   set mid-stream, preserving every surviving timeline.
//! * [`ResourceView`] — a cheap snapshot of the live per-node and
//!   per-link state ([`SchedResources::view`]): what placement policies
//!   and the autoscaler in the platform layer observe.
//!
//! All times are **relative** virtual nanoseconds: the executor measures
//! real per-edge costs against the shared [`VirtualClock`](crate::VirtualClock)
//! (every payload byte still moves), then replays those durations onto the
//! timelines to find the overlapped completion time.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::outage::OutageSchedule;
use crate::testbed::Testbed;
use crate::Nanos;

/// One schedulable resource of fixed capacity.
///
/// A capacity-`c` timeline holds `c` lanes; a reservation occupies one
/// lane for its duration. [`Timeline::reserve`] grants the earliest start
/// no earlier than the caller's ready time — contention shows up as the
/// granted start sliding past it.
///
/// Lanes are kept as a min-heap of free times with a cached maximum, so
/// [`reserve`](Self::reserve) is O(log c) and the aggregate reads the
/// control loop hammers on every event — [`free_at`](Self::free_at),
/// [`busy_until`](Self::busy_until), [`backlog_at`](Self::backlog_at) —
/// are O(1) instead of O(c) lane scans. Lanes are homogeneous, so popping
/// *any* earliest-free lane grants the same start the old linear scan
/// did: schedules are unchanged.
///
/// ```
/// # use roadrunner_vkernel::sched::Timeline;
/// let mut link = Timeline::new("wan", 1);
/// assert_eq!(link.reserve(0, 100), 0);   // link free: starts at once
/// assert_eq!(link.reserve(0, 100), 100); // second transfer queues
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    label: String,
    /// Lane free times, earliest on top.
    lanes: BinaryHeap<Reverse<Nanos>>,
    reserved: Nanos,
    /// Cached `max` over lane free times. Lanes only move forward, so the
    /// maximum is maintained incrementally.
    latest: Nanos,
}

impl Timeline {
    /// Creates a resource with `capacity` parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(label: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "a resource needs at least one lane");
        Self {
            label: label.into(),
            lanes: (0..capacity).map(|_| Reverse(0)).collect(),
            reserved: 0,
            latest: 0,
        }
    }

    /// The resource's label (for reports and panics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of parallel lanes.
    pub fn capacity(&self) -> usize {
        self.lanes.len()
    }

    /// Reserves one lane for `duration` starting no earlier than
    /// `earliest`; returns the granted start time. A zero-duration
    /// reservation never blocks and never occupies a lane.
    pub fn reserve(&mut self, earliest: Nanos, duration: Nanos) -> Nanos {
        if duration == 0 {
            return earliest;
        }
        // Greedy list scheduling: the earliest-free lane yields the
        // earliest feasible start (lanes are homogeneous).
        let Reverse(free) = self.lanes.pop().expect("capacity checked at construction");
        let start = free.max(earliest);
        let until = start + duration;
        self.lanes.push(Reverse(until));
        self.latest = self.latest.max(until);
        self.reserved += duration;
        start
    }

    /// Total busy time reserved across all lanes since construction or the
    /// last [`reset`](Self::reset) — the numerator of the resource's
    /// utilization (`reserved_ns / (capacity × horizon)`).
    pub fn reserved_ns(&self) -> Nanos {
        self.reserved
    }

    /// Earliest time any lane is free. O(1): the heap top.
    ///
    /// Monotone under reservations: no `reserve` call ever moves a
    /// lane's free time backwards, so successive `free_at` readings are
    /// non-decreasing (property-tested in `tests/sched_properties.rs`).
    pub fn free_at(&self) -> Nanos {
        self.lanes.peek().map(|&Reverse(t)| t).unwrap_or(0)
    }

    /// Work queued beyond `now`: how long the busiest lane still has to
    /// drain. Zero for an idle (or already-drained) resource. O(1).
    pub fn backlog_at(&self, now: Nanos) -> Nanos {
        self.latest.saturating_sub(now)
    }

    /// Time the last reservation drains. O(1): the cached maximum.
    pub fn busy_until(&self) -> Nanos {
        self.latest
    }

    /// Every lane's free time, sorted ascending. O(c log c) — used only
    /// on the cold path (migrating a removed node's backlog), never in
    /// the per-event control loop.
    pub fn lane_ends(&self) -> Vec<Nanos> {
        let mut ends: Vec<Nanos> = self.lanes.iter().map(|&Reverse(t)| t).collect();
        ends.sort_unstable();
        ends
    }

    /// Clears all reservations.
    pub fn reset(&mut self) {
        let capacity = self.lanes.len();
        self.lanes.clear();
        self.lanes.extend((0..capacity).map(|_| Reverse(0)));
        self.reserved = 0;
        self.latest = 0;
    }
}

struct Event<T> {
    at: Nanos,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (FIFO among equals) on top.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events pop in ascending time order; events at the same instant pop in
/// insertion order, which keeps discrete-event runs bit-for-bit
/// reproducible.
///
/// ```
/// # use roadrunner_vkernel::sched::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(50, "late");
/// q.push(10, "early");
/// q.push(10, "early-second");
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-second")));
/// assert_eq!(q.pop(), Some((50, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Enqueues `item` to fire at virtual time `at`.
    pub fn push(&mut self, at: Nanos, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { at, seq, item });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("len", &self.heap.len()).finish()
    }
}

/// The schedulable resources of a testbed: one CPU timeline per node
/// (capacity = core count) and the inter-node links (capacity 1 each —
/// concurrent transfers share a link's bandwidth by queueing behind each
/// other, matching [`run_fanout`](crate::pipeline::run_fanout)'s
/// single-capacity wire).
///
/// Two link layouts exist. The classic layout (the paper's two-VM pair)
/// has **one shared WAN timeline** that every inter-node edge reserves.
/// Cluster-built resources ([`SchedResources::mesh`] /
/// [`SchedResources::for_testbed`] over a cluster testbed) carry **one
/// timeline per node pair**, so traffic between nodes 0↔1 no longer
/// queues behind traffic between 2↔3.
/// One node's slice of a [`ResourceView`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// Core count (the CPU timeline's lane count).
    pub cores: u32,
    /// Earliest time any core lane is free.
    pub free_at: Nanos,
    /// Work queued beyond the snapshot instant: how long the busiest
    /// lane still has to drain. The backlog-depth signal placement
    /// policies and the autoscaler route on.
    pub backlog_ns: Nanos,
    /// Total busy time reserved on the node since construction/reset.
    pub reserved_ns: Nanos,
    /// Reserved-time utilization up to the snapshot instant:
    /// `reserved_ns / (cores × now)`, 0 at `now == 0`. Can exceed 1
    /// transiently — reservations may extend past `now`.
    pub utilization: f64,
}

/// A cheap, immutable snapshot of a [`SchedResources`]' live state at one
/// instant — what placement policies and the autoscaler observe.
///
/// Building a view copies O(nodes + links) scalars; no timeline is
/// cloned. The snapshot is taken *before* the observed instance reserves
/// anything, so a policy routing on it sees exactly the load every
/// earlier admission created. Steady-state observers (the load engine,
/// the autoscaler) refresh one scratch view in place through
/// [`SchedResources::view_into`], so per-event snapshots allocate nothing
/// once the scratch buffers have grown to the cluster size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceView {
    now: Nanos,
    nodes: Vec<NodeView>,
    /// Per-pair link backlogs (flattened upper-triangular); empty for
    /// the classic shared-WAN layout.
    link_backlogs: Vec<Nanos>,
    /// The shared WAN timeline's backlog (what same-node queries and
    /// every pair on the non-mesh layout report).
    wan_backlog: Nanos,
    meshed: bool,
}

impl ResourceView {
    /// The instant the snapshot was taken.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of (currently active) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node slices, in node order.
    pub fn nodes(&self) -> &[NodeView] {
        &self.nodes
    }

    /// Node `i`'s slice.
    pub fn node(&self, i: usize) -> &NodeView {
        &self.nodes[i]
    }

    /// Backlog of the link carrying traffic between nodes `a` and `b`
    /// (the pair's own link on a mesh, the shared WAN otherwise; equal
    /// indexes report the shared link, mirroring
    /// [`SchedResources::link_between`]).
    pub fn link_backlog_between(&self, a: usize, b: usize) -> Nanos {
        let n = self.nodes.len();
        let (a, b) = (a % n, b % n);
        if self.meshed && a != b {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            self.link_backlogs[pair_index(n, lo, hi)]
        } else {
            self.wan_backlog
        }
    }

    /// Total node backlog across the cluster.
    pub fn total_backlog_ns(&self) -> Nanos {
        self.nodes.iter().map(|n| n.backlog_ns).sum()
    }

    /// Mean node backlog — the autoscaler's load signal.
    pub fn mean_backlog_ns(&self) -> Nanos {
        if self.nodes.is_empty() {
            0
        } else {
            self.total_backlog_ns() / self.nodes.len() as u64
        }
    }

    /// Adds a synthetic backlog penalty to node `node`'s slice. The
    /// overload layer uses this to steer placement away from nodes with
    /// open circuit breakers: policies keep routing on `backlog_ns`
    /// unchanged and simply see the penalized node as deeply loaded.
    /// Saturating; only this snapshot is affected, never the underlying
    /// timelines.
    pub fn add_backlog_penalty(&mut self, node: usize, penalty_ns: Nanos) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.backlog_ns = n.backlog_ns.saturating_add(penalty_ns);
        }
    }
}

/// The cluster's schedulable capacity: per-node CPU [`Timeline`]s plus
/// either one shared WAN link or a per-pair mesh.
///
/// `SchedResources` is `Send` (asserted at compile time below), and a
/// sweep worker that wants an isolated simulation should *construct its
/// own* instance inside the worker thread rather than share one: every
/// reservation mutates timeline state, so two concurrent runs against
/// one instance would interleave nondeterministically. Per-worker
/// construction is cheap — a handful of heap vectors — and is what
/// makes the parallel sweep engine's output byte-identical to the
/// serial loop's.
#[derive(Debug, Clone)]
pub struct SchedResources {
    cpus: Vec<Timeline>,
    wan: Timeline,
    mesh: Option<Vec<Timeline>>,
    /// Stable per-node ids, parallel to `cpus`. Indices shift as the
    /// autoscaler adds and removes nodes; ids never do, so outage
    /// schedules written before a run keep naming the same machine.
    ids: Vec<u64>,
    /// Next fresh id handed to [`add_node`](Self::add_node).
    next_id: u64,
    /// Lane count for mesh pair links, applied to the initial mesh and
    /// to every fresh link scale-out creates.
    link_capacity: usize,
    /// Attached outage schedule; `None` (the default) means nothing
    /// ever fails and the `try_reserve_*` paths degrade to plain
    /// reservations.
    outages: Option<Arc<OutageSchedule>>,
    /// Busy time reserved on since-removed node CPU timelines, kept so
    /// utilization totals stay monotone across scale-in.
    retired_cpu_ns: Nanos,
    /// Busy time reserved on since-removed mesh links.
    retired_link_ns: Nanos,
}

/// Index of the unordered pair `(a, b)`, `a < b`, in a flattened
/// upper-triangular matrix over `n` nodes.
pub(crate) fn pair_index(n: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < n);
    a * (2 * n - a - 1) / 2 + (b - a - 1)
}

impl SchedResources {
    /// Resources for `node_count` nodes of `cores` cores each, joined by
    /// one shared link.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` or `cores` is zero.
    pub fn new(node_count: usize, cores: u32) -> Self {
        assert!(node_count > 0, "a schedule needs at least one node");
        let cpus = (0..node_count)
            .map(|i| Timeline::new(format!("cpu-{i}"), cores as usize))
            .collect();
        Self {
            cpus,
            wan: Timeline::new("wan", 1),
            mesh: None,
            ids: (0..node_count as u64).collect(),
            next_id: node_count as u64,
            link_capacity: 1,
            outages: None,
            retired_cpu_ns: 0,
            retired_link_ns: 0,
        }
    }

    /// Resources for heterogeneous nodes (per-node core counts), joined
    /// by one shared link.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty or any entry is zero.
    pub fn heterogeneous(cores: &[u32]) -> Self {
        assert!(!cores.is_empty(), "a schedule needs at least one node");
        let cpus = cores
            .iter()
            .enumerate()
            .map(|(i, &c)| Timeline::new(format!("cpu-{i}"), c as usize))
            .collect();
        Self {
            cpus,
            wan: Timeline::new("wan", 1),
            mesh: None,
            ids: (0..cores.len() as u64).collect(),
            next_id: cores.len() as u64,
            link_capacity: 1,
            outages: None,
            retired_cpu_ns: 0,
            retired_link_ns: 0,
        }
    }

    /// Resources for heterogeneous nodes joined by a **full mesh** of
    /// point-to-point links: each node pair gets its own capacity-1
    /// timeline, so transfers between disjoint pairs never contend.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty or any entry is zero.
    pub fn mesh(cores: &[u32]) -> Self {
        Self::mesh_with_link_capacity(cores, 1)
    }

    /// [`mesh`](Self::mesh) with `link_capacity` lanes per pair link.
    /// The capacity is remembered: every fresh link a later
    /// [`add_node`](Self::add_node) creates gets the same lane count, so
    /// scale-out on a capacity-2 mesh yields capacity-2 links.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty, any entry is zero, or
    /// `link_capacity` is zero.
    pub fn mesh_with_link_capacity(cores: &[u32], link_capacity: usize) -> Self {
        assert!(link_capacity > 0, "a link needs at least one lane");
        let mut this = Self::heterogeneous(cores);
        this.link_capacity = link_capacity;
        let n = this.cpus.len();
        let mut links = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for a in 0..n {
            for b in a + 1..n {
                links.push(Timeline::new(format!("link-{a}-{b}"), link_capacity));
            }
        }
        this.mesh = Some(links);
        this
    }

    /// Resources mirroring `testbed`'s topology: per-node core counts,
    /// and a per-pair link mesh when the testbed was built from a
    /// [`ClusterSpec`](crate::cluster::ClusterSpec) with per-pair links
    /// (the classic shared-WAN layout otherwise).
    pub fn for_testbed(testbed: &Testbed) -> Self {
        let cores: Vec<u32> = testbed.nodes().iter().map(|n| n.cores()).collect();
        if testbed.has_pair_links() {
            Self::mesh_with_link_capacity(&cores, testbed.link_lanes())
        } else {
            Self::heterogeneous(&cores)
        }
    }

    /// Stable id of node `idx` (indexes wrap like [`cpu`](Self::cpu)).
    /// Ids are assigned at construction (`0..n`) and never reused; they
    /// are what outage schedules key on, so a schedule keeps naming the
    /// same machine while the autoscaler shifts indices.
    pub fn node_id(&self, idx: usize) -> u64 {
        self.ids[idx % self.ids.len()]
    }

    /// Current index of the node with stable id `id`, if it is still
    /// part of the cluster.
    pub fn node_index_of(&self, id: u64) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Attaches an outage schedule: the `try_reserve_*` paths and the
    /// down-query helpers consult it from now on. Detaching is not
    /// supported — pass an empty schedule for an immortal cluster.
    pub fn set_outages(&mut self, schedule: Arc<OutageSchedule>) {
        self.outages = Some(schedule);
    }

    /// The attached outage schedule, if any.
    pub fn outages(&self) -> Option<&Arc<OutageSchedule>> {
        self.outages.as_ref()
    }

    /// Whether node `idx` is down at `at` under the attached schedule
    /// (always up without one; indexes wrap like [`cpu`](Self::cpu)).
    pub fn node_down_at(&self, idx: usize, at: Nanos) -> bool {
        match &self.outages {
            Some(s) => s.node_down_at(self.node_id(idx), at),
            None => false,
        }
    }

    /// Whether the link carrying traffic between `a` and `b` is down at
    /// `at` — a pair window, or either endpoint node down. Equal
    /// indexes reduce to the node query (co-located transfers never
    /// cross a link).
    pub fn link_down_between_at(&self, a: usize, b: usize, at: Nanos) -> bool {
        let n = self.cpus.len();
        let (a, b) = (a % n, b % n);
        match &self.outages {
            Some(s) if a != b => s.link_down_at(self.node_id(a), self.node_id(b), at),
            Some(s) => s.node_down_at(self.node_id(a), at),
            None => false,
        }
    }

    /// Reserves `duration` on node `idx`'s CPU starting no earlier than
    /// `earliest`, unless the node is down at `earliest` under the
    /// attached outage schedule — then `None`, and nothing is reserved.
    /// Identical to a plain [`cpu`](Self::cpu) + `reserve` when no
    /// schedule is attached.
    pub fn try_reserve_cpu(&mut self, idx: usize, earliest: Nanos, duration: Nanos) -> Option<Nanos> {
        if self.node_down_at(idx, earliest) {
            return None;
        }
        Some(self.cpu(idx).reserve(earliest, duration))
    }

    /// Reserves `duration` on the link between `a` and `b` starting no
    /// earlier than `earliest`, unless that link (or either endpoint
    /// node) is down at `earliest` — then `None`, and nothing is
    /// reserved.
    pub fn try_reserve_link(
        &mut self,
        a: usize,
        b: usize,
        earliest: Nanos,
        duration: Nanos,
    ) -> Option<Nanos> {
        if self.link_down_between_at(a, b, earliest) {
            return None;
        }
        Some(self.link_between(a, b).reserve(earliest, duration))
    }

    /// Number of nodes the resources model.
    pub fn node_count(&self) -> usize {
        self.cpus.len()
    }

    /// CPU timeline of node `i` (indexes wrap onto the known nodes, so a
    /// plane that places everything on one logical node still schedules).
    pub fn cpu(&mut self, node: usize) -> &mut Timeline {
        let n = self.cpus.len();
        &mut self.cpus[node % n]
    }

    /// The link timeline between two distinct nodes.
    pub fn link(&mut self) -> &mut Timeline {
        &mut self.wan
    }

    /// The link timeline carrying traffic between nodes `a` and `b`
    /// (indexes wrap onto the known nodes): the pair's own timeline on a
    /// mesh, the shared WAN otherwise. Equal indexes fall back to the
    /// shared link — callers schedule co-located transfers on the CPU and
    /// never ask for them.
    pub fn link_between(&mut self, a: usize, b: usize) -> &mut Timeline {
        let n = self.cpus.len();
        let (a, b) = (a % n, b % n);
        match &mut self.mesh {
            Some(links) if a != b => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                &mut links[pair_index(n, lo, hi)]
            }
            _ => &mut self.wan,
        }
    }

    /// Snapshots the live state of every node and link at instant `now` —
    /// the observation side of the elastic control loop. O(nodes + links)
    /// scalar reads; nothing is cloned or locked. Allocates fresh view
    /// buffers; steady-state observers should reuse a scratch view via
    /// [`view_into`](Self::view_into) instead.
    pub fn view(&self, now: Nanos) -> ResourceView {
        let mut out = ResourceView::default();
        self.view_into(now, &mut out);
        out
    }

    /// [`view`](Self::view), refreshing `out` in place. The scratch
    /// view's node and link buffers are reused, so once they have grown
    /// to the cluster size a snapshot allocates nothing — the per-event
    /// observation path of the load engine and the autoscaler is
    /// allocation-free in steady state.
    pub fn view_into(&self, now: Nanos, out: &mut ResourceView) {
        out.now = now;
        out.nodes.clear();
        out.nodes.extend(self.cpus.iter().map(|cpu| {
            let reserved = cpu.reserved_ns();
            let lanes = cpu.capacity() as u64;
            NodeView {
                cores: cpu.capacity() as u32,
                free_at: cpu.free_at(),
                backlog_ns: cpu.backlog_at(now),
                reserved_ns: reserved,
                utilization: if now == 0 {
                    0.0
                } else {
                    reserved as f64 / (lanes * now) as f64
                },
            }
        }));
        out.link_backlogs.clear();
        match &self.mesh {
            Some(links) => {
                out.link_backlogs.extend(links.iter().map(|l| l.backlog_at(now)));
                out.meshed = true;
            }
            None => {
                out.meshed = false;
            }
        }
        out.wan_backlog = self.wan.backlog_at(now);
    }

    /// Total active core lanes (Σ per-node capacities) — the cheap
    /// lane-count read (no reserved-time sweep) the load engine's
    /// per-event capacity integral wants.
    pub fn cpu_lanes(&self) -> usize {
        self.cpus.iter().map(Timeline::capacity).sum()
    }

    /// Number of active link lanes: the per-pair links on a mesh, the
    /// single shared WAN otherwise.
    pub fn link_lanes(&self) -> usize {
        match &self.mesh {
            Some(links) => links.len(),
            None => 1,
        }
    }

    /// Grows the cluster by one node of `cores` cores **mid-stream**:
    /// every existing timeline (and its reservations) is preserved, and
    /// on a mesh the new node gets a fresh link to every existing node.
    /// Returns the new node's index.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn add_node(&mut self, cores: u32) -> usize {
        let idx = self.cpus.len();
        self.cpus.push(Timeline::new(format!("cpu-{idx}"), cores as usize));
        self.ids.push(self.next_id);
        self.next_id += 1;
        if let Some(links) = self.mesh.take() {
            self.mesh = Some(Self::reindex_mesh(links, idx, idx + 1, self.link_capacity, &mut 0));
        }
        idx
    }

    /// Shrinks the cluster by removing the **last** node mid-stream,
    /// preserving every remaining timeline. Reservations already placed
    /// on the removed node (and its mesh links) move into the retired
    /// totals so [`cpu_reserved`](Self::cpu_reserved) /
    /// [`link_reserved`](Self::link_reserved) stay monotone.
    ///
    /// Callers deciding *when* to remove (e.g. an autoscaler) should
    /// drain the node first — check `view(now).node(n-1).backlog_ns == 0`
    /// — since later placements wrap onto the remaining nodes.
    ///
    /// # Panics
    ///
    /// Panics if only one node remains.
    pub fn remove_last_node(&mut self) {
        // `Nanos::MAX` as the cut instant: nothing counts as un-started,
        // so no backlog migrates — the drained-node scale-in discipline
        // the autoscaler already follows.
        self.remove_node(self.cpus.len().saturating_sub(1), Nanos::MAX);
    }

    /// Shrinks the cluster by removing **any** node mid-stream — the
    /// node-failure path. Work the victim had queued beyond `now` (each
    /// lane's un-started remainder) migrates onto the least-loaded
    /// survivors as fresh reservations at `now`; busy time already spent
    /// stays in the retired totals so utilization accounting remains
    /// monotone. Surviving timelines (and surviving mesh pairs) keep
    /// their reservations; the victim's pair links retire with it.
    ///
    /// # Panics
    ///
    /// Panics if only one node remains or `victim` is out of range.
    pub fn remove_node(&mut self, victim: usize, now: Nanos) {
        assert!(self.cpus.len() > 1, "a schedule needs at least one node");
        assert!(victim < self.cpus.len(), "victim {victim} out of range");
        let removed = self.cpus.remove(victim);
        self.ids.remove(victim);
        // Migrate the un-started backlog: whatever each victim lane was
        // committed to beyond `now` re-queues on the survivor whose
        // earliest lane frees first (ties to the lowest index).
        let mut migrated = 0;
        for end in removed.lane_ends() {
            let remainder = end.saturating_sub(now);
            if remainder == 0 {
                continue;
            }
            let target = (0..self.cpus.len())
                .min_by_key(|&i| self.cpus[i].free_at())
                .expect("at least one survivor");
            self.cpus[target].reserve(now, remainder);
            migrated += remainder;
        }
        self.retired_cpu_ns += removed.reserved_ns().saturating_sub(migrated);
        let old_n = self.cpus.len() + 1;
        if let Some(links) = self.mesh.take() {
            let mut retired = 0;
            self.mesh = Some(Self::reindex_mesh_removing(links, old_n, victim, &mut retired));
            self.retired_link_ns += retired;
        }
    }

    /// Rebuilds a flattened upper-triangular link mesh from `old_n` to
    /// `new_n` nodes: surviving pairs keep their timelines (reservations
    /// intact), new pairs get fresh `link_capacity`-lane links, and
    /// dropped pairs' reserved time accumulates into `retired_ns`.
    fn reindex_mesh(
        links: Vec<Timeline>,
        old_n: usize,
        new_n: usize,
        link_capacity: usize,
        retired_ns: &mut Nanos,
    ) -> Vec<Timeline> {
        let mut old: Vec<Option<Timeline>> = links.into_iter().map(Some).collect();
        let mut out = Vec::with_capacity(new_n * new_n.saturating_sub(1) / 2);
        for a in 0..new_n {
            for b in a + 1..new_n {
                if b < old_n {
                    out.push(
                        old[pair_index(old_n, a, b)].take().expect("each pair taken once"),
                    );
                } else {
                    out.push(Timeline::new(format!("link-{a}-{b}"), link_capacity));
                }
            }
        }
        *retired_ns += old
            .iter()
            .flatten()
            .map(Timeline::reserved_ns)
            .sum::<Nanos>();
        out
    }

    /// Rebuilds the mesh after removing node `victim` from an `old_n`
    /// cluster: each surviving pair maps back to its old timeline
    /// (indices at or past the victim shift down by one), and every
    /// pair touching the victim retires into `retired_ns`.
    fn reindex_mesh_removing(
        links: Vec<Timeline>,
        old_n: usize,
        victim: usize,
        retired_ns: &mut Nanos,
    ) -> Vec<Timeline> {
        let mut old: Vec<Option<Timeline>> = links.into_iter().map(Some).collect();
        let new_n = old_n - 1;
        let mut out = Vec::with_capacity(new_n * new_n.saturating_sub(1) / 2);
        for a in 0..new_n {
            for b in a + 1..new_n {
                let oa = a + usize::from(a >= victim);
                let ob = b + usize::from(b >= victim);
                out.push(
                    old[pair_index(old_n, oa, ob)].take().expect("each pair taken once"),
                );
            }
        }
        *retired_ns += old
            .iter()
            .flatten()
            .map(Timeline::reserved_ns)
            .sum::<Nanos>();
        out
    }

    /// Time the last reservation across all resources drains.
    pub fn busy_until(&self) -> Nanos {
        self.cpus
            .iter()
            .chain(self.mesh.iter().flatten())
            .map(Timeline::busy_until)
            .chain(std::iter::once(self.wan.busy_until()))
            .max()
            .unwrap_or(0)
    }

    /// Total CPU busy time reserved across every node (including nodes
    /// since removed by [`remove_last_node`](Self::remove_last_node), so
    /// the total never goes backwards under scale-in), and the number of
    /// currently active core lanes — the inputs to a cluster-wide CPU
    /// utilization figure (`reserved / (lanes × horizon)`).
    pub fn cpu_reserved(&self) -> (Nanos, usize) {
        let reserved = self.cpus.iter().map(Timeline::reserved_ns).sum::<Nanos>()
            + self.retired_cpu_ns;
        let lanes = self.cpus.iter().map(Timeline::capacity).sum();
        (reserved, lanes)
    }

    /// Total link busy time reserved across every inter-node link, and
    /// the number of link lanes. On a mesh, only the per-pair links
    /// count — the vestigial shared-WAN timeline (reachable only through
    /// the legacy [`link`](Self::link) accessor, never routed to by
    /// [`link_between`](Self::link_between)) is excluded from both the
    /// numerator and the lane count so utilization stays consistent.
    pub fn link_reserved(&self) -> (Nanos, usize) {
        match &self.mesh {
            Some(links) => (
                links.iter().map(Timeline::reserved_ns).sum::<Nanos>() + self.retired_link_ns,
                links.len(),
            ),
            None => (self.wan.reserved_ns(), 1),
        }
    }

    /// Clears all reservations (including retired totals), keeping the
    /// topology.
    pub fn reset(&mut self) {
        for cpu in &mut self.cpus {
            cpu.reset();
        }
        self.wan.reset();
        for link in self.mesh.iter_mut().flatten() {
            link.reset();
        }
        self.retired_cpu_ns = 0;
        self.retired_link_ns = 0;
    }
}

// The parallel sweep engine (`platform::sweep`) constructs one
// `SchedResources` (plus clock and event queue) *per worker thread* and
// sends results back across the scope join. That pattern is only sound
// while these types stay `Send`: no `Rc`, `RefCell`, raw pointers or
// thread-local state may creep into the scheduler. Compile-time
// assertions, so a regression is a build error rather than a
// mysteriously flaky sweep.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Timeline>();
    assert_send::<SchedResources>();
    assert_send::<ResourceView>();
    assert_send::<EventQueue<u64>>();
    assert_send_sync::<crate::VirtualClock>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_overlaps_within_capacity() {
        let mut cpu = Timeline::new("cpu", 4);
        for _ in 0..4 {
            assert_eq!(cpu.reserve(0, 1_000), 0);
        }
        // Fifth reservation queues behind the earliest-finishing lane.
        assert_eq!(cpu.reserve(0, 1_000), 1_000);
        assert_eq!(cpu.busy_until(), 2_000);
    }

    #[test]
    fn timeline_respects_ready_time() {
        let mut link = Timeline::new("wan", 1);
        assert_eq!(link.reserve(500, 100), 500);
        // Free again at 600; an earlier-ready caller still waits.
        assert_eq!(link.reserve(0, 100), 600);
        assert_eq!(link.free_at(), 700);
    }

    #[test]
    fn zero_duration_reservation_never_blocks() {
        let mut link = Timeline::new("wan", 1);
        link.reserve(0, 1_000);
        assert_eq!(link.reserve(200, 0), 200);
        assert_eq!(link.busy_until(), 1_000);
    }

    #[test]
    fn timeline_reset_clears_lanes() {
        let mut cpu = Timeline::new("cpu", 2);
        cpu.reserve(0, 5_000);
        cpu.reset();
        assert_eq!(cpu.busy_until(), 0);
        assert_eq!(cpu.reserve(0, 10), 0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_capacity_panics() {
        Timeline::new("bad", 0);
    }

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn event_queue_peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(3, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn resources_mirror_testbed_topology() {
        let bed = Testbed::paper();
        let mut res = SchedResources::for_testbed(&bed);
        assert_eq!(res.cpu(0).capacity(), 4);
        assert_eq!(res.cpu(1).capacity(), 4);
        assert_eq!(res.link().capacity(), 1);
    }

    #[test]
    fn resources_busy_until_spans_everything() {
        let mut res = SchedResources::new(2, 4);
        res.cpu(0).reserve(0, 100);
        res.link().reserve(0, 5_000);
        res.cpu(1).reserve(0, 300);
        assert_eq!(res.busy_until(), 5_000);
        res.reset();
        assert_eq!(res.busy_until(), 0);
    }

    #[test]
    fn cpu_index_wraps_onto_known_nodes() {
        let mut res = SchedResources::new(2, 4);
        res.cpu(2).reserve(0, 100); // wraps to node 0
        assert_eq!(res.cpu(0).busy_until(), 100);
    }

    #[test]
    fn reserved_ns_accumulates_and_resets() {
        let mut cpu = Timeline::new("cpu", 2);
        cpu.reserve(0, 100);
        cpu.reserve(0, 250);
        cpu.reserve(50, 0); // zero-duration never counts
        assert_eq!(cpu.reserved_ns(), 350);
        cpu.reset();
        assert_eq!(cpu.reserved_ns(), 0);
    }

    #[test]
    fn heterogeneous_capacities_follow_core_counts() {
        let mut res = SchedResources::heterogeneous(&[2, 8, 4]);
        assert_eq!(res.node_count(), 3);
        assert_eq!(res.cpu(0).capacity(), 2);
        assert_eq!(res.cpu(1).capacity(), 8);
        assert_eq!(res.cpu(2).capacity(), 4);
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for b in a + 1..n {
                assert!(seen.insert(pair_index(n, a, b)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(seen.iter().copied().max(), Some(n * (n - 1) / 2 - 1));
    }

    #[test]
    fn mesh_links_do_not_contend_across_pairs() {
        let mut res = SchedResources::mesh(&[4, 4, 4, 4]);
        // 0↔1 and 2↔3 are disjoint pairs: both start at once.
        let a = res.link_between(0, 1).reserve(0, 8_000);
        let b = res.link_between(2, 3).reserve(0, 8_000);
        assert_eq!((a, b), (0, 0));
        // Same pair (either direction) queues.
        let c = res.link_between(1, 0).reserve(0, 8_000);
        assert_eq!(c, 8_000);
    }

    #[test]
    fn shared_wan_resources_route_every_pair_onto_one_link() {
        let mut res = SchedResources::new(3, 4);
        let a = res.link_between(0, 1).reserve(0, 5_000);
        let b = res.link_between(1, 2).reserve(0, 5_000);
        assert_eq!((a, b), (0, 5_000));
    }

    #[test]
    fn utilization_accounting_spans_cpus_and_links() {
        let mut res = SchedResources::mesh(&[2, 2]);
        res.cpu(0).reserve(0, 100);
        res.cpu(1).reserve(0, 300);
        res.link_between(0, 1).reserve(0, 700);
        let (cpu_ns, lanes) = res.cpu_reserved();
        assert_eq!((cpu_ns, lanes), (400, 4));
        let (link_ns, links) = res.link_reserved();
        assert_eq!((link_ns, links), (700, 1));
        res.reset();
        assert_eq!(res.cpu_reserved().0, 0);
        assert_eq!(res.link_reserved().0, 0);
    }

    #[test]
    fn view_reports_backlog_and_utilization() {
        let mut res = SchedResources::mesh(&[2, 4]);
        res.cpu(0).reserve(0, 600);
        res.cpu(0).reserve(0, 1_000);
        res.link_between(0, 1).reserve(0, 900);
        let view = res.view(500);
        assert_eq!(view.now(), 500);
        assert_eq!(view.node_count(), 2);
        assert_eq!(view.node(0).cores, 2);
        // Lanes busy until 600 and 1_000: earliest free 600, backlog
        // beyond now=500 is 500.
        assert_eq!(view.node(0).free_at, 600);
        assert_eq!(view.node(0).backlog_ns, 500);
        assert_eq!(view.node(0).reserved_ns, 1_600);
        assert!((view.node(0).utilization - 1_600.0 / (2.0 * 500.0)).abs() < 1e-12);
        // Node 1 idle.
        assert_eq!(view.node(1).backlog_ns, 0);
        assert_eq!(view.node(1).utilization, 0.0);
        assert_eq!(view.link_backlog_between(0, 1), 400);
        // Same-node queries report the (idle) shared WAN, never a
        // pair's backlog — mirroring link_between's routing.
        assert_eq!(view.link_backlog_between(0, 0), 0);
        assert_eq!(view.link_backlog_between(1, 1), 0);
        assert_eq!(view.total_backlog_ns(), 500);
        assert_eq!(view.mean_backlog_ns(), 250);
        // A snapshot at time 0 reports zero utilization, not NaN.
        assert_eq!(res.view(0).node(0).utilization, 0.0);
    }

    #[test]
    fn view_into_refreshes_scratch_in_place() {
        let mut res = SchedResources::mesh(&[2, 4]);
        res.cpu(0).reserve(0, 600);
        let mut scratch = ResourceView::default();
        res.view_into(500, &mut scratch);
        assert_eq!(scratch, res.view(500));
        // Refreshing after more load (and a resize) overwrites, never
        // appends.
        res.cpu(1).reserve(0, 1_000);
        res.add_node(2);
        res.view_into(800, &mut scratch);
        assert_eq!(scratch, res.view(800));
        assert_eq!(scratch.node_count(), 3);
        res.remove_last_node();
        res.view_into(900, &mut scratch);
        assert_eq!(scratch, res.view(900));
        assert_eq!(scratch.node_count(), 2);
    }

    #[test]
    fn view_of_shared_wan_reports_one_link() {
        let mut res = SchedResources::new(3, 2);
        res.link().reserve(0, 800);
        let view = res.view(300);
        assert_eq!(view.link_backlog_between(0, 1), 500);
        assert_eq!(view.link_backlog_between(1, 2), 500);
        assert_eq!(view.link_backlog_between(2, 2), 500);
    }

    #[test]
    fn lane_counts_track_resizing() {
        let mut res = SchedResources::mesh(&[2, 4]);
        assert_eq!(res.cpu_lanes(), 6);
        assert_eq!(res.link_lanes(), 1);
        res.add_node(8);
        assert_eq!(res.cpu_lanes(), 14);
        assert_eq!(res.link_lanes(), 3);
        res.remove_last_node();
        assert_eq!((res.cpu_lanes(), res.link_lanes()), (6, 1));
        assert_eq!(SchedResources::new(2, 4).link_lanes(), 1);
    }

    #[test]
    fn add_node_preserves_existing_timelines() {
        let mut res = SchedResources::heterogeneous(&[2, 2]);
        res.cpu(1).reserve(0, 5_000);
        let idx = res.add_node(8);
        assert_eq!(idx, 2);
        assert_eq!(res.node_count(), 3);
        assert_eq!(res.cpu(2).capacity(), 8);
        assert_eq!(res.cpu(1).busy_until(), 5_000);
        // The new node starts idle.
        assert_eq!(res.cpu(2).reserve(0, 10), 0);
    }

    #[test]
    fn add_node_extends_the_mesh_without_disturbing_pairs() {
        let mut res = SchedResources::mesh(&[4, 4, 4]);
        res.link_between(0, 2).reserve(0, 7_000);
        res.add_node(4);
        // The reserved pair kept its timeline across the re-index…
        assert_eq!(res.link_between(0, 2).busy_until(), 7_000);
        // …and every pair touching the new node is fresh.
        for other in 0..3 {
            assert_eq!(res.link_between(other, 3).reserve(0, 0), 0);
            assert_eq!(res.link_between(other, 3).busy_until(), 0);
        }
    }

    #[test]
    fn remove_last_node_retires_its_reservations() {
        let mut res = SchedResources::mesh(&[4, 4, 4]);
        res.cpu(2).reserve(0, 1_000);
        res.cpu(0).reserve(0, 300);
        res.link_between(1, 2).reserve(0, 2_000);
        res.link_between(0, 1).reserve(0, 400);
        let (cpu_before, _) = res.cpu_reserved();
        let (link_before, _) = res.link_reserved();
        res.remove_last_node();
        assert_eq!(res.node_count(), 2);
        // Totals are monotone: retired time stays in the books…
        assert_eq!(res.cpu_reserved(), (cpu_before, 8));
        assert_eq!(res.link_reserved().0, link_before);
        assert_eq!(res.link_reserved().1, 1);
        // …and the surviving pair kept its reservations.
        assert_eq!(res.link_between(0, 1).busy_until(), 400);
        res.reset();
        assert_eq!(res.cpu_reserved().0, 0);
        assert_eq!(res.link_reserved().0, 0);
    }

    #[test]
    fn grown_then_shrunk_mesh_keeps_pair_indexing_consistent() {
        let mut res = SchedResources::mesh(&[2, 2]);
        res.add_node(2);
        res.add_node(2);
        res.link_between(1, 3).reserve(0, 900);
        res.link_between(2, 3).reserve(0, 1_100);
        res.remove_last_node();
        // Pairs among the survivors are untouched and distinct.
        assert_eq!(res.link_between(0, 1).busy_until(), 0);
        assert_eq!(res.link_between(0, 2).busy_until(), 0);
        assert_eq!(res.link_between(1, 2).busy_until(), 0);
        // The dropped pairs' 2_000 ns went into the retired total.
        assert_eq!(res.link_reserved().0, 2_000);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn removing_the_only_node_panics() {
        SchedResources::new(1, 2).remove_last_node();
    }

    #[test]
    fn scale_out_on_a_capacity_2_mesh_yields_capacity_2_links() {
        // Regression: reindex_mesh used to hardcode capacity 1 for
        // fresh pair links, silently halving a wide mesh on scale-out.
        let mut res = SchedResources::mesh_with_link_capacity(&[4, 4], 2);
        assert_eq!(res.link_between(0, 1).capacity(), 2);
        res.add_node(4);
        for other in 0..2 {
            assert_eq!(res.link_between(other, 2).capacity(), 2);
            // Two transfers overlap; the third queues.
            let a = res.link_between(other, 2).reserve(0, 1_000);
            let b = res.link_between(other, 2).reserve(0, 1_000);
            let c = res.link_between(other, 2).reserve(0, 1_000);
            assert_eq!((a, b, c), (0, 0, 1_000));
        }
        // The surviving pair kept its lanes too.
        assert_eq!(res.link_between(0, 1).capacity(), 2);
    }

    #[test]
    fn cluster_link_lanes_reach_for_testbed() {
        use crate::cluster::ClusterSpec;
        let bed = ClusterSpec::homogeneous(3, 4, 1 << 30).link_lanes(2).build();
        let mut res = SchedResources::for_testbed(&bed);
        assert_eq!(res.link_between(0, 1).capacity(), 2);
        res.add_node(4);
        assert_eq!(res.link_between(0, 3).capacity(), 2);
    }

    #[test]
    fn remove_node_migrates_unstarted_backlog_onto_survivors() {
        let mut res = SchedResources::new(3, 1);
        res.cpu(2).reserve(0, 1_000); // runs 0..1_000: half done at 500
        res.cpu(0).reserve(0, 200);
        let (total_before, _) = res.cpu_reserved();
        res.remove_node(2, 500);
        assert_eq!(res.node_count(), 2);
        // 500 ns of un-started work re-queued at t=500 on the emptier
        // survivor (node 1, idle).
        assert_eq!(res.cpu(1).busy_until(), 1_000);
        assert_eq!(res.cpu(0).busy_until(), 200);
        // Totals conserved: migrated time moved, spent time retired.
        assert_eq!(res.cpu_reserved().0, total_before);
    }

    #[test]
    fn remove_node_reindexes_interior_victims() {
        let mut res = SchedResources::mesh(&[2, 2, 2, 2]);
        res.link_between(0, 3).reserve(0, 900);
        res.link_between(1, 2).reserve(0, 400);
        res.cpu(3).reserve(0, 777);
        res.remove_node(1, Nanos::MAX);
        assert_eq!(res.node_count(), 3);
        // Old pair (0,3) is now (0,2); old (2,3) is (1,2); the victim's
        // pairs retired.
        assert_eq!(res.link_between(0, 2).busy_until(), 900);
        assert_eq!(res.link_between(1, 2).busy_until(), 0);
        assert_eq!(res.link_reserved().0, 900 + 400);
        // Old node 3 (now index 2) kept its CPU reservations.
        assert_eq!(res.cpu(2).busy_until(), 777);
    }

    #[test]
    fn stable_ids_survive_resizing() {
        let mut res = SchedResources::new(3, 2);
        assert_eq!(res.node_id(1), 1);
        res.remove_node(1, Nanos::MAX);
        // Indices shifted, ids did not.
        assert_eq!(res.node_id(0), 0);
        assert_eq!(res.node_id(1), 2);
        assert_eq!(res.node_index_of(2), Some(1));
        assert_eq!(res.node_index_of(1), None);
        // Fresh nodes get fresh ids, never recycling the dead one's.
        let idx = res.add_node(2);
        assert_eq!(res.node_id(idx), 3);
    }

    #[test]
    fn try_reserve_rejects_during_outages_and_degrades_without_a_schedule() {
        use crate::outage::OutageSchedule;
        let mut res = SchedResources::mesh(&[2, 2]);
        // No schedule attached: try_reserve is a plain reserve.
        assert_eq!(res.try_reserve_cpu(0, 10, 100), Some(10));
        let schedule =
            OutageSchedule::new().node_down(1, 1_000, 2_000).link_down(0, 1, 5_000, 6_000);
        res.set_outages(Arc::new(schedule));
        // Node 1 down during its window; node 0 unaffected.
        assert_eq!(res.try_reserve_cpu(1, 1_500, 100), None);
        assert!(res.node_down_at(1, 1_500));
        assert_eq!(res.try_reserve_cpu(0, 1_500, 100), Some(1_500));
        assert_eq!(res.try_reserve_cpu(1, 2_000, 100), Some(2_000));
        // The link is down in its own window and while an endpoint is.
        assert_eq!(res.try_reserve_link(0, 1, 5_500, 100), None);
        assert_eq!(res.try_reserve_link(0, 1, 1_500, 100), None);
        let granted = res.try_reserve_link(0, 1, 6_000, 100);
        assert_eq!(granted, Some(6_000));
        // Rejected attempts reserved nothing.
        assert_eq!(res.cpu(1).reserved_ns(), 100);
        assert!(res.outages().is_some());
    }

    #[test]
    fn outage_ids_follow_nodes_across_removal() {
        use crate::outage::OutageSchedule;
        let mut res = SchedResources::new(3, 1);
        res.set_outages(Arc::new(OutageSchedule::new().node_down(2, 100, 200)));
        // Remove node 0: the scheduled node shifts to index 1 but keeps
        // id 2, and the schedule keeps tracking it.
        res.remove_node(0, Nanos::MAX);
        assert!(res.node_down_at(1, 150));
        assert!(!res.node_down_at(0, 150));
    }

    #[test]
    fn backlog_at_drains_to_zero() {
        let mut cpu = Timeline::new("cpu", 1);
        cpu.reserve(0, 1_000);
        assert_eq!(cpu.backlog_at(0), 1_000);
        assert_eq!(cpu.backlog_at(400), 600);
        assert_eq!(cpu.backlog_at(1_000), 0);
        assert_eq!(cpu.backlog_at(5_000), 0);
    }

    #[test]
    fn contended_link_serializes_independent_transfers() {
        // Two 8 s transfers on a capacity-1 link take 16 s; on a
        // capacity-2 CPU they take 8 s — the contention asymmetry behind
        // the paper's Fig. 9 vs Fig. 10 shapes.
        let mut res = SchedResources::new(2, 2);
        let a = res.link().reserve(0, 8_000);
        let b = res.link().reserve(0, 8_000);
        assert_eq!((a, b), (0, 8_000));
        let c = res.cpu(0).reserve(0, 8_000);
        let d = res.cpu(0).reserve(0, 8_000);
        assert_eq!((c, d), (0, 0));
    }
}
