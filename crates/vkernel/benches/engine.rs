//! Micro-benchmarks for the discrete-event engine's hot primitives.
//!
//! These are the inner-loop operations every admitted workflow instance
//! pays — lane reservation, event queueing, resource snapshots, payload
//! handle cloning — tracked so engine-level regressions show up at the
//! primitive level before they show up in `bench_engine`'s end-to-end
//! instances/sec.
//!
//! Run: `cargo bench -p roadrunner-vkernel`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::sched::{EventQueue, ResourceView, SchedResources, Timeline};

const OPS: u64 = 10_000;

fn bench_timeline_reserve(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline_reserve");
    group.throughput(Throughput::Elements(OPS));
    for capacity in [1usize, 4, 64] {
        group.bench_function(format!("cap{capacity}"), |b| {
            b.iter(|| {
                let mut lane = Timeline::new("cpu", capacity);
                for i in 0..OPS {
                    black_box(lane.reserve(i, 100));
                }
                lane.busy_until()
            })
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("push_pop", |b| {
        b.iter(|| {
            let mut queue = EventQueue::new();
            // Deterministic scattered times (xorshift-ish) then a full
            // drain: the load engine's arrival/completion pattern.
            let mut t: u64 = 0x9E37_79B9;
            for i in 0..OPS {
                t ^= t << 13;
                t ^= t >> 7;
                t ^= t << 17;
                queue.push(t % 1_000_000, i);
            }
            let mut last = 0;
            while let Some((at, _)) = queue.pop() {
                last = at;
            }
            last
        })
    });
    group.finish();
}

fn bench_resource_view(c: &mut Criterion) {
    let mut resources = SchedResources::mesh(&[4; 16]);
    for node in 0..16 {
        for _ in 0..4 {
            resources.cpu(node).reserve(0, 1_000 + node as u64);
        }
    }
    for a in 0..16 {
        for b in (a + 1)..16 {
            resources.link_between(a, b).reserve(0, 500);
        }
    }
    let mut group = c.benchmark_group("resource_view");
    group.throughput(Throughput::Elements(1));
    group.bench_function("view_alloc", |b| {
        b.iter(|| black_box(resources.view(750)).total_backlog_ns())
    });
    group.bench_function("view_into_scratch", |b| {
        let mut scratch = ResourceView::default();
        b.iter(|| {
            resources.view_into(750, &mut scratch);
            black_box(&scratch).total_backlog_ns()
        })
    });
    group.finish();
}

fn bench_payload_clone(c: &mut Criterion) {
    let size = 1_000_000usize;
    let payload = Payload::synthetic(PayloadKind::Text, 7, size);
    let flat = payload.flat().clone();
    let mut group = c.benchmark_group("payload_clone");
    group.throughput(Throughput::BytesDecimal(size as u64));
    // The engine's per-edge handoff: a reference-counted handle clone.
    group.bench_function("bytes_handle", |b| b.iter(|| black_box(flat.clone()).len()));
    // The full structured payload (value + flat) — what a baseline's
    // opaque wrapping touches.
    group.bench_function("structured", |b| b.iter(|| black_box(payload.clone()).flat().len()));
    group.finish();
}

criterion_group!(
    benches,
    bench_timeline_reserve,
    bench_event_queue,
    bench_resource_view,
    bench_payload_clone,
);
criterion_main!(benches);
