//! Criterion micro-benchmarks of the substrates: codec throughput,
//! copy vs page-gift pipes, Wasm interpreter dispatch, HTTP framing.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_serial::{binary, text};
use roadrunner_vkernel::node::Sandbox;
use roadrunner_vkernel::pipe::Pipe;
use roadrunner_vkernel::{CostModel, VirtualClock};
use roadrunner_wasm::types::Value;
use roadrunner_wasm::{EngineLimits, Instance, Linker};
use std::sync::Arc;

fn codecs(c: &mut Criterion) {
    let payload = Payload::synthetic(PayloadKind::SensorRecords, 3, MB);
    let mut group = c.benchmark_group("serial");
    group.throughput(Throughput::Bytes(payload.flat().len() as u64));
    group.bench_function("text-encode-1MB", |b| b.iter(|| text::to_text(payload.value())));
    let encoded = text::to_text(payload.value());
    group.bench_function("text-decode-1MB", |b| b.iter(|| text::from_text(&encoded).unwrap()));
    group.bench_function("binary-encode-1MB", |b| {
        b.iter(|| binary::to_binary(payload.value()))
    });
    let bin = binary::to_binary(payload.value());
    group.bench_function("binary-decode-1MB", |b| b.iter(|| binary::from_binary(&bin).unwrap()));
    group.finish();
}

const MB: usize = 1_000_000;

fn pipes(c: &mut Criterion) {
    let sandbox = Sandbox::detached(
        "bench",
        VirtualClock::new(),
        Arc::new(CostModel::paper_testbed()),
    );
    let data = vec![7u8; MB];
    let shared = Bytes::from(data.clone());
    let mut group = c.benchmark_group("pipe");
    group.throughput(Throughput::Bytes(MB as u64));
    group.bench_function("copy-write-1MB", |b| {
        b.iter(|| {
            let mut pipe = Pipe::new(1 << 20);
            pipe.write(&sandbox, &data).unwrap();
            pipe.splice_out(&sandbox, usize::MAX).unwrap()
        })
    });
    group.bench_function("vmsplice-gift-1MB", |b| {
        b.iter(|| {
            let mut pipe = Pipe::new(1 << 20);
            pipe.vmsplice_gift(&sandbox, shared.clone()).unwrap();
            pipe.splice_out(&sandbox, usize::MAX).unwrap()
        })
    });
    group.finish();
}

fn interpreter(c: &mut Criterion) {
    let module = roadrunner::guest::hello_world();
    let mut inst = Instance::new(
        module,
        &Linker::new(),
        EngineLimits::default(),
        Box::new(()),
    )
    .unwrap();
    c.bench_function("wasm/hello-10k-loop", |b| {
        b.iter(|| inst.invoke("_start", &[]).unwrap())
    });
    let producer = roadrunner::guest::producer();
    c.bench_function("wasm/decode-producer-module", |b| {
        let bytes = roadrunner_wasm::encode::encode(&producer);
        b.iter(|| roadrunner_wasm::decode::decode(&bytes).unwrap())
    });
}

fn http_framing(c: &mut Criterion) {
    let body = Bytes::from(vec![1u8; MB]);
    let mut group = c.benchmark_group("http");
    group.throughput(Throughput::Bytes(MB as u64));
    group.bench_function("frame+parse-1MB", |b| {
        b.iter(|| {
            let raw = roadrunner_http::Request::post("/f", body.clone()).to_bytes();
            let mut reader = roadrunner_http::MessageReader::new();
            reader.feed(&raw);
            reader.try_request().unwrap().unwrap()
        })
    });
    group.finish();
}

fn guest_alloc(c: &mut Criterion) {
    let mut linker = Linker::new();
    roadrunner::api::register_roadrunner_api(&mut linker);
    let mut inst = Instance::new(
        roadrunner::guest::producer(),
        &linker,
        EngineLimits::default(),
        Box::new(roadrunner::ShimState::new(roadrunner_wasi::WasiCtx::new(
            Sandbox::detached(
                "alloc",
                VirtualClock::new(),
                Arc::new(CostModel::paper_testbed()),
            ),
        ))),
    )
    .unwrap();
    c.bench_function("wasm/guest-alloc-dealloc-64KB", |b| {
        b.iter(|| {
            let addr = inst.invoke("allocate_memory", &[Value::I32(65536)]).unwrap()[0]
                .as_i32()
                .unwrap();
            inst.invoke("deallocate_memory", &[Value::I32(addr)]).unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = codecs, pipes, interpreter, http_framing, guest_alloc
}
criterion_main!(benches);
