//! Criterion micro-benchmarks over the three Roadrunner transfer modes
//! and the two baselines (real wall-clock cost of the mechanisms, small
//! payloads). The paper-scale virtual-time figures come from the
//! `fig*` binaries; these benches verify the *mechanisms* are cheap and
//! rank correctly in real time too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use roadrunner_bench::{measure_transfer, measure_transfer_intra, System, MB};

fn transfer_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer");
    let size = MB;
    group.throughput(Throughput::Bytes(size as u64));
    for system in System::intra_node() {
        group.bench_with_input(
            BenchmarkId::new("intra-1MB", system.label()),
            &system,
            |b, &system| b.iter(|| measure_transfer_intra(system, size)),
        );
    }
    for system in System::inter_node() {
        group.bench_with_input(
            BenchmarkId::new("inter-1MB", system.label()),
            &system,
            |b, &system| b.iter(|| measure_transfer(system, size)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = transfer_modes
}
criterion_main!(benches);
