//! Fig. 16 (beyond the paper) — overload control and metastable
//! failure.
//!
//! The elasticity experiments (fig13/fig14) always let every arrival
//! in; this experiment drives the cluster *past* saturation and shows
//! why that is the failure mode that does not heal on its own. A
//! three-phase open-loop trace — a calm pre-burst stretch, a burst at
//! several times deliverable capacity (with link flaps feeding the
//! retry engine), and a calm post-burst stretch at the pre-burst rate —
//! is replayed through two configurations of the same engine:
//!
//! * **naive** — aggressive retries (6 attempts), no deadline, no
//!   budget, no breaker, no queue. The burst's work plus its retry
//!   amplification piles onto the shared timelines; long after the
//!   burst ends, post-phase arrivals still queue behind it and miss the
//!   SLO. Goodput (completions within [`SLO_INTERVALS`]× the measured
//!   saturation interval, per second of arrivals) stays collapsed: the metastable
//!   signature.
//! * **mitigated** — the same trace, same flaps, same retry policy,
//!   with the overload layer on: per-instance deadlines shed doomed
//!   work mid-flight, the retry budget caps retry traffic at a fraction
//!   of successes, circuit breakers steer placement off failing
//!   (function, node) pairs, and a bounded CoDel admission queue sheds
//!   the burst's excess instead of admitting it. Post-burst goodput
//!   recovers to ≥ [`GATE_RECOVERY`] of pre-burst.
//!
//! A second pair of cells replays a multi-tenant variant: a light
//! interactive tenant sharing the cluster with an adversarial flood
//! tenant, once with unbounded admission (**fair_naive** — the flood
//! wrecks the interactive p95) and once behind the weighted admission
//! queue (**fair_shared** — reject-oldest keeps the queue fresh and a
//! 4:1 weight drains the interactive lane first; its p95 stays within
//! [`GATE_ISOLATION`]× of the flood-free pair's). All four cells are
//! independent jobs fanned over the sweep worker pool; serial and
//! parallel output is byte-identical.

use bytes::Bytes;
use roadrunner_platform::{
    run_jobs, AdmissionConfig, BreakerConfig, ClosedLoop, FailurePlan, LoadRun, MemoizedPlane,
    MultiLoad, OverloadConfig, QueueConfig, RetryBudgetConfig, RetryPolicy, ShedPolicy, SpreadLoad,
    SweepMode, TenantLoad, WorkflowSpec,
};
use roadrunner_vkernel::{secs, Nanos, OutageSchedule, SchedResources};

use crate::fig13::{cluster, systems, CORES, START_NODES};
use crate::MB;

/// The SLO every goodput number is measured against, in multiples of
/// the measured saturation interval (also the mitigated cell's
/// deadline). Every cell calibrates its own interval with a closed-loop
/// probe before the trace runs, so the geometry tracks what the cluster
/// actually delivers under spread placement rather than the co-located
/// solo makespan.
pub const SLO_INTERVALS: u64 = 12;
/// Naive post-burst goodput must collapse below this fraction of its
/// own pre-burst goodput.
pub const GATE_COLLAPSE: f64 = 0.5;
/// Mitigated post-burst goodput must recover to at least this fraction
/// of its own pre-burst goodput.
pub const GATE_RECOVERY: f64 = 0.8;
/// The shared-queue interactive p95 must beat the unprotected
/// interactive p95 by at least this factor.
pub const GATE_ISOLATION: f64 = 2.0;

/// Knobs for one fig16 sweep.
pub struct Fig16Options {
    /// Reduced phase lengths for CI.
    pub quick: bool,
    /// Serial reference loop or the worker pool.
    pub mode: SweepMode,
}

/// The four experiment cells, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Naive,
    Mitigated,
    FairNaive,
    FairShared,
}

impl Cell {
    fn label(self) -> &'static str {
        match self {
            Cell::Naive => "naive",
            Cell::Mitigated => "mitigated",
            Cell::FairNaive => "fair_naive",
            Cell::FairShared => "fair_shared",
        }
    }

    fn is_fair(self) -> bool {
        matches!(self, Cell::FairNaive | Cell::FairShared)
    }
}

/// One cell's knobs — also the parallel job description.
#[derive(Clone, Copy)]
struct Job {
    cell: Cell,
    quick: bool,
}

/// Per-phase arrival counts (pre, burst, post) and the fairness-pair
/// counts (interactive, flood), quick vs full.
fn counts(quick: bool) -> (usize, usize, usize, usize, usize) {
    if quick {
        (20, 80, 30, 10, 160)
    } else {
        (40, 160, 60, 16, 256)
    }
}

/// The burst trace geometry, all in units of the measured saturation
/// interval `i` (the reciprocal of deliverable throughput): calm phases
/// at one arrival per `2i` (half of capacity), the burst at one per
/// `i/3` (three times capacity before retries).
struct Trace {
    releases: Vec<Nanos>,
    burst_start: Nanos,
    post_start: Nanos,
    post_end: Nanos,
}

fn burst_trace(i: Nanos, quick: bool) -> Trace {
    let (n_pre, n_burst, n_post, _, _) = counts(quick);
    let (gap_calm, gap_burst) = ((2 * i).max(1), (i / 3).max(1));
    let mut releases = Vec::with_capacity(n_pre + n_burst + n_post);
    let mut t = 0;
    for _ in 0..n_pre {
        releases.push(t);
        t += gap_calm;
    }
    let burst_start = t;
    for _ in 0..n_burst {
        releases.push(t);
        t += gap_burst;
    }
    let post_start = t;
    for _ in 0..n_post {
        releases.push(t);
        t += gap_calm;
    }
    Trace { releases, burst_start, post_start, post_end: t }
}

fn spec_for(tenant: &str) -> WorkflowSpec {
    WorkflowSpec::sequence(
        "pipeline",
        tenant,
        ["src".to_owned(), "relay".to_owned(), "sink".to_owned()],
    )
}

/// The flap schedule the burst pair injects: two three-interval link
/// outages on the pair link, nine intervals apart, starting nine
/// intervals *into* the burst — the healthy front of the burst piles
/// the admission queue up first, then the flaps feed the retry engine
/// while the cluster is already past saturation.
fn flap_plan(i: Nanos, burst_start: Nanos, ids: (u64, u64)) -> FailurePlan {
    let retry = RetryPolicy::new(6, (i / 2).max(1), (4 * i).max(1));
    let mut outages = OutageSchedule::new();
    for flap in 0..2u64 {
        let from = burst_start + (9 + flap * 9) * i;
        outages = outages.link_down(ids.0, ids.1, from, from + 3 * i);
    }
    FailurePlan::new(retry).with_outages(outages)
}

/// The full overload stack the mitigated cell turns on.
fn mitigations(i: Nanos) -> OverloadConfig {
    OverloadConfig {
        deadline_ns: Some(SLO_INTERVALS * i),
        retry_budget: Some(RetryBudgetConfig {
            refill_millitokens_per_s: 0,
            burst_millitokens: 4_000,
            per_success_millitokens: 200,
        }),
        breaker: Some(BreakerConfig {
            window_ns: (4 * i).max(1),
            failure_rate: (1, 2),
            min_samples: 4,
            open_ns: (4 * i).max(1),
            half_open_probes: 2,
            placement_penalty_ns: 1 << 40,
        }),
        // Admit at most half the saturation depth: overload posture is
        // to hold concurrency at the knee and queue (then shed) the
        // rest, not to let the timelines absorb unbounded backlog.
        queue: Some(QueueConfig {
            max_in_flight: (START_NODES * CORES as usize) / 2,
            queue_cap: 64,
            policy: ShedPolicy::CoDel { target_ns: (2 * i).max(1) },
        }),
    }
}

/// The weighted queue the fair_shared cell puts in front of admission.
fn fair_queue() -> OverloadConfig {
    OverloadConfig {
        queue: Some(QueueConfig {
            max_in_flight: (START_NODES * CORES as usize),
            queue_cap: 32,
            policy: ShedPolicy::RejectOldest,
        }),
        ..OverloadConfig::default()
    }
}

/// Goodput over arrivals in `[from, to)`: completions within `slo`,
/// per second of the window.
fn goodput_rps(run: &LoadRun, from: Nanos, to: Nanos, slo: Nanos) -> f64 {
    if to <= from {
        return 0.0;
    }
    let good = run
        .outcomes
        .iter()
        .filter(|o| {
            !o.failed
                && !o.deadline_exceeded
                && o.release_ns >= from
                && o.release_ns < to
                && o.sojourn_ns <= slo
        })
        .count();
    good as f64 * 1e9 / (to - from) as f64
}

/// One cell's run plus everything the gates and rows need.
struct CellResult {
    job: Job,
    solo_ns: Nanos,
    /// The calibrated saturation interval (1 / deliverable throughput).
    interval_ns: Nanos,
    run: LoadRun,
    /// (pre, post) goodput for the burst pair; `None` for fairness.
    goodput: Option<(f64, f64)>,
}

/// Measures the cluster's deliverable throughput under spread placement
/// as a saturation interval: eight think-free closed-loop users, the
/// horizon over the completions. Every cell runs the same probe on
/// fresh resources, so the calibration is deterministic and identical
/// across cells.
fn saturation_interval(
    plane: &mut MemoizedPlane<'_>,
    clock: &roadrunner_vkernel::VirtualClock,
    payload: &Bytes,
) -> Nanos {
    let users = START_NODES * CORES as usize;
    let probe = ClosedLoop {
        spec: spec_for("bench"),
        payload: payload.clone(),
        users,
        think_ns: 0,
        ramp_ns: 0,
        instances: users * 4,
        admission: AdmissionConfig::warm(),
    };
    let mut resources = SchedResources::mesh(&[CORES; START_NODES]);
    let mut policy = SpreadLoad::new();
    let run = probe.run(plane, clock, &mut resources, &mut policy).expect("calibration probe");
    let horizon = run.outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(1);
    (horizon / run.completed().max(1) as u64).max(1)
}

fn run_job(job: &Job, payload: &Bytes) -> CellResult {
    let bed = cluster();
    let mut under_load = systems(&bed, payload);
    let system = &mut under_load[0]; // roadrunner
    let clock = bed.clock().clone();
    let mut resources = SchedResources::mesh(&[CORES; START_NODES]);
    let ids = (resources.node_id(0), resources.node_id(1));
    let mut policy = SpreadLoad::new();
    let mut plane = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
    let i = saturation_interval(&mut plane, &clock, payload);

    let (load, plan, overload, windows) = if job.cell.is_fair() {
        let (_, _, _, n_inter, n_flood) = counts(job.quick);
        let interactive = TenantLoad {
            name: "interactive".to_owned(),
            spec: spec_for("interactive"),
            payload: payload.clone(),
            releases: (0..n_inter as u64).map(|k| k * 8 * i).collect(),
            weight: 4,
        };
        let flood = TenantLoad {
            name: "flood".to_owned(),
            spec: spec_for("flood"),
            payload: payload.clone(),
            releases: (0..n_flood as u64).map(|k| k * (i / 2).max(1)).collect(),
            weight: 1,
        };
        let overload = match job.cell {
            Cell::FairShared => fair_queue(),
            _ => OverloadConfig::default(),
        };
        (
            MultiLoad {
                tenants: vec![interactive, flood],
                admission: AdmissionConfig::warm(),
            },
            None,
            overload,
            None,
        )
    } else {
        let trace = burst_trace(i, job.quick);
        let windows = (trace.burst_start, trace.post_start, trace.post_end);
        let tenant = TenantLoad {
            name: "bench".to_owned(),
            spec: spec_for("bench"),
            payload: payload.clone(),
            releases: trace.releases,
            weight: 1,
        };
        let plan = flap_plan(i, trace.burst_start, ids);
        let overload = match job.cell {
            Cell::Mitigated => mitigations(i),
            _ => OverloadConfig::default(),
        };
        (
            MultiLoad { tenants: vec![tenant], admission: AdmissionConfig::warm() },
            Some(plan),
            overload,
            Some(windows),
        )
    };

    let run = load
        .run_overloaded(
            &mut plane,
            &clock,
            &mut resources,
            &mut policy,
            None,
            plan.as_ref(),
            &overload,
        )
        .expect("fig16 cell run");

    // Conservation in every cell: arrivals are fully accounted.
    assert_eq!(
        run.arrivals,
        run.completed() + run.failed + run.deadline_exceeded + run.shed,
        "{}: arrivals must be conserved",
        job.cell.label(),
    );

    let goodput = windows.map(|(burst_start, post_start, post_end)| {
        let slo = SLO_INTERVALS * i;
        (goodput_rps(&run, 0, burst_start, slo), goodput_rps(&run, post_start, post_end, slo))
    });
    if std::env::var_os("FIG16_DEBUG").is_some() {
        let d = run.sojourn_percentiles();
        eprintln!(
            "[fig16] {}: interval={} arrivals={} completed={} failed={} dl={} shed={} retries={} \
             p50={:?} p95={:?} goodput={:?} tenants={:?}",
            job.cell.label(),
            i,
            run.arrivals,
            run.completed(),
            run.failed,
            run.deadline_exceeded,
            run.shed,
            run.retries,
            d.map(|x| x.p50_ns / i.max(1)),
            d.map(|x| x.p95_ns / i.max(1)),
            goodput,
            run.tenants
                .iter()
                .map(|t| (t.name.clone(), t.completed, t.sojourn_percentiles().map(|p| p.p95_ns / i.max(1))))
                .collect::<Vec<_>>(),
        );
    }
    CellResult { job: *job, solo_ns: system.solo_ns, interval_ns: i, run, goodput }
}

fn cell_json(result: &CellResult) -> String {
    let run = &result.run;
    let pct = |p: Option<roadrunner_platform::PercentileSummary>, f: fn(&roadrunner_platform::PercentileSummary) -> Nanos| {
        p.map_or("null".to_owned(), |d| format!("{:.6}", secs(f(&d))))
    };
    let tenant_p95 = |name: &str| {
        run.tenants
            .iter()
            .find(|t| t.name == name)
            .and_then(|t| t.sojourn_percentiles())
            .map_or("null".to_owned(), |d| format!("{:.6}", secs(d.p95_ns)))
    };
    let goodput = |pick: fn(&(f64, f64)) -> f64| {
        result.goodput.as_ref().map_or("null".to_owned(), |g| format!("{:.3}", pick(g)))
    };
    format!(
        concat!(
            "    {{\"cell\": \"{}\", \"solo_s\": {:.6}, \"saturation_interval_s\": {:.6}, ",
            "\"arrivals\": {}, ",
            "\"completed\": {}, \"failed\": {}, \"deadline_exceeded\": {}, ",
            "\"shed\": {}, \"retries\": {}, ",
            "\"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, ",
            "\"goodput_pre_rps\": {}, \"goodput_post_rps\": {}, ",
            "\"interactive_p95_s\": {}, \"flood_p95_s\": {}}}"
        ),
        result.job.cell.label(),
        secs(result.solo_ns),
        secs(result.interval_ns),
        run.arrivals,
        run.completed(),
        run.failed,
        run.deadline_exceeded,
        run.shed,
        run.retries,
        pct(run.sojourn_percentiles(), |d| d.p50_ns),
        pct(run.sojourn_percentiles(), |d| d.p95_ns),
        pct(run.sojourn_percentiles(), |d| d.p99_ns),
        goodput(|g| g.0),
        goodput(|g| g.1),
        if result.job.cell.is_fair() { tenant_p95("interactive") } else { "null".to_owned() },
        if result.job.cell.is_fair() { tenant_p95("flood") } else { "null".to_owned() },
    )
}

/// Runs the fig16 sweep under `opts` and returns the complete JSON
/// document (the content of `BENCH_overload.json`). Panics if any
/// headline gate — the naive collapse, the mitigated recovery, or the
/// tenant isolation — fails.
pub fn fig16_json(opts: &Fig16Options) -> String {
    let payload = Bytes::from(vec![0xF1u8; MB / 4]);
    let jobs: Vec<Job> = [Cell::Naive, Cell::Mitigated, Cell::FairNaive, Cell::FairShared]
        .into_iter()
        .map(|cell| Job { cell, quick: opts.quick })
        .collect();

    let results = run_jobs(&jobs, opts.mode, |job| run_job(job, &payload));
    let find = |cell: Cell| results.iter().find(|r| r.job.cell == cell).expect("cell exists");

    // Gate 1: the naive cell's post-burst goodput stays collapsed.
    let (naive_pre, naive_post) = find(Cell::Naive).goodput.expect("burst cell");
    assert!(naive_pre > 0.0, "naive pre-burst goodput must be nonzero");
    let collapse = naive_post / naive_pre;
    assert!(
        collapse < GATE_COLLAPSE,
        "naive goodput must stay collapsed after the burst: \
         post {naive_post:.3} rps vs pre {naive_pre:.3} rps (ratio {collapse:.3})",
    );

    // Gate 2: the mitigated cell recovers.
    let (mit_pre, mit_post) = find(Cell::Mitigated).goodput.expect("burst cell");
    assert!(mit_pre > 0.0, "mitigated pre-burst goodput must be nonzero");
    let recovery = mit_post / mit_pre;
    assert!(
        recovery >= GATE_RECOVERY,
        "the overload layer must restore post-burst goodput: \
         post {mit_post:.3} rps vs pre {mit_pre:.3} rps (ratio {recovery:.3})",
    );
    // Mitigation must come from the mechanisms, not from luck: the
    // queue must shed, and retry traffic must be cut vs naive.
    let mitigated = find(Cell::Mitigated);
    assert!(mitigated.run.shed > 0, "the mitigated queue must shed burst excess");
    assert!(
        mitigated.run.retries < find(Cell::Naive).run.retries,
        "the retry budget must cut retry amplification ({} vs naive {})",
        mitigated.run.retries,
        find(Cell::Naive).run.retries,
    );

    // Gate 3: the weighted queue isolates the interactive tenant.
    let inter_p95 = |cell: Cell| {
        find(cell)
            .run
            .tenants
            .iter()
            .find(|t| t.name == "interactive")
            .and_then(|t| t.sojourn_percentiles())
            .expect("interactive completions")
            .p95_ns
    };
    let (exposed, isolated) = (inter_p95(Cell::FairNaive), inter_p95(Cell::FairShared));
    let isolation = exposed as f64 / isolated.max(1) as f64;
    assert!(
        isolation >= GATE_ISOLATION,
        "the weighted queue must isolate the interactive tenant: \
         p95 {} vs unprotected {} (ratio {isolation:.2})",
        isolated,
        exposed,
    );
    let shared = find(Cell::FairShared);
    let inter = shared
        .run
        .tenants
        .iter()
        .find(|t| t.name == "interactive")
        .expect("interactive stats");
    assert!(
        inter.completed * 10 >= inter.arrivals * 8,
        "the interactive tenant must keep completing behind the queue \
         ({}/{} completed)",
        inter.completed,
        inter.arrivals,
    );

    let rows: Vec<String> = results.iter().map(cell_json).collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig16_overload\",\n");
    out.push_str(&format!(
        "  \"cluster\": {{\"nodes\": {START_NODES}, \"cores_per_node\": {CORES}}},\n"
    ));
    out.push_str("  \"workflow\": \"src -> relay -> sink\",\n");
    out.push_str(&format!("  \"payload_mb\": {:.2},\n", (MB / 4) as f64 / MB as f64));
    out.push_str(&format!("  \"slo_intervals\": {SLO_INTERVALS},\n"));
    out.push_str(&format!(
        "  \"gate\": {{\"max_collapse_ratio\": {GATE_COLLAPSE:.1}, \
         \"collapse_ratio\": {collapse:.3}, \
         \"min_recovery_ratio\": {GATE_RECOVERY:.1}, \
         \"recovery_ratio\": {recovery:.3}, \
         \"min_isolation_ratio\": {GATE_ISOLATION:.1}, \
         \"isolation_ratio\": {isolation:.3}, \"pass\": true}},\n"
    ));
    out.push_str("  \"cells\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 smoke: the quick matrix end to end, serial for
    /// determinism; every headline gate asserts inside `fig16_json`.
    #[test]
    fn quick_sweep_passes_every_gate() {
        let json = fig16_json(&Fig16Options { quick: true, mode: SweepMode::Serial });
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("\"cell\": \"fair_shared\""));
    }
}
