//! Fig. 12 (beyond the paper) — throughput and tail latency under
//! multi-tenant load, swept in parallel with multi-seed replication.
//!
//! The experiment logic lives here (not in the binary) so the golden
//! determinism test can run the serial and parallel sweeps in-process
//! and diff the JSON strings byte for byte.
//!
//! The sweep is a [`SweepGrid`]: policies (`locality`, `spread`) ×
//! payload sizes × arrival-rate factors × Poisson arrival seeds. Every
//! grid point is one fully independent job — it builds its own
//! [`Testbed`], deploys its own three systems (Roadrunner, RunC-like,
//! WasmEdge-like), measures its own uncontended makespans and runs its
//! own open-loop sweep against fresh [`SchedResources`] — so the
//! worker pool can execute points in any order and on any thread while
//! the merged output (in canonical grid order) stays byte-identical to
//! the serial loop's. Seeds replicate each experimental cell under
//! distinct Poisson arrival sequences; the emitted rows collapse the
//! replicas into [`replicate`] summaries with across-seed means and
//! order-statistic confidence intervals.
//!
//! Invariants asserted per point and post-merge:
//!
//! * contention never speeds an instance up: every sojourn ≥ the
//!   system's uncontended concurrent makespan;
//! * under identical arrival process and policy, Roadrunner sustains
//!   higher mean throughput and lower mean p95 than WasmEdge across
//!   seeds.

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_platform::{
    execute, execute_concurrent, replicate, sweep, AdmissionConfig, ArrivalProcess, DataPlane, FunctionBundle,
    LocalityFirst, MemoizedPlane, OpenLoop, PercentileSummary, PlacementPolicy, ReplicatedStat,
    SpreadLoad, SweepGrid, SweepMode, SweepPoint, WorkflowSpec,
};
use roadrunner_vkernel::{secs, ClusterSpec, Nanos, SchedResources, Testbed};
use roadrunner_wasm::encode;

use crate::MB;

const NODES: usize = 4;

/// Arrival-rate regimes as factors of the WasmEdge uncontended
/// makespan (see the module docs of the `fig12_load` binary).
const RATE_FACTORS: [(&str, f64); 3] = [("light", 2.0), ("heavy", 0.15), ("surge", 0.03)];

/// Knobs for one fig12 sweep.
pub struct Fig12Options {
    /// Reduced payloads/instances/seeds for CI.
    pub quick: bool,
    /// Tier-1 profile for the in-process golden determinism test: the
    /// same grid structure (both policies, all rate regimes, multiple
    /// seeds) over a small payload, so `cargo test` stays fast in debug
    /// builds while still exercising the full sweep path. CI diffs the
    /// full `--quick` binary output on top.
    pub golden: bool,
    /// Wrap planes in the transfer-cost memo (`--no-memo` turns off).
    pub memo: bool,
    /// Serial reference loop or the worker pool.
    pub mode: SweepMode,
}

fn cluster() -> Arc<Testbed> {
    Arc::new(ClusterSpec::homogeneous(NODES, 4, 8 << 30).build())
}

fn spec() -> WorkflowSpec {
    WorkflowSpec::sequence(
        "pipeline",
        "bench",
        ["src".to_owned(), "relay".to_owned(), "sink".to_owned()],
    )
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("fig12")
            .with_tenant("bench"),
    )
}

/// Deploys the Roadrunner pipeline, colocated on node 0 (`locality`
/// regime: kernel-space edges) or spread over nodes 0/1/2 (`spread`
/// regime: network edges).
fn roadrunner_plane(bed: &Arc<Testbed>, colocated: bool) -> RoadrunnerPlane {
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(bed), ShimConfig::default().with_load_costs(false));
    let nodes: [usize; 3] = if colocated { [0, 0, 0] } else { [0, 1, 2] };
    plane
        .deploy(nodes[0], "src", rr_bundle("src", guest::producer()), "produce", false)
        .expect("deploy src");
    plane
        .deploy(nodes[1], "relay", rr_bundle("relay", guest::relay()), "relay", false)
        .expect("deploy relay");
    plane
        .deploy(nodes[2], "sink", rr_bundle("sink", guest::consumer()), "consume", true)
        .expect("deploy sink");
    plane
}

struct SystemUnderLoad {
    label: &'static str,
    plane: Box<dyn DataPlane>,
}

/// The three systems, each deployed for one co-location regime. Pairs
/// carry every edge of the pipeline over their established connection.
fn systems(bed: &Arc<Testbed>, colocated: bool) -> Vec<SystemUnderLoad> {
    let peer = usize::from(!colocated);
    vec![
        SystemUnderLoad { label: "roadrunner", plane: Box::new(roadrunner_plane(bed, colocated)) },
        SystemUnderLoad {
            label: "runc",
            plane: Box::new(RuncPair::establish(Arc::clone(bed), 0, peer)),
        },
        SystemUnderLoad {
            label: "wasmedge",
            plane: Box::new(WasmedgePair::establish(Arc::clone(bed), 0, peer)),
        },
    ]
}

fn policy_of(name: &str) -> Box<dyn PlacementPolicy> {
    match name {
        "locality" => Box::new(LocalityFirst::new()),
        _ => Box::new(SpreadLoad::new()),
    }
}

/// Uncontended concurrent makespan of one instance on a fresh, empty
/// cluster — the lower bound no instance under load may beat. The plane
/// is warmed first (one discarded serial run) so lazy connection
/// establishment is excluded from every measured comparison.
fn uncontended(plane: &mut dyn DataPlane, bed: &Arc<Testbed>, payload: &Bytes) -> Nanos {
    let clock = bed.clock().clone();
    let workflow = spec();
    execute(plane, &clock, &workflow, payload.clone()).expect("warmup run");
    let mut fresh = SchedResources::for_testbed(bed);
    execute_concurrent(plane, &clock, &workflow, payload.clone(), &mut fresh)
        .expect("uncontended run")
        .total_latency_ns
}

/// One system's digest for one grid point (a single seed replica).
struct SystemRun {
    label: &'static str,
    uncontended_ns: Nanos,
    offered_rps: f64,
    achieved_rps: f64,
    digest: PercentileSummary,
    cpu_utilization: f64,
    link_utilization: f64,
}

/// One grid point's result: the three systems under one (policy,
/// payload, rate, seed) combination.
struct PointResult {
    mean_interval_ns: Nanos,
    runs: Vec<SystemRun>,
}

/// Runs one grid point, fully self-contained: fresh testbed, fresh
/// deployments, fresh scheduler state — nothing shared with any other
/// point, which is what makes the parallel sweep byte-identical to the
/// serial one.
fn run_point(point: &SweepPoint, instances: usize, memo: bool) -> PointResult {
    let colocated = point.policy == "locality";
    let payload = Bytes::from(vec![0xA7u8; point.payload_bytes]);
    let bed = cluster();
    let mut under_load = systems(&bed, colocated);
    let solos: Vec<Nanos> = under_load
        .iter_mut()
        .map(|s| uncontended(s.plane.as_mut(), &bed, &payload))
        .collect();
    let wasmedge_solo = under_load
        .iter()
        .zip(&solos)
        .find(|(s, _)| s.label == "wasmedge")
        .map(|(_, &ns)| ns)
        .expect("wasmedge is part of the line-up");
    // Identical offered process for every system in the cell: Poisson
    // arrivals with mean = factor × the WasmEdge uncontended makespan,
    // re-seeded per replica.
    let mean_interval_ns = (wasmedge_solo as f64 * point.rate).round() as Nanos;
    let arrivals =
        ArrivalProcess::Poisson { mean_interval_ns, seed: 0 }.with_seed(point.seed);

    let mut runs = Vec::with_capacity(under_load.len());
    for (system, &solo) in under_load.iter_mut().zip(&solos) {
        let mut policy = policy_of(&point.policy);
        let mut resources = SchedResources::for_testbed(&bed);
        let load = OpenLoop {
            spec: spec(),
            payload: payload.clone(),
            arrivals,
            instances,
            admission: AdmissionConfig::warm(),
        };
        // The load sweep admits identical instances: the transfer-cost
        // memo computes each distinct edge once and replays it.
        // Virtual-time results are byte-identical; `--no-memo` produces
        // the unmemoized reference run the CI gate diffs this JSON
        // against.
        let clock = bed.clock().clone();
        let run = if memo {
            let mut memo_plane = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
            load.run(&mut memo_plane, &clock, &mut resources, policy.as_mut())
        } else {
            load.run(system.plane.as_mut(), &clock, &mut resources, policy.as_mut())
        }
        .expect("load run");
        for outcome in &run.outcomes {
            assert!(
                outcome.sojourn_ns >= solo,
                "{} {} {}B seed {}: instance {} took {} < uncontended {}",
                system.label,
                point.policy,
                point.payload_bytes,
                point.seed,
                outcome.instance,
                outcome.sojourn_ns,
                solo,
            );
        }
        let digest = run.sojourn_percentiles().expect("non-empty run");
        runs.push(SystemRun {
            label: system.label,
            uncontended_ns: solo,
            offered_rps: run.offered_rps,
            achieved_rps: run.throughput_rps(),
            digest,
            cpu_utilization: run.cpu_utilization,
            link_utilization: run.link_utilization,
        });
    }
    PointResult { mean_interval_ns, runs }
}

/// Formats a nanosecond-valued f64 statistic as seconds.
fn fsecs(ns: f64) -> String {
    format!("{:.6}", ns / 1e9)
}

/// Renders one merged cell row: a system's seed replicas collapsed
/// into across-seed means and CIs.
#[allow(clippy::too_many_arguments)]
fn cell_json(
    label: &str,
    policy: &str,
    payload_bytes: usize,
    rate_label: &str,
    mean_interval_ns: Nanos,
    uncontended_ns: Nanos,
    instances: usize,
    replicas: &[&SystemRun],
) -> String {
    let digests: Vec<PercentileSummary> = replicas.iter().map(|r| r.digest).collect();
    let rep = replicate(&digests).expect("at least one seed");
    let stat = |pick: fn(&SystemRun) -> f64| {
        let values: Vec<f64> = replicas.iter().map(|r| pick(r)).collect();
        ReplicatedStat::from_values(&values).expect("at least one seed")
    };
    let offered = stat(|r| r.offered_rps);
    let achieved = stat(|r| r.achieved_rps);
    let cpu = stat(|r| r.cpu_utilization);
    let link = stat(|r| r.link_utilization);
    format!(
        concat!(
            "    {{\"system\": \"{}\", \"policy\": \"{}\", \"payload_mb\": {:.1}, ",
            "\"rate\": \"{}\", \"mean_interval_s\": {:.6}, \"uncontended_s\": {:.6}, ",
            "\"seeds\": {}, \"instances_per_seed\": {}, ",
            "\"offered_rps_mean\": {:.3}, ",
            "\"achieved_rps_mean\": {:.3}, \"achieved_rps_ci\": [{:.3}, {:.3}], ",
            "\"p50_s_mean\": {}, \"p50_s_ci\": [{}, {}], ",
            "\"p95_s_mean\": {}, \"p95_s_ci\": [{}, {}], ",
            "\"p99_s_mean\": {}, \"p99_s_ci\": [{}, {}], ",
            "\"max_s_mean\": {}, ",
            "\"cpu_util_mean\": {:.4}, \"link_util_mean\": {:.4}}}"
        ),
        label,
        policy,
        payload_bytes as f64 / MB as f64,
        rate_label,
        secs(mean_interval_ns),
        secs(uncontended_ns),
        replicas.len(),
        instances,
        offered.mean,
        achieved.mean,
        achieved.ci_lo,
        achieved.ci_hi,
        fsecs(rep.p50_ns.mean),
        fsecs(rep.p50_ns.ci_lo),
        fsecs(rep.p50_ns.ci_hi),
        fsecs(rep.p95_ns.mean),
        fsecs(rep.p95_ns.ci_lo),
        fsecs(rep.p95_ns.ci_hi),
        fsecs(rep.p99_ns.mean),
        fsecs(rep.p99_ns.ci_lo),
        fsecs(rep.p99_ns.ci_hi),
        fsecs(rep.max_ns.mean),
        cpu.mean,
        link.mean,
    )
}

/// Runs the fig12 sweep under `opts` and returns the complete JSON
/// document. Execution mode is deliberately *not* recorded in the
/// output: serial and parallel runs must produce identical bytes.
pub fn fig12_json(opts: &Fig12Options) -> String {
    let payloads: Vec<usize> = if opts.golden {
        vec![MB / 4]
    } else if opts.quick {
        vec![MB, 4 * MB]
    } else {
        vec![MB, 10 * MB, 30 * MB]
    };
    let instances = if opts.golden || opts.quick { 8 } else { 16 };
    let seeds: Vec<u64> = if opts.golden || opts.quick { vec![1, 2] } else { vec![1, 2, 3] };
    let grid = SweepGrid {
        rates: RATE_FACTORS.iter().map(|&(_, f)| f).collect(),
        payload_bytes: payloads,
        policies: vec!["locality".to_owned(), "spread".to_owned()],
        seeds,
    };

    let results = sweep(&grid, opts.mode, |point| run_point(point, instances, opts.memo));

    // Merge: consecutive `seeds_per_cell` results form one experimental
    // cell; collapse each system's replicas into across-seed stats.
    let points = grid.points();
    let mut rows: Vec<String> = Vec::new();
    for (chunk_index, chunk) in results.chunks(grid.seeds_per_cell()).enumerate() {
        let cell_point = &points[chunk_index * grid.seeds_per_cell()];
        let rate_label = RATE_FACTORS[cell_point.rate_index].0;
        // The interval derives from the (deterministic) WasmEdge solo
        // makespan, so every replica of a cell must agree on it.
        let mean_interval_ns = chunk[0].mean_interval_ns;
        assert!(chunk.iter().all(|r| r.mean_interval_ns == mean_interval_ns));

        let mut cell_stats: Vec<(&'static str, f64, f64)> = Vec::new();
        for sys_index in 0..chunk[0].runs.len() {
            let replicas: Vec<&SystemRun> = chunk.iter().map(|r| &r.runs[sys_index]).collect();
            let label = replicas[0].label;
            let uncontended_ns = replicas[0].uncontended_ns;
            assert!(replicas.iter().all(|r| r.uncontended_ns == uncontended_ns));
            let achieved_mean =
                replicas.iter().map(|r| r.achieved_rps).sum::<f64>() / replicas.len() as f64;
            let p95_mean = replicas.iter().map(|r| r.digest.p95_ns as f64).sum::<f64>()
                / replicas.len() as f64;
            cell_stats.push((label, achieved_mean, p95_mean));
            rows.push(cell_json(
                label,
                &cell_point.policy,
                cell_point.payload_bytes,
                rate_label,
                mean_interval_ns,
                uncontended_ns,
                instances,
                &replicas,
            ));
        }
        let rr = cell_stats.iter().find(|(l, ..)| *l == "roadrunner").unwrap();
        let we = cell_stats.iter().find(|(l, ..)| *l == "wasmedge").unwrap();
        assert!(
            rr.1 > we.1,
            "{} {}B {rate_label}: roadrunner {} rps !> wasmedge {} rps",
            cell_point.policy,
            cell_point.payload_bytes,
            rr.1,
            we.1,
        );
        assert!(
            rr.2 < we.2,
            "{} {}B {rate_label}: roadrunner p95 {} !< wasmedge p95 {}",
            cell_point.policy,
            cell_point.payload_bytes,
            rr.2,
            we.2,
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig12_load\",\n");
    out.push_str(&format!(
        "  \"cluster\": {{\"nodes\": {NODES}, \"cores_per_node\": 4}},\n"
    ));
    out.push_str("  \"workflow\": \"src -> relay -> sink\",\n");
    out.push_str("  \"arrivals\": \"poisson\",\n");
    out.push_str(&format!("  \"instances_per_cell\": {instances},\n"));
    out.push_str(&format!("  \"seeds_per_cell\": {},\n", grid.seeds_per_cell()));
    out.push_str("  \"cells\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}");
    out
}
