//! Fig. 2b — normalized I/O latency breakdown (transfer vs
//! serialization) for containers vs Wasm at 1 MB, 60 MB and 100 MB.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig2b [--quick]`

use roadrunner_bench::{measure_transfer, print_panel, quick_flag, System, MB};

fn main() {
    let sizes: Vec<usize> = if quick_flag() {
        vec![MB, 60 * MB]
    } else {
        vec![MB, 60 * MB, 100 * MB]
    };

    println!("# Fig. 2b — normalized I/O breakdown: transfer vs serialization share");
    println!("# (functions on different nodes, as in the paper's edge–cloud motivation)");
    print_panel(
        "Normalized latency (%)",
        &["series", "size_MB", "transfer_pct", "serialization_pct"],
    );
    for &size in &sizes {
        for system in [System::Runc, System::Wasmedge] {
            let m = measure_transfer(system, size);
            assert!(m.checksum_ok, "payload corrupted in {system:?}");
            let total = m.latency_ns.max(1) as f64;
            let ser = m.serialization_ns as f64 / total * 100.0;
            let label = match system {
                System::Runc => "Cont",
                System::Wasmedge => "Wasm",
                _ => unreachable!(),
            };
            println!(
                "{label}\t{}\t{:.1}\t{:.1}",
                size / MB,
                100.0 - ser,
                ser
            );
        }
    }
    println!();
    println!("# paper anchors: serialization ≈ 15% of Docker I/O time, up to 60% of Wasm I/O time");
}
