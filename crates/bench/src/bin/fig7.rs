//! Fig. 7 — intra-node sweep over payload sizes (paper: 1–500 MB),
//! comparing Roadrunner (User space), Roadrunner (Kernel space), RunC and
//! WasmEdge across eight panels: total/serialization latency and
//! throughput, total/user/kernel CPU, RAM.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig7 [--quick]`

use roadrunner_bench::{
    fmt_secs, measure_transfer_intra, payload_sweep, print_panel, quick_flag, Measurement,
    System, MB,
};

fn main() {
    let sizes = payload_sweep(quick_flag());
    println!("# Fig. 7 — intra-node latency/throughput/CPU/RAM for varying payload sizes");

    let mut rows: Vec<Measurement> = Vec::new();
    for &size in &sizes {
        for &system in System::intra_node().iter() {
            let m = measure_transfer_intra(system, size);
            assert!(m.checksum_ok, "payload corrupted in {system:?} at {size}");
            rows.push(m);
        }
    }

    let cores = 4;
    print_panel("(a) total latency (s)", &["series", "size_MB", "latency_s"]);
    for m in &rows {
        println!("{}\t{}\t{}", m.system.label(), m.bytes / MB, fmt_secs(m.latency_ns));
    }
    print_panel("(b) total throughput (req/s)", &["series", "size_MB", "rps"]);
    for m in &rows {
        println!("{}\t{}\t{:.3}", m.system.label(), m.bytes / MB, m.throughput_rps());
    }
    print_panel("(c) serialization latency (s)", &["series", "size_MB", "serialization_s"]);
    for m in &rows {
        println!("{}\t{}\t{}", m.system.label(), m.bytes / MB, fmt_secs(m.serialization_ns));
    }
    print_panel("(d) serialization throughput (req/s)", &["series", "size_MB", "rps"]);
    for m in &rows {
        println!("{}\t{}\t{:.3}", m.system.label(), m.bytes / MB, m.serialization_rps());
    }
    print_panel("(e) total CPU (% of machine)", &["series", "size_MB", "cpu_pct"]);
    for m in &rows {
        println!("{}\t{}\t{:.4}", m.system.label(), m.bytes / MB, m.cpu_total_pct(cores));
    }
    print_panel("(f) user-space CPU (%)", &["series", "size_MB", "cpu_pct"]);
    for m in &rows {
        println!("{}\t{}\t{:.4}", m.system.label(), m.bytes / MB, m.cpu_user_pct(cores));
    }
    print_panel("(g) kernel-space CPU (%)", &["series", "size_MB", "cpu_pct"]);
    for m in &rows {
        println!("{}\t{}\t{:.4}", m.system.label(), m.bytes / MB, m.cpu_kernel_pct(cores));
    }
    print_panel("(h) RAM (MB)", &["series", "size_MB", "ram_MB"]);
    for m in &rows {
        println!("{}\t{}\t{:.2}", m.system.label(), m.bytes / MB, m.ram_peak as f64 / 1e6);
    }
}
