//! Fig. 11 (beyond the paper) — DAG workflows the original evaluation
//! never measured: a diamond, a WAN-crossing diamond and a scatter-gather,
//! each run through the serial engine and the discrete-event concurrent
//! engine over the real Roadrunner plane.
//!
//! Unlike the paper-figure binaries (tab-separated panels), this one
//! emits a single machine-readable JSON document so future PRs can track
//! the bench trajectory.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig11_dag [--quick]`

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_bench::{quick_flag, MB};
use roadrunner_platform::{
    critical_path_ns, execute, execute_concurrent, FunctionBundle, WorkflowDag, WorkflowRun,
    WorkflowSpec,
};
use roadrunner_vkernel::{secs, SchedResources, Testbed};
use roadrunner_wasm::encode;

/// What a workflow node does with its input.
#[derive(Clone, Copy)]
enum Role {
    /// Entry point: produces the payload onward.
    Produce,
    /// Receives and forwards.
    Relay,
    /// Terminal: receives and acks.
    Consume,
}

/// One function of a scenario: name, testbed node, behaviour.
struct Fn3(&'static str, usize, Role);

struct Scenario {
    name: &'static str,
    functions: Vec<Fn3>,
    edges: Vec<(&'static str, &'static str)>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        // The acceptance diamond: both branches co-located, overlap on
        // the node's four cores.
        Scenario {
            name: "diamond",
            functions: vec![
                Fn3("a", 0, Role::Produce),
                Fn3("b", 0, Role::Relay),
                Fn3("c", 0, Role::Relay),
                Fn3("d", 0, Role::Consume),
            ],
            edges: vec![("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        },
        // Gather stage on the far node: the two inbound wire transfers
        // queue on the capacity-1 link.
        Scenario {
            name: "diamond_wan",
            functions: vec![
                Fn3("a", 0, Role::Produce),
                Fn3("b", 0, Role::Relay),
                Fn3("c", 0, Role::Relay),
                Fn3("d", 1, Role::Consume),
            ],
            edges: vec![("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        },
        // Scatter-gather across both nodes: four workers, half remote.
        Scenario {
            name: "scatter_gather",
            functions: vec![
                Fn3("src", 0, Role::Produce),
                Fn3("w0", 0, Role::Relay),
                Fn3("w1", 1, Role::Relay),
                Fn3("w2", 0, Role::Relay),
                Fn3("w3", 1, Role::Relay),
                Fn3("sink", 1, Role::Consume),
            ],
            edges: vec![
                ("src", "w0"),
                ("src", "w1"),
                ("src", "w2"),
                ("src", "w3"),
                ("w0", "sink"),
                ("w1", "sink"),
                ("w2", "sink"),
                ("w3", "sink"),
            ],
        },
    ]
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("fig11")
            .with_tenant("bench"),
    )
}

fn deploy(scenario: &Scenario) -> (Arc<Testbed>, RoadrunnerPlane) {
    let bed = Arc::new(Testbed::paper());
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default().with_load_costs(false));
    for Fn3(name, node, role) in &scenario.functions {
        let (module, handler, returns) = match role {
            Role::Produce => (guest::producer(), "produce", false),
            Role::Relay => (guest::relay(), "relay", false),
            Role::Consume => (guest::consumer(), "consume", true),
        };
        plane
            .deploy(*node, name, rr_bundle(name, module), handler, returns)
            .expect("deploy scenario function");
    }
    (bed, plane)
}

fn spec_of(scenario: &Scenario) -> WorkflowSpec {
    let mut dag = WorkflowDag::new();
    for (from, to) in &scenario.edges {
        dag.add_edge(from, to);
    }
    WorkflowSpec::from_dag(scenario.name, "bench", dag)
}

fn run_serial(scenario: &Scenario, payload: &Bytes) -> WorkflowRun {
    let (bed, mut plane) = deploy(scenario);
    let clock = bed.clock().clone();
    execute(&mut plane, &clock, &spec_of(scenario), payload.clone()).expect("serial run")
}

fn run_concurrent(scenario: &Scenario, payload: &Bytes) -> WorkflowRun {
    let (bed, mut plane) = deploy(scenario);
    let clock = bed.clock().clone();
    let mut resources = SchedResources::for_testbed(&bed);
    execute_concurrent(&mut plane, &clock, &spec_of(scenario), payload.clone(), &mut resources)
        .expect("concurrent run")
}

fn main() {
    let payload_bytes = if quick_flag() { 2 * MB } else { 8 * MB };
    let payload = Bytes::from(vec![0x5Au8; payload_bytes]);

    let mut rows = Vec::new();
    for scenario in scenarios() {
        let spec = spec_of(&scenario);
        let serial = run_serial(&scenario, &payload);
        let concurrent = run_concurrent(&scenario, &payload);
        let critical = critical_path_ns(&spec, &concurrent).expect("acyclic scenario");
        assert!(
            concurrent.total_latency_ns <= serial.total_latency_ns,
            "{}: overlap regressed",
            scenario.name
        );
        assert!(
            concurrent.total_latency_ns >= critical,
            "{}: schedule undercut its critical path",
            scenario.name
        );
        let speedup = serial.total_latency_ns as f64 / concurrent.total_latency_ns.max(1) as f64;
        rows.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"functions\": {}, \"edges\": {}, ",
                "\"serial_s\": {:.6}, \"concurrent_s\": {:.6}, ",
                "\"critical_path_s\": {:.6}, \"speedup\": {:.3}}}"
            ),
            scenario.name,
            spec.dag.node_count(),
            spec.dag.edge_count(),
            secs(serial.total_latency_ns),
            secs(concurrent.total_latency_ns),
            secs(critical),
            speedup,
        ));
    }

    println!("{{");
    println!("  \"figure\": \"fig11_dag\",");
    println!("  \"payload_bytes\": {payload_bytes},");
    println!("  \"scenarios\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
