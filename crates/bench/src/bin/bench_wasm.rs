//! Interpreter-throughput benchmark — the execution-tier gate.
//!
//! Runs three guest kernels on **both** execution tiers in the same
//! process — the flat-bytecode dispatch loop ([`ExecTier::Compiled`])
//! against the tree walker ([`ExecTier::Reference`]) — and records
//! calls/sec and ns per retired wasm instruction for each:
//!
//! * `compute` — a two-round xorshift32/accumulate loop in the
//!   local-SSA style compilers emit: pure local arithmetic and branch
//!   dispatch, the tree walker's worst case and the superinstruction
//!   pass's best;
//! * `calls` — naive recursive `fib`, all frame setup/teardown on the
//!   reusable frame arena vs host-stack recursion;
//! * `memory` — a bounds-checked load/increment/store loop.
//!
//! Every scenario asserts the two tiers return the same value and
//! retire the same `instr_count` — the flat tier may only change
//! wall-clock — and the `compute` scenario must show **>= 3x**
//! calls/sec, the regression gate future interpreter PRs are judged
//! against (enforced in `--quick` CI runs too).
//!
//! Emits `BENCH_wasm.json` (written to the working directory) and the
//! same JSON on stdout.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin bench_wasm [--quick]`

use std::time::Instant;

use roadrunner_bench::quick_flag;
use roadrunner_wasm::types::{FuncType, ValType, Value};
use roadrunner_wasm::{
    BlockType, EngineLimits, ExecTier, Instance, Instr, Linker, MemArg, Module, ModuleBuilder,
};

/// The compute gate: flat must beat tree by at least this factor.
const COMPUTE_GATE: f64 = 3.0;

/// `loop(n) { x = xorshift32(xorshift32(x)); acc += x }` — locals
/// 0 = n (param), 1 = i, 2 = x, 3 = acc, 4 = t. Two mixing rounds per
/// iteration keep the arithmetic-to-branch ratio near what compiled
/// guest code looks like.
fn compute_module() -> Module {
    let shift = |amount: i32, op: Instr| {
        vec![
            // t = x <shift> amount; x = x ^ t
            Instr::LocalGet(2),
            Instr::I32Const(amount),
            op,
            Instr::LocalSet(4),
            Instr::LocalGet(2),
            Instr::LocalGet(4),
            Instr::I32Xor,
            Instr::LocalSet(2),
        ]
    };
    let mut body = vec![
        Instr::LocalGet(1),
        Instr::LocalGet(0),
        Instr::I32GeU,
        Instr::BrIf(1),
    ];
    for _ in 0..2 {
        body.extend(shift(13, Instr::I32Shl));
        body.extend(shift(17, Instr::I32ShrU));
        body.extend(shift(5, Instr::I32Shl));
    }
    body.extend([
        // acc += x; i += 1
        Instr::LocalGet(3),
        Instr::LocalGet(2),
        Instr::I32Add,
        Instr::LocalSet(3),
        Instr::LocalGet(1),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalSet(1),
        Instr::Br(0),
    ]);
    ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [ValType::I32; 4],
            [
                // x starts at the nonzero xorshift seed.
                Instr::I32Const(0x9E3779B9u32 as i32),
                Instr::LocalSet(2),
                Instr::Block(BlockType::Empty, vec![Instr::Loop(BlockType::Empty, body)]),
                Instr::LocalGet(3),
            ],
        )
        .export_func("run", 0)
        .build()
        .expect("compute guest validates")
}

/// Naive recursive fib — every level is two wasm->wasm calls.
fn calls_module() -> Module {
    ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [],
            [
                Instr::LocalGet(0),
                Instr::I32Const(2),
                Instr::I32LtS,
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![Instr::LocalGet(0)],
                    vec![
                        Instr::LocalGet(0),
                        Instr::I32Const(1),
                        Instr::I32Sub,
                        Instr::Call(0),
                        Instr::LocalGet(0),
                        Instr::I32Const(2),
                        Instr::I32Sub,
                        Instr::Call(0),
                        Instr::I32Add,
                    ],
                ),
            ],
        )
        .export_func("run", 0)
        .build()
        .expect("calls guest validates")
}

/// `loop(n) { mem[a] = load(mem[a]) + 1 }` with `a = (i*4) & 0xFFFC`.
fn memory_module() -> Module {
    ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [ValType::I32, ValType::I32],
            [
                Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(
                        BlockType::Empty,
                        vec![
                            Instr::LocalGet(1),
                            Instr::LocalGet(0),
                            Instr::I32GeU,
                            Instr::BrIf(1),
                            Instr::LocalGet(1),
                            Instr::I32Const(4),
                            Instr::I32Mul,
                            Instr::I32Const(0xFFFC),
                            Instr::I32And,
                            Instr::LocalTee(2),
                            Instr::LocalGet(2),
                            Instr::I32Load(MemArg::natural(4)),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::I32Store(MemArg::natural(4)),
                            Instr::LocalGet(1),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::LocalSet(1),
                            Instr::Br(0),
                        ],
                    )],
                ),
                Instr::LocalGet(1),
            ],
        )
        .memory(1, Some(1))
        .export_func("run", 0)
        .build()
        .expect("memory guest validates")
}

/// One timed tier run: `calls` invocations retiring `instrs` wasm
/// instructions in `wall_s` seconds of host time.
struct Measured {
    calls: usize,
    instrs: u64,
    wall_s: f64,
}

impl Measured {
    fn calls_per_sec(&self) -> f64 {
        self.calls as f64 / self.wall_s.max(1e-9)
    }

    fn ns_per_instr(&self) -> f64 {
        self.wall_s * 1e9 / self.instrs.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"calls\": {}, \"instrs\": {}, \"wall_ms\": {:.3}, ",
                "\"calls_per_sec\": {:.1}, \"ns_per_instr\": {:.2}}}"
            ),
            self.calls,
            self.instrs,
            self.wall_s * 1e3,
            self.calls_per_sec(),
            self.ns_per_instr(),
        )
    }
}

/// Timed batches per tier run. The reported wall time extrapolates the
/// *fastest* batch — every batch retires identical work, so the spread
/// between them is scheduler noise, not the interpreter.
const BATCHES: usize = 5;

/// Instantiates `module` on `tier`, warms it up (so the compiled tier's
/// one-time lowering and the OS's cold caches drop out), then times
/// `calls` invocations in [`BATCHES`] batches, keeping the fastest.
/// Returns the guest's result alongside the measurement so tiers can
/// be cross-checked.
fn run_tier(module: &Module, tier: ExecTier, arg: i32, calls: usize) -> (Value, Measured) {
    let limits = EngineLimits::default().with_exec_tier(tier);
    let mut inst = Instance::new(module.clone(), &Linker::new(), limits, Box::new(()))
        .expect("guest instantiates");
    let args = [Value::I32(arg)];
    inst.invoke("run", &args).expect("warmup call");
    let expect = inst.invoke("run", &args).expect("warmup call")[0];
    inst.reset_instr_count();
    let per_batch = (calls / BATCHES).max(1);
    let mut best_s = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..per_batch {
            let out = inst.invoke("run", &args).expect("timed call");
            assert_eq!(out[0], expect, "guest must be deterministic");
        }
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    let measured = Measured {
        calls: per_batch * BATCHES,
        instrs: inst.instr_count(),
        wall_s: best_s * BATCHES as f64,
    };
    (expect, measured)
}

struct Scenario {
    name: &'static str,
    /// Loop iterations (or fib argument) per call.
    arg: i32,
    tree: Measured,
    flat: Measured,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.flat.calls_per_sec() / self.tree.calls_per_sec().max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"arg\": {}, \"tree\": {}, ",
                "\"flat\": {}, \"speedup\": {:.2}}}"
            ),
            self.name,
            self.arg,
            self.tree.json(),
            self.flat.json(),
            self.speedup(),
        )
    }
}

/// Runs one guest on both tiers and cross-checks them: same result,
/// same retired instruction count — the tiers' exact-equivalence
/// contract, here end-to-end rather than per-op.
fn scenario(name: &'static str, module: &Module, arg: i32, calls: usize) -> Scenario {
    let (tree_val, tree) = run_tier(module, ExecTier::Reference, arg, calls);
    let (flat_val, flat) = run_tier(module, ExecTier::Compiled, arg, calls);
    assert_eq!(flat_val, tree_val, "{name}: tiers must return the same value");
    assert_eq!(
        flat.instrs, tree.instrs,
        "{name}: tiers must retire the same instruction count"
    );
    Scenario { name, arg, tree, flat }
}

fn main() {
    let quick = quick_flag();
    let calls = |full: usize| if quick { full / 10 } else { full };

    let scenarios = [
        scenario("compute", &compute_module(), 10_000, calls(200)),
        scenario("calls", &calls_module(), 20, calls(50)),
        scenario("memory", &memory_module(), 10_000, calls(200)),
    ];

    let compute_speedup = scenarios[0].speedup();
    assert!(
        compute_speedup >= COMPUTE_GATE,
        "execution-tier gate: flat bytecode must run the compute kernel >= {COMPUTE_GATE}x \
         calls/sec over the tree walker (measured {compute_speedup:.2}x)"
    );

    let rows: Vec<String> = scenarios.iter().map(Scenario::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"bench_wasm\",\n",
            "  \"quick\": {},\n",
            "  \"gate\": {{\"scenario\": \"compute\", \"min_speedup\": {:.1}, ",
            "\"measured\": {:.2}}},\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}"
        ),
        quick,
        COMPUTE_GATE,
        compute_speedup,
        rows.join(",\n"),
    );
    std::fs::write("BENCH_wasm.json", format!("{json}\n")).expect("write BENCH_wasm.json");
    println!("{json}");
}
