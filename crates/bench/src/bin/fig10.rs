//! Fig. 10 — inter-node fan-out scalability with 10 MB transfers,
//! comparing Roadrunner (Network), RunC and WasmEdge as the fan-out
//! degree grows (paper: up to 100).
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig10 [--quick]`

use roadrunner_bench::{
    fanout_sweep, fmt_secs, measure_fanout, print_panel, quick_flag, FanoutMeasurement, System,
    MB,
};

fn main() {
    let degrees = fanout_sweep(quick_flag());
    let size = 10 * MB;
    println!("# Fig. 10 — inter-node fan-out (10 MB per branch)");

    let mut rows: Vec<FanoutMeasurement> = Vec::new();
    for &degree in &degrees {
        for &system in System::inter_node().iter() {
            rows.push(measure_fanout(system, degree, size, false));
        }
    }

    print_panel("(a) total latency per branch (s)", &["series", "fanout", "latency_s"]);
    for m in &rows {
        println!("{}\t{}\t{}", m.system.label(), m.degree, fmt_secs(m.branch_ns));
    }
    print_panel("(b) total throughput (req/s)", &["series", "fanout", "rps"]);
    for m in &rows {
        println!("{}\t{}\t{:.3}", m.system.label(), m.degree, m.throughput_rps());
    }
    print_panel("(c) serialization latency (s)", &["series", "fanout", "serialization_s"]);
    for m in &rows {
        println!("{}\t{}\t{}", m.system.label(), m.degree, fmt_secs(m.serialization_ns));
    }
    print_panel("(d) serialization throughput (req/s)", &["series", "fanout", "rps"]);
    for m in &rows {
        println!("{}\t{}\t{:.3}", m.system.label(), m.degree, m.serialization_rps());
    }
    print_panel("(e) total CPU (% of machine)", &["series", "fanout", "cpu_pct"]);
    for m in &rows {
        let pct = (m.user_cpu_ns + m.kernel_cpu_ns) as f64
            / (m.makespan_ns.max(1) as f64 * 4.0)
            * 100.0;
        println!("{}\t{}\t{:.4}", m.system.label(), m.degree, pct);
    }
    print_panel("(f) user-space CPU (%)", &["series", "fanout", "cpu_pct"]);
    for m in &rows {
        let pct = m.user_cpu_ns as f64 / (m.makespan_ns.max(1) as f64 * 4.0) * 100.0;
        println!("{}\t{}\t{:.4}", m.system.label(), m.degree, pct);
    }
    print_panel("(g) kernel-space CPU (%)", &["series", "fanout", "cpu_pct"]);
    for m in &rows {
        let pct = m.kernel_cpu_ns as f64 / (m.makespan_ns.max(1) as f64 * 4.0) * 100.0;
        println!("{}\t{}\t{:.4}", m.system.label(), m.degree, pct);
    }
    print_panel("(h) RAM (MB)", &["series", "fanout", "ram_MB"]);
    for m in &rows {
        println!("{}\t{}\t{:.2}", m.system.label(), m.degree, m.ram_peak as f64 / 1e6);
    }
}
