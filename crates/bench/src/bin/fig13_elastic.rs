//! Fig. 13 (beyond the paper) — closed-loop saturation and elasticity.
//!
//! Fig. 12 measured open-loop tail latency at fixed capacity. This
//! experiment closes both loops the ROADMAP names:
//!
//! * **closed-loop load** — N virtual users each keep one instance of
//!   the three-function pipeline in flight (think time = a quarter of
//!   the system's uncontended makespan, users ramped in a
//!   quarter-makespan apart), so saturation throughput is measured
//!   directly instead of read off the achieved-vs-offered gap;
//! * **elasticity** — the same cells run once at fixed two-node capacity
//!   and once with the backlog-driven autoscaler growing the active set
//!   (2 → up to 6 nodes, one per decision window) through the resizable
//!   `SchedResources`, emitting the scale-event trace alongside the
//!   latency digest.
//!
//! Placement uses the live-view policies: `locality` packs each
//! instance onto the least-backlogged node, `pack_spill` packs the
//! busiest node under one-makespan of backlog and spills past it. Both
//! keep instances co-located, matching the planes' co-located
//! deployments (the spread regime is fig12's subject).
//!
//! A final **cold-admission** section reruns the highest-user fixed
//! cell charging each function's fig. 2a cold-start cost on its first
//! placement per node (Wasm load+init for the Wasm systems, image
//! unpack+init for containers), connecting the cold-start figures to
//! the load figures.
//!
//! Cells fan out over the `platform::sweep` worker pool (`--serial`
//! keeps the in-order reference loop, `--workers N` sizes the pool);
//! output is byte-identical either way — the gate CI enforces. The
//! experiment logic and the headline-invariant assertions live in
//! `roadrunner_bench::fig13`.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig13_elastic
//! [--quick] [--serial] [--workers N] [--no-memo]`

use roadrunner_bench::fig13::{fig13_json, Fig13Options};
use roadrunner_bench::{flag, quick_flag, sweep_mode_flag};

fn main() {
    let opts = Fig13Options {
        quick: quick_flag(),
        golden: false,
        memo: !flag("--no-memo"),
        mode: sweep_mode_flag(),
    };
    println!("{}", fig13_json(&opts));
}
