//! Fig. 13 (beyond the paper) — closed-loop saturation and elasticity.
//!
//! Fig. 12 measured open-loop tail latency at fixed capacity. This
//! experiment closes both loops the ROADMAP names:
//!
//! * **closed-loop load** — N virtual users each keep one instance of
//!   the three-function pipeline in flight (think time = a quarter of
//!   the system's uncontended makespan, users ramped in a
//!   quarter-makespan apart), so saturation throughput is measured
//!   directly instead of read off the achieved-vs-offered gap;
//! * **elasticity** — the same cells run once at fixed two-node capacity
//!   and once with the backlog-driven autoscaler growing the active set
//!   (2 → up to 6 nodes, one per decision window) through the resizable
//!   `SchedResources`, emitting the scale-event trace alongside the
//!   latency digest.
//!
//! Placement uses the live-view policies: `locality` packs each
//! instance onto the least-backlogged node, `pack_spill` packs the
//! busiest node under one-makespan of backlog and spills past it. Both
//! keep instances co-located, matching the planes' co-located
//! deployments (the spread regime is fig12's subject).
//!
//! A final **cold-admission** section reruns the highest-user fixed
//! cell charging each function's fig. 2a cold-start cost on its first
//! placement per node (Wasm load+init for the Wasm systems, image
//! unpack+init for containers), connecting the cold-start figures to
//! the load figures.
//!
//! Emits one machine-readable JSON document and asserts the headline
//! invariants:
//!
//! * under identical users/policy/capacity, Roadrunner's saturation
//!   throughput is at least WasmEdge's;
//! * at the highest user count the autoscaler-on run has strictly lower
//!   p95 sojourn than fixed capacity (asserted for Roadrunner);
//! * placements are deterministic: re-running a cell reproduces them.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig13_elastic [--quick]`

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::coldstart::{
    container_cold_ns, wasm_cold_ns, CONTAINER_IMAGE_BYTES, PAPER_WASM_HELLO_BYTES,
};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_bench::{flag, quick_flag, MB};
use roadrunner_platform::{
    execute, execute_concurrent, Autoscaler, AutoscalerConfig, ClosedLoop, DataPlane,
    FunctionBundle, LoadRun, LocalityFirst, MemoizedPlane, PackThenSpill, PlacementPolicy,
    WorkflowSpec,
};
use roadrunner_vkernel::{secs, ClusterSpec, Nanos, SchedResources, Testbed};
use roadrunner_wasm::encode;

/// Fixed-capacity (and autoscaler-minimum) active node count.
const START_NODES: usize = 2;
/// Autoscaler ceiling; the testbed always has this many nodes built.
const MAX_NODES: usize = 6;
const CORES: u32 = 4;

fn cluster() -> Arc<Testbed> {
    Arc::new(ClusterSpec::homogeneous(MAX_NODES, CORES, 8 << 30).build())
}

fn spec() -> WorkflowSpec {
    WorkflowSpec::sequence(
        "pipeline",
        "bench",
        ["src".to_owned(), "relay".to_owned(), "sink".to_owned()],
    )
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("fig13")
            .with_tenant("bench"),
    )
}

/// Deploys the Roadrunner pipeline co-located on node 0 (kernel-space
/// edges — the regime the packing policies reproduce per instance).
fn roadrunner_plane(bed: &Arc<Testbed>) -> RoadrunnerPlane {
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(bed), ShimConfig::default().with_load_costs(false));
    plane
        .deploy(0, "src", rr_bundle("src", guest::producer()), "produce", false)
        .expect("deploy src");
    plane
        .deploy(0, "relay", rr_bundle("relay", guest::relay()), "relay", false)
        .expect("deploy relay");
    plane
        .deploy(0, "sink", rr_bundle("sink", guest::consumer()), "consume", true)
        .expect("deploy sink");
    plane
}

struct SystemUnderLoad {
    label: &'static str,
    plane: Box<dyn DataPlane>,
    /// Uncontended concurrent makespan of one instance (own think-time
    /// and threshold base).
    solo_ns: Nanos,
    /// Fig. 2a-style cold-start cost of one function of this system.
    cold_ns: Nanos,
}

/// The three systems, co-located, warmed, with their solo makespans
/// measured on a fresh two-node mesh.
fn systems(bed: &Arc<Testbed>, payload: &Bytes) -> Vec<SystemUnderLoad> {
    let cost = bed.cost();
    let wasm_cold = wasm_cold_ns(cost, PAPER_WASM_HELLO_BYTES);
    let runc_cold = container_cold_ns(cost, CONTAINER_IMAGE_BYTES);
    let mut out = vec![
        SystemUnderLoad {
            label: "roadrunner",
            plane: Box::new(roadrunner_plane(bed)),
            solo_ns: 0,
            cold_ns: wasm_cold,
        },
        SystemUnderLoad {
            label: "runc",
            plane: Box::new(RuncPair::establish(Arc::clone(bed), 0, 0)),
            solo_ns: 0,
            cold_ns: runc_cold,
        },
        SystemUnderLoad {
            label: "wasmedge",
            plane: Box::new(WasmedgePair::establish(Arc::clone(bed), 0, 0)),
            solo_ns: 0,
            cold_ns: wasm_cold,
        },
    ];
    for system in &mut out {
        system.solo_ns = uncontended(system.plane.as_mut(), bed, payload);
    }
    out
}

/// Uncontended concurrent makespan of one instance on a fresh, empty
/// two-node mesh. The plane is warmed first (one discarded serial run)
/// so lazy connection establishment is excluded from every measured
/// comparison.
fn uncontended(plane: &mut dyn DataPlane, bed: &Arc<Testbed>, payload: &Bytes) -> Nanos {
    let clock = bed.clock().clone();
    let workflow = spec();
    execute(plane, &clock, &workflow, payload.clone()).expect("warmup run");
    let mut fresh = SchedResources::mesh(&[CORES; START_NODES]);
    execute_concurrent(plane, &clock, &workflow, payload.clone(), &mut fresh)
        .expect("uncontended run")
        .total_latency_ns
}

fn policy_of(name: &str, solo_ns: Nanos) -> Box<dyn PlacementPolicy> {
    match name {
        "locality" => Box::new(LocalityFirst::new()),
        // Spill once a node queues more than one uncontended makespan.
        _ => Box::new(PackThenSpill::new(solo_ns)),
    }
}

/// One cell's knobs.
#[derive(Clone, Copy)]
struct Knobs {
    users: usize,
    rounds: usize,
    autoscaled: bool,
    cold: bool,
    /// Wrap the plane in the transfer-cost memo (the default; `--no-memo`
    /// turns it off to produce the byte-identity reference run).
    memo: bool,
}

/// One closed-loop run of `users`×`rounds` instances, optionally
/// autoscaled and optionally charging cold starts.
fn run_cell(
    system: &mut SystemUnderLoad,
    bed: &Arc<Testbed>,
    payload: &Bytes,
    policy_name: &str,
    knobs: Knobs,
) -> LoadRun {
    let Knobs { users, rounds, autoscaled, cold, memo } = knobs;
    let solo = system.solo_ns;
    // Think a quarter-makespan between requests and ramp users in a
    // quarter-makespan apart: at the top user counts demand concurrency
    // (`users·solo/(solo+think)`) far exceeds the fixed 8 lanes, and the
    // ramp lets the controller race the building load instead of
    // measuring an unavoidable thundering herd.
    let load = ClosedLoop {
        spec: spec(),
        payload: payload.clone(),
        users,
        think_ns: solo / 4,
        ramp_ns: solo / 4,
        instances: users * rounds,
        cold_start_ns: cold.then_some(system.cold_ns),
    };
    let mut policy = policy_of(policy_name, solo);
    let mut resources = SchedResources::mesh(&[CORES; START_NODES]);
    let clock = bed.clock().clone();
    // Identical instances hit the transfer-cost memo after the first;
    // virtual-time results are byte-identical. The `--no-memo` reference
    // run is what the CI gate diffs this JSON against.
    let mut memo_plane;
    let plane: &mut dyn DataPlane = if memo {
        memo_plane = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
        &mut memo_plane
    } else {
        system.plane.as_mut()
    };
    let run = if autoscaled {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: START_NODES,
            max_nodes: MAX_NODES,
            node_cores: CORES,
            scale_up_backlog_ns: solo / 2,
            scale_down_backlog_ns: solo / 16,
            window_ns: (solo / 4).max(1),
        });
        load.run_elastic(plane, &clock, &mut resources, policy.as_mut(), Some(&mut scaler))
    } else {
        load.run(plane, &clock, &mut resources, policy.as_mut())
    }
    .expect("closed-loop run");
    assert_eq!(run.outcomes.len(), users * rounds, "every instance must complete");
    run
}

struct Cell {
    system: &'static str,
    policy: &'static str,
    users: usize,
    autoscaled: bool,
    cold: bool,
    solo_ns: Nanos,
    run: LoadRun,
}

impl Cell {
    fn json(&self) -> String {
        let digest = self.run.sojourn_percentiles().expect("non-empty run");
        let events: Vec<String> = self
            .run
            .scale_events
            .iter()
            .map(|e| {
                format!(
                    "{{\"t_s\": {:.6}, \"action\": \"{}\", \"nodes\": {}}}",
                    secs(e.at_ns),
                    match e.action {
                        roadrunner_platform::ScaleAction::Up => "up",
                        roadrunner_platform::ScaleAction::Down => "down",
                    },
                    e.nodes_after,
                )
            })
            .collect();
        format!(
            concat!(
                "    {{\"system\": \"{}\", \"policy\": \"{}\", \"users\": {}, ",
                "\"autoscaled\": {}, \"cold_admission\": {}, \"instances\": {}, ",
                "\"solo_s\": {:.6}, \"think_s\": {:.6}, ",
                "\"saturation_rps\": {:.3}, ",
                "\"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}, \"max_s\": {:.6}, ",
                "\"cpu_util\": {:.4}, \"cold_starts\": {}, \"cold_total_s\": {:.6}, ",
                "\"final_nodes\": {}, \"scale_events\": [{}]}}"
            ),
            self.system,
            self.policy,
            self.users,
            self.autoscaled,
            self.cold,
            self.run.outcomes.len(),
            secs(self.solo_ns),
            secs(self.solo_ns / 4),
            self.run.throughput_rps(),
            secs(digest.p50_ns),
            secs(digest.p95_ns),
            secs(digest.p99_ns),
            secs(digest.max_ns),
            self.run.cpu_utilization,
            self.run.cold_starts(),
            secs(self.run.cold_start_total_ns()),
            self.run.final_nodes,
            events.join(", "),
        )
    }
}

fn main() {
    let quick = quick_flag();
    let no_memo = flag("--no-memo");
    let payload_bytes = if quick { 2 * MB } else { 4 * MB };
    let users_sweep: Vec<usize> = if quick { vec![2, 16] } else { vec![4, 16, 32] };
    let rounds = if quick { 3 } else { 5 };
    let payload = Bytes::from(vec![0xB3u8; payload_bytes]);
    let top_users = *users_sweep.last().expect("non-empty sweep");

    let mut cells: Vec<Cell> = Vec::new();
    for policy_name in ["locality", "pack_spill"] {
        let bed = cluster();
        let mut under_load = systems(&bed, &payload);

        // Determinism: the same cell re-run on fresh resources must
        // reproduce its placements exactly.
        {
            let system = &mut under_load[0];
            let knobs =
                Knobs { users: users_sweep[0], rounds, autoscaled: false, cold: false, memo: !no_memo };
            let a = run_cell(system, &bed, &payload, policy_name, knobs);
            let b = run_cell(system, &bed, &payload, policy_name, knobs);
            let pa: Vec<&[usize]> = a.outcomes.iter().map(|o| o.assignment.as_slice()).collect();
            let pb: Vec<&[usize]> = b.outcomes.iter().map(|o| o.assignment.as_slice()).collect();
            assert_eq!(pa, pb, "{policy_name}: placements must be deterministic");
        }

        for &users in &users_sweep {
            for autoscaled in [false, true] {
                for system in under_load.iter_mut() {
                    let run = run_cell(
                        system,
                        &bed,
                        &payload,
                        policy_name,
                        Knobs { users, rounds, autoscaled, cold: false, memo: !no_memo },
                    );
                    cells.push(Cell {
                        system: system.label,
                        policy: policy_name,
                        users,
                        autoscaled,
                        cold: false,
                        solo_ns: system.solo_ns,
                        run,
                    });
                }
                // Saturation-throughput ordering under identical knobs.
                let rr = cells
                    .iter()
                    .rev()
                    .find(|c| c.system == "roadrunner")
                    .expect("roadrunner cell exists");
                let we = cells
                    .iter()
                    .rev()
                    .find(|c| c.system == "wasmedge")
                    .expect("wasmedge cell exists");
                assert!(
                    rr.run.throughput_rps() >= we.run.throughput_rps(),
                    "{policy_name} users={users} autoscaled={autoscaled}: \
                     roadrunner {} rps < wasmedge {} rps",
                    rr.run.throughput_rps(),
                    we.run.throughput_rps(),
                );
            }
        }

        // Elasticity headline: at the highest user count, scaling out
        // must cut Roadrunner's p95 sojourn vs fixed capacity.
        let p95 = |autoscaled: bool| {
            cells
                .iter()
                .find(|c| {
                    c.system == "roadrunner"
                        && c.policy == policy_name
                        && c.users == top_users
                        && c.autoscaled == autoscaled
                        && !c.cold
                })
                .expect("cell exists")
                .run
                .sojourn_percentiles()
                .expect("non-empty")
                .p95_ns
        };
        let (fixed_p95, elastic_p95) = (p95(false), p95(true));
        assert!(
            elastic_p95 < fixed_p95,
            "{policy_name}: autoscaled p95 {elastic_p95} must beat fixed {fixed_p95}",
        );

        // Cold-admission section: the highest-user fixed cell, paying
        // each function's fig2a cold start on first placement per node.
        for system in under_load.iter_mut() {
            let warm_mean = cells
                .iter()
                .find(|c| {
                    c.system == system.label
                        && c.policy == policy_name
                        && c.users == top_users
                        && !c.autoscaled
                        && !c.cold
                })
                .expect("warm cell exists")
                .run
                .sojourn_percentiles()
                .expect("non-empty")
                .mean_ns;
            let knobs =
                Knobs { users: top_users, rounds, autoscaled: false, cold: true, memo: !no_memo };
            let run = run_cell(system, &bed, &payload, policy_name, knobs);
            assert!(run.cold_starts() > 0, "{}: cold admission must charge someone", system.label);
            let cold_mean = run.sojourn_percentiles().expect("non-empty").mean_ns;
            assert!(
                cold_mean > warm_mean,
                "{}: cold admission must show up in mean sojourn ({cold_mean} !> {warm_mean})",
                system.label,
            );
            cells.push(Cell {
                system: system.label,
                policy: policy_name,
                users: top_users,
                autoscaled: false,
                cold: true,
                solo_ns: system.solo_ns,
                run,
            });
        }
    }

    println!("{{");
    println!("  \"figure\": \"fig13_elastic\",");
    println!(
        "  \"cluster\": {{\"nodes_fixed\": {START_NODES}, \"nodes_max\": {MAX_NODES}, \
         \"cores_per_node\": {CORES}}},"
    );
    println!("  \"workflow\": \"src -> relay -> sink\",");
    println!("  \"payload_mb\": {:.1},", payload_bytes as f64 / MB as f64);
    println!("  \"rounds_per_user\": {rounds},");
    println!("  \"cells\": [");
    let rows: Vec<String> = cells.iter().map(Cell::json).collect();
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
