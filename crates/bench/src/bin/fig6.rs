//! Fig. 6 — inter-node transfer breakdown for a 100 MB payload across
//! Roadrunner (RR), RunC (RC) and WasmEdge (W):
//! (a) latency components, (b) serialization overhead, (c) normalized
//! latency distribution.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig6`

use roadrunner_bench::{fmt_secs, measure_transfer, print_panel, System, MB};

fn main() {
    let size = 100 * MB;
    println!("# Fig. 6 — inter-node 100 MB transfer breakdown (RR vs RC vs W)");

    let measurements: Vec<_> = System::inter_node()
        .iter()
        .map(|&s| measure_transfer(s, size))
        .collect();

    print_panel(
        "(a) latency components (seconds)",
        &["series", "transfer_s", "serialization_s", "wasm_vm_io_s", "total_s"],
    );
    for m in &measurements {
        assert!(m.checksum_ok, "payload corrupted in {:?}", m.system);
        println!(
            "{}\t{}\t{}\t{}\t{}",
            short(m.system),
            fmt_secs(m.transfer_only_ns()),
            fmt_secs(m.serialization_ns),
            fmt_secs(m.wasm_io_ns),
            fmt_secs(m.latency_ns),
        );
    }

    print_panel("(b) serialization overhead (seconds, log scale in the paper)", &[
        "series",
        "serialization_s",
    ]);
    for m in &measurements {
        println!("{}\t{}", short(m.system), fmt_secs(m.serialization_ns));
    }

    print_panel("(c) normalized latency distribution (%)", &[
        "series",
        "transfer_pct",
        "serialization_pct",
        "wasm_vm_io_pct",
    ]);
    for m in &measurements {
        let total = m.latency_ns.max(1) as f64;
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}",
            short(m.system),
            m.transfer_only_ns() as f64 / total * 100.0,
            m.serialization_ns as f64 / total * 100.0,
            m.wasm_io_ns as f64 / total * 100.0,
        );
    }

    let rr = &measurements[0];
    let rc = &measurements[1];
    let w = &measurements[2];
    println!();
    println!("# headline checks (paper: RR total −62% vs W, −7% vs RC; serialization −97% vs W, −46% vs RC)");
    println!(
        "total_reduction_vs_wasmedge_pct\t{:.1}",
        (1.0 - rr.latency_ns as f64 / w.latency_ns as f64) * 100.0
    );
    println!(
        "total_reduction_vs_runc_pct\t{:.1}",
        (1.0 - rr.latency_ns as f64 / rc.latency_ns as f64) * 100.0
    );
    println!(
        "serialization_overhead_reduction_vs_wasmedge_pct\t{:.1}",
        (1.0 - rr.overhead_ns() as f64 / w.overhead_ns() as f64) * 100.0
    );
    println!(
        "serialization_overhead_reduction_vs_runc_pct\t{:.1}",
        (1.0 - rr.overhead_ns() as f64 / rc.overhead_ns() as f64) * 100.0
    );
}

fn short(system: System) -> &'static str {
    match system {
        System::RoadrunnerNetwork => "RR",
        System::Runc => "RC",
        System::Wasmedge => "W",
        _ => "?",
    }
}
