//! Fig. 15 (beyond the paper) — warm-pool admission, keep-alive
//! eviction and predictive pre-warming under bursty closed-loop load.
//!
//! Four admission policies × the three systems, each driven through
//! bursty ramps (long inter-burst think gaps) on fixed two-node
//! capacity:
//!
//! * `no_pool` — every admission instantiates in full;
//! * `ttl` — fixed keep-alive of half the burst gap (evicts between
//!   bursts, restores every burst);
//! * `hybrid` — histogram-of-reuse-gaps keep-alive that learns each
//!   function's idle distribution;
//! * `hybrid_prewarm` — hybrid plus square-root-staffing pre-warming
//!   driven by the autoscaler's in-flight demand estimate.
//!
//! The experiment logic and the gate assertions (warm-pool p99 at burst
//! peak ≥ 2× better than `no_pool`; pre-warming strictly cutting total
//! cold-start time vs the reactive TTL) live in
//! `roadrunner_bench::fig15`. The JSON lands on stdout *and* in
//! `BENCH_coldstart.json` — the committed full-run reference CI's quick
//! run re-gates.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig15_coldstart
//! [--quick] [--serial] [--workers N]`

use roadrunner_bench::fig15::{fig15_json, Fig15Options};
use roadrunner_bench::{quick_flag, sweep_mode_flag};

fn main() {
    let opts = Fig15Options { quick: quick_flag(), mode: sweep_mode_flag() };
    let json = fig15_json(&opts);
    if !opts.quick {
        std::fs::write("BENCH_coldstart.json", format!("{json}\n"))
            .expect("write BENCH_coldstart.json");
    }
    println!("{json}");
}
