//! Fig. 2a — cold start latency, execution latency and artifact size for
//! Docker-style containers vs Wasm, with and without WASI.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig2a`

use std::sync::Arc;

use roadrunner::guest::ResizeSpec;
use roadrunner_baselines::coldstart;
use roadrunner_bench::{fmt_secs, print_panel};
use roadrunner_vkernel::Testbed;

fn main() {
    let bed = Arc::new(Testbed::paper());
    let cost = bed.cost();
    let spec = ResizeSpec { width: 1024, height: 768 };

    let samples = [
        coldstart::container_hello(cost),
        coldstart::wasm_hello(&bed),
        coldstart::container_resize(cost, spec),
        coldstart::wasm_resize(&bed, spec),
    ];

    println!("# Fig. 2a — cold start and execution latency; image size (containers vs Wasm)");
    println!("# 'Resize Image' uses WASI (path_open/fd_read/fd_write); 'Hello World' does not.");
    print_panel(
        "Cold start, execution and artifact size",
        &["series", "cold_start_s", "execution_s", "artifact_MB"],
    );
    for s in &samples {
        println!(
            "{}\t{}\t{}\t{:.3}",
            s.label,
            fmt_secs(s.cold_ns),
            fmt_secs(s.exec_ns),
            s.artifact_bytes as f64 / 1e6
        );
    }

    // Paper-shape assertions (also checked by the test suite).
    let cont_hello = &samples[0];
    let wasm_hello = &samples[1];
    let cont_resize = &samples[2];
    let wasm_resize = &samples[3];
    println!();
    println!("# shape checks");
    println!(
        "wasm_cold_below_container\t{}",
        wasm_hello.cold_ns < cont_hello.cold_ns
    );
    println!(
        "wasm_exec_faster_without_wasi\t{}",
        wasm_hello.exec_ns < cont_hello.exec_ns
    );
    println!(
        "wasm_exec_slower_with_wasi\t{}",
        wasm_resize.exec_ns > cont_resize.exec_ns
    );
}
