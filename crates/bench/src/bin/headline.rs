//! Headline-claims check: recomputes every quantitative claim of the
//! paper's abstract/§6 from the measured sweeps and reports whether the
//! reproduction lands in (or near) the paper's band.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin headline [--quick]`

use roadrunner_bench::{
    measure_transfer, measure_transfer_intra, payload_sweep, quick_flag, System, MB,
};

struct Claim {
    name: &'static str,
    paper: &'static str,
    measured: String,
    holds: bool,
}

fn main() {
    let sizes = payload_sweep(quick_flag());
    let mut claims: Vec<Claim> = Vec::new();

    // ---------------------------------------------------------- intra-node
    let mut user_vs_wasmedge: Vec<f64> = Vec::new();
    let mut user_vs_runc: Vec<f64> = Vec::new();
    let mut kernel_vs_wasmedge: Vec<f64> = Vec::new();
    let mut kernel_vs_runc: Vec<f64> = Vec::new();
    let mut throughput_gain: Vec<f64> = Vec::new();
    let mut cpu_reduction: Vec<f64> = Vec::new();
    let mut ram_reduction: Vec<f64> = Vec::new();
    for &size in &sizes {
        let user = measure_transfer_intra(System::RoadrunnerUser, size);
        let kernel = measure_transfer_intra(System::RoadrunnerKernel, size);
        let runc = measure_transfer_intra(System::Runc, size);
        let wasmedge = measure_transfer_intra(System::Wasmedge, size);
        user_vs_wasmedge.push(reduction(user.latency_ns, wasmedge.latency_ns));
        user_vs_runc.push(reduction(user.latency_ns, runc.latency_ns));
        kernel_vs_wasmedge.push(reduction(kernel.latency_ns, wasmedge.latency_ns));
        kernel_vs_runc.push(reduction(kernel.latency_ns, runc.latency_ns));
        throughput_gain.push(user.throughput_rps() / wasmedge.throughput_rps());
        cpu_reduction.push(reduction(
            user.user_cpu_ns + user.kernel_cpu_ns,
            wasmedge.user_cpu_ns + wasmedge.kernel_cpu_ns,
        ));
        ram_reduction.push(reduction(user.ram_peak, wasmedge.ram_peak));
    }
    claims.push(band_claim(
        "intra: RR(user) latency reduction vs WasmEdge",
        "44%–89%",
        &user_vs_wasmedge,
        0.44,
        0.99,
    ));
    claims.push(band_claim(
        "intra: RR(user) latency reduction vs RunC",
        "10%–80%",
        &user_vs_runc,
        0.10,
        0.80,
    ));
    claims.push(band_claim(
        "intra: RR(kernel) latency reduction vs WasmEdge",
        "76%–83%",
        &kernel_vs_wasmedge,
        0.60,
        0.95,
    ));
    claims.push(band_claim(
        "intra: RR(kernel) latency reduction vs RunC",
        "up to 13%",
        &kernel_vs_runc,
        0.0,
        0.40,
    ));
    let max_gain = throughput_gain.iter().cloned().fold(0.0, f64::max);
    claims.push(Claim {
        name: "intra: RR(user) throughput gain vs WasmEdge",
        paper: "up to 69×",
        measured: format!("up to {max_gain:.1}×"),
        holds: max_gain > 5.0,
    });
    let max_cpu = cpu_reduction.iter().cloned().fold(0.0, f64::max);
    claims.push(Claim {
        name: "intra: CPU reduction vs WasmEdge",
        paper: "up to 94%",
        measured: format!("up to {:.0}%", max_cpu * 100.0),
        holds: max_cpu > 0.5,
    });
    let max_ram = ram_reduction.iter().cloned().fold(0.0, f64::max);
    claims.push(Claim {
        name: "intra: RAM reduction vs WasmEdge",
        paper: "up to 50%",
        measured: format!("up to {:.0}%", max_ram * 100.0),
        holds: max_ram > 0.2,
    });

    // ---------------------------------------------------------- inter-node
    let size = 100 * MB;
    let rr = measure_transfer(System::RoadrunnerNetwork, size);
    let rc = measure_transfer(System::Runc, size);
    let w = measure_transfer(System::Wasmedge, size);
    let total_vs_w = reduction(rr.latency_ns, w.latency_ns);
    claims.push(Claim {
        name: "inter: RR total latency reduction vs WasmEdge (100 MB)",
        paper: "62%",
        measured: format!("{:.0}%", total_vs_w * 100.0),
        holds: (0.30..=0.80).contains(&total_vs_w),
    });
    let total_vs_rc = reduction(rr.latency_ns, rc.latency_ns);
    claims.push(Claim {
        name: "inter: RR total latency reduction vs RunC (100 MB)",
        paper: "7%",
        measured: format!("{:.1}%", total_vs_rc * 100.0),
        holds: (0.0..=0.30).contains(&total_vs_rc),
    });
    let ser_vs_w = reduction(rr.overhead_ns(), w.overhead_ns());
    claims.push(Claim {
        name: "inter: serialization-path overhead reduction vs WasmEdge",
        paper: "97%",
        measured: format!("{:.1}%", ser_vs_w * 100.0),
        holds: ser_vs_w > 0.80,
    });
    // The paper's 46 % vs RunC is in tension with its own "kernel-space
    // only up to 13 % faster than RunC" intra-node claim under any linear
    // cost model (see EXPERIMENTS.md); we require the direction (RR's
    // overhead below RunC's), not the magnitude.
    let ser_vs_rc = reduction(rr.overhead_ns(), rc.overhead_ns());
    claims.push(Claim {
        name: "inter: serialization-path overhead reduction vs RunC",
        paper: "46%",
        measured: format!("{:.1}%", ser_vs_rc * 100.0),
        holds: ser_vs_rc > 0.0,
    });

    // ------------------------------------------------------------- report
    println!("# Headline claims — paper vs this reproduction");
    println!("claim\tpaper\tmeasured\tholds");
    let mut all = true;
    for c in &claims {
        println!("{}\t{}\t{}\t{}", c.name, c.paper, c.measured, c.holds);
        all &= c.holds;
    }
    println!();
    println!("all_claims_hold\t{all}");
    if !all {
        std::process::exit(1);
    }
}

fn reduction(ours: u64, theirs: u64) -> f64 {
    if theirs == 0 {
        return 0.0;
    }
    1.0 - ours as f64 / theirs as f64
}

fn band_claim(
    name: &'static str,
    paper: &'static str,
    values: &[f64],
    lo: f64,
    hi: f64,
) -> Claim {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Claim {
        name,
        paper,
        measured: format!("{:.0}%–{:.0}%", min * 100.0, max * 100.0),
        holds: max >= lo && min <= hi && min >= -0.05,
    }
}
