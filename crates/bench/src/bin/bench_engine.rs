//! Engine-throughput benchmark — the wall-clock trajectory gate.
//!
//! Every other binary in this crate measures *virtual* time. This one
//! measures the **host wall-clock cost of the simulation engine itself**:
//! how many workflow instances per second of real time the stack pushes
//! through, and how many nanoseconds each engine event costs. It runs
//! four scenarios over the Roadrunner plane (three-function pipeline,
//! co-located deployment, fig12/fig13-style cluster):
//!
//! * `serial` — back-to-back [`execute`] runs (the paper-figure path);
//! * `concurrent` — [`execute_concurrent_at`] on fresh resources per
//!   instance (the uncontended DAG engine);
//! * `open_loop` — a fig12-style [`OpenLoop`] sweep onto shared
//!   resources;
//! * `closed_loop` — a fig13-style [`ClosedLoop`] with the backlog
//!   autoscaler in the loop;
//! * `parallel` — a multi-seed grid of independent open-loop jobs run
//!   serially vs on the `platform::sweep` worker pool (4 workers),
//!   recording threads, speedup and scaling efficiency. Results are
//!   asserted identical between the two orders; on a host with ≥ 4
//!   cores the pool must deliver **≥ 2×** wall-clock speedup — the
//!   scale-across-cores gate (skipped, but still measured and
//!   recorded, on smaller hosts).
//!
//! Each scenario is measured twice **in the same run**. For `serial`
//! and `concurrent` the baseline is the legacy per-call entry points
//! (re-validate + re-topo-sort every execution, no memo) against
//! [`CompiledWorkflow`] reuse + [`MemoizedPlane`]. For the two load
//! scenarios the baseline is the **unmemoized** engine — the
//! compiled-workflow and allocation-free-view improvements live inside
//! `loadgen` itself and apply to both sides, so those rows isolate the
//! transfer memo (the dominant factor; the engine-level rework's effect
//! shows in the serial/concurrent rows). Virtual-time outputs are
//! asserted identical between the two — the optimizations may only
//! change wall-clock — and the closed-loop sweep must show **≥ 5×
//! instances/sec**, the regression gate future PRs are judged against.
//!
//! Emits `BENCH_engine.json` (written to the working directory) and the
//! same JSON on stdout.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin bench_engine [--quick]`

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_bench::{quick_flag, MB};
use roadrunner_platform::{
    execute, execute_compiled, execute_compiled_at, execute_concurrent_at, AdmissionConfig, Autoscaler,
    AutoscalerConfig, ClosedLoop, CompiledWorkflow, DataPlane, FunctionBundle, LoadRun,
    MemoizedPlane, OpenLoop, WorkflowSpec,
};
use roadrunner_platform::{
    available_workers, run_jobs, ArrivalProcess, LocalityFirst, PackThenSpill, SweepMode,
};
use roadrunner_vkernel::{ClusterSpec, Nanos, SchedResources, Testbed};
use roadrunner_wasm::encode;

const NODES: usize = 4;
const CORES: u32 = 4;

fn cluster() -> Arc<Testbed> {
    Arc::new(ClusterSpec::homogeneous(NODES, CORES, 8 << 30).build())
}

fn spec() -> WorkflowSpec {
    WorkflowSpec::sequence(
        "pipeline",
        "bench",
        ["src".to_owned(), "relay".to_owned(), "sink".to_owned()],
    )
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("bench_engine")
            .with_tenant("bench"),
    )
}

fn roadrunner_plane(bed: &Arc<Testbed>) -> RoadrunnerPlane {
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(bed), ShimConfig::default().with_load_costs(false));
    plane
        .deploy(0, "src", rr_bundle("src", guest::producer()), "produce", false)
        .expect("deploy src");
    plane
        .deploy(0, "relay", rr_bundle("relay", guest::relay()), "relay", false)
        .expect("deploy relay");
    plane
        .deploy(0, "sink", rr_bundle("sink", guest::consumer()), "consume", true)
        .expect("deploy sink");
    plane
}

/// One timed measurement: `instances` workflow instances comprising
/// `events` engine events, in `wall_s` seconds of host time.
struct Measured {
    instances: usize,
    events: usize,
    wall_s: f64,
}

impl Measured {
    fn instances_per_sec(&self) -> f64 {
        self.instances as f64 / self.wall_s.max(1e-9)
    }

    fn ns_per_event(&self) -> f64 {
        self.wall_s * 1e9 / self.events.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"instances\": {}, \"events\": {}, \"wall_ms\": {:.3}, ",
                "\"instances_per_sec\": {:.1}, \"ns_per_event\": {:.0}}}"
            ),
            self.instances,
            self.events,
            self.wall_s * 1e3,
            self.instances_per_sec(),
            self.ns_per_event(),
        )
    }
}

fn timed(instances: usize, events_per_instance: usize, mut f: impl FnMut()) -> Measured {
    let start = Instant::now();
    f();
    Measured {
        instances,
        events: instances * events_per_instance,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// Virtual-time signature of a load run: what must stay byte-identical
/// between the baseline and optimized engines.
fn signature(run: &LoadRun) -> Vec<(usize, Nanos, Nanos, Nanos)> {
    run.outcomes
        .iter()
        .map(|o| (o.user, o.release_ns, o.finish_ns, o.cold_start_ns))
        .collect()
}

struct Scenario {
    name: &'static str,
    baseline: Measured,
    optimized: Measured,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.optimized.instances_per_sec() / self.baseline.instances_per_sec().max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"baseline\": {}, \"optimized\": {}, \"speedup\": {:.2}}}",
            self.name,
            self.baseline.json(),
            self.optimized.json(),
            self.speedup(),
        )
    }
}

fn main() {
    let quick = quick_flag();
    let payload_bytes = if quick { 2 * MB } else { 4 * MB };
    let serial_n = if quick { 24 } else { 64 };
    let open_n = if quick { 32 } else { 96 };
    let (users, rounds) = if quick { (8, 4) } else { (16, 5) };
    let payload = Bytes::from(vec![0xE1u8; payload_bytes]);
    let workflow = spec();
    let edges = workflow.dag.edge_count();

    let bed = cluster();
    let clock = bed.clock().clone();
    let mut plane = roadrunner_plane(&bed);
    // Warm-up: lazy connection establishment and the solo makespan the
    // closed loop derives its think time from, all outside every timed
    // window.
    execute(&mut plane, &clock, &workflow, payload.clone()).expect("warmup");
    let solo_ns = {
        let mut fresh = SchedResources::mesh(&[CORES; NODES]);
        execute_concurrent_at(&mut plane, &clock, &workflow, payload.clone(), &mut fresh, 0)
            .expect("solo run")
            .total_latency_ns
    };

    let mut scenarios: Vec<Scenario> = Vec::new();

    // --- serial -----------------------------------------------------
    {
        let mut check = Vec::new();
        let baseline = timed(serial_n, edges, || {
            for _ in 0..serial_n {
                let run = execute(&mut plane, &clock, &workflow, payload.clone())
                    .expect("serial baseline");
                check.push(run.total_latency_ns);
            }
        });
        let compiled = CompiledWorkflow::compile(&workflow).expect("valid spec");
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let mut check_opt = Vec::new();
        let optimized = timed(serial_n, edges, || {
            for _ in 0..serial_n {
                let run = execute_compiled(&mut memo, &clock, &compiled, payload.clone())
                    .expect("serial optimized");
                check_opt.push(run.total_latency_ns);
            }
        });
        assert_eq!(check, check_opt, "serial: virtual-time outputs must be identical");
        scenarios.push(Scenario { name: "serial", baseline, optimized });
    }

    // --- concurrent -------------------------------------------------
    {
        let mut check = Vec::new();
        let baseline = timed(serial_n, edges, || {
            for _ in 0..serial_n {
                let mut fresh = SchedResources::mesh(&[CORES; NODES]);
                // Legacy entry point: re-validates and re-sorts per call.
                let run = execute_concurrent_at(
                    &mut plane,
                    &clock,
                    &workflow,
                    payload.clone(),
                    &mut fresh,
                    0,
                )
                .expect("concurrent baseline");
                check.push(run.total_latency_ns);
            }
        });
        let compiled = CompiledWorkflow::compile(&workflow).expect("valid spec");
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let mut check_opt = Vec::new();
        let optimized = timed(serial_n, edges, || {
            for _ in 0..serial_n {
                let mut fresh = SchedResources::mesh(&[CORES; NODES]);
                let run = execute_compiled_at(
                    &mut memo,
                    &clock,
                    &compiled,
                    payload.clone(),
                    &mut fresh,
                    0,
                )
                .expect("concurrent optimized");
                check_opt.push(run.total_latency_ns);
            }
        });
        assert_eq!(check, check_opt, "concurrent: virtual-time outputs must be identical");
        scenarios.push(Scenario { name: "concurrent", baseline, optimized });
    }

    // --- open loop --------------------------------------------------
    {
        let load = OpenLoop {
            spec: spec(),
            payload: payload.clone(),
            arrivals: ArrivalProcess::Uniform { interval_ns: (solo_ns / 2).max(1) },
            instances: open_n,
            admission: AdmissionConfig::warm(),
        };
        // Baseline = the unmemoized engine: loadgen's compiled-workflow
        // and scratch-view savings apply to both sides here, so this row
        // isolates the transfer memo.
        let run_open = |plane: &mut dyn DataPlane| {
            let mut policy = LocalityFirst::new();
            let mut resources = SchedResources::mesh(&[CORES; NODES]);
            load.run(plane, &clock, &mut resources, &mut policy).expect("open-loop run")
        };
        let mut base_run = None;
        let baseline = timed(open_n, edges + 2, || {
            base_run = Some(run_open(&mut plane));
        });
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let mut opt_run = None;
        let optimized = timed(open_n, edges + 2, || {
            opt_run = Some(run_open(&mut memo));
        });
        assert_eq!(
            signature(&base_run.expect("baseline ran")),
            signature(&opt_run.expect("optimized ran")),
            "open loop: virtual-time outputs must be identical"
        );
        scenarios.push(Scenario { name: "open_loop", baseline, optimized });
    }

    // --- closed loop + autoscaler (the fig13-style sweep) -----------
    {
        let load = ClosedLoop {
            spec: spec(),
            payload: payload.clone(),
            users,
            think_ns: solo_ns / 4,
            ramp_ns: solo_ns / 4,
            instances: users * rounds,
            admission: AdmissionConfig::warm(),
        };
        let run_closed = |plane: &mut dyn DataPlane| {
            let mut policy = PackThenSpill::new(solo_ns);
            let mut resources = SchedResources::mesh(&[CORES; 2]);
            let mut scaler = Autoscaler::new(AutoscalerConfig {
                min_nodes: 2,
                max_nodes: NODES,
                node_cores: CORES,
                scale_up_backlog_ns: solo_ns / 2,
                scale_down_backlog_ns: solo_ns / 16,
                window_ns: (solo_ns / 4).max(1),
            });
            load.run_elastic(plane, &clock, &mut resources, &mut policy, Some(&mut scaler))
                .expect("closed-loop run")
        };
        let instances = users * rounds;
        let mut base_run = None;
        let baseline = timed(instances, edges + 2, || {
            base_run = Some(run_closed(&mut plane));
        });
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let mut opt_run = None;
        let optimized = timed(instances, edges + 2, || {
            opt_run = Some(run_closed(&mut memo));
        });
        let base_run = base_run.expect("baseline ran");
        let opt_run = opt_run.expect("optimized ran");
        assert_eq!(
            signature(&base_run),
            signature(&opt_run),
            "closed loop: virtual-time outputs must be identical"
        );
        assert_eq!(base_run.scale_events, opt_run.scale_events);
        scenarios.push(Scenario { name: "closed_loop", baseline, optimized });
    }

    let closed = scenarios.last().expect("closed loop measured");
    let closed_speedup = closed.speedup();
    assert!(
        closed_speedup >= 5.0,
        "optimization gate: closed-loop sweep must run >= 5x instances/sec \
         (measured {closed_speedup:.2}x)"
    );

    let mut rows: Vec<String> = scenarios.iter().map(Scenario::json).collect();

    // --- parallel sweep (independent seeded jobs over the pool) ------
    let (parallel_speedup, parallel_row) = {
        let threads = 4;
        let cores = available_workers();
        let jobs: Vec<u64> = (1..=if quick { 8 } else { 12 }).collect();
        let job_n = if quick { 16 } else { 32 };
        // Each job is fully self-contained — its own testbed, plane,
        // clock and resources — exactly the shape the fig12/fig13
        // sweeps fan out, so serial vs pooled execution of the *same*
        // job list isolates the worker pool's wall-clock effect.
        let run_one = |seed: u64| {
            let bed = cluster();
            let clock = bed.clock().clone();
            let mut plane = roadrunner_plane(&bed);
            execute(&mut plane, &clock, &spec(), payload.clone()).expect("job warmup");
            let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
            let load = OpenLoop {
                spec: spec(),
                payload: payload.clone(),
                arrivals: ArrivalProcess::Poisson {
                    mean_interval_ns: (solo_ns / 2).max(1),
                    seed,
                },
                instances: job_n,
                admission: AdmissionConfig::warm(),
            };
            let mut policy = LocalityFirst::new();
            let mut resources = SchedResources::mesh(&[CORES; NODES]);
            load.run(&mut memo, &clock, &mut resources, &mut policy).expect("parallel job")
        };
        let total = jobs.len() * job_n;
        let mut serial_runs = Vec::new();
        let baseline = timed(total, edges + 2, || {
            serial_runs = run_jobs(&jobs, SweepMode::Serial, |&seed| run_one(seed));
        });
        let mut pooled_runs = Vec::new();
        let optimized = timed(total, edges + 2, || {
            pooled_runs =
                run_jobs(&jobs, SweepMode::Parallel { workers: threads }, |&seed| run_one(seed));
        });
        let serial_sigs: Vec<_> = serial_runs.iter().map(signature).collect();
        let pooled_sigs: Vec<_> = pooled_runs.iter().map(signature).collect();
        assert_eq!(
            serial_sigs, pooled_sigs,
            "parallel: pooled virtual-time outputs must be identical to serial"
        );
        let scenario = Scenario { name: "parallel", baseline, optimized };
        let speedup = scenario.speedup();
        // Scaling efficiency normalizes by the workers that can actually
        // run concurrently on this host.
        let efficiency = speedup / threads.min(cores) as f64;
        if cores >= threads {
            assert!(
                speedup >= 2.0,
                "scale-out gate: {threads}-worker sweep must run >= 2x instances/sec \
                 on a {cores}-core host (measured {speedup:.2}x)"
            );
        }
        // Record whether the >= 2x gate actually applied: on a host
        // with fewer cores than workers the row measures pool overhead,
        // not scaling, and a sub-1x "speedup" there is expected.
        let row = format!(
            concat!(
                "    {{\"scenario\": \"parallel\", \"baseline\": {}, \"optimized\": {}, ",
                "\"speedup\": {:.2}, \"threads\": {}, \"cores_available\": {}, ",
                "\"scaling_efficiency\": {:.2}, \"gate_active\": {}, \"note\": \"{}\"}}"
            ),
            scenario.baseline.json(),
            scenario.optimized.json(),
            speedup,
            threads,
            cores,
            efficiency,
            cores >= threads,
            if cores >= threads {
                "gate enforced: >= 2x over serial required"
            } else {
                "gate skipped: fewer cores than workers, row measures pool overhead only"
            },
        );
        (speedup, row)
    };
    rows.push(parallel_row);
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"bench_engine\",\n",
            "  \"quick\": {},\n",
            "  \"cluster\": {{\"nodes\": {}, \"cores_per_node\": {}}},\n",
            "  \"workflow\": \"src -> relay -> sink\",\n",
            "  \"payload_mb\": {:.1},\n",
            "  \"closed_loop_speedup\": {:.2},\n",
            "  \"parallel_speedup\": {:.2},\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}"
        ),
        quick,
        NODES,
        CORES,
        payload_bytes as f64 / MB as f64,
        closed_speedup,
        parallel_speedup,
        rows.join(",\n"),
    );
    std::fs::write("BENCH_engine.json", format!("{json}\n")).expect("write BENCH_engine.json");
    println!("{json}");
}
