//! Fig. 12 (beyond the paper) — throughput and tail latency under
//! multi-tenant load.
//!
//! The paper measures one workflow at a time on two VMs. This experiment
//! admits an open-loop stream of concurrent three-function pipeline
//! instances (`src → relay → sink`) onto a **four-node cluster**
//! (4 cores / 8 GB each, a 700 Mbit/s link per node pair), sweeping
//!
//! * **arrival rate** — identical across systems, as a factor of the
//!   WasmEdge baseline's uncontended makespan: light (2×, nobody
//!   queues), heavy (0.15×, saturates the per-pair links under
//!   `spread`) and surge (0.03×, past the locality regime's core
//!   capacity for the slowest system);
//! * **payload size** per edge;
//! * **placement policy** — `locality` packs every instance onto one
//!   node (Roadrunner rides its kernel-space mode), `spread` spreads
//!   functions over the cluster (every edge becomes a network
//!   transfer);
//!
//! for Roadrunner and both baselines. Every instance really runs on the
//! plane (payload bytes move, CPU accounts charge); the load generator
//! schedules each instance's phases onto shared per-node core timelines
//! and per-pair links, so co-scheduled instances contend in virtual
//! time. Emits one machine-readable JSON document with p50/p95/p99
//! sojourn, achieved vs offered throughput, and core/link utilization,
//! and asserts the headline invariants:
//!
//! * under identical arrival rate and policy, Roadrunner sustains
//!   strictly higher throughput and strictly lower p95 than WasmEdge;
//! * contention never speeds an instance up: every sojourn ≥ the
//!   system's uncontended concurrent makespan.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig12_load [--quick]`

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_bench::{flag, quick_flag, MB};
use roadrunner_platform::{
    execute, execute_concurrent, ArrivalProcess, DataPlane, FunctionBundle, LocalityFirst,
    MemoizedPlane, OpenLoop, PlacementPolicy, SpreadLoad, WorkflowSpec,
};
use roadrunner_vkernel::{secs, ClusterSpec, Nanos, SchedResources, Testbed};
use roadrunner_wasm::encode;

const NODES: usize = 4;

fn cluster() -> Arc<Testbed> {
    Arc::new(ClusterSpec::homogeneous(NODES, 4, 8 << 30).build())
}

fn spec() -> WorkflowSpec {
    WorkflowSpec::sequence(
        "pipeline",
        "bench",
        ["src".to_owned(), "relay".to_owned(), "sink".to_owned()],
    )
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("fig12")
            .with_tenant("bench"),
    )
}

/// Deploys the Roadrunner pipeline, colocated on node 0 (`locality`
/// regime: kernel-space edges) or spread over nodes 0/1/2 (`spread`
/// regime: network edges).
fn roadrunner_plane(bed: &Arc<Testbed>, colocated: bool) -> RoadrunnerPlane {
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(bed), ShimConfig::default().with_load_costs(false));
    let nodes: [usize; 3] = if colocated { [0, 0, 0] } else { [0, 1, 2] };
    plane
        .deploy(nodes[0], "src", rr_bundle("src", guest::producer()), "produce", false)
        .expect("deploy src");
    plane
        .deploy(nodes[1], "relay", rr_bundle("relay", guest::relay()), "relay", false)
        .expect("deploy relay");
    plane
        .deploy(nodes[2], "sink", rr_bundle("sink", guest::consumer()), "consume", true)
        .expect("deploy sink");
    plane
}

struct SystemUnderLoad {
    label: &'static str,
    plane: Box<dyn DataPlane>,
}

/// The three systems, each deployed for one co-location regime. Pairs
/// carry every edge of the pipeline over their established connection.
fn systems(bed: &Arc<Testbed>, colocated: bool) -> Vec<SystemUnderLoad> {
    let peer = usize::from(!colocated);
    vec![
        SystemUnderLoad { label: "roadrunner", plane: Box::new(roadrunner_plane(bed, colocated)) },
        SystemUnderLoad {
            label: "runc",
            plane: Box::new(RuncPair::establish(Arc::clone(bed), 0, peer)),
        },
        SystemUnderLoad {
            label: "wasmedge",
            plane: Box::new(WasmedgePair::establish(Arc::clone(bed), 0, peer)),
        },
    ]
}

struct Cell {
    system: &'static str,
    policy: &'static str,
    payload_bytes: usize,
    interval_ns: Nanos,
    uncontended_ns: Nanos,
    offered_rps: f64,
    achieved_rps: f64,
    p50_ns: Nanos,
    p95_ns: Nanos,
    p99_ns: Nanos,
    max_ns: Nanos,
    cpu_utilization: f64,
    link_utilization: f64,
    instances: usize,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"system\": \"{}\", \"policy\": \"{}\", \"payload_mb\": {:.1}, ",
                "\"interval_s\": {:.6}, \"uncontended_s\": {:.6}, ",
                "\"offered_rps\": {:.3}, \"achieved_rps\": {:.3}, ",
                "\"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}, \"max_s\": {:.6}, ",
                "\"cpu_util\": {:.4}, \"link_util\": {:.4}, \"instances\": {}}}"
            ),
            self.system,
            self.policy,
            self.payload_bytes as f64 / MB as f64,
            secs(self.interval_ns),
            secs(self.uncontended_ns),
            self.offered_rps,
            self.achieved_rps,
            secs(self.p50_ns),
            secs(self.p95_ns),
            secs(self.p99_ns),
            secs(self.max_ns),
            self.cpu_utilization,
            self.link_utilization,
            self.instances,
        )
    }
}

fn policy_of(name: &str) -> Box<dyn PlacementPolicy> {
    match name {
        "locality" => Box::new(LocalityFirst::new()),
        _ => Box::new(SpreadLoad::new()),
    }
}

/// Uncontended concurrent makespan of one instance on a fresh, empty
/// cluster — the lower bound no instance under load may beat. The plane
/// is warmed first (one discarded serial run) so lazy connection
/// establishment is excluded from every measured comparison.
fn uncontended(plane: &mut dyn DataPlane, bed: &Arc<Testbed>, payload: &Bytes) -> Nanos {
    let clock = bed.clock().clone();
    let workflow = spec();
    execute(plane, &clock, &workflow, payload.clone()).expect("warmup run");
    let mut fresh = SchedResources::for_testbed(bed);
    execute_concurrent(plane, &clock, &workflow, payload.clone(), &mut fresh)
        .expect("uncontended run")
        .total_latency_ns
}

fn main() {
    let quick = quick_flag();
    let no_memo = flag("--no-memo");
    let payloads: Vec<usize> =
        if quick { vec![MB, 4 * MB] } else { vec![MB, 10 * MB, 30 * MB] };
    let instances = if quick { 8 } else { 16 };
    // Arrival interval = factor × the WasmEdge uncontended makespan:
    // identical offered rate for every system in a cell. The cluster
    // absorbs NODES instances in parallel (and each 4-core node up to 4
    // co-scheduled instances), so the rates probe three regimes:
    // "light" (2×) leaves every system uncongested, "heavy" (0.15 <
    // 1/NODES) saturates the per-pair links under the spread policy, and
    // "surge" (0.03 < 1/(NODES×cores)) drives the slowest system past
    // even the locality regime's core capacity.
    let rate_factors: [(&str, f64); 3] = [("light", 2.0), ("heavy", 0.15), ("surge", 0.03)];

    let mut rows = Vec::new();
    for policy_name in ["locality", "spread"] {
        let colocated = policy_name == "locality";
        for &payload_bytes in &payloads {
            let payload = Bytes::from(vec![0xA7u8; payload_bytes]);
            let bed = cluster();
            let mut under_load = systems(&bed, colocated);
            let baselines_uncontended: Vec<(usize, Nanos)> = under_load
                .iter_mut()
                .enumerate()
                .map(|(i, s)| (i, uncontended(s.plane.as_mut(), &bed, &payload)))
                .collect();
            let wasmedge_solo = baselines_uncontended
                .iter()
                .find(|(i, _)| under_load[*i].label == "wasmedge")
                .map(|&(_, ns)| ns)
                .expect("wasmedge is part of the line-up");

            for (rate_label, factor) in rate_factors {
                let interval_ns = (wasmedge_solo as f64 * factor).round() as Nanos;
                let mut cells: Vec<Cell> = Vec::new();
                for (i, system) in under_load.iter_mut().enumerate() {
                    let solo = baselines_uncontended[i].1;
                    let mut policy = policy_of(policy_name);
                    let mut resources = SchedResources::for_testbed(&bed);
                    let load = OpenLoop {
                        spec: spec(),
                        payload: payload.clone(),
                        arrivals: ArrivalProcess::Uniform { interval_ns },
                        instances,
                        cold_start_ns: None,
                    };
                    // The load sweep admits identical instances: the
                    // transfer-cost memo computes each distinct edge once
                    // and replays it. Virtual-time results are
                    // byte-identical; `--no-memo` produces the unmemoized
                    // reference run the CI gate diffs this JSON against.
                    let clock = bed.clock().clone();
                    let run = if no_memo {
                        load.run(system.plane.as_mut(), &clock, &mut resources, policy.as_mut())
                    } else {
                        let mut memo = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
                        load.run(&mut memo, &clock, &mut resources, policy.as_mut())
                    }
                    .expect("load run");
                    for outcome in &run.outcomes {
                        assert!(
                            outcome.sojourn_ns >= solo,
                            "{} {} {}B {rate_label}: instance {} took {} < uncontended {}",
                            system.label,
                            policy_name,
                            payload_bytes,
                            outcome.instance,
                            outcome.sojourn_ns,
                            solo,
                        );
                    }
                    let digest = run.sojourn_percentiles().expect("non-empty run");
                    cells.push(Cell {
                        system: system.label,
                        policy: policy_name,
                        payload_bytes,
                        interval_ns,
                        uncontended_ns: solo,
                        offered_rps: run.offered_rps,
                        achieved_rps: run.throughput_rps(),
                        p50_ns: digest.p50_ns,
                        p95_ns: digest.p95_ns,
                        p99_ns: digest.p99_ns,
                        max_ns: digest.max_ns,
                        cpu_utilization: run.cpu_utilization,
                        link_utilization: run.link_utilization,
                        instances,
                    });
                }
                let rr = cells.iter().find(|c| c.system == "roadrunner").unwrap();
                let we = cells.iter().find(|c| c.system == "wasmedge").unwrap();
                assert!(
                    rr.achieved_rps > we.achieved_rps,
                    "{policy_name} {payload_bytes}B {rate_label}: roadrunner {} rps !> wasmedge {} rps",
                    rr.achieved_rps,
                    we.achieved_rps,
                );
                assert!(
                    rr.p95_ns < we.p95_ns,
                    "{policy_name} {payload_bytes}B {rate_label}: roadrunner p95 {} !< wasmedge p95 {}",
                    rr.p95_ns,
                    we.p95_ns,
                );
                rows.extend(cells.into_iter().map(|c| c.json()));
            }
        }
    }

    println!("{{");
    println!("  \"figure\": \"fig12_load\",");
    println!("  \"cluster\": {{\"nodes\": {NODES}, \"cores_per_node\": 4}},");
    println!("  \"workflow\": \"src -> relay -> sink\",");
    println!("  \"instances_per_cell\": {instances},");
    println!("  \"cells\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
