//! Fig. 12 (beyond the paper) — throughput and tail latency under
//! multi-tenant load.
//!
//! The paper measures one workflow at a time on two VMs. This experiment
//! admits an open-loop stream of concurrent three-function pipeline
//! instances (`src → relay → sink`) onto a **four-node cluster**
//! (4 cores / 8 GB each, a 700 Mbit/s link per node pair), sweeping
//!
//! * **arrival rate** — identical across systems, as a factor of the
//!   WasmEdge baseline's uncontended makespan: light (2×, nobody
//!   queues), heavy (0.15×, saturates the per-pair links under
//!   `spread`) and surge (0.03×, past the locality regime's core
//!   capacity for the slowest system);
//! * **payload size** per edge;
//! * **placement policy** — `locality` packs every instance onto one
//!   node (Roadrunner rides its kernel-space mode), `spread` spreads
//!   functions over the cluster (every edge becomes a network
//!   transfer);
//! * **arrival seed** — each cell replicated under several Poisson
//!   arrival sequences; rows report across-seed means with
//!   order-statistic confidence intervals;
//!
//! for Roadrunner and both baselines. Grid points fan out over the
//! `platform::sweep` worker pool (`--serial` keeps the in-order
//! reference loop, `--workers N` sizes the pool); output is
//! byte-identical either way — the gate CI enforces. The experiment
//! logic lives in `roadrunner_bench::fig12`.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig12_load
//! [--quick] [--serial] [--workers N] [--no-memo]`

use roadrunner_bench::fig12::{fig12_json, Fig12Options};
use roadrunner_bench::{flag, quick_flag, sweep_mode_flag};

fn main() {
    let opts = Fig12Options {
        quick: quick_flag(),
        golden: false,
        memo: !flag("--no-memo"),
        mode: sweep_mode_flag(),
    };
    println!("{}", fig12_json(&opts));
}
