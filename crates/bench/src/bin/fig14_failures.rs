//! Fig. 14 (beyond the paper) — failure injection and self-healing
//! elasticity.
//!
//! Drives fig13's closed-loop workload through deterministic failure
//! schedules: a no-failure baseline (asserted identical to the plain
//! engine under an empty plan), a periodic link flap that spread-placed
//! instances must retry through, and a mid-run node kill once at fixed
//! capacity (throughput never recovers, placements onto the dead node
//! fail) and once under the capacity-loss-aware autoscaler (the dead
//! node is replaced and throughput recovers to ≥ 80 % of the pre-kill
//! rate — asserted). Cells report completed/retried/failed counts,
//! sojourn percentiles, pre/post-kill rates and time-to-recover. The
//! experiment logic and the assertions live in `roadrunner_bench::fig14`.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig14_failures
//! [--quick] [--serial] [--workers N] [--no-memo]`

use roadrunner_bench::fig14::{fig14_json, Fig14Options};
use roadrunner_bench::{flag, quick_flag, sweep_mode_flag};

fn main() {
    let opts = Fig14Options {
        quick: quick_flag(),
        memo: !flag("--no-memo"),
        mode: sweep_mode_flag(),
    };
    println!("{}", fig14_json(&opts));
}
