//! Fig. 16 (beyond the paper) — overload control and metastable
//! failure.
//!
//! Drives a three-phase burst trace (calm, 3× saturation with link
//! flaps, calm) through the engine twice: once naive (aggressive
//! retries, unbounded admission — post-burst goodput stays collapsed,
//! the metastable signature) and once with the overload layer on
//! (deadlines, retry budgets, circuit breakers, CoDel-bounded
//! admission — goodput recovers to ≥ 80 % of pre-burst). A second pair
//! pits a light interactive tenant against an adversarial flood with
//! and without the weighted admission queue; the queue must win back
//! ≥ 2× on the interactive p95. The experiment logic and the gate
//! assertions live in `roadrunner_bench::fig16`. The JSON lands on
//! stdout *and* in `BENCH_overload.json` — the committed full-run
//! reference CI's quick run re-gates.
//!
//! Run: `cargo run -p roadrunner-bench --release --bin fig16_overload
//! [--quick] [--serial] [--workers N]`

use roadrunner_bench::fig16::{fig16_json, Fig16Options};
use roadrunner_bench::{quick_flag, sweep_mode_flag};

fn main() {
    let opts = Fig16Options { quick: quick_flag(), mode: sweep_mode_flag() };
    let json = fig16_json(&opts);
    if !opts.quick {
        std::fs::write("BENCH_overload.json", format!("{json}\n"))
            .expect("write BENCH_overload.json");
    }
    println!("{json}");
}
