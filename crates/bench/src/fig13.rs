//! Fig. 13 (beyond the paper) — closed-loop saturation and elasticity,
//! swept in parallel.
//!
//! The experiment logic lives here (not in the binary) so the golden
//! determinism test can run the serial and parallel sweeps in-process
//! and diff the JSON strings byte for byte. See the `fig13_elastic`
//! binary docs for the experiment design; this module adds the job
//! decomposition: every (policy × users × autoscaled/cold) cell is one
//! fully independent job — its own [`Testbed`], its own three deployed
//! systems, its own solo-makespan measurements, its own
//! [`SchedResources`] — executed by [`run_jobs`] under the chosen
//! [`SweepMode`] and merged in job order. The closed loop has no
//! stochastic arrival process, so there is no seed axis here; fig12
//! carries the replication story.

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::coldstart::{
    container_cold_ns, wasm_cold_ns, CONTAINER_IMAGE_BYTES, PAPER_WASM_HELLO_BYTES,
};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_platform::{
    execute, execute_concurrent, run_jobs, AdmissionConfig, Autoscaler, AutoscalerConfig, ClosedLoop, DataPlane,
    FunctionBundle, LoadRun, LocalityFirst, MemoizedPlane, PackThenSpill, PlacementPolicy,
    SweepMode, WorkflowSpec,
};
use roadrunner_vkernel::{secs, ClusterSpec, Nanos, SchedResources, Testbed};
use roadrunner_wasm::encode;

use crate::MB;

/// Fixed-capacity (and autoscaler-minimum) active node count. Shared
/// with fig14, which drives the same workload through failure
/// schedules.
pub(crate) const START_NODES: usize = 2;
/// Autoscaler ceiling; the testbed always has this many nodes built.
const MAX_NODES: usize = 6;
pub(crate) const CORES: u32 = 4;

/// Knobs for one fig13 sweep.
pub struct Fig13Options {
    /// Reduced user counts/rounds for CI.
    pub quick: bool,
    /// Tier-1 profile for the in-process golden determinism test: the
    /// quick cell matrix over a small payload, so `cargo test` stays
    /// fast in debug builds while still exercising the full sweep path.
    /// CI diffs the full `--quick` binary output on top.
    pub golden: bool,
    /// Wrap planes in the transfer-cost memo (`--no-memo` turns off).
    pub memo: bool,
    /// Serial reference loop or the worker pool.
    pub mode: SweepMode,
}

pub(crate) fn cluster() -> Arc<Testbed> {
    Arc::new(ClusterSpec::homogeneous(MAX_NODES, CORES, 8 << 30).build())
}

pub(crate) fn spec() -> WorkflowSpec {
    WorkflowSpec::sequence(
        "pipeline",
        "bench",
        ["src".to_owned(), "relay".to_owned(), "sink".to_owned()],
    )
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("fig13")
            .with_tenant("bench"),
    )
}

/// Deploys the Roadrunner pipeline co-located on node 0 (kernel-space
/// edges — the regime the packing policies reproduce per instance).
fn roadrunner_plane(bed: &Arc<Testbed>) -> RoadrunnerPlane {
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(bed), ShimConfig::default().with_load_costs(false));
    plane
        .deploy(0, "src", rr_bundle("src", guest::producer()), "produce", false)
        .expect("deploy src");
    plane
        .deploy(0, "relay", rr_bundle("relay", guest::relay()), "relay", false)
        .expect("deploy relay");
    plane
        .deploy(0, "sink", rr_bundle("sink", guest::consumer()), "consume", true)
        .expect("deploy sink");
    plane
}

pub(crate) struct SystemUnderLoad {
    pub(crate) label: &'static str,
    pub(crate) plane: Box<dyn DataPlane>,
    /// Uncontended concurrent makespan of one instance (own think-time
    /// and threshold base).
    pub(crate) solo_ns: Nanos,
    /// Fig. 2a-style cold-start cost of one function of this system.
    pub(crate) cold_ns: Nanos,
}

/// The three systems, co-located, warmed, with their solo makespans
/// measured on a fresh two-node mesh.
pub(crate) fn systems(bed: &Arc<Testbed>, payload: &Bytes) -> Vec<SystemUnderLoad> {
    let cost = bed.cost();
    let wasm_cold = wasm_cold_ns(cost, PAPER_WASM_HELLO_BYTES);
    let runc_cold = container_cold_ns(cost, CONTAINER_IMAGE_BYTES);
    let mut out = vec![
        SystemUnderLoad {
            label: "roadrunner",
            plane: Box::new(roadrunner_plane(bed)),
            solo_ns: 0,
            cold_ns: wasm_cold,
        },
        SystemUnderLoad {
            label: "runc",
            plane: Box::new(RuncPair::establish(Arc::clone(bed), 0, 0)),
            solo_ns: 0,
            cold_ns: runc_cold,
        },
        SystemUnderLoad {
            label: "wasmedge",
            plane: Box::new(WasmedgePair::establish(Arc::clone(bed), 0, 0)),
            solo_ns: 0,
            cold_ns: wasm_cold,
        },
    ];
    for system in &mut out {
        system.solo_ns = uncontended(system.plane.as_mut(), bed, payload);
    }
    out
}

/// Uncontended concurrent makespan of one instance on a fresh, empty
/// two-node mesh. The plane is warmed first (one discarded serial run)
/// so lazy connection establishment is excluded from every measured
/// comparison.
fn uncontended(plane: &mut dyn DataPlane, bed: &Arc<Testbed>, payload: &Bytes) -> Nanos {
    let clock = bed.clock().clone();
    let workflow = spec();
    execute(plane, &clock, &workflow, payload.clone()).expect("warmup run");
    let mut fresh = SchedResources::mesh(&[CORES; START_NODES]);
    execute_concurrent(plane, &clock, &workflow, payload.clone(), &mut fresh)
        .expect("uncontended run")
        .total_latency_ns
}

fn policy_of(name: &str, solo_ns: Nanos) -> Box<dyn PlacementPolicy> {
    match name {
        "locality" => Box::new(LocalityFirst::new()),
        // Spill once a node queues more than one uncontended makespan.
        _ => Box::new(PackThenSpill::new(solo_ns)),
    }
}

/// One cell's knobs — also the parallel job description.
#[derive(Clone, Copy)]
struct Job {
    policy: &'static str,
    users: usize,
    rounds: usize,
    autoscaled: bool,
    cold: bool,
    memo: bool,
    /// Re-run the Roadrunner cell and assert identical placements —
    /// done inside the first cell of each policy.
    check_determinism: bool,
}

/// One closed-loop run of `users`×`rounds` instances, optionally
/// autoscaled and optionally charging cold starts.
fn run_cell(system: &mut SystemUnderLoad, bed: &Arc<Testbed>, payload: &Bytes, job: Job) -> LoadRun {
    let Job { policy: policy_name, users, rounds, autoscaled, cold, memo, .. } = job;
    let solo = system.solo_ns;
    // Think a quarter-makespan between requests and ramp users in a
    // quarter-makespan apart: at the top user counts demand concurrency
    // (`users·solo/(solo+think)`) far exceeds the fixed 8 lanes, and the
    // ramp lets the controller race the building load instead of
    // measuring an unavoidable thundering herd.
    let load = ClosedLoop {
        spec: spec(),
        payload: payload.clone(),
        users,
        think_ns: solo / 4,
        ramp_ns: solo / 4,
        instances: users * rounds,
        admission: if cold { AdmissionConfig::cold(system.cold_ns) } else { AdmissionConfig::warm() },
    };
    let mut policy = policy_of(policy_name, solo);
    let mut resources = SchedResources::mesh(&[CORES; START_NODES]);
    let clock = bed.clock().clone();
    // Identical instances hit the transfer-cost memo after the first;
    // virtual-time results are byte-identical. The `--no-memo` reference
    // run is what the CI gate diffs this JSON against.
    let mut memo_plane;
    let plane: &mut dyn DataPlane = if memo {
        memo_plane = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
        &mut memo_plane
    } else {
        system.plane.as_mut()
    };
    let run = if autoscaled {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: START_NODES,
            max_nodes: MAX_NODES,
            node_cores: CORES,
            scale_up_backlog_ns: solo / 2,
            scale_down_backlog_ns: solo / 16,
            window_ns: (solo / 4).max(1),
        });
        load.run_elastic(plane, &clock, &mut resources, policy.as_mut(), Some(&mut scaler))
    } else {
        load.run(plane, &clock, &mut resources, policy.as_mut())
    }
    .expect("closed-loop run");
    assert_eq!(run.outcomes.len(), users * rounds, "every instance must complete");
    run
}

/// One cell's merged result: the three systems' runs.
struct CellResult {
    job: Job,
    systems: Vec<(&'static str, Nanos, LoadRun)>,
}

/// Runs one cell as a self-contained job: fresh testbed, fresh
/// deployments, fresh scheduler state.
fn run_job(job: &Job, payload: &Bytes) -> CellResult {
    let bed = cluster();
    let mut under_load = systems(&bed, payload);

    // Determinism: the same cell re-run on fresh resources must
    // reproduce its placements exactly.
    if job.check_determinism {
        let system = &mut under_load[0];
        let a = run_cell(system, &bed, payload, *job);
        let b = run_cell(system, &bed, payload, *job);
        let pa: Vec<&[usize]> = a.outcomes.iter().map(|o| o.assignment.as_slice()).collect();
        let pb: Vec<&[usize]> = b.outcomes.iter().map(|o| o.assignment.as_slice()).collect();
        assert_eq!(pa, pb, "{}: placements must be deterministic", job.policy);
    }

    let systems = under_load
        .iter_mut()
        .map(|system| {
            let run = run_cell(system, &bed, payload, *job);
            if job.cold {
                assert!(
                    run.cold_starts() > 0,
                    "{}: cold admission must charge someone",
                    system.label
                );
            }
            (system.label, system.solo_ns, run)
        })
        .collect();
    CellResult { job: *job, systems }
}

fn cell_json(system: &str, solo_ns: Nanos, job: &Job, run: &LoadRun) -> String {
    let digest = run.sojourn_percentiles().expect("non-empty run");
    let events: Vec<String> = run
        .scale_events
        .iter()
        .map(|e| {
            format!(
                "{{\"t_s\": {:.6}, \"action\": \"{}\", \"nodes\": {}}}",
                secs(e.at_ns),
                match e.action {
                    roadrunner_platform::ScaleAction::Up => "up",
                    roadrunner_platform::ScaleAction::Down => "down",
                    roadrunner_platform::ScaleAction::Replace => "replace",
                    roadrunner_platform::ScaleAction::Prewarm => "prewarm",
                },
                e.nodes_after,
            )
        })
        .collect();
    format!(
        concat!(
            "    {{\"system\": \"{}\", \"policy\": \"{}\", \"users\": {}, ",
            "\"autoscaled\": {}, \"cold_admission\": {}, \"instances\": {}, ",
            "\"solo_s\": {:.6}, \"think_s\": {:.6}, ",
            "\"saturation_rps\": {:.3}, ",
            "\"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}, \"max_s\": {:.6}, ",
            "\"cpu_util\": {:.4}, \"cold_starts\": {}, \"cold_total_s\": {:.6}, ",
            "\"final_nodes\": {}, \"scale_events\": [{}]}}"
        ),
        system,
        job.policy,
        job.users,
        job.autoscaled,
        job.cold,
        run.outcomes.len(),
        secs(solo_ns),
        secs(solo_ns / 4),
        run.throughput_rps(),
        secs(digest.p50_ns),
        secs(digest.p95_ns),
        secs(digest.p99_ns),
        secs(digest.max_ns),
        run.cpu_utilization,
        run.cold_starts(),
        secs(run.cold_start_total_ns()),
        run.final_nodes,
        events.join(", "),
    )
}

/// Runs the fig13 sweep under `opts` and returns the complete JSON
/// document. Execution mode is deliberately *not* recorded in the
/// output: serial and parallel runs must produce identical bytes.
pub fn fig13_json(opts: &Fig13Options) -> String {
    let payload_bytes = if opts.golden {
        MB / 2
    } else if opts.quick {
        2 * MB
    } else {
        4 * MB
    };
    let users_sweep: Vec<usize> =
        if opts.golden || opts.quick { vec![2, 16] } else { vec![4, 16, 32] };
    let rounds = if opts.golden || opts.quick { 3 } else { 5 };
    let payload = Bytes::from(vec![0xB3u8; payload_bytes]);
    let top_users = *users_sweep.last().expect("non-empty sweep");

    // The job list: per policy, the users × autoscaled matrix followed
    // by the cold-admission cell. Jobs are independent; order is the
    // emission order.
    let mut jobs: Vec<Job> = Vec::new();
    for policy in ["locality", "pack_spill"] {
        for (i, &users) in users_sweep.iter().enumerate() {
            for autoscaled in [false, true] {
                jobs.push(Job {
                    policy,
                    users,
                    rounds,
                    autoscaled,
                    cold: false,
                    memo: opts.memo,
                    check_determinism: i == 0 && !autoscaled,
                });
            }
        }
        jobs.push(Job {
            policy,
            users: top_users,
            rounds,
            autoscaled: false,
            cold: true,
            memo: opts.memo,
            check_determinism: false,
        });
    }

    let results = run_jobs(&jobs, opts.mode, |job| run_job(job, &payload));

    // Post-merge invariants over the deterministic, job-ordered results.
    let find = |policy: &str, users: usize, autoscaled: bool, cold: bool| {
        results
            .iter()
            .find(|c| {
                c.job.policy == policy
                    && c.job.users == users
                    && c.job.autoscaled == autoscaled
                    && c.job.cold == cold
            })
            .expect("cell exists")
    };
    for cell in &results {
        if cell.job.cold {
            continue;
        }
        // Saturation-throughput ordering under identical knobs.
        let rps = |label: &str| {
            cell.systems
                .iter()
                .find(|(l, ..)| *l == label)
                .map(|(_, _, run)| run.throughput_rps())
                .expect("system exists")
        };
        assert!(
            rps("roadrunner") >= rps("wasmedge"),
            "{} users={} autoscaled={}: roadrunner {} rps < wasmedge {} rps",
            cell.job.policy,
            cell.job.users,
            cell.job.autoscaled,
            rps("roadrunner"),
            rps("wasmedge"),
        );
    }
    for policy in ["locality", "pack_spill"] {
        // Elasticity headline: at the highest user count, scaling out
        // must cut Roadrunner's p95 sojourn vs fixed capacity.
        let p95 = |autoscaled: bool| {
            find(policy, top_users, autoscaled, false)
                .systems
                .iter()
                .find(|(l, ..)| *l == "roadrunner")
                .map(|(_, _, run)| run.sojourn_percentiles().expect("non-empty").p95_ns)
                .expect("roadrunner cell exists")
        };
        let (fixed_p95, elastic_p95) = (p95(false), p95(true));
        assert!(
            elastic_p95 < fixed_p95,
            "{policy}: autoscaled p95 {elastic_p95} must beat fixed {fixed_p95}",
        );
        // Cold-admission section: cold starts must show up in the mean
        // sojourn relative to the matching warm cell.
        let warm = find(policy, top_users, false, false);
        let cold = find(policy, top_users, false, true);
        for (label, _, cold_run) in &cold.systems {
            let warm_mean = warm
                .systems
                .iter()
                .find(|(l, ..)| l == label)
                .map(|(_, _, run)| run.sojourn_percentiles().expect("non-empty").mean_ns)
                .expect("warm cell exists");
            let cold_mean = cold_run.sojourn_percentiles().expect("non-empty").mean_ns;
            assert!(
                cold_mean > warm_mean,
                "{label}: cold admission must show up in mean sojourn \
                 ({cold_mean} !> {warm_mean})",
            );
        }
    }

    let mut rows: Vec<String> = Vec::new();
    for cell in &results {
        for (label, solo_ns, run) in &cell.systems {
            rows.push(cell_json(label, *solo_ns, &cell.job, run));
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig13_elastic\",\n");
    out.push_str(&format!(
        "  \"cluster\": {{\"nodes_fixed\": {START_NODES}, \"nodes_max\": {MAX_NODES}, \
         \"cores_per_node\": {CORES}}},\n"
    ));
    out.push_str("  \"workflow\": \"src -> relay -> sink\",\n");
    out.push_str(&format!("  \"payload_mb\": {:.1},\n", payload_bytes as f64 / MB as f64));
    out.push_str(&format!("  \"rounds_per_user\": {rounds},\n"));
    out.push_str("  \"cells\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}");
    out
}
