//! Shared harness for the figure generators.
//!
//! Every figure/table of the paper's evaluation has a binary in
//! `src/bin/` that drives the *real* systems (Roadrunner plane, RunC-like
//! and WasmEdge-like pairs) over a fresh virtual testbed and prints the
//! same series the paper plots. This module holds the common machinery:
//! system setup, single-edge measurements, the fan-out makespan model and
//! table printing.
//!
//! Latency definitions match §6.1: measurement starts "from the moment
//! the source function sends data" (for baselines that includes
//! serialization; Roadrunner has none) "until the target function has
//! successfully received it".

pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;

use std::sync::Arc;

use bytes::Bytes;
use roadrunner_platform::{available_workers, SweepMode};
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_platform::FunctionBundle;
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::{secs, Nanos, Testbed};
use roadrunner_wasm::encode;

/// One megabyte.
pub const MB: usize = 1_000_000;

/// The systems under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Roadrunner, both functions in one Wasm VM.
    RoadrunnerUser,
    /// Roadrunner, co-located sandboxes over a Unix socket.
    RoadrunnerKernel,
    /// Roadrunner, remote nodes over the virtual data hose.
    RoadrunnerNetwork,
    /// RunC-like containers over HTTP.
    Runc,
    /// WasmEdge-like Wasm functions over WASI HTTP.
    Wasmedge,
}

impl System {
    /// Display label used in the printed series (matches the paper's
    /// legends).
    pub fn label(&self) -> &'static str {
        match self {
            System::RoadrunnerUser => "RoadRunner (User space)",
            System::RoadrunnerKernel => "RoadRunner (Kernel space)",
            System::RoadrunnerNetwork => "RoadRunner (Network)",
            System::Runc => "RunC",
            System::Wasmedge => "Wasmedge",
        }
    }

    /// The intra-node line-up of Fig. 7/9.
    pub fn intra_node() -> [System; 4] {
        [
            System::RoadrunnerUser,
            System::RoadrunnerKernel,
            System::Runc,
            System::Wasmedge,
        ]
    }

    /// The inter-node line-up of Fig. 6/8/10.
    pub fn inter_node() -> [System; 3] {
        [System::RoadrunnerNetwork, System::Runc, System::Wasmedge]
    }
}

/// Everything a figure panel needs about one measured transfer.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// System measured.
    pub system: System,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Total latency (includes serialization where the system has any).
    pub latency_ns: Nanos,
    /// Serialization + deserialization time.
    pub serialization_ns: Nanos,
    /// Wasm VM I/O time (boundary crossings + linear-memory copies).
    pub wasm_io_ns: Nanos,
    /// User-space CPU over all sandboxes of the pair.
    pub user_cpu_ns: Nanos,
    /// Kernel-space CPU over all sandboxes of the pair.
    pub kernel_cpu_ns: Nanos,
    /// Peak RAM over all sandboxes of the pair, in bytes.
    pub ram_peak: u64,
    /// FNV checksum of the received flat payload (integrity).
    pub checksum_ok: bool,
}

impl Measurement {
    /// Requests per second if this transfer were repeated back-to-back
    /// (the paper's extrapolated throughput metric).
    pub fn throughput_rps(&self) -> f64 {
        if self.latency_ns == 0 {
            return f64::INFINITY;
        }
        1e9 / self.latency_ns as f64
    }

    /// Throughput of the serialization stage alone (Fig. 7d/8d/9d/10d).
    pub fn serialization_rps(&self) -> f64 {
        if self.serialization_ns == 0 {
            return f64::INFINITY;
        }
        1e9 / self.serialization_ns as f64
    }

    /// Transfer share excluding serialization.
    pub fn transfer_only_ns(&self) -> Nanos {
        self.latency_ns
            .saturating_sub(self.serialization_ns)
            .saturating_sub(self.wasm_io_ns)
    }

    /// Data-preparation overhead on the serialization path: the codec
    /// work plus the Wasm VM I/O. This is the quantity behind the paper's
    /// "reduces the serialization overhead by 97 % vs WasmEdge and 46 %
    /// vs RunC" — Roadrunner's residual overhead is its VM I/O.
    pub fn overhead_ns(&self) -> Nanos {
        self.serialization_ns + self.wasm_io_ns
    }

    /// CPU usage as a percentage of the whole 4-core machine over the
    /// transfer window (the paper's cgroup-derived "% CPU").
    pub fn cpu_total_pct(&self, cores: u32) -> f64 {
        pct(self.user_cpu_ns + self.kernel_cpu_ns, self.latency_ns, cores)
    }

    /// User-space CPU percentage.
    pub fn cpu_user_pct(&self, cores: u32) -> f64 {
        pct(self.user_cpu_ns, self.latency_ns, cores)
    }

    /// Kernel-space CPU percentage.
    pub fn cpu_kernel_pct(&self, cores: u32) -> f64 {
        pct(self.kernel_cpu_ns, self.latency_ns, cores)
    }
}

fn pct(cpu: Nanos, window: Nanos, cores: u32) -> f64 {
    if window == 0 {
        return 0.0;
    }
    cpu as f64 / (window as f64 * cores as f64) * 100.0
}

fn rr_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("eval")
            .with_tenant("bench"),
    )
}

/// Sums CPU/RAM telemetry over every sandbox of a testbed. RAM peaks are
/// summed: the paper's panels report the memory footprint of the whole
/// deployed workflow, and the baselines pay the state + serialized-copy
/// doubling in *each* sandbox.
fn telemetry(bed: &Testbed) -> (Nanos, Nanos, u64) {
    let mut user = 0;
    let mut kernel = 0;
    let mut ram = 0u64;
    for node in bed.nodes() {
        for account in node.accounts() {
            user += account.user_ns();
            kernel += account.kernel_ns();
            ram += account.ram_peak();
        }
    }
    (user, kernel, ram)
}

/// Runs one transfer of `bytes` on `system` and returns the measurement.
/// Every run uses a fresh testbed, so runs are independent and
/// deterministic.
pub fn measure_transfer(system: System, bytes: usize) -> Measurement {
    let payload = Payload::synthetic(PayloadKind::Text, 42, bytes);
    let bed = Arc::new(Testbed::paper());
    match system {
        System::RoadrunnerUser | System::RoadrunnerKernel | System::RoadrunnerNetwork => {
            measure_roadrunner(system, bed, &payload)
        }
        System::Runc => {
            let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 1);
            measure_baseline_pair(system, &bed, &payload, |p| {
                pair.transfer(p).expect("runc transfer succeeds")
            })
        }
        System::Wasmedge => {
            let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 1);
            measure_baseline_pair(system, &bed, &payload, |p| {
                pair.transfer(p).expect("wasmedge transfer succeeds")
            })
        }
    }
}

/// Intra-node variant: both functions on node 0 (baselines talk over
/// loopback).
pub fn measure_transfer_intra(system: System, bytes: usize) -> Measurement {
    let payload = Payload::synthetic(PayloadKind::Text, 42, bytes);
    let bed = Arc::new(Testbed::paper());
    match system {
        System::RoadrunnerUser | System::RoadrunnerKernel | System::RoadrunnerNetwork => {
            measure_roadrunner(system, bed, &payload)
        }
        System::Runc => {
            let mut pair = RuncPair::establish(Arc::clone(&bed), 0, 0);
            measure_baseline_pair(system, &bed, &payload, |p| {
                pair.transfer(p).expect("runc transfer succeeds")
            })
        }
        System::Wasmedge => {
            let mut pair = WasmedgePair::establish(Arc::clone(&bed), 0, 0);
            measure_baseline_pair(system, &bed, &payload, |p| {
                pair.transfer(p).expect("wasmedge transfer succeeds")
            })
        }
    }
}

fn measure_baseline_pair(
    system: System,
    bed: &Testbed,
    payload: &Payload,
    mut run: impl FnMut(&Payload) -> roadrunner_baselines::BaselineOutcome,
) -> Measurement {
    // Exclude setup (connection establishment) from telemetry.
    bed.reset_telemetry();
    let (u0, k0, _) = telemetry(bed);
    let outcome = run(payload);
    let (u1, k1, ram) = telemetry(bed);
    let user_cpu = u1 - u0;
    // Wasm VM I/O: user time that is neither serialization nor protocol
    // head building — for the Wasm baseline this is boundary + memory
    // copies; the container baseline has no VM.
    let wasm_io_ns = match system {
        System::Wasmedge => user_cpu.saturating_sub(outcome.serialization_ns()),
        _ => 0,
    };
    Measurement {
        system,
        bytes: payload.flat().len(),
        latency_ns: outcome.latency_ns,
        serialization_ns: outcome.serialization_ns(),
        wasm_io_ns,
        user_cpu_ns: user_cpu,
        kernel_cpu_ns: k1 - k0,
        ram_peak: ram,
        checksum_ok: outcome.received_flat == *payload.flat(),
    }
}

fn measure_roadrunner(system: System, bed: Arc<Testbed>, payload: &Payload) -> Measurement {
    let mut plane = RoadrunnerPlane::new(
        Arc::clone(&bed),
        ShimConfig::default().with_load_costs(false),
    );
    plane
        .deploy(0, "a", rr_bundle("a", guest::producer()), "produce", false)
        .expect("deploy a");
    match system {
        System::RoadrunnerUser => plane
            .deploy_into_shared_vm("a", "b", rr_bundle("b", guest::consumer()), "consume", true)
            .expect("deploy b"),
        System::RoadrunnerKernel => plane
            .deploy(0, "b", rr_bundle("b", guest::consumer()), "consume", true)
            .expect("deploy b"),
        System::RoadrunnerNetwork => plane
            .deploy(1, "b", rr_bundle("b", guest::consumer()), "consume", true)
            .expect("deploy b"),
        _ => unreachable!("baseline systems handled elsewhere"),
    }
    // Deliver the input and run the producer *before* the measured
    // window, as §6.1 measures from "source sends".
    plane.inject("a", payload.flat()).expect("inject input");
    bed.reset_telemetry();
    let (u0, k0, _) = telemetry(&bed);
    let received = plane
        .transfer_edge("a", "b", &Bytes::new())
        .expect("roadrunner transfer succeeds");
    let (u1, k1, ram) = telemetry(&bed);
    let breakdown = plane.last_breakdown().expect("breakdown recorded");
    let cost = bed.cost();
    // Roadrunner never serializes; the only "serialization-path" work is
    // the 8-byte descriptor handoff.
    let serialization_ns = cost.wasm_boundary_ns + cost.vm_io_ns(8);
    let wasm_io_ns = cost.vm_io_ns(payload.flat().len()) * 2;
    Measurement {
        system,
        bytes: payload.flat().len(),
        latency_ns: breakdown.transfer_ns,
        serialization_ns,
        wasm_io_ns,
        user_cpu_ns: u1 - u0,
        kernel_cpu_ns: k1 - k0,
        ram_peak: ram,
        checksum_ok: received == *payload.flat(),
    }
}

/// Result of a fan-out experiment at one degree.
#[derive(Debug, Clone)]
pub struct FanoutMeasurement {
    /// System measured.
    pub system: System,
    /// Fan-out degree (number of target functions).
    pub degree: usize,
    /// Modelled makespan until every branch completed.
    pub makespan_ns: Nanos,
    /// Mean single-branch latency.
    pub branch_ns: Nanos,
    /// Serialization time per branch.
    pub serialization_ns: Nanos,
    /// Aggregate user CPU.
    pub user_cpu_ns: Nanos,
    /// Aggregate kernel CPU.
    pub kernel_cpu_ns: Nanos,
    /// Peak RAM over all sandboxes.
    pub ram_peak: u64,
}

impl FanoutMeasurement {
    /// Completed requests per second at this degree.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return f64::INFINITY;
        }
        self.degree as f64 * 1e9 / self.makespan_ns as f64
    }

    /// Serialization throughput (requests/s through the serializer).
    pub fn serialization_rps(&self) -> f64 {
        if self.serialization_ns == 0 {
            return f64::INFINITY;
        }
        1e9 / self.serialization_ns as f64
    }
}

/// Runs a fan-out of `degree` branches of `bytes` each and models the
/// parallel makespan.
///
/// Branches execute sequentially in virtual time (deterministic); the
/// makespan is then bounded by the slowest single branch, by aggregate
/// CPU over the node's cores, and by aggregate wire time on the shared
/// link:
/// `makespan = max(branch, Σcpu / cores, Σwire)` — the standard
/// saturation bound, the same shape `vkernel::pipeline::run_fanout`
/// produces.
pub fn measure_fanout(system: System, degree: usize, bytes: usize, intra: bool) -> FanoutMeasurement {
    let payload = Payload::synthetic(PayloadKind::Text, 42, bytes);
    let bed = Arc::new(Testbed::paper());
    let cores = bed.node(0).cores();
    let mut branch_total: Nanos = 0;
    let mut serialization_ns: Nanos = 0;
    let mut wire_total: Nanos = 0;

    match system {
        System::Runc => {
            let mut pair =
                RuncPair::establish(Arc::clone(&bed), 0, if intra { 0 } else { 1 });
            bed.reset_telemetry();
            for _ in 0..degree {
                let out = pair.transfer(&payload).expect("runc fanout transfer");
                branch_total += out.latency_ns;
                serialization_ns = out.serialization_ns();
            }
        }
        System::Wasmedge => {
            let mut pair =
                WasmedgePair::establish(Arc::clone(&bed), 0, if intra { 0 } else { 1 });
            bed.reset_telemetry();
            for _ in 0..degree {
                let out = pair.transfer(&payload).expect("wasmedge fanout transfer");
                branch_total += out.latency_ns;
                serialization_ns = out.serialization_ns();
            }
        }
        _ => {
            let mut plane = RoadrunnerPlane::new(
                Arc::clone(&bed),
                ShimConfig::default().with_load_costs(false),
            );
            plane
                .deploy(0, "a", rr_bundle("a", guest::producer()), "produce", false)
                .expect("deploy a");
            for i in 0..degree {
                let name = format!("b{i}");
                let bundle = rr_bundle(&name, guest::consumer());
                match system {
                    System::RoadrunnerUser => plane
                        .deploy_into_shared_vm("a", &name, bundle, "consume", true)
                        .expect("deploy branch"),
                    System::RoadrunnerKernel => plane
                        .deploy(0, &name, bundle, "consume", true)
                        .expect("deploy branch"),
                    System::RoadrunnerNetwork => plane
                        .deploy(1, &name, bundle, "consume", true)
                        .expect("deploy branch"),
                    _ => unreachable!(),
                }
            }
            bed.reset_telemetry();
            let cost = bed.cost();
            serialization_ns = cost.wasm_boundary_ns + cost.vm_io_ns(8);
            for i in 0..degree {
                let name = format!("b{i}");
                plane.inject("a", payload.flat()).expect("inject");
                plane
                    .transfer_edge("a", &name, &Bytes::new())
                    .expect("roadrunner fanout transfer");
                let bd = plane.last_breakdown().expect("breakdown");
                branch_total += bd.transfer_ns;
                // The paper notes kernel-space fan-out pays extra async/IPC
                // coordination per branch.
                if system == System::RoadrunnerKernel {
                    branch_total += cost.ctx_switch_ns;
                }
            }
        }
    }

    if !intra {
        wire_total = bed.wan().wire_ns(bytes) * degree as Nanos;
    }
    let (user_cpu_ns, kernel_cpu_ns, ram_peak) = telemetry(&bed);
    let branch_ns = branch_total / degree.max(1) as Nanos;
    let cpu_bound = (user_cpu_ns + kernel_cpu_ns) / cores.max(1) as Nanos;
    let makespan_ns = branch_ns.max(cpu_bound).max(wire_total);
    FanoutMeasurement {
        system,
        degree,
        makespan_ns,
        branch_ns,
        serialization_ns,
        user_cpu_ns,
        kernel_cpu_ns,
        ram_peak,
    }
}

/// Payload sweep used by Fig. 7/8 (paper: 1 MB–500 MB).
pub fn payload_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![MB, 10 * MB, 60 * MB, 100 * MB]
    } else {
        vec![MB, 10 * MB, 60 * MB, 100 * MB, 250 * MB, 500 * MB]
    }
}

/// Fan-out degrees used by Fig. 9/10 (paper: up to 100).
pub fn fanout_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 5, 10, 25]
    } else {
        vec![1, 5, 10, 25, 50, 100]
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_flag() -> bool {
    flag("--quick")
}

/// Whether `name` was passed on the command line. Load benches accept
/// `--no-memo` through this to produce the unmemoized reference run CI
/// diffs the (default) memoized output against.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `--workers` on the command line, if any.
pub fn workers_flag() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--workers" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Sweep execution mode from the command line: `--serial` forces the
/// in-order reference loop (the byte-identity baseline CI diffs
/// against), `--workers N` sizes the pool explicitly, and the default
/// is one worker per available core.
pub fn sweep_mode_flag() -> SweepMode {
    if flag("--serial") {
        SweepMode::Serial
    } else {
        SweepMode::Parallel { workers: workers_flag().unwrap_or_else(available_workers) }
    }
}

/// Prints a figure panel header.
pub fn print_panel(title: &str, columns: &[&str]) {
    println!();
    println!("## {title}");
    println!("{}", columns.join("\t"));
}

/// Formats seconds with enough precision for log-scale series.
pub fn fmt_secs(ns: Nanos) -> String {
    format!("{:.6}", secs(ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_ordering_matches_paper() {
        let size = 4 * MB;
        let user = measure_transfer_intra(System::RoadrunnerUser, size);
        let kernel = measure_transfer_intra(System::RoadrunnerKernel, size);
        let runc = measure_transfer_intra(System::Runc, size);
        let wasmedge = measure_transfer_intra(System::Wasmedge, size);
        assert!(user.checksum_ok && kernel.checksum_ok && runc.checksum_ok && wasmedge.checksum_ok);
        assert!(
            user.latency_ns < kernel.latency_ns,
            "user {} < kernel {}",
            user.latency_ns,
            kernel.latency_ns
        );
        assert!(
            kernel.latency_ns < wasmedge.latency_ns,
            "kernel {} < wasmedge {}",
            kernel.latency_ns,
            wasmedge.latency_ns
        );
        assert!(
            user.latency_ns < runc.latency_ns,
            "user {} < runc {}",
            user.latency_ns,
            runc.latency_ns
        );
        assert!(
            runc.latency_ns < wasmedge.latency_ns,
            "runc {} < wasmedge {}",
            runc.latency_ns,
            wasmedge.latency_ns
        );
    }

    #[test]
    fn inter_node_roadrunner_beats_baselines() {
        let size = 4 * MB;
        let rr = measure_transfer(System::RoadrunnerNetwork, size);
        let runc = measure_transfer(System::Runc, size);
        let wasmedge = measure_transfer(System::Wasmedge, size);
        assert!(rr.latency_ns < runc.latency_ns);
        assert!(runc.latency_ns < wasmedge.latency_ns);
        // Serialization reduction vs WasmEdge ≈ 97 % (paper abstract).
        let reduction =
            1.0 - rr.serialization_ns as f64 / wasmedge.serialization_ns as f64;
        assert!(reduction > 0.9, "serialization reduction was {reduction}");
    }

    #[test]
    fn fanout_throughput_grows_then_saturates() {
        let one = measure_fanout(System::RoadrunnerUser, 1, MB, true);
        let eight = measure_fanout(System::RoadrunnerUser, 8, MB, true);
        assert!(eight.throughput_rps() > one.throughput_rps() * 0.8);
        assert!(eight.makespan_ns >= one.makespan_ns);
    }

    #[test]
    fn quick_sweeps_are_subsets() {
        let quick = payload_sweep(true);
        let full = payload_sweep(false);
        assert!(quick.iter().all(|s| full.contains(s)));
        assert!(fanout_sweep(true).len() < fanout_sweep(false).len());
    }
}
