//! Fig. 15 (beyond the paper) — warm-pool admission under bursty load.
//!
//! Fig. 13's cold-admission section charges the fig. 2a cold start once
//! per (function, node) and keeps the pair warm forever — the regime
//! where cold starts *hurt*, bursty ramps separated by idle gaps, never
//! shows up. This experiment drives exactly that regime: N virtual
//! users fire a burst, think for a long inter-burst gap (40 uncontended
//! makespans), and fire again, across four admission policies:
//!
//! * **`no_pool`** — pooled admission with `KeepAlive::None`: every
//!   admission misses and instantiates (the pessimistic per-invocation
//!   cold-start baseline);
//! * **`ttl`** — a fixed keep-alive of half the inter-burst gap: warm
//!   instances die between bursts, so every burst re-pays the
//!   snapshot-restore tier (reactive keep-alive, mis-tuned);
//! * **`hybrid`** — the histogram-of-reuse-gaps policy (Shahrad et
//!   al.): optimistic until it has observed each function's gap
//!   distribution, then holds instances just long enough to cover it —
//!   bursts after the first admit warm;
//! * **`hybrid_prewarm`** — `hybrid` plus the autoscaler's predictive
//!   pre-warming: square-root staffing on the in-flight demand estimate
//!   instantiates pool capacity in the background (off every arrival's
//!   critical path), so even the first burst's later arrivals restore
//!   from snapshots laid down ahead of them.
//!
//! Each (policy) cell runs the three systems with their own cold-start
//! tiers from `baselines::coldstart`: full decode+instantiate for the
//! first build of a slot, the snapshot-restore tier afterwards (Wasm:
//! sub-millisecond, the Faasta claim; containers: CRIU-style checkpoint
//! restore). The headline gate asserts the warm-pool p99 sojourn at
//! burst peak (every instance after each user's first) beats `no_pool`
//! by at least [`GATE_MIN_P99_RATIO`]×, and that pre-warming strictly
//! cuts total cold-start time vs the reactive TTL cell.
//!
//! Cells fan out over the sweep worker pool like fig12–14; output is
//! byte-identical serial or parallel.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use roadrunner_baselines::coldstart::{
    container_tiers, wasm_snapshot_restore_ns, ColdStartTiers, CONTAINER_IMAGE_BYTES,
    PAPER_WASM_HELLO_BYTES,
};
use roadrunner_platform::{
    percentiles_sorted, run_jobs, AdmissionConfig, Autoscaler, AutoscalerConfig, ClosedLoop,
    KeepAlive, LoadRun, LocalityFirst, MemoizedPlane, PercentileSummary,
    PrewarmConfig, ScaleAction, SweepMode, WarmPoolConfig,
};
use roadrunner_vkernel::{secs, CostModel, Nanos, SchedResources, Testbed};

use crate::fig13::{cluster, spec, systems, SystemUnderLoad, CORES, START_NODES};
use crate::MB;

/// The warm-pool p99 at burst peak must beat `no_pool` by at least this
/// factor (per system, for both the `hybrid` and `hybrid_prewarm`
/// cells). CI re-checks the recorded ratio in `BENCH_coldstart.json`.
pub const GATE_MIN_P99_RATIO: f64 = 2.0;

/// Inter-burst think gap: `GAP_MAKESPANS` uncontended makespans plus
/// `GAP_FULL_BUILDS` full cold builds — long enough that one burst is
/// fully absorbed (including background pre-warm instantiation) before
/// the next fires, that a mis-tuned TTL (half the gap) evicts
/// everything between bursts, and that the hybrid policy's learned TTL
/// still covers it.
const GAP_MAKESPANS: u64 = 40;
const GAP_FULL_BUILDS: u64 = 4;

fn gap_ns_of(solo_ns: Nanos, full_ns: Nanos) -> Nanos {
    solo_ns * GAP_MAKESPANS + full_ns * GAP_FULL_BUILDS
}

/// Knobs for one fig15 sweep.
pub struct Fig15Options {
    /// Reduced user count/rounds for CI.
    pub quick: bool,
    /// Serial reference loop or the worker pool.
    pub mode: SweepMode,
}

/// The four admission policies, in emission order.
const POLICIES: [&str; 4] = ["no_pool", "ttl", "hybrid", "hybrid_prewarm"];

/// Both cold-start tiers of one system's functions.
fn tiers_of(label: &str, full_ns: Nanos, cost: &CostModel) -> ColdStartTiers {
    let restore_ns = match label {
        "runc" => container_tiers(cost, CONTAINER_IMAGE_BYTES).restore_ns,
        _ => wasm_snapshot_restore_ns(cost, PAPER_WASM_HELLO_BYTES),
    };
    debug_assert!(restore_ns < full_ns, "restore tier must undercut the full build");
    ColdStartTiers { full_ns, restore_ns }
}

/// Admission config of one (policy, system) cell. `gap_ns` is the
/// inter-burst think gap the keep-alive policies are tuned against.
fn admission_of(policy: &str, tiers: ColdStartTiers, gap_ns: Nanos) -> AdmissionConfig {
    let pool = |keep_alive| WarmPoolConfig {
        restore_ns: Some(tiers.restore_ns),
        keep_alive,
        ..WarmPoolConfig::default()
    };
    match policy {
        // No restore tier either: the baseline pays the full build on
        // every admission, the worst honest cold-start story.
        "no_pool" => AdmissionConfig::pooled(
            tiers.full_ns,
            WarmPoolConfig { restore_ns: None, ..WarmPoolConfig::default() },
        ),
        "ttl" => AdmissionConfig::pooled(
            tiers.full_ns,
            pool(KeepAlive::FixedTtl { ttl_ns: gap_ns / 2 }),
        ),
        _ => AdmissionConfig::pooled(
            tiers.full_ns,
            pool(KeepAlive::Hybrid { min_ttl_ns: 1_000_000, max_ttl_ns: gap_ns * 4 }),
        ),
    }
}

/// One bursty closed-loop run of one system under one policy.
fn run_cell(
    system: &mut SystemUnderLoad,
    bed: &Arc<Testbed>,
    tiers: ColdStartTiers,
    policy: &str,
    users: usize,
    rounds: usize,
    payload: &Bytes,
) -> LoadRun {
    let solo = system.solo_ns;
    let gap_ns = gap_ns_of(solo, tiers.full_ns);
    let load = ClosedLoop {
        spec: spec(),
        payload: payload.clone(),
        users,
        think_ns: gap_ns,
        ramp_ns: solo / 4,
        instances: users * rounds,
        admission: admission_of(policy, tiers, gap_ns),
    };
    let mut placement = LocalityFirst::new();
    let mut resources = SchedResources::mesh(&[CORES; START_NODES]);
    let clock = bed.clock().clone();
    let mut plane = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
    let run = if policy == "hybrid_prewarm" {
        // The node controller is pinned (min = max): only the prewarm
        // side of the autoscaler acts, staffing the pool predictively.
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: START_NODES,
            max_nodes: START_NODES,
            node_cores: CORES,
            scale_up_backlog_ns: Nanos::MAX,
            scale_down_backlog_ns: 0,
            window_ns: gap_ns,
        })
        .with_prewarm(PrewarmConfig {
            // Extrapolate one makespan ahead — enough to front-run a
            // building burst without staffing for phantom demand.
            headroom: 2.0,
            lead_ns: solo.max(1),
            window_ns: solo.max(1),
        });
        load.run_elastic(&mut plane, &clock, &mut resources, &mut placement, Some(&mut scaler))
    } else {
        load.run(&mut plane, &clock, &mut resources, &mut placement)
    }
    .expect("bursty closed-loop run");
    assert_eq!(run.outcomes.len(), users * rounds, "every instance must complete");
    run
}

/// Sojourn percentiles at burst peak: every instance *after* each
/// user's first. First instances pay the unavoidable first build under
/// every policy; the peak digest is where the policies differ.
fn peak_percentiles(run: &LoadRun) -> PercentileSummary {
    let mut seen: HashMap<usize, usize> = HashMap::new();
    let mut sojourns: Vec<Nanos> = Vec::new();
    for o in &run.outcomes {
        let prior = seen.entry(o.user).or_insert(0);
        if *prior >= 1 {
            sojourns.push(o.sojourn_ns);
        }
        *prior += 1;
    }
    sojourns.sort_unstable();
    percentiles_sorted(&sojourns).expect("every user ran more than one round")
}

/// One cell's merged result.
struct CellResult {
    policy: &'static str,
    systems: Vec<(&'static str, Nanos, ColdStartTiers, LoadRun)>,
}

/// Runs one policy across the three systems as a self-contained job.
fn run_job(policy: &'static str, users: usize, rounds: usize, payload: &Bytes) -> CellResult {
    let bed = cluster();
    let mut under_load = systems(&bed, payload);
    let systems = under_load
        .iter_mut()
        .map(|system| {
            let tiers = tiers_of(system.label, system.cold_ns, bed.cost());
            let run = run_cell(system, &bed, tiers, policy, users, rounds, payload);
            (system.label, system.solo_ns, tiers, run)
        })
        .collect();
    CellResult { policy, systems }
}

fn cell_json(
    system: &str,
    solo_ns: Nanos,
    tiers: ColdStartTiers,
    policy: &str,
    users: usize,
    run: &LoadRun,
) -> String {
    let digest = run.sojourn_percentiles().expect("non-empty run");
    let peak = peak_percentiles(run);
    let pool = run.pool.expect("every fig15 cell runs pooled admission");
    let prewarm_events =
        run.scale_events.iter().filter(|e| e.action == ScaleAction::Prewarm).count();
    format!(
        concat!(
            "    {{\"system\": \"{}\", \"policy\": \"{}\", \"users\": {}, ",
            "\"instances\": {}, \"solo_s\": {:.6}, \"gap_s\": {:.6}, ",
            "\"full_tier_s\": {:.6}, \"restore_tier_s\": {:.6}, ",
            "\"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}, ",
            "\"p99_peak_s\": {:.6}, \"max_s\": {:.6}, ",
            "\"cold_starts\": {}, \"cold_total_s\": {:.6}, ",
            "\"pool\": {{\"hits\": {}, \"misses\": {}, \"restores\": {}, ",
            "\"returns\": {}, \"evictions\": {}, \"prewarms\": {}, ",
            "\"prewarm_s\": {:.6}, \"idle_s\": {:.6}, \"warm_at_end\": {}}}, ",
            "\"prewarm_events\": {}}}"
        ),
        system,
        policy,
        users,
        run.outcomes.len(),
        secs(solo_ns),
        secs(gap_ns_of(solo_ns, tiers.full_ns)),
        secs(tiers.full_ns),
        secs(tiers.restore_ns),
        secs(digest.p50_ns),
        secs(digest.p95_ns),
        secs(digest.p99_ns),
        secs(peak.p99_ns),
        secs(digest.max_ns),
        run.cold_starts(),
        secs(run.cold_start_total_ns()),
        pool.hits,
        pool.misses,
        pool.restores,
        pool.returns,
        pool.evictions,
        pool.prewarms,
        secs(pool.prewarm_ns),
        pool.idle_ns as f64 / 1e9,
        pool.warm_at_end,
        prewarm_events,
    )
}

/// Runs the fig15 sweep under `opts` and returns the complete JSON
/// document (the content of `BENCH_coldstart.json`). Panics if any
/// headline invariant — the p99 gate, the strict prewarm-vs-TTL
/// cold-total cut — fails.
pub fn fig15_json(opts: &Fig15Options) -> String {
    let (users, rounds) = if opts.quick { (6, 4) } else { (8, 6) };
    let payload = Bytes::from(vec![0xC5u8; MB / 4]);

    let results =
        run_jobs(&POLICIES, opts.mode, |&policy| run_job(policy, users, rounds, &payload));

    let cell = |policy: &str, system: &str| {
        results
            .iter()
            .find(|c| c.policy == policy)
            .and_then(|c| c.systems.iter().find(|(l, ..)| *l == system))
            .expect("cell exists")
    };
    let mut worst_ratio = f64::INFINITY;
    for system in ["roadrunner", "runc", "wasmedge"] {
        let peak = |policy: &str| peak_percentiles(&cell(policy, system).3).p99_ns;
        let cold_total = |policy: &str| cell(policy, system).3.cold_start_total_ns();
        let pool = |policy: &str| cell(policy, system).3.pool.expect("pooled run");

        // The no-pool baseline never serves warm; the keep-alive cells do.
        assert_eq!(pool("no_pool").hits, 0, "{system}: KeepAlive::None must never hit");
        for warm in ["ttl", "hybrid", "hybrid_prewarm"] {
            assert!(pool(warm).hits > 0, "{system}/{warm}: keep-alive must serve warm");
        }

        // Headline gate: warm-pool p99 at burst peak ≥ 2× better.
        let no_pool_p99 = peak("no_pool");
        for warm in ["hybrid", "hybrid_prewarm"] {
            let ratio = no_pool_p99 as f64 / peak(warm).max(1) as f64;
            assert!(
                ratio >= GATE_MIN_P99_RATIO,
                "{system}/{warm}: peak p99 ratio {ratio:.2} below gate \
                 ({no_pool_p99} vs {})",
                peak(warm),
            );
            worst_ratio = worst_ratio.min(ratio);
        }

        // The mis-tuned TTL re-pays restores every burst; the hybrid
        // policy's learned TTL covers the gap, and pre-warming moves
        // instantiation off the critical path entirely — both must cut
        // total charged cold-start time, pre-warming *strictly*.
        let (ttl, hybrid, prewarm) =
            (cold_total("ttl"), cold_total("hybrid"), cold_total("hybrid_prewarm"));
        assert!(hybrid < ttl, "{system}: hybrid {hybrid} must undercut ttl {ttl}");
        assert!(prewarm < ttl, "{system}: prewarm {prewarm} must strictly undercut ttl {ttl}");

        // Pre-warming must actually have happened, and been traced.
        let prewarm_run = &cell("hybrid_prewarm", system).3;
        assert!(pool("hybrid_prewarm").prewarms > 0, "{system}: prewarming must staff the pool");
        assert!(
            prewarm_run.scale_events.iter().any(|e| e.action == ScaleAction::Prewarm),
            "{system}: the staffing ratchet must emit Prewarm events"
        );
    }

    let mut rows: Vec<String> = Vec::new();
    for result in &results {
        for (label, solo_ns, tiers, run) in &result.systems {
            rows.push(cell_json(label, *solo_ns, *tiers, result.policy, users, run));
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig15_coldstart\",\n");
    out.push_str(&format!(
        "  \"cluster\": {{\"nodes\": {START_NODES}, \"cores_per_node\": {CORES}}},\n"
    ));
    out.push_str("  \"workflow\": \"src -> relay -> sink\",\n");
    out.push_str(&format!("  \"payload_mb\": {:.2},\n", (MB / 4) as f64 / MB as f64));
    out.push_str(&format!("  \"users\": {users},\n"));
    out.push_str(&format!("  \"rounds_per_user\": {rounds},\n"));
    out.push_str(&format!("  \"gap_makespans\": {GAP_MAKESPANS},\n"));
    out.push_str(&format!(
        "  \"gate\": {{\"min_p99_ratio\": {GATE_MIN_P99_RATIO:.1}, \
         \"worst_p99_ratio\": {worst_ratio:.3}, \"pass\": true}},\n"
    ));
    out.push_str("  \"cells\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 smoke: the quick matrix end to end, asserting every
    /// headline invariant (the gate assertions live inside
    /// `fig15_json`), serial for determinism.
    #[test]
    fn quick_sweep_passes_every_gate() {
        let json = fig15_json(&Fig15Options { quick: true, mode: SweepMode::Serial });
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("\"policy\": \"hybrid_prewarm\""));
    }
}
