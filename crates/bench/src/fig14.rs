//! Fig. 14 (beyond the paper) — failure injection and self-healing
//! elasticity.
//!
//! The paper's testbed is immortal; this experiment makes it fallible.
//! The same closed-loop workload fig13 saturates the cluster with is
//! driven through deterministic failure schedules, one scenario per
//! cell, all three systems per scenario:
//!
//! * **baseline** — no failures. The cell is run twice, once through
//!   the plain engine and once through the fault-aware engine with an
//!   *empty* [`FailurePlan`], and the two runs are asserted identical
//!   outcome for outcome — the in-process face of the CI byte-identity
//!   gate.
//! * **link_flap** — the pair link between the two active nodes flaps
//!   down periodically while spread-placed instances stream cross-node
//!   edges over it. Edges retry with deterministic backoff; the cell
//!   reports how many instances completed only after absorbing
//!   retries. Nothing may fail: the budget must ride out every flap.
//! * **kill_fixed** — one of the two nodes dies mid-run and the
//!   control plane removes it a detection delay later, migrating its
//!   un-started backlog; capacity stays at one node. Instances placed
//!   onto the dead node before detection exhaust their budgets and
//!   fail; throughput never recovers to the pre-kill rate.
//! * **kill_elastic** — the same kill under the capacity-loss-aware
//!   autoscaler: the controller sees the live node count drop below
//!   what it last decided and replaces the dead node immediately
//!   (replacement bypasses the backlog cooldown). Throughput recovers
//!   to ≥ 80 % of the pre-kill rate within the horizon — the
//!   self-healing headline the cell asserts.
//!
//! **Time-to-recover** is measured from the kill instant to the start
//! of the first window (two think-cycles wide) whose completion rate
//! reaches 80 % of the pre-kill rate; `null` when no window qualifies.
//!
//! Cells fan out over the `platform::sweep` worker pool exactly like
//! fig12/fig13 (`--serial`, `--workers N`); output is byte-identical
//! either way.

use std::sync::Arc;

use bytes::Bytes;
use roadrunner_platform::{
    run_jobs, AdmissionConfig, Autoscaler, AutoscalerConfig, ClosedLoop, DataPlane, FailurePlan, LoadRun,
    LocalityFirst, MemoizedPlane, PlacementPolicy, RetryPolicy, ScaleAction, SpreadLoad,
    SweepMode,
};
use roadrunner_vkernel::{secs, Nanos, OutageSchedule, SchedResources, Testbed};

use crate::fig13::{cluster, spec, systems, SystemUnderLoad, CORES, START_NODES};
use crate::MB;

/// Autoscaler ceiling for the elastic kill cell.
const MAX_NODES: usize = 6;

/// Knobs for one fig14 sweep.
pub struct Fig14Options {
    /// Reduced rounds/payload for CI.
    pub quick: bool,
    /// Wrap planes in the transfer-cost memo (`--no-memo` turns off).
    /// The memo keys on the link-health epoch, so it stays sound under
    /// outage schedules.
    pub memo: bool,
    /// Serial reference loop or the worker pool.
    pub mode: SweepMode,
}

/// The injected-failure scenarios, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Baseline,
    LinkFlap,
    KillFixed,
    KillElastic,
}

impl Scenario {
    fn label(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::LinkFlap => "link_flap",
            Scenario::KillFixed => "kill_fixed",
            Scenario::KillElastic => "kill_elastic",
        }
    }

    /// Kills pack instances (LocalityFirst) so a dead node takes whole
    /// instances with it; the flap spreads them (SpreadLoad) so edges
    /// actually cross the flapping link.
    fn policy(self) -> Box<dyn PlacementPolicy> {
        match self {
            Scenario::LinkFlap => Box::new(SpreadLoad::new()),
            _ => Box::new(LocalityFirst::new()),
        }
    }
}

/// One cell's knobs — also the parallel job description.
#[derive(Clone, Copy)]
struct Job {
    scenario: Scenario,
    users: usize,
    rounds: usize,
    memo: bool,
}

/// Everything one scenario derives from a system's uncontended solo
/// makespan: the closed-loop shape and the failure schedule's geometry,
/// all in multiples of one user's think cycle so every system sees the
/// same *relative* failure pressure.
struct CellShape {
    load: ClosedLoop,
    /// One user's request cycle: solo makespan + think time.
    cycle_ns: Nanos,
    /// Virtual instant the kill scenarios kill their node.
    kill_at_ns: Nanos,
    /// Control-plane detection delay before the dead node is removed.
    detect_ns: Nanos,
}

fn shape(system: &SystemUnderLoad, payload: &Bytes, job: Job) -> CellShape {
    let solo = system.solo_ns;
    let think = solo / 4;
    let cycle = solo + think;
    CellShape {
        load: ClosedLoop {
            spec: spec(),
            payload: payload.clone(),
            users: job.users,
            think_ns: think,
            // A short ramp: the failure windows should hit a fully
            // ramped, saturated cluster, not the arrival transient.
            ramp_ns: solo / 8,
            instances: job.users * job.rounds,
            admission: AdmissionConfig::warm(),
        },
        cycle_ns: cycle,
        kill_at_ns: 4 * cycle,
        detect_ns: cycle / 2,
    }
}

/// The failure plan a scenario injects, given the cell's geometry and
/// the stable ids of the two initially active nodes.
fn plan_for(scenario: Scenario, shape: &CellShape, ids: (u64, u64)) -> Option<FailurePlan> {
    let cycle = shape.cycle_ns;
    match scenario {
        Scenario::Baseline => Some(FailurePlan::new(RetryPolicy::default())),
        Scenario::LinkFlap => {
            // Four periodic flaps, each a third of a cycle down, two
            // cycles apart starting after the ramp — offset by a
            // seventh of a cycle so the windows never resonate with the
            // closed loop's own periodic edge-ready lattice. The retry
            // budget (8 attempts, backoff 1/16-cycle doubling to a
            // half-cycle cap) cumulatively waits out well over one full
            // window, so every covered edge survives.
            let retry = RetryPolicy::new(8, (cycle / 16).max(1), (cycle / 2).max(1));
            let mut outages = OutageSchedule::new();
            for flap in 0..4u64 {
                let from = 2 * cycle + flap * 2 * cycle + cycle / 7;
                outages = outages.link_down(ids.0, ids.1, from, from + cycle / 3);
            }
            Some(FailurePlan::new(retry).with_outages(outages))
        }
        Scenario::KillFixed | Scenario::KillElastic => Some(
            FailurePlan::new(RetryPolicy::new(3, (cycle / 16).max(1), (cycle / 2).max(1)))
                .kill_node(ids.1, shape.kill_at_ns, shape.detect_ns),
        ),
    }
}

/// Completions (not failures) finishing inside `[from, to)`.
fn completions_in(run: &LoadRun, from: Nanos, to: Nanos) -> usize {
    run.outcomes.iter().filter(|o| !o.failed && o.finish_ns >= from && o.finish_ns < to).count()
}

/// Completion rate (instances per ns) over `[from, to)`.
fn rate_over(run: &LoadRun, from: Nanos, to: Nanos) -> f64 {
    if to <= from {
        return 0.0;
    }
    completions_in(run, from, to) as f64 / (to - from) as f64
}

/// Time from the kill to the start of the first `window`-wide interval
/// whose completion rate reaches 80 % of `pre_rate`; `None` if no
/// interval inside the horizon qualifies.
fn time_to_recover(
    run: &LoadRun,
    kill_ns: Nanos,
    detect_ns: Nanos,
    pre_rate: f64,
    window: Nanos,
) -> Option<Nanos> {
    let horizon = run.outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(0);
    let step = (window / 8).max(1);
    let mut t = kill_ns + detect_ns;
    while t + window <= horizon {
        if rate_over(run, t, t + window) >= 0.8 * pre_rate {
            return Some(t - kill_ns);
        }
        t += step;
    }
    None
}

/// Per-cell derived failure metrics.
struct CellMetrics {
    pre_kill_rps: f64,
    post_kill_rps: f64,
    recover_ns: Option<Nanos>,
}

/// One closed-loop run of a scenario against one system.
fn run_cell(system: &mut SystemUnderLoad, bed: &Arc<Testbed>, payload: &Bytes, job: Job) -> LoadRun {
    let shape = shape(system, payload, job);
    let mut resources = SchedResources::mesh(&[CORES; START_NODES]);
    let ids = (resources.node_id(0), resources.node_id(1));
    let plan = plan_for(job.scenario, &shape, ids);
    let mut policy = job.scenario.policy();
    let clock = bed.clock().clone();
    let mut memo_plane;
    let plane: &mut dyn DataPlane = if job.memo {
        memo_plane = MemoizedPlane::new(system.plane.as_mut(), clock.clone());
        &mut memo_plane
    } else {
        system.plane.as_mut()
    };
    let run = if job.scenario == Scenario::KillElastic {
        let solo = system.solo_ns;
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: START_NODES,
            max_nodes: MAX_NODES,
            node_cores: CORES,
            scale_up_backlog_ns: solo / 2,
            scale_down_backlog_ns: solo / 16,
            window_ns: (solo / 4).max(1),
        });
        shape.load.run_with_failures(
            plane,
            &clock,
            &mut resources,
            policy.as_mut(),
            Some(&mut scaler),
            plan.as_ref(),
        )
    } else if job.scenario == Scenario::Baseline {
        // The in-process identity check: the plain engine and the
        // fault-aware engine under an empty plan must produce the same
        // run, outcome for outcome.
        let plain = shape
            .load
            .run(plane, &clock, &mut resources, policy.as_mut())
            .expect("baseline run");
        let mut fresh = SchedResources::mesh(&[CORES; START_NODES]);
        let mut fresh_policy = job.scenario.policy();
        let empty = plan.as_ref().expect("baseline plan is Some(empty)");
        assert!(empty.is_empty(), "the baseline plan must inject nothing");
        let faulty = shape
            .load
            .run_with_failures(plane, &clock, &mut fresh, fresh_policy.as_mut(), None, Some(empty))
            .expect("empty-plan run");
        assert_eq!(plain.outcomes.len(), faulty.outcomes.len());
        for (a, b) in plain.outcomes.iter().zip(&faulty.outcomes) {
            assert_eq!(
                (a.release_ns, a.finish_ns, a.sojourn_ns, &a.assignment),
                (b.release_ns, b.finish_ns, b.sojourn_ns, &b.assignment),
                "{}: an empty failure plan must be invisible",
                system.label,
            );
        }
        assert_eq!((faulty.failed, faulty.retries), (0, 0));
        return plain;
    } else {
        shape.load.run_with_failures(
            plane,
            &clock,
            &mut resources,
            policy.as_mut(),
            None,
            plan.as_ref(),
        )
    }
    .expect("closed-loop run");
    run
}

/// One cell's merged result: the three systems' runs plus derived
/// failure metrics.
struct CellResult {
    job: Job,
    systems: Vec<(&'static str, Nanos, LoadRun, CellMetrics)>,
}

/// Runs one cell as a self-contained job: fresh testbed, fresh
/// deployments, fresh scheduler state.
fn run_job(job: &Job, payload: &Bytes) -> CellResult {
    let bed = cluster();
    let mut under_load = systems(&bed, payload);
    let systems = under_load
        .iter_mut()
        .map(|system| {
            let shp = shape(system, payload, *job);
            let run = run_cell(system, &bed, payload, *job);
            // Conservation holds in every cell: every admitted instance
            // either completed or failed after exhausting its retries.
            assert_eq!(run.outcomes.len(), job.users * job.rounds);
            assert_eq!(run.outcomes.len(), run.completed() + run.failed);
            let (kill, detect) = (shp.kill_at_ns, shp.detect_ns);
            // Pre-kill rate over the ramped, saturated stretch before
            // the kill; post-kill over everything past detection.
            let horizon = run.outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(0);
            let metrics = CellMetrics {
                pre_kill_rps: rate_over(&run, 2 * shp.cycle_ns, kill) * 1e9,
                post_kill_rps: rate_over(&run, kill + detect, horizon) * 1e9,
                recover_ns: time_to_recover(
                    &run,
                    kill,
                    detect,
                    rate_over(&run, 2 * shp.cycle_ns, kill),
                    2 * shp.cycle_ns,
                ),
            };
            (system.label, system.solo_ns, run, metrics)
        })
        .collect();
    CellResult { job: *job, systems }
}

fn cell_json(
    system: &str,
    solo_ns: Nanos,
    job: &Job,
    run: &LoadRun,
    metrics: &CellMetrics,
) -> String {
    let digest = run.sojourn_percentiles().expect("every cell completes instances");
    let replacements =
        run.scale_events.iter().filter(|e| e.action == ScaleAction::Replace).count();
    let kill_cell = matches!(job.scenario, Scenario::KillFixed | Scenario::KillElastic);
    format!(
        concat!(
            "    {{\"system\": \"{}\", \"scenario\": \"{}\", \"users\": {}, ",
            "\"instances\": {}, \"solo_s\": {:.6}, ",
            "\"completed\": {}, \"retried\": {}, \"failed\": {}, \"retries\": {}, ",
            "\"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}, ",
            "\"throughput_rps\": {:.3}, ",
            "\"pre_kill_rps\": {}, \"post_kill_rps\": {}, \"time_to_recover_s\": {}, ",
            "\"final_nodes\": {}, \"replacements\": {}}}"
        ),
        system,
        job.scenario.label(),
        job.users,
        run.outcomes.len(),
        secs(solo_ns),
        run.completed(),
        run.retried(),
        run.failed,
        run.retries,
        secs(digest.p50_ns),
        secs(digest.p95_ns),
        secs(digest.p99_ns),
        run.throughput_rps(),
        if kill_cell { format!("{:.3}", metrics.pre_kill_rps) } else { "null".to_owned() },
        if kill_cell { format!("{:.3}", metrics.post_kill_rps) } else { "null".to_owned() },
        metrics
            .recover_ns
            .filter(|_| kill_cell)
            .map_or("null".to_owned(), |ns| format!("{:.6}", secs(ns))),
        run.final_nodes,
        replacements,
    )
}

/// Runs the fig14 sweep under `opts` and returns the complete JSON
/// document. Execution mode is deliberately *not* recorded in the
/// output: serial and parallel runs must produce identical bytes.
pub fn fig14_json(opts: &Fig14Options) -> String {
    let payload_bytes = if opts.quick { MB } else { 2 * MB };
    // 12 users against 8 fixed lanes (2 nodes × 4 cores) keeps the
    // closed loop capacity-bound: losing a node halves deliverable
    // throughput, so a cluster that does not heal cannot fake recovery.
    let users = 12;
    let rounds = if opts.quick { 8 } else { 14 };
    let payload = Bytes::from(vec![0xE4u8; payload_bytes]);

    let jobs: Vec<Job> = [
        Scenario::Baseline,
        Scenario::LinkFlap,
        Scenario::KillFixed,
        Scenario::KillElastic,
    ]
    .into_iter()
    .map(|scenario| Job { scenario, users, rounds, memo: opts.memo })
    .collect();

    let results = run_jobs(&jobs, opts.mode, |job| run_job(job, &payload));

    // Post-merge invariants over the deterministic, job-ordered results.
    let find = |scenario: Scenario| {
        results.iter().find(|c| c.job.scenario == scenario).expect("cell exists")
    };
    for (label, _, run, _) in &find(Scenario::LinkFlap).systems {
        assert_eq!(run.failed, 0, "{label}: the retry budget must ride out every flap");
        assert!(run.retried() > 0, "{label}: flaps must actually cover traffic");
    }
    for (label, _, run, metrics) in &find(Scenario::KillFixed).systems {
        assert!(run.failed > 0, "{label}: undetected-kill placements must fail");
        assert!(
            metrics.recover_ns.is_none(),
            "{label}: fixed capacity must not recover to 80% of pre-kill \
             (pre {:.3} rps, post {:.3} rps)",
            metrics.pre_kill_rps,
            metrics.post_kill_rps,
        );
        assert_eq!(run.final_nodes, START_NODES - 1, "{label}: the dead node stays dead");
    }
    for (label, _, run, metrics) in &find(Scenario::KillElastic).systems {
        let recover = metrics.recover_ns.unwrap_or_else(|| {
            panic!(
                "{label}: the elastic cluster must recover to 80% of pre-kill \
                 within the horizon (pre {:.3} rps, post {:.3} rps)",
                metrics.pre_kill_rps, metrics.post_kill_rps,
            )
        });
        assert!(
            run.scale_events.iter().any(|e| e.action == ScaleAction::Replace),
            "{label}: recovery must come through a replacement decision",
        );
        assert!(run.final_nodes >= START_NODES, "{label}: capacity restored");
        // And healing must beat not healing where it counts.
        let fixed = find(Scenario::KillFixed)
            .systems
            .iter()
            .find(|(l, ..)| l == label)
            .map(|(_, _, run, _)| run.completed())
            .expect("fixed cell exists");
        assert!(
            run.completed() >= fixed,
            "{label}: healing must not complete less than fixed capacity",
        );
        let _ = recover;
    }

    let mut rows: Vec<String> = Vec::new();
    for cell in &results {
        for (label, solo_ns, run, metrics) in &cell.systems {
            rows.push(cell_json(label, *solo_ns, &cell.job, run, metrics));
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig14_failures\",\n");
    out.push_str(&format!(
        "  \"cluster\": {{\"nodes_fixed\": {START_NODES}, \"nodes_max\": {MAX_NODES}, \
         \"cores_per_node\": {CORES}}},\n"
    ));
    out.push_str("  \"workflow\": \"src -> relay -> sink\",\n");
    out.push_str(&format!("  \"payload_mb\": {:.1},\n", payload_bytes as f64 / MB as f64));
    out.push_str(&format!("  \"users\": {users},\n"));
    out.push_str(&format!("  \"rounds_per_user\": {rounds},\n"));
    out.push_str("  \"recovery_threshold\": 0.8,\n");
    out.push_str("  \"cells\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}");
    out
}
