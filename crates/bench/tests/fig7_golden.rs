//! Golden regression pin for the paper's reproduced Fig. 7 headline.
//!
//! The simulation is fully deterministic, so these measurements are
//! **exact**: any cost-model recalibration, plane refactor or scheduler
//! change that moves a single virtual nanosecond on the serial
//! single-edge path fails here — the paper's reproduced claims cannot
//! drift silently. If a change is *supposed* to move these numbers,
//! update the constants in the same commit and say why.
//!
//! The pinned claims (paper §6.3, DESIGN.md §7):
//! * intra-node ordering: user space < kernel space < RunC < WasmEdge;
//! * Roadrunner (Kernel space) lands ~12–13 % below RunC;
//! * Roadrunner's serialization-path work is payload-size-independent
//!   (the 8-byte descriptor handoff) and ≥ 97 % below WasmEdge's.

use roadrunner_bench::{measure_transfer_intra, System, MB};

/// Exact virtual-nanosecond latencies at 1 MB and 100 MB, in the
/// intra-node line-up order (user, kernel, RunC, WasmEdge).
const GOLDEN_1MB: [u64; 4] = [2_105_406, 2_430_204, 2_796_044, 32_659_333];
const GOLDEN_100MB: [u64; 4] = [210_526_656, 242_245_057, 274_322_550, 3_262_657_274];

/// Roadrunner's serialization-path cost: one boundary crossing plus the
/// 8-byte descriptor, at any payload size.
const GOLDEN_RR_SERIALIZATION: u64 = 1_008;

fn latencies(size: usize) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (slot, system) in out.iter_mut().zip(System::intra_node()) {
        let m = measure_transfer_intra(system, size);
        assert!(m.checksum_ok, "{system:?} corrupted the payload");
        *slot = m.latency_ns;
    }
    out
}

#[test]
fn fig7_latencies_are_byte_identical_to_the_pinned_run() {
    assert_eq!(latencies(MB), GOLDEN_1MB);
    assert_eq!(latencies(100 * MB), GOLDEN_100MB);
}

#[test]
fn fig7_kernel_space_sits_twelve_to_thirteen_percent_below_runc() {
    // The paper's §6.3 claim, derived from the same pinned numbers so a
    // deliberate recalibration that breaks the *relationship* (not just
    // the values) is called out separately.
    for golden in [GOLDEN_1MB, GOLDEN_100MB] {
        let [user, kernel, runc, wasmedge] = golden;
        assert!(user < kernel && kernel < runc && runc < wasmedge, "{golden:?}");
        let below_runc = 1.0 - kernel as f64 / runc as f64;
        assert!(
            (0.11..=0.14).contains(&below_runc),
            "kernel space was {:.1} % below RunC, expected ~12-13 %",
            below_runc * 100.0
        );
    }
}

#[test]
fn fig7_roadrunner_serialization_is_constant_and_tiny() {
    for size in [MB, 100 * MB] {
        let user = measure_transfer_intra(System::RoadrunnerUser, size);
        let kernel = measure_transfer_intra(System::RoadrunnerKernel, size);
        assert_eq!(user.serialization_ns, GOLDEN_RR_SERIALIZATION);
        assert_eq!(kernel.serialization_ns, GOLDEN_RR_SERIALIZATION);
        let wasmedge = measure_transfer_intra(System::Wasmedge, size);
        let reduction = 1.0 - user.serialization_ns as f64 / wasmedge.serialization_ns as f64;
        assert!(reduction > 0.97, "serialization reduction was {reduction}");
    }
}
