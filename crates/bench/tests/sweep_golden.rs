//! Golden-stability promotion of the CI byte-identity gate into
//! `cargo test`: the fig12 and fig13 sweeps are run **in-process**,
//! once on the serial reference loop and once on the worker pool, and
//! the complete JSON documents must match byte for byte. A determinism
//! regression in the parallel engine therefore fails tier-1 locally
//! instead of only the CI diff step.

use roadrunner_bench::fig12::{fig12_json, Fig12Options};
use roadrunner_bench::fig13::{fig13_json, Fig13Options};
use roadrunner_platform::SweepMode;

#[test]
fn fig12_parallel_output_is_byte_identical_to_serial() {
    let serial = fig12_json(&Fig12Options {
        quick: true,
        golden: true,
        memo: true,
        mode: SweepMode::Serial,
    });
    let parallel = fig12_json(&Fig12Options {
        quick: true,
        golden: true,
        memo: true,
        mode: SweepMode::Parallel { workers: 4 },
    });
    assert!(
        serial == parallel,
        "fig12 parallel JSON diverged from serial:\n--- serial ---\n{serial}\n--- parallel ---\n{parallel}"
    );
    assert!(serial.contains("\"figure\": \"fig12_load\""));
}

#[test]
fn fig13_parallel_output_is_byte_identical_to_serial() {
    let serial = fig13_json(&Fig13Options {
        quick: true,
        golden: true,
        memo: true,
        mode: SweepMode::Serial,
    });
    let parallel = fig13_json(&Fig13Options {
        quick: true,
        golden: true,
        memo: true,
        mode: SweepMode::Parallel { workers: 4 },
    });
    assert!(
        serial == parallel,
        "fig13 parallel JSON diverged from serial:\n--- serial ---\n{serial}\n--- parallel ---\n{parallel}"
    );
    assert!(serial.contains("\"figure\": \"fig13_elastic\""));
}
