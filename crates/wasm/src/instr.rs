//! The instruction set: a structured AST over the MVP numeric subset plus
//! the bulk-memory operations (`memory.copy`, `memory.fill`) that guests
//! use for efficient data movement.
//!
//! Bodies are kept as trees (blocks contain their instructions) rather
//! than a flat stream with jump targets; the binary codec flattens and
//! re-builds this structure, and the interpreter walks it directly.

use crate::types::ValType;

/// The result type of a block/loop/if (MVP: at most one value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// No result.
    Empty,
    /// One result of the given type.
    Value(ValType),
}

impl BlockType {
    /// Result arity (0 or 1).
    pub fn arity(&self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }
}

/// Static offset/alignment immediate of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemArg {
    /// Alignment exponent (2^align bytes); a hint, not enforced.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// Zero offset, natural alignment for `width` bytes.
    pub fn natural(width: u32) -> Self {
        Self { align: width.trailing_zeros(), offset: 0 }
    }

    /// Given offset, alignment 0.
    pub fn offset(offset: u32) -> Self {
        Self { align: 0, offset }
    }
}

/// One WebAssembly instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ------------------------------------------------------------ control
    /// Trap unconditionally.
    Unreachable,
    /// Do nothing.
    Nop,
    /// A block: branches to it jump *forward* to its end.
    Block(BlockType, Vec<Instr>),
    /// A loop: branches to it jump *back* to its start.
    Loop(BlockType, Vec<Instr>),
    /// Two-armed conditional; the condition is popped as `i32`.
    If(BlockType, Vec<Instr>, Vec<Instr>),
    /// Unconditional branch to the `n`-th enclosing block.
    Br(u32),
    /// Conditional branch.
    BrIf(u32),
    /// Indexed branch: `(targets, default)`.
    BrTable(Vec<u32>, u32),
    /// Return from the current function.
    Return,
    /// Direct call by function index (imports precede module functions).
    Call(u32),

    // --------------------------------------------------------- parametric
    /// Pop and discard one value.
    Drop,
    /// Pop condition and two values, push one of them.
    Select,

    // ---------------------------------------------------------- variables
    /// Push a local.
    LocalGet(u32),
    /// Pop into a local.
    LocalSet(u32),
    /// Copy the top of stack into a local.
    LocalTee(u32),
    /// Push a global.
    GlobalGet(u32),
    /// Pop into a (mutable) global.
    GlobalSet(u32),

    // ------------------------------------------------------------- memory
    /// Load 4 bytes as `i32`.
    I32Load(MemArg),
    /// Load 8 bytes as `i64`.
    I64Load(MemArg),
    /// Load 4 bytes as `f32`.
    F32Load(MemArg),
    /// Load 8 bytes as `f64`.
    F64Load(MemArg),
    /// Load 1 byte, sign-extend to `i32`.
    I32Load8S(MemArg),
    /// Load 1 byte, zero-extend to `i32`.
    I32Load8U(MemArg),
    /// Load 2 bytes, sign-extend to `i32`.
    I32Load16S(MemArg),
    /// Load 2 bytes, zero-extend to `i32`.
    I32Load16U(MemArg),
    /// Load 1 byte, sign-extend to `i64`.
    I64Load8S(MemArg),
    /// Load 1 byte, zero-extend to `i64`.
    I64Load8U(MemArg),
    /// Load 2 bytes, sign-extend to `i64`.
    I64Load16S(MemArg),
    /// Load 2 bytes, zero-extend to `i64`.
    I64Load16U(MemArg),
    /// Load 4 bytes, sign-extend to `i64`.
    I64Load32S(MemArg),
    /// Load 4 bytes, zero-extend to `i64`.
    I64Load32U(MemArg),
    /// Store 4 bytes from `i32`.
    I32Store(MemArg),
    /// Store 8 bytes from `i64`.
    I64Store(MemArg),
    /// Store 4 bytes from `f32`.
    F32Store(MemArg),
    /// Store 8 bytes from `f64`.
    F64Store(MemArg),
    /// Store the low byte of `i32`.
    I32Store8(MemArg),
    /// Store the low 2 bytes of `i32`.
    I32Store16(MemArg),
    /// Store the low byte of `i64`.
    I64Store8(MemArg),
    /// Store the low 2 bytes of `i64`.
    I64Store16(MemArg),
    /// Store the low 4 bytes of `i64`.
    I64Store32(MemArg),
    /// Push the current memory size in pages.
    MemorySize,
    /// Grow memory by N pages; push previous size or -1.
    MemoryGrow,
    /// Bulk copy within linear memory (dst, src, len).
    MemoryCopy,
    /// Bulk fill of linear memory (dst, byte, len).
    MemoryFill,

    // ------------------------------------------------------------- consts
    /// Push a constant `i32`.
    I32Const(i32),
    /// Push a constant `i64`.
    I64Const(i64),
    /// Push a constant `f32`.
    F32Const(f32),
    /// Push a constant `f64`.
    F64Const(f64),

    // -------------------------------------------------- i32 comparisons
    /// `i32` equals zero.
    I32Eqz,
    /// `i32` equality.
    I32Eq,
    /// `i32` inequality.
    I32Ne,
    /// `i32` signed less-than.
    I32LtS,
    /// `i32` unsigned less-than.
    I32LtU,
    /// `i32` signed greater-than.
    I32GtS,
    /// `i32` unsigned greater-than.
    I32GtU,
    /// `i32` signed ≤.
    I32LeS,
    /// `i32` unsigned ≤.
    I32LeU,
    /// `i32` signed ≥.
    I32GeS,
    /// `i32` unsigned ≥.
    I32GeU,

    // -------------------------------------------------- i64 comparisons
    /// `i64` equals zero.
    I64Eqz,
    /// `i64` equality.
    I64Eq,
    /// `i64` inequality.
    I64Ne,
    /// `i64` signed less-than.
    I64LtS,
    /// `i64` unsigned less-than.
    I64LtU,
    /// `i64` signed greater-than.
    I64GtS,
    /// `i64` unsigned greater-than.
    I64GtU,
    /// `i64` signed ≤.
    I64LeS,
    /// `i64` unsigned ≤.
    I64LeU,
    /// `i64` signed ≥.
    I64GeS,
    /// `i64` unsigned ≥.
    I64GeU,

    // -------------------------------------------------- f32 comparisons
    /// `f32` equality.
    F32Eq,
    /// `f32` inequality.
    F32Ne,
    /// `f32` less-than.
    F32Lt,
    /// `f32` greater-than.
    F32Gt,
    /// `f32` ≤.
    F32Le,
    /// `f32` ≥.
    F32Ge,

    // -------------------------------------------------- f64 comparisons
    /// `f64` equality.
    F64Eq,
    /// `f64` inequality.
    F64Ne,
    /// `f64` less-than.
    F64Lt,
    /// `f64` greater-than.
    F64Gt,
    /// `f64` ≤.
    F64Le,
    /// `f64` ≥.
    F64Ge,

    // ---------------------------------------------------- i32 arithmetic
    /// Count leading zeros.
    I32Clz,
    /// Count trailing zeros.
    I32Ctz,
    /// Population count.
    I32Popcnt,
    /// Wrapping addition.
    I32Add,
    /// Wrapping subtraction.
    I32Sub,
    /// Wrapping multiplication.
    I32Mul,
    /// Signed division (traps on /0 and overflow).
    I32DivS,
    /// Unsigned division (traps on /0).
    I32DivU,
    /// Signed remainder (traps on /0).
    I32RemS,
    /// Unsigned remainder (traps on /0).
    I32RemU,
    /// Bitwise and.
    I32And,
    /// Bitwise or.
    I32Or,
    /// Bitwise xor.
    I32Xor,
    /// Shift left.
    I32Shl,
    /// Arithmetic shift right.
    I32ShrS,
    /// Logical shift right.
    I32ShrU,
    /// Rotate left.
    I32Rotl,
    /// Rotate right.
    I32Rotr,

    // ---------------------------------------------------- i64 arithmetic
    /// Count leading zeros.
    I64Clz,
    /// Count trailing zeros.
    I64Ctz,
    /// Population count.
    I64Popcnt,
    /// Wrapping addition.
    I64Add,
    /// Wrapping subtraction.
    I64Sub,
    /// Wrapping multiplication.
    I64Mul,
    /// Signed division (traps on /0 and overflow).
    I64DivS,
    /// Unsigned division (traps on /0).
    I64DivU,
    /// Signed remainder (traps on /0).
    I64RemS,
    /// Unsigned remainder (traps on /0).
    I64RemU,
    /// Bitwise and.
    I64And,
    /// Bitwise or.
    I64Or,
    /// Bitwise xor.
    I64Xor,
    /// Shift left.
    I64Shl,
    /// Arithmetic shift right.
    I64ShrS,
    /// Logical shift right.
    I64ShrU,
    /// Rotate left.
    I64Rotl,
    /// Rotate right.
    I64Rotr,

    // ---------------------------------------------------- f32 arithmetic
    /// Absolute value.
    F32Abs,
    /// Negation.
    F32Neg,
    /// Round up.
    F32Ceil,
    /// Round down.
    F32Floor,
    /// Round toward zero.
    F32Trunc,
    /// Round to nearest even.
    F32Nearest,
    /// Square root.
    F32Sqrt,
    /// Addition.
    F32Add,
    /// Subtraction.
    F32Sub,
    /// Multiplication.
    F32Mul,
    /// Division.
    F32Div,
    /// Minimum (NaN-propagating).
    F32Min,
    /// Maximum (NaN-propagating).
    F32Max,
    /// Copy sign.
    F32Copysign,

    // ---------------------------------------------------- f64 arithmetic
    /// Absolute value.
    F64Abs,
    /// Negation.
    F64Neg,
    /// Round up.
    F64Ceil,
    /// Round down.
    F64Floor,
    /// Round toward zero.
    F64Trunc,
    /// Round to nearest even.
    F64Nearest,
    /// Square root.
    F64Sqrt,
    /// Addition.
    F64Add,
    /// Subtraction.
    F64Sub,
    /// Multiplication.
    F64Mul,
    /// Division.
    F64Div,
    /// Minimum (NaN-propagating).
    F64Min,
    /// Maximum (NaN-propagating).
    F64Max,
    /// Copy sign.
    F64Copysign,

    // --------------------------------------------------------- conversions
    /// Truncate `i64` to `i32`.
    I32WrapI64,
    /// `f32` → `i32` signed (traps on NaN/overflow).
    I32TruncF32S,
    /// `f32` → `i32` unsigned (traps on NaN/overflow).
    I32TruncF32U,
    /// `f64` → `i32` signed (traps on NaN/overflow).
    I32TruncF64S,
    /// `f64` → `i32` unsigned (traps on NaN/overflow).
    I32TruncF64U,
    /// Sign-extend `i32` to `i64`.
    I64ExtendI32S,
    /// Zero-extend `i32` to `i64`.
    I64ExtendI32U,
    /// `f32` → `i64` signed (traps on NaN/overflow).
    I64TruncF32S,
    /// `f32` → `i64` unsigned (traps on NaN/overflow).
    I64TruncF32U,
    /// `f64` → `i64` signed (traps on NaN/overflow).
    I64TruncF64S,
    /// `f64` → `i64` unsigned (traps on NaN/overflow).
    I64TruncF64U,
    /// `i32` signed → `f32`.
    F32ConvertI32S,
    /// `i32` unsigned → `f32`.
    F32ConvertI32U,
    /// `i64` signed → `f32`.
    F32ConvertI64S,
    /// `i64` unsigned → `f32`.
    F32ConvertI64U,
    /// `f64` → `f32`.
    F32DemoteF64,
    /// `i32` signed → `f64`.
    F64ConvertI32S,
    /// `i32` unsigned → `f64`.
    F64ConvertI32U,
    /// `i64` signed → `f64`.
    F64ConvertI64S,
    /// `i64` unsigned → `f64`.
    F64ConvertI64U,
    /// `f32` → `f64`.
    F64PromoteF32,
    /// Bit-cast `f32` → `i32`.
    I32ReinterpretF32,
    /// Bit-cast `f64` → `i64`.
    I64ReinterpretF64,
    /// Bit-cast `i32` → `f32`.
    F32ReinterpretI32,
    /// Bit-cast `i64` → `f64`.
    F64ReinterpretI64,
}

impl Instr {
    /// Counts this instruction plus all instructions nested inside it —
    /// used by module statistics and fuel estimation.
    pub fn size(&self) -> usize {
        match self {
            Instr::Block(_, body) | Instr::Loop(_, body) => {
                1 + body.iter().map(Instr::size).sum::<usize>()
            }
            Instr::If(_, then, els) => {
                1 + then.iter().map(Instr::size).sum::<usize>()
                    + els.iter().map(Instr::size).sum::<usize>()
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_nested_instructions() {
        let i = Instr::Block(
            BlockType::Empty,
            vec![
                Instr::I32Const(1),
                Instr::If(
                    BlockType::Empty,
                    vec![Instr::Nop, Instr::Nop],
                    vec![Instr::Unreachable],
                ),
            ],
        );
        assert_eq!(i.size(), 6);
        assert_eq!(Instr::Nop.size(), 1);
    }

    #[test]
    fn block_type_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::I64).arity(), 1);
    }

    #[test]
    fn memarg_constructors() {
        assert_eq!(MemArg::natural(4).align, 2);
        assert_eq!(MemArg::natural(8).align, 3);
        assert_eq!(MemArg::offset(16).offset, 16);
        assert_eq!(MemArg::default().offset, 0);
    }
}
