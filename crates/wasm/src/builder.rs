//! Programmatic module construction.
//!
//! The paper compiles Rust guests to Wasm with a toolchain; this
//! reproduction has no compiler, so [`ModuleBuilder`] plays that role:
//! examples and benchmarks assemble their guest functions directly from
//! typed instructions, then encode them to real binaries.
//!
//! ```
//! use roadrunner_wasm::{Instr, ModuleBuilder};
//! use roadrunner_wasm::types::{FuncType, ValType};
//!
//! # fn main() -> Result<(), roadrunner_wasm::validate::ValidationError> {
//! let module = ModuleBuilder::new()
//!     .memory(1, Some(16))
//!     .func(
//!         FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
//!         [],
//!         [Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add],
//!     )
//!     .export_func("add", 0)
//!     .build()?;
//! assert!(module.export("add").is_some());
//! # Ok(())
//! # }
//! ```

use crate::instr::Instr;
use crate::module::{DataSegment, Export, ExportKind, FuncDef, GlobalDef, Import, Module};
use crate::types::{FuncType, Limits, ValType, Value};
use crate::validate::{validate, ValidationError};

/// Consuming builder for [`Module`]s.
#[derive(Debug, Default, Clone)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(pos) = self.module.types.iter().position(|t| *t == ty) {
            return pos as u32;
        }
        self.module.types.push(ty);
        (self.module.types.len() - 1) as u32
    }

    /// Declares an imported host function and returns its index in the
    /// function index space.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ModuleBuilder::func`] — imports occupy the
    /// leading indices, so they must be declared first.
    pub fn import_func(
        mut self,
        module: impl Into<String>,
        name: impl Into<String>,
        ty: FuncType,
    ) -> Self {
        assert!(
            self.module.funcs.is_empty(),
            "imports must be declared before module functions"
        );
        let type_idx = self.intern_type(ty);
        self.module.imports.push(Import { module: module.into(), name: name.into(), type_idx });
        self
    }

    /// Index the *next* declared function will receive (imports included).
    pub fn next_func_index(&self) -> u32 {
        (self.module.imports.len() + self.module.funcs.len()) as u32
    }

    /// Defines a function; returns the builder for chaining. The function
    /// occupies index [`ModuleBuilder::next_func_index`] at the time of
    /// the call.
    pub fn func(
        mut self,
        ty: FuncType,
        locals: impl IntoIterator<Item = ValType>,
        body: impl IntoIterator<Item = Instr>,
    ) -> Self {
        let type_idx = self.intern_type(ty);
        self.module.funcs.push(FuncDef {
            type_idx,
            locals: locals.into_iter().collect(),
            body: body.into_iter().collect(),
        });
        self
    }

    /// Declares the module's linear memory in 64 KiB pages.
    pub fn memory(mut self, min_pages: u32, max_pages: Option<u32>) -> Self {
        self.module.memory = Some(Limits::new(min_pages, max_pages));
        self
    }

    /// Declares a global with a constant initializer.
    pub fn global(mut self, ty: ValType, mutable: bool, init: Value) -> Self {
        self.module.globals.push(GlobalDef { ty, mutable, init });
        self
    }

    /// Exports the function at `func_idx` (imports included) as `name`.
    pub fn export_func(mut self, name: impl Into<String>, func_idx: u32) -> Self {
        self.module.exports.push(Export { name: name.into(), kind: ExportKind::Func(func_idx) });
        self
    }

    /// Exports the linear memory as `name`.
    pub fn export_memory(mut self, name: impl Into<String>) -> Self {
        self.module.exports.push(Export { name: name.into(), kind: ExportKind::Memory });
        self
    }

    /// Exports the global at `global_idx` as `name`.
    pub fn export_global(mut self, name: impl Into<String>, global_idx: u32) -> Self {
        self.module
            .exports
            .push(Export { name: name.into(), kind: ExportKind::Global(global_idx) });
        self
    }

    /// Adds an active data segment placed at `offset` on instantiation.
    pub fn data(mut self, offset: u32, bytes: Vec<u8>) -> Self {
        self.module.data.push(DataSegment { offset, bytes });
        self
    }

    /// Sets the start function.
    pub fn start(mut self, func_idx: u32) -> Self {
        self.module.start = Some(func_idx);
        self
    }

    /// Validates and returns the module.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError`] if the module is ill-typed or refers to
    /// out-of-range indices.
    pub fn build(self) -> Result<Module, ValidationError> {
        validate(&self.module)?;
        Ok(self.module)
    }

    /// Returns the module without validating — for tests that need to
    /// construct invalid modules on purpose.
    pub fn build_unchecked(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_deduplicated() {
        let sig = FuncType::new([ValType::I32], [ValType::I32]);
        let m = ModuleBuilder::new()
            .func(sig.clone(), [], [Instr::LocalGet(0)])
            .func(sig, [], [Instr::LocalGet(0)])
            .build()
            .unwrap();
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.funcs.len(), 2);
    }

    #[test]
    fn import_indices_precede_function_indices() {
        let b = ModuleBuilder::new()
            .import_func("env", "h", FuncType::new([], []));
        assert_eq!(b.next_func_index(), 1);
        let m = b
            .func(FuncType::new([], []), [], [])
            .export_func("f", 1)
            .build()
            .unwrap();
        assert_eq!(m.func_count(), 2);
        assert_eq!(m.imports.len(), 1);
    }

    #[test]
    #[should_panic(expected = "imports must be declared before")]
    fn import_after_func_panics() {
        let _ = ModuleBuilder::new()
            .func(FuncType::new([], []), [], [])
            .import_func("env", "h", FuncType::new([], []));
    }

    #[test]
    fn build_validates() {
        // Body returns nothing but signature promises an i32.
        let err = ModuleBuilder::new()
            .func(FuncType::new([], [ValType::I32]), [], [])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("func"));
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let m = ModuleBuilder::new()
            .func(FuncType::new([], [ValType::I32]), [], [])
            .build_unchecked();
        assert_eq!(m.funcs.len(), 1);
    }
}
