//! Engine-wide execution limits.

/// Resource limits enforced by the engine, independent of what a module
/// declares. The shim sets these per function at deployment time (paper
/// §3.2.5: "configures the Wasm runtime, which includes setting resource
/// limits such as memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineLimits {
    /// Hard cap on linear memory, in 64 KiB pages. Default is 16 Ki pages
    /// = 1 GiB, enough for the paper's 500 MB payloads plus headroom.
    pub max_memory_pages: u32,
    /// Maximum nested call depth before [`crate::Trap::StackOverflow`].
    pub max_call_depth: usize,
    /// Initial fuel (instructions the instance may execute); `None`
    /// disables metering.
    pub initial_fuel: Option<u64>,
}

impl EngineLimits {
    /// Defaults: 1 GiB memory, depth 512, unmetered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the memory cap in pages.
    pub fn with_max_memory_pages(mut self, pages: u32) -> Self {
        self.max_memory_pages = pages;
        self
    }

    /// Sets the call-depth cap.
    pub fn with_max_call_depth(mut self, depth: usize) -> Self {
        self.max_call_depth = depth;
        self
    }

    /// Enables fuel metering with the given budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.initial_fuel = Some(fuel);
        self
    }
}

impl Default for EngineLimits {
    fn default() -> Self {
        Self { max_memory_pages: 16 * 1024, max_call_depth: 512, initial_fuel: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = EngineLimits::default();
        assert_eq!(l.max_memory_pages, 16 * 1024);
        assert!(l.initial_fuel.is_none());
    }

    #[test]
    fn builder_methods_chain() {
        let l = EngineLimits::new()
            .with_max_memory_pages(8)
            .with_max_call_depth(10)
            .with_fuel(1000);
        assert_eq!(l.max_memory_pages, 8);
        assert_eq!(l.max_call_depth, 10);
        assert_eq!(l.initial_fuel, Some(1000));
    }
}
