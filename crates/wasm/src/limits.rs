//! Engine-wide execution limits and tier selection.

use std::sync::OnceLock;

/// Which interpreter executes function bodies.
///
/// Both tiers are trap-, fuel- and `instr_count`-identical; they differ
/// only in speed. See `crates/wasm/tests/interp_differential.rs` for the
/// property suite holding them equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// Flat pre-compiled bytecode run by a program-counter dispatch loop
    /// with a reusable frame arena — the fast default.
    #[default]
    Compiled,
    /// The original tree walker over the `Instr` AST, kept as the
    /// differential-testing reference path.
    Reference,
}

/// Process-wide tier default: `ROADRUNNER_EXEC_TIER=reference` selects
/// the tree walker (for byte-identity gates and A/B runs without code
/// changes); anything else — including unset — selects `Compiled`.
/// Read once and cached for the life of the process.
fn env_default_tier() -> ExecTier {
    static TIER: OnceLock<ExecTier> = OnceLock::new();
    *TIER.get_or_init(|| match std::env::var("ROADRUNNER_EXEC_TIER").as_deref() {
        Ok("reference") | Ok("tree") => ExecTier::Reference,
        _ => ExecTier::Compiled,
    })
}

/// Resource limits enforced by the engine, independent of what a module
/// declares. The shim sets these per function at deployment time (paper
/// §3.2.5: "configures the Wasm runtime, which includes setting resource
/// limits such as memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineLimits {
    /// Hard cap on linear memory, in 64 KiB pages. Default is 16 Ki pages
    /// = 1 GiB, enough for the paper's 500 MB payloads plus headroom.
    pub max_memory_pages: u32,
    /// Maximum nested call depth before [`crate::Trap::StackOverflow`].
    pub max_call_depth: usize,
    /// Initial fuel (instructions the instance may execute); `None`
    /// disables metering.
    pub initial_fuel: Option<u64>,
    /// Which interpreter tier runs this instance's code.
    pub exec_tier: ExecTier,
}

impl EngineLimits {
    /// Defaults: 1 GiB memory, depth 512, unmetered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the memory cap in pages.
    pub fn with_max_memory_pages(mut self, pages: u32) -> Self {
        self.max_memory_pages = pages;
        self
    }

    /// Sets the call-depth cap.
    pub fn with_max_call_depth(mut self, depth: usize) -> Self {
        self.max_call_depth = depth;
        self
    }

    /// Enables fuel metering with the given budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.initial_fuel = Some(fuel);
        self
    }

    /// Selects the interpreter tier (overriding the
    /// `ROADRUNNER_EXEC_TIER` process default).
    pub fn with_exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self
    }
}

impl Default for EngineLimits {
    fn default() -> Self {
        Self {
            max_memory_pages: 16 * 1024,
            max_call_depth: 512,
            initial_fuel: None,
            exec_tier: env_default_tier(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = EngineLimits::default();
        assert_eq!(l.max_memory_pages, 16 * 1024);
        assert!(l.initial_fuel.is_none());
    }

    #[test]
    fn builder_methods_chain() {
        let l = EngineLimits::new()
            .with_max_memory_pages(8)
            .with_max_call_depth(10)
            .with_fuel(1000)
            .with_exec_tier(ExecTier::Reference);
        assert_eq!(l.max_memory_pages, 8);
        assert_eq!(l.max_call_depth, 10);
        assert_eq!(l.initial_fuel, Some(1000));
        assert_eq!(l.exec_tier, ExecTier::Reference);
    }

    #[test]
    fn compiled_is_the_tier_default() {
        assert_eq!(ExecTier::default(), ExecTier::Compiled);
    }
}
