//! The interpreters: a flat-bytecode dispatch loop and the original tree
//! walker.
//!
//! Two tiers execute validated function bodies (selected by
//! [`crate::limits::ExecTier`]):
//!
//! * [`Exec::run_flat`] — the default. Runs the pre-compiled flat
//!   bytecode from [`crate::compile`] with a single program-counter
//!   dispatch loop, one shared operand stack for every frame's
//!   params/locals/operands, and an explicit frame arena ([`Machine`],
//!   reused across invocations) — no per-call `Vec` allocation and no
//!   Rust recursion for wasm→wasm calls.
//! * [`Exec::call_function`] — the reference tree walker, executing the
//!   structured [`Instr`] AST directly. Kept for differential testing.
//!
//! Both tiers share one contract: traps, fuel accounting and
//! `instr_count` are **bit-identical**. Because validation has proven
//! stack discipline, operand pops use infallible accessors; all *dynamic*
//! failure modes (memory bounds, division, fuel, call depth, host errors)
//! surface as [`Trap`]s.

use std::any::Any;
use std::sync::Arc;

use crate::compile::{CompiledModule, I32Bin, Jump, Op};
use crate::host::{Caller, HostFunc};
use crate::instr::Instr;
use crate::memory::Memory;
use crate::module::Module;
use crate::trap::Trap;
use crate::types::Value;

/// Reusable execution state for the flat tier, owned by an
/// [`crate::Instance`]. Buffers are cleared (not freed) between
/// invocations, so steady-state calls allocate nothing but their result
/// `Vec`.
#[derive(Debug, Default)]
pub(crate) struct Machine {
    /// One shared value stack: each frame's `[params+locals][operands]`
    /// live contiguously, callee frames above their caller's.
    stack: Vec<Value>,
    /// One entry per active call — the "frame arena" replacing Rust
    /// recursion. `frames.len()` is the live call depth.
    frames: Vec<Frame>,
}

/// Bookkeeping for one active call in the flat tier.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Defined-function index (imports excluded) of the running function.
    func: u32,
    /// Program counter in the *caller* to resume on return.
    ret_pc: u32,
    /// Stack index where this frame's params+locals start.
    locals_base: u32,
    /// Stack index where this frame's operands start
    /// (`locals_base + frame_size`); branch heights are relative to it.
    operand_base: u32,
}

/// Control-flow signal produced by a block of instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Fell through the end of the sequence.
    Normal,
    /// Branching to the n-th enclosing label.
    Branch(u32),
    /// Returning from the current function.
    Return,
}

/// Mutable execution context borrowing the instance's parts.
pub(crate) struct Exec<'a> {
    pub module: &'a Arc<Module>,
    pub memory: &'a mut Option<Memory>,
    pub globals: &'a mut [Value],
    pub host_funcs: &'a [HostFunc],
    pub host_data: &'a mut Box<dyn Any + Send>,
    pub fuel: &'a mut Option<u64>,
    pub instr_count: &'a mut u64,
    pub max_call_depth: usize,
}

impl<'a> Exec<'a> {
    /// Calls the function at `func_idx` (imports first) with `args` on
    /// the reference tree-walking tier.
    pub fn call_function(
        &mut self,
        func_idx: u32,
        args: &[Value],
        depth: usize,
    ) -> Result<Vec<Value>, Trap> {
        let mut stack: Vec<Value> = Vec::with_capacity(args.len().max(16));
        stack.extend_from_slice(args);
        self.call_into(func_idx, &mut stack, depth)?;
        // call_into consumed the arguments and left exactly the results.
        Ok(stack)
    }

    /// Calls the function at `func_idx`, taking its arguments from the
    /// top of `stack` and leaving its results there — the no-allocation
    /// call path: host calls see a borrowed argument slice, wasm calls
    /// share the caller's operand stack instead of splitting off a fresh
    /// `Vec` per call.
    fn call_into(
        &mut self,
        func_idx: u32,
        stack: &mut Vec<Value>,
        depth: usize,
    ) -> Result<(), Trap> {
        if depth >= self.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        let imports = self.module.imports.len();
        if (func_idx as usize) < imports {
            let params =
                self.module.types[self.module.imports[func_idx as usize].type_idx as usize]
                    .params()
                    .len();
            let split = stack.len() - params;
            let f = Arc::clone(&self.host_funcs[func_idx as usize]);
            let caller = Caller::new(self.memory.as_mut(), self.host_data.as_mut());
            let results = f(caller, &stack[split..])?;
            stack.truncate(split);
            stack.extend_from_slice(&results);
            return Ok(());
        }
        let module = Arc::clone(self.module);
        let def = &module.funcs[func_idx as usize - imports];
        let ty = &module.types[def.type_idx as usize];
        let params = ty.params().len();
        let height = stack.len() - params;
        let mut locals: Vec<Value> = Vec::with_capacity(params + def.locals.len());
        locals.extend_from_slice(&stack[height..]);
        locals.extend(def.locals.iter().map(|&t| Value::zero(t)));
        stack.truncate(height);
        self.run_seq(&def.body, stack, &mut locals, depth)?;
        // On fall-through or return, the top `arity` values are the
        // results (validation guarantees presence and types); anything
        // the body left beneath them is dropped.
        let arity = ty.results().len();
        stack.drain(height..stack.len() - arity);
        Ok(())
    }

    /// Calls the function at `func_idx` (imports first) with `args` on
    /// the flat-bytecode tier, reusing `mach`'s stack and frame arena.
    ///
    /// Trap behavior, fuel accounting and `instr_count` are bit-identical
    /// to [`Exec::call_function`]; only the execution strategy differs.
    pub fn run_flat(
        &mut self,
        mach: &mut Machine,
        code: &CompiledModule,
        func_idx: u32,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        // Mirrors the tree walker's entry depth check (depth 0).
        if self.max_call_depth == 0 {
            return Err(Trap::StackOverflow);
        }
        let imports = self.module.imports.len();
        if (func_idx as usize) < imports {
            let f = Arc::clone(&self.host_funcs[func_idx as usize]);
            let caller = Caller::new(self.memory.as_mut(), self.host_data.as_mut());
            return f(caller, args);
        }
        mach.stack.clear();
        mach.frames.clear();
        // Fuel and the instruction counter run in locals and are flushed
        // on every exit path; nothing can observe them mid-run. The
        // dispatch loop is monomorphized over metering so the unmetered
        // hot path carries no fuel bookkeeping at all.
        let metered = self.fuel.is_some();
        let mut fuel_left = self.fuel.unwrap_or(0);
        let mut count = 0u64;
        let entry = func_idx as usize - imports;
        let result = if metered {
            self.dispatch::<true>(
                &mut mach.stack,
                &mut mach.frames,
                code,
                entry,
                args,
                &mut count,
                &mut fuel_left,
            )
        } else {
            self.dispatch::<false>(
                &mut mach.stack,
                &mut mach.frames,
                code,
                entry,
                args,
                &mut count,
                &mut fuel_left,
            )
        };
        *self.instr_count += count;
        if metered {
            *self.fuel = Some(fuel_left);
        }
        result
    }

    /// The program-counter dispatch loop over flat [`Op`] code.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<const METERED: bool>(
        &mut self,
        stack: &mut Vec<Value>,
        frames: &mut Vec<Frame>,
        code: &CompiledModule,
        entry: usize,
        args: &[Value],
        count: &mut u64,
        fuel_left: &mut u64,
    ) -> Result<Vec<Value>, Trap> {
        let ef = &code.funcs[entry];
        stack.extend_from_slice(args);
        for &t in ef.locals.iter() {
            stack.push(Value::zero(t));
        }
        frames.push(Frame {
            func: entry as u32,
            ret_pc: 0,
            locals_base: 0,
            operand_base: ef.frame_size,
        });
        let mut func = entry;
        let mut pc = 0usize;
        let mut lbase = 0usize;
        let mut obase = ef.frame_size as usize;

        'call: loop {
            let body: &[Op] = &code.funcs[func].code;
            loop {
                let op = &body[pc];
                pc += 1;
                // Synthetic ops first: they have no tree-walker
                // counterpart and must not count or burn fuel.
                match op {
                    Op::Goto(target) => {
                        pc = *target as usize;
                        continue;
                    }
                    Op::FnEnd => {
                        // Fall-through (or jumped-to) function end: move
                        // the results down over the frame and resume the
                        // caller.
                        let arity = code.funcs[func].ret_arity as usize;
                        let frame = frames.pop().expect("active frame");
                        let dst = frame.locals_base as usize;
                        let src = stack.len() - arity;
                        stack.copy_within(src.., dst);
                        stack.truncate(dst + arity);
                        if let Some(top) = frames.last() {
                            func = top.func as usize;
                            pc = frame.ret_pc as usize;
                            lbase = top.locals_base as usize;
                            obase = top.operand_base as usize;
                            continue 'call;
                        }
                        return Ok(stack.split_off(0));
                    }
                    _ => {}
                }
                *count += 1;
                if METERED {
                    if *fuel_left == 0 {
                        return Err(Trap::FuelExhausted);
                    }
                    *fuel_left -= 1;
                }
                match op {
                    Op::Goto(_) | Op::FnEnd => unreachable!("handled uncounted above"),
                    Op::Unreachable => return Err(Trap::Unreachable),
                    Op::Nop | Op::Enter => {}
                    Op::IfElse(els) => {
                        if pop_i32(stack) == 0 {
                            pc = *els as usize;
                        }
                    }
                    Op::Br(jump) => pc = take_branch(stack, obase, jump),
                    Op::BrIf(jump) => {
                        if pop_i32(stack) != 0 {
                            pc = take_branch(stack, obase, jump);
                        }
                    }
                    Op::BrTable(table) => {
                        let idx = pop_i32(stack) as u32 as usize;
                        let jump = table.targets.get(idx).unwrap_or(&table.default);
                        pc = take_branch(stack, obase, jump);
                    }
                    // Return jumps to the trailing FnEnd, which performs
                    // the actual frame pop (uncounted, like the tree
                    // walker's `Flow::Return` propagation).
                    Op::Return => pc = body.len() - 1,
                    Op::Call(callee) => {
                        if frames.len() >= self.max_call_depth {
                            return Err(Trap::StackOverflow);
                        }
                        let cf = &code.funcs[*callee as usize];
                        let locals_base = stack.len() - cf.params as usize;
                        for &t in cf.locals.iter() {
                            stack.push(Value::zero(t));
                        }
                        frames.push(Frame {
                            func: *callee,
                            ret_pc: pc as u32,
                            locals_base: locals_base as u32,
                            operand_base: (locals_base + cf.frame_size as usize) as u32,
                        });
                        func = *callee as usize;
                        pc = 0;
                        lbase = locals_base;
                        obase = locals_base + cf.frame_size as usize;
                        continue 'call;
                    }
                    Op::CallHost { func: host_idx, params } => {
                        if frames.len() >= self.max_call_depth {
                            return Err(Trap::StackOverflow);
                        }
                        let split = stack.len() - *params as usize;
                        let f = Arc::clone(&self.host_funcs[*host_idx as usize]);
                        let caller = Caller::new(self.memory.as_mut(), self.host_data.as_mut());
                        let results = f(caller, &stack[split..])?;
                        stack.truncate(split);
                        stack.extend_from_slice(&results);
                    }
                    Op::Drop => {
                        stack.pop().expect("validated drop");
                    }
                    Op::Select => {
                        let cond = pop_i32(stack);
                        let b = stack.pop().expect("validated select");
                        let a = stack.pop().expect("validated select");
                        stack.push(if cond != 0 { a } else { b });
                    }
                    Op::LocalGet(i) => {
                        let v = stack[lbase + *i as usize];
                        stack.push(v);
                    }
                    Op::LocalSet(i) => {
                        stack[lbase + *i as usize] =
                            stack.pop().expect("validated local.set");
                    }
                    Op::LocalTee(i) => {
                        stack[lbase + *i as usize] =
                            *stack.last().expect("validated local.tee");
                    }
                    Op::GlobalGet(i) => stack.push(self.globals[*i as usize]),
                    Op::GlobalSet(i) => {
                        self.globals[*i as usize] =
                            stack.pop().expect("validated global.set")
                    }

                    // ------------------------- fused superinstructions
                    // Each charges its remaining group size on top of
                    // the 1 the prelude already counted.
                    Op::I32BinLLSet { op, a, b, dst } => {
                        charge::<METERED>(count, fuel_left, 3)?;
                        let x = loc_i32(stack, lbase, *a);
                        let y = loc_i32(stack, lbase, *b);
                        stack[lbase + *dst as usize] = Value::I32(i32_bin_eval(*op, x, y));
                    }
                    Op::I32BinLCSet { op, a, c, dst } => {
                        charge::<METERED>(count, fuel_left, 3)?;
                        let x = loc_i32(stack, lbase, *a);
                        stack[lbase + *dst as usize] = Value::I32(i32_bin_eval(*op, x, *c));
                    }
                    Op::I32BinTLSet { op, a, dst } => {
                        charge::<METERED>(count, fuel_left, 2)?;
                        let t = pop_i32(stack);
                        let y = loc_i32(stack, lbase, *a);
                        stack[lbase + *dst as usize] = Value::I32(i32_bin_eval(*op, t, y));
                    }
                    Op::I32BinTCSet { op, c, dst } => {
                        charge::<METERED>(count, fuel_left, 2)?;
                        let t = pop_i32(stack);
                        stack[lbase + *dst as usize] = Value::I32(i32_bin_eval(*op, t, *c));
                    }
                    Op::I32BinLL { op, a, b } => {
                        charge::<METERED>(count, fuel_left, 2)?;
                        let x = loc_i32(stack, lbase, *a);
                        let y = loc_i32(stack, lbase, *b);
                        stack.push(Value::I32(i32_bin_eval(*op, x, y)));
                    }
                    Op::I32BinLC { op, a, c } => {
                        charge::<METERED>(count, fuel_left, 2)?;
                        let x = loc_i32(stack, lbase, *a);
                        stack.push(Value::I32(i32_bin_eval(*op, x, *c)));
                    }
                    Op::I32BinTL { op, a } => {
                        charge::<METERED>(count, fuel_left, 1)?;
                        let t = pop_i32(stack);
                        let y = loc_i32(stack, lbase, *a);
                        stack.push(Value::I32(i32_bin_eval(*op, t, y)));
                    }
                    Op::I32BinTC { op, c } => {
                        charge::<METERED>(count, fuel_left, 1)?;
                        let t = pop_i32(stack);
                        stack.push(Value::I32(i32_bin_eval(*op, t, *c)));
                    }
                    Op::LocalCopy { src, dst } => {
                        charge::<METERED>(count, fuel_left, 1)?;
                        let v = stack[lbase + *src as usize];
                        stack[lbase + *dst as usize] = v;
                    }
                    Op::I32ConstSet { c, dst } => {
                        charge::<METERED>(count, fuel_left, 1)?;
                        stack[lbase + *dst as usize] = Value::I32(*c);
                    }
                    Op::BrIfBinLL(f) => {
                        charge::<METERED>(count, fuel_left, 3)?;
                        let x = loc_i32(stack, lbase, f.a);
                        let y = loc_i32(stack, lbase, f.b);
                        if i32_bin_eval(f.op, x, y) != 0 {
                            pc = take_branch(stack, obase, &f.jump);
                        }
                    }
                    Op::BrIfBinLC(f) => {
                        charge::<METERED>(count, fuel_left, 3)?;
                        let x = loc_i32(stack, lbase, f.a);
                        if i32_bin_eval(f.op, x, f.c) != 0 {
                            pc = take_branch(stack, obase, &f.jump);
                        }
                    }

                    // --------------------------------------------- memory
                    Op::I32Load(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<4>(a, *off)?;
                        stack.push(Value::I32(i32::from_le_bytes(raw)));
                    }
                    Op::I64Load(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<8>(a, *off)?;
                        stack.push(Value::I64(i64::from_le_bytes(raw)));
                    }
                    Op::F32Load(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<4>(a, *off)?;
                        stack.push(Value::F32(f32::from_le_bytes(raw)));
                    }
                    Op::F64Load(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<8>(a, *off)?;
                        stack.push(Value::F64(f64::from_le_bytes(raw)));
                    }
                    Op::I32Load8S(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<1>(a, *off)?;
                        stack.push(Value::I32(raw[0] as i8 as i32));
                    }
                    Op::I32Load8U(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<1>(a, *off)?;
                        stack.push(Value::I32(raw[0] as i32));
                    }
                    Op::I32Load16S(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<2>(a, *off)?;
                        stack.push(Value::I32(i16::from_le_bytes(raw) as i32));
                    }
                    Op::I32Load16U(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<2>(a, *off)?;
                        stack.push(Value::I32(u16::from_le_bytes(raw) as i32));
                    }
                    Op::I64Load8S(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<1>(a, *off)?;
                        stack.push(Value::I64(raw[0] as i8 as i64));
                    }
                    Op::I64Load8U(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<1>(a, *off)?;
                        stack.push(Value::I64(raw[0] as i64));
                    }
                    Op::I64Load16S(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<2>(a, *off)?;
                        stack.push(Value::I64(i16::from_le_bytes(raw) as i64));
                    }
                    Op::I64Load16U(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<2>(a, *off)?;
                        stack.push(Value::I64(u16::from_le_bytes(raw) as i64));
                    }
                    Op::I64Load32S(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<4>(a, *off)?;
                        stack.push(Value::I64(i32::from_le_bytes(raw) as i64));
                    }
                    Op::I64Load32U(off) => {
                        let a = pop_addr(stack);
                        let raw = self.mem()?.load::<4>(a, *off)?;
                        stack.push(Value::I64(u32::from_le_bytes(raw) as i64));
                    }
                    Op::I32Store(off) => {
                        let v = pop_i32(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<4>(a, *off, v.to_le_bytes())?;
                    }
                    Op::I64Store(off) => {
                        let v = pop_i64(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<8>(a, *off, v.to_le_bytes())?;
                    }
                    Op::F32Store(off) => {
                        let v = pop_f32(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<4>(a, *off, v.to_le_bytes())?;
                    }
                    Op::F64Store(off) => {
                        let v = pop_f64(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<8>(a, *off, v.to_le_bytes())?;
                    }
                    Op::I32Store8(off) => {
                        let v = pop_i32(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<1>(a, *off, [v as u8])?;
                    }
                    Op::I32Store16(off) => {
                        let v = pop_i32(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<2>(a, *off, (v as u16).to_le_bytes())?;
                    }
                    Op::I64Store8(off) => {
                        let v = pop_i64(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<1>(a, *off, [v as u8])?;
                    }
                    Op::I64Store16(off) => {
                        let v = pop_i64(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<2>(a, *off, (v as u16).to_le_bytes())?;
                    }
                    Op::I64Store32(off) => {
                        let v = pop_i64(stack);
                        let a = pop_addr(stack);
                        self.mem()?.store::<4>(a, *off, (v as u32).to_le_bytes())?;
                    }
                    Op::MemorySize => {
                        let pages = self.mem()?.size_pages();
                        stack.push(Value::I32(pages as i32));
                    }
                    Op::MemoryGrow => {
                        let delta = pop_i32(stack) as u32;
                        let result = match self.mem()?.grow(delta) {
                            Some(prev) => prev as i32,
                            None => -1,
                        };
                        stack.push(Value::I32(result));
                    }
                    Op::MemoryCopy => {
                        let len = pop_i32(stack) as u32;
                        let src = pop_addr(stack);
                        let dst = pop_addr(stack);
                        self.mem()?.copy_within(dst, src, len)?;
                    }
                    Op::MemoryFill => {
                        let len = pop_i32(stack) as u32;
                        let byte = pop_i32(stack) as u8;
                        let dst = pop_addr(stack);
                        self.mem()?.fill(dst, byte, len)?;
                    }

                    // --------------------------------------------- consts
                    Op::I32Const(v) => stack.push(Value::I32(*v)),
                    Op::I64Const(v) => stack.push(Value::I64(*v)),
                    Op::F32Const(v) => stack.push(Value::F32(*v)),
                    Op::F64Const(v) => stack.push(Value::F64(*v)),

                    // ----------------------------------- i32 test/compare
                    Op::I32Eqz => un_i32(stack, |a| (a == 0) as i32),
                    Op::I32Eq => cmp_i32(stack, |a, b| a == b),
                    Op::I32Ne => cmp_i32(stack, |a, b| a != b),
                    Op::I32LtS => cmp_i32(stack, |a, b| a < b),
                    Op::I32LtU => cmp_u32(stack, |a, b| a < b),
                    Op::I32GtS => cmp_i32(stack, |a, b| a > b),
                    Op::I32GtU => cmp_u32(stack, |a, b| a > b),
                    Op::I32LeS => cmp_i32(stack, |a, b| a <= b),
                    Op::I32LeU => cmp_u32(stack, |a, b| a <= b),
                    Op::I32GeS => cmp_i32(stack, |a, b| a >= b),
                    Op::I32GeU => cmp_u32(stack, |a, b| a >= b),

                    // ----------------------------------- i64 test/compare
                    Op::I64Eqz => {
                        let a = pop_i64(stack);
                        stack.push(Value::I32((a == 0) as i32));
                    }
                    Op::I64Eq => cmp_i64(stack, |a, b| a == b),
                    Op::I64Ne => cmp_i64(stack, |a, b| a != b),
                    Op::I64LtS => cmp_i64(stack, |a, b| a < b),
                    Op::I64LtU => cmp_u64(stack, |a, b| a < b),
                    Op::I64GtS => cmp_i64(stack, |a, b| a > b),
                    Op::I64GtU => cmp_u64(stack, |a, b| a > b),
                    Op::I64LeS => cmp_i64(stack, |a, b| a <= b),
                    Op::I64LeU => cmp_u64(stack, |a, b| a <= b),
                    Op::I64GeS => cmp_i64(stack, |a, b| a >= b),
                    Op::I64GeU => cmp_u64(stack, |a, b| a >= b),

                    // --------------------------------------- f32 compares
                    Op::F32Eq => cmp_f32(stack, |a, b| a == b),
                    Op::F32Ne => cmp_f32(stack, |a, b| a != b),
                    Op::F32Lt => cmp_f32(stack, |a, b| a < b),
                    Op::F32Gt => cmp_f32(stack, |a, b| a > b),
                    Op::F32Le => cmp_f32(stack, |a, b| a <= b),
                    Op::F32Ge => cmp_f32(stack, |a, b| a >= b),

                    // --------------------------------------- f64 compares
                    Op::F64Eq => cmp_f64(stack, |a, b| a == b),
                    Op::F64Ne => cmp_f64(stack, |a, b| a != b),
                    Op::F64Lt => cmp_f64(stack, |a, b| a < b),
                    Op::F64Gt => cmp_f64(stack, |a, b| a > b),
                    Op::F64Le => cmp_f64(stack, |a, b| a <= b),
                    Op::F64Ge => cmp_f64(stack, |a, b| a >= b),

                    // ----------------------------------------- i32 arith
                    Op::I32Clz => un_i32(stack, |a| a.leading_zeros() as i32),
                    Op::I32Ctz => un_i32(stack, |a| a.trailing_zeros() as i32),
                    Op::I32Popcnt => un_i32(stack, |a| a.count_ones() as i32),
                    Op::I32Add => bin_i32(stack, i32::wrapping_add),
                    Op::I32Sub => bin_i32(stack, i32::wrapping_sub),
                    Op::I32Mul => bin_i32(stack, i32::wrapping_mul),
                    Op::I32DivS => {
                        let b = pop_i32(stack);
                        let a = pop_i32(stack);
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        let (v, overflow) = a.overflowing_div(b);
                        if overflow {
                            return Err(Trap::IntegerOverflow);
                        }
                        stack.push(Value::I32(v));
                    }
                    Op::I32DivU => {
                        let b = pop_i32(stack) as u32;
                        let a = pop_i32(stack) as u32;
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        stack.push(Value::I32((a / b) as i32));
                    }
                    Op::I32RemS => {
                        let b = pop_i32(stack);
                        let a = pop_i32(stack);
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        stack.push(Value::I32(a.wrapping_rem(b)));
                    }
                    Op::I32RemU => {
                        let b = pop_i32(stack) as u32;
                        let a = pop_i32(stack) as u32;
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        stack.push(Value::I32((a % b) as i32));
                    }
                    Op::I32And => bin_i32(stack, |a, b| a & b),
                    Op::I32Or => bin_i32(stack, |a, b| a | b),
                    Op::I32Xor => bin_i32(stack, |a, b| a ^ b),
                    Op::I32Shl => bin_i32(stack, |a, b| a.wrapping_shl(b as u32)),
                    Op::I32ShrS => bin_i32(stack, |a, b| a.wrapping_shr(b as u32)),
                    Op::I32ShrU => {
                        bin_i32(stack, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32)
                    }
                    Op::I32Rotl => bin_i32(stack, |a, b| a.rotate_left(b as u32 & 31)),
                    Op::I32Rotr => bin_i32(stack, |a, b| a.rotate_right(b as u32 & 31)),

                    // ----------------------------------------- i64 arith
                    Op::I64Clz => un_i64(stack, |a| a.leading_zeros() as i64),
                    Op::I64Ctz => un_i64(stack, |a| a.trailing_zeros() as i64),
                    Op::I64Popcnt => un_i64(stack, |a| a.count_ones() as i64),
                    Op::I64Add => bin_i64(stack, i64::wrapping_add),
                    Op::I64Sub => bin_i64(stack, i64::wrapping_sub),
                    Op::I64Mul => bin_i64(stack, i64::wrapping_mul),
                    Op::I64DivS => {
                        let b = pop_i64(stack);
                        let a = pop_i64(stack);
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        let (v, overflow) = a.overflowing_div(b);
                        if overflow {
                            return Err(Trap::IntegerOverflow);
                        }
                        stack.push(Value::I64(v));
                    }
                    Op::I64DivU => {
                        let b = pop_i64(stack) as u64;
                        let a = pop_i64(stack) as u64;
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        stack.push(Value::I64((a / b) as i64));
                    }
                    Op::I64RemS => {
                        let b = pop_i64(stack);
                        let a = pop_i64(stack);
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        stack.push(Value::I64(a.wrapping_rem(b)));
                    }
                    Op::I64RemU => {
                        let b = pop_i64(stack) as u64;
                        let a = pop_i64(stack) as u64;
                        if b == 0 {
                            return Err(Trap::DivisionByZero);
                        }
                        stack.push(Value::I64((a % b) as i64));
                    }
                    Op::I64And => bin_i64(stack, |a, b| a & b),
                    Op::I64Or => bin_i64(stack, |a, b| a | b),
                    Op::I64Xor => bin_i64(stack, |a, b| a ^ b),
                    Op::I64Shl => bin_i64(stack, |a, b| a.wrapping_shl(b as u32)),
                    Op::I64ShrS => bin_i64(stack, |a, b| a.wrapping_shr(b as u32)),
                    Op::I64ShrU => {
                        bin_i64(stack, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64)
                    }
                    Op::I64Rotl => bin_i64(stack, |a, b| a.rotate_left(b as u32 & 63)),
                    Op::I64Rotr => bin_i64(stack, |a, b| a.rotate_right(b as u32 & 63)),

                    // ----------------------------------------- f32 arith
                    Op::F32Abs => un_f32(stack, f32::abs),
                    Op::F32Neg => un_f32(stack, |a| -a),
                    Op::F32Ceil => un_f32(stack, f32::ceil),
                    Op::F32Floor => un_f32(stack, f32::floor),
                    Op::F32Trunc => un_f32(stack, f32::trunc),
                    Op::F32Nearest => un_f32(stack, nearest_f32),
                    Op::F32Sqrt => un_f32(stack, f32::sqrt),
                    Op::F32Add => bin_f32(stack, |a, b| a + b),
                    Op::F32Sub => bin_f32(stack, |a, b| a - b),
                    Op::F32Mul => bin_f32(stack, |a, b| a * b),
                    Op::F32Div => bin_f32(stack, |a, b| a / b),
                    Op::F32Min => bin_f32(stack, wasm_min_f32),
                    Op::F32Max => bin_f32(stack, wasm_max_f32),
                    Op::F32Copysign => bin_f32(stack, f32::copysign),

                    // ----------------------------------------- f64 arith
                    Op::F64Abs => un_f64(stack, f64::abs),
                    Op::F64Neg => un_f64(stack, |a| -a),
                    Op::F64Ceil => un_f64(stack, f64::ceil),
                    Op::F64Floor => un_f64(stack, f64::floor),
                    Op::F64Trunc => un_f64(stack, f64::trunc),
                    Op::F64Nearest => un_f64(stack, nearest_f64),
                    Op::F64Sqrt => un_f64(stack, f64::sqrt),
                    Op::F64Add => bin_f64(stack, |a, b| a + b),
                    Op::F64Sub => bin_f64(stack, |a, b| a - b),
                    Op::F64Mul => bin_f64(stack, |a, b| a * b),
                    Op::F64Div => bin_f64(stack, |a, b| a / b),
                    Op::F64Min => bin_f64(stack, wasm_min_f64),
                    Op::F64Max => bin_f64(stack, wasm_max_f64),
                    Op::F64Copysign => bin_f64(stack, f64::copysign),

                    // ---------------------------------------- conversions
                    Op::I32WrapI64 => {
                        let a = pop_i64(stack);
                        stack.push(Value::I32(a as i32));
                    }
                    Op::I32TruncF32S => {
                        let a = pop_f32(stack);
                        stack.push(Value::I32(trunc_to_i32(a as f64)?));
                    }
                    Op::I32TruncF32U => {
                        let a = pop_f32(stack);
                        stack.push(Value::I32(trunc_to_u32(a as f64)? as i32));
                    }
                    Op::I32TruncF64S => {
                        let a = pop_f64(stack);
                        stack.push(Value::I32(trunc_to_i32(a)?));
                    }
                    Op::I32TruncF64U => {
                        let a = pop_f64(stack);
                        stack.push(Value::I32(trunc_to_u32(a)? as i32));
                    }
                    Op::I64ExtendI32S => {
                        let a = pop_i32(stack);
                        stack.push(Value::I64(a as i64));
                    }
                    Op::I64ExtendI32U => {
                        let a = pop_i32(stack);
                        stack.push(Value::I64(a as u32 as i64));
                    }
                    Op::I64TruncF32S => {
                        let a = pop_f32(stack);
                        stack.push(Value::I64(trunc_to_i64(a as f64)?));
                    }
                    Op::I64TruncF32U => {
                        let a = pop_f32(stack);
                        stack.push(Value::I64(trunc_to_u64(a as f64)? as i64));
                    }
                    Op::I64TruncF64S => {
                        let a = pop_f64(stack);
                        stack.push(Value::I64(trunc_to_i64(a)?));
                    }
                    Op::I64TruncF64U => {
                        let a = pop_f64(stack);
                        stack.push(Value::I64(trunc_to_u64(a)? as i64));
                    }
                    Op::F32ConvertI32S => {
                        let a = pop_i32(stack);
                        stack.push(Value::F32(a as f32));
                    }
                    Op::F32ConvertI32U => {
                        let a = pop_i32(stack);
                        stack.push(Value::F32(a as u32 as f32));
                    }
                    Op::F32ConvertI64S => {
                        let a = pop_i64(stack);
                        stack.push(Value::F32(a as f32));
                    }
                    Op::F32ConvertI64U => {
                        let a = pop_i64(stack);
                        stack.push(Value::F32(a as u64 as f32));
                    }
                    Op::F32DemoteF64 => {
                        let a = pop_f64(stack);
                        stack.push(Value::F32(a as f32));
                    }
                    Op::F64ConvertI32S => {
                        let a = pop_i32(stack);
                        stack.push(Value::F64(a as f64));
                    }
                    Op::F64ConvertI32U => {
                        let a = pop_i32(stack);
                        stack.push(Value::F64(a as u32 as f64));
                    }
                    Op::F64ConvertI64S => {
                        let a = pop_i64(stack);
                        stack.push(Value::F64(a as f64));
                    }
                    Op::F64ConvertI64U => {
                        let a = pop_i64(stack);
                        stack.push(Value::F64(a as u64 as f64));
                    }
                    Op::F64PromoteF32 => {
                        let a = pop_f32(stack);
                        stack.push(Value::F64(a as f64));
                    }
                    Op::I32ReinterpretF32 => {
                        let a = pop_f32(stack);
                        stack.push(Value::I32(a.to_bits() as i32));
                    }
                    Op::I64ReinterpretF64 => {
                        let a = pop_f64(stack);
                        stack.push(Value::I64(a.to_bits() as i64));
                    }
                    Op::F32ReinterpretI32 => {
                        let a = pop_i32(stack);
                        stack.push(Value::F32(f32::from_bits(a as u32)));
                    }
                    Op::F64ReinterpretI64 => {
                        let a = pop_i64(stack);
                        stack.push(Value::F64(f64::from_bits(a as u64)));
                    }
                }
            }
        }
    }

    /// Keeps the top `arity` values and truncates the rest down to
    /// `height` — the stack unwinding a branch performs at its target.
    fn unwind(stack: &mut Vec<Value>, height: usize, arity: usize) {
        let keep_from = stack.len() - arity;
        stack.drain(height..keep_from);
    }

    fn run_seq(
        &mut self,
        body: &[Instr],
        stack: &mut Vec<Value>,
        locals: &mut [Value],
        depth: usize,
    ) -> Result<Flow, Trap> {
        use Instr::*;
        for instr in body {
            *self.instr_count += 1;
            if let Some(fuel) = self.fuel.as_mut() {
                if *fuel == 0 {
                    return Err(Trap::FuelExhausted);
                }
                *fuel -= 1;
            }
            match instr {
                Unreachable => return Err(Trap::Unreachable),
                Nop => {}
                Block(bt, inner) => {
                    let height = stack.len();
                    match self.run_seq(inner, stack, locals, depth)? {
                        Flow::Normal => {}
                        Flow::Branch(0) => Self::unwind(stack, height, bt.arity()),
                        Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Loop(_bt, inner) => {
                    let height = stack.len();
                    loop {
                        match self.run_seq(inner, stack, locals, depth)? {
                            Flow::Normal => break,
                            // A branch to a loop re-enters it with an empty
                            // label (MVP loops take no parameters).
                            Flow::Branch(0) => {
                                Self::unwind(stack, height, 0);
                                continue;
                            }
                            Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                            Flow::Return => return Ok(Flow::Return),
                        }
                    }
                }
                If(bt, then, els) => {
                    let cond = pop_i32(stack);
                    let arm = if cond != 0 { then } else { els };
                    let height = stack.len();
                    match self.run_seq(arm, stack, locals, depth)? {
                        Flow::Normal => {}
                        Flow::Branch(0) => Self::unwind(stack, height, bt.arity()),
                        Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Br(n) => return Ok(Flow::Branch(*n)),
                BrIf(n) => {
                    if pop_i32(stack) != 0 {
                        return Ok(Flow::Branch(*n));
                    }
                }
                BrTable(targets, default) => {
                    let idx = pop_i32(stack) as u32 as usize;
                    let n = targets.get(idx).copied().unwrap_or(*default);
                    return Ok(Flow::Branch(n));
                }
                Return => return Ok(Flow::Return),
                Call(idx) => self.call_into(*idx, stack, depth + 1)?,
                Drop => {
                    stack.pop().expect("validated drop");
                }
                Select => {
                    let cond = pop_i32(stack);
                    let b = stack.pop().expect("validated select");
                    let a = stack.pop().expect("validated select");
                    stack.push(if cond != 0 { a } else { b });
                }
                LocalGet(i) => stack.push(locals[*i as usize]),
                LocalSet(i) => locals[*i as usize] = stack.pop().expect("validated local.set"),
                LocalTee(i) => locals[*i as usize] = *stack.last().expect("validated local.tee"),
                GlobalGet(i) => stack.push(self.globals[*i as usize]),
                GlobalSet(i) => {
                    self.globals[*i as usize] = stack.pop().expect("validated global.set")
                }

                // ------------------------------------------------- memory
                I32Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::I32(i32::from_le_bytes(raw)));
                }
                I64Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<8>(a, m.offset)?;
                    stack.push(Value::I64(i64::from_le_bytes(raw)));
                }
                F32Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::F32(f32::from_le_bytes(raw)));
                }
                F64Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<8>(a, m.offset)?;
                    stack.push(Value::F64(f64::from_le_bytes(raw)));
                }
                I32Load8S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I32(raw[0] as i8 as i32));
                }
                I32Load8U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I32(raw[0] as i32));
                }
                I32Load16S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I32(i16::from_le_bytes(raw) as i32));
                }
                I32Load16U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I32(u16::from_le_bytes(raw) as i32));
                }
                I64Load8S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I64(raw[0] as i8 as i64));
                }
                I64Load8U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I64(raw[0] as i64));
                }
                I64Load16S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I64(i16::from_le_bytes(raw) as i64));
                }
                I64Load16U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I64(u16::from_le_bytes(raw) as i64));
                }
                I64Load32S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::I64(i32::from_le_bytes(raw) as i64));
                }
                I64Load32U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::I64(u32::from_le_bytes(raw) as i64));
                }
                I32Store(m) => {
                    let v = pop_i32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<4>(a, m.offset, v.to_le_bytes())?;
                }
                I64Store(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<8>(a, m.offset, v.to_le_bytes())?;
                }
                F32Store(m) => {
                    let v = pop_f32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<4>(a, m.offset, v.to_le_bytes())?;
                }
                F64Store(m) => {
                    let v = pop_f64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<8>(a, m.offset, v.to_le_bytes())?;
                }
                I32Store8(m) => {
                    let v = pop_i32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<1>(a, m.offset, [v as u8])?;
                }
                I32Store16(m) => {
                    let v = pop_i32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<2>(a, m.offset, (v as u16).to_le_bytes())?;
                }
                I64Store8(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<1>(a, m.offset, [v as u8])?;
                }
                I64Store16(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<2>(a, m.offset, (v as u16).to_le_bytes())?;
                }
                I64Store32(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<4>(a, m.offset, (v as u32).to_le_bytes())?;
                }
                MemorySize => {
                    let pages = self.mem()?.size_pages();
                    stack.push(Value::I32(pages as i32));
                }
                MemoryGrow => {
                    let delta = pop_i32(stack) as u32;
                    let result = match self.mem()?.grow(delta) {
                        Some(prev) => prev as i32,
                        None => -1,
                    };
                    stack.push(Value::I32(result));
                }
                MemoryCopy => {
                    let len = pop_i32(stack) as u32;
                    let src = pop_addr(stack);
                    let dst = pop_addr(stack);
                    self.mem()?.copy_within(dst, src, len)?;
                }
                MemoryFill => {
                    let len = pop_i32(stack) as u32;
                    let byte = pop_i32(stack) as u8;
                    let dst = pop_addr(stack);
                    self.mem()?.fill(dst, byte, len)?;
                }

                // -------------------------------------------------- consts
                I32Const(v) => stack.push(Value::I32(*v)),
                I64Const(v) => stack.push(Value::I64(*v)),
                F32Const(v) => stack.push(Value::F32(*v)),
                F64Const(v) => stack.push(Value::F64(*v)),

                // --------------------------------------- i32 test/compare
                I32Eqz => un_i32(stack, |a| (a == 0) as i32),
                I32Eq => cmp_i32(stack, |a, b| a == b),
                I32Ne => cmp_i32(stack, |a, b| a != b),
                I32LtS => cmp_i32(stack, |a, b| a < b),
                I32LtU => cmp_u32(stack, |a, b| a < b),
                I32GtS => cmp_i32(stack, |a, b| a > b),
                I32GtU => cmp_u32(stack, |a, b| a > b),
                I32LeS => cmp_i32(stack, |a, b| a <= b),
                I32LeU => cmp_u32(stack, |a, b| a <= b),
                I32GeS => cmp_i32(stack, |a, b| a >= b),
                I32GeU => cmp_u32(stack, |a, b| a >= b),

                // --------------------------------------- i64 test/compare
                I64Eqz => {
                    let a = pop_i64(stack);
                    stack.push(Value::I32((a == 0) as i32));
                }
                I64Eq => cmp_i64(stack, |a, b| a == b),
                I64Ne => cmp_i64(stack, |a, b| a != b),
                I64LtS => cmp_i64(stack, |a, b| a < b),
                I64LtU => cmp_u64(stack, |a, b| a < b),
                I64GtS => cmp_i64(stack, |a, b| a > b),
                I64GtU => cmp_u64(stack, |a, b| a > b),
                I64LeS => cmp_i64(stack, |a, b| a <= b),
                I64LeU => cmp_u64(stack, |a, b| a <= b),
                I64GeS => cmp_i64(stack, |a, b| a >= b),
                I64GeU => cmp_u64(stack, |a, b| a >= b),

                // ------------------------------------------- f32 compares
                F32Eq => cmp_f32(stack, |a, b| a == b),
                F32Ne => cmp_f32(stack, |a, b| a != b),
                F32Lt => cmp_f32(stack, |a, b| a < b),
                F32Gt => cmp_f32(stack, |a, b| a > b),
                F32Le => cmp_f32(stack, |a, b| a <= b),
                F32Ge => cmp_f32(stack, |a, b| a >= b),

                // ------------------------------------------- f64 compares
                F64Eq => cmp_f64(stack, |a, b| a == b),
                F64Ne => cmp_f64(stack, |a, b| a != b),
                F64Lt => cmp_f64(stack, |a, b| a < b),
                F64Gt => cmp_f64(stack, |a, b| a > b),
                F64Le => cmp_f64(stack, |a, b| a <= b),
                F64Ge => cmp_f64(stack, |a, b| a >= b),

                // --------------------------------------------- i32 arith
                I32Clz => un_i32(stack, |a| a.leading_zeros() as i32),
                I32Ctz => un_i32(stack, |a| a.trailing_zeros() as i32),
                I32Popcnt => un_i32(stack, |a| a.count_ones() as i32),
                I32Add => bin_i32(stack, i32::wrapping_add),
                I32Sub => bin_i32(stack, i32::wrapping_sub),
                I32Mul => bin_i32(stack, i32::wrapping_mul),
                I32DivS => {
                    let b = pop_i32(stack);
                    let a = pop_i32(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    let (v, overflow) = a.overflowing_div(b);
                    if overflow {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I32(v));
                }
                I32DivU => {
                    let b = pop_i32(stack) as u32;
                    let a = pop_i32(stack) as u32;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32((a / b) as i32));
                }
                I32RemS => {
                    let b = pop_i32(stack);
                    let a = pop_i32(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32(a.wrapping_rem(b)));
                }
                I32RemU => {
                    let b = pop_i32(stack) as u32;
                    let a = pop_i32(stack) as u32;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32((a % b) as i32));
                }
                I32And => bin_i32(stack, |a, b| a & b),
                I32Or => bin_i32(stack, |a, b| a | b),
                I32Xor => bin_i32(stack, |a, b| a ^ b),
                I32Shl => bin_i32(stack, |a, b| a.wrapping_shl(b as u32)),
                I32ShrS => bin_i32(stack, |a, b| a.wrapping_shr(b as u32)),
                I32ShrU => bin_i32(stack, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32),
                I32Rotl => bin_i32(stack, |a, b| a.rotate_left(b as u32 & 31)),
                I32Rotr => bin_i32(stack, |a, b| a.rotate_right(b as u32 & 31)),

                // --------------------------------------------- i64 arith
                I64Clz => un_i64(stack, |a| a.leading_zeros() as i64),
                I64Ctz => un_i64(stack, |a| a.trailing_zeros() as i64),
                I64Popcnt => un_i64(stack, |a| a.count_ones() as i64),
                I64Add => bin_i64(stack, i64::wrapping_add),
                I64Sub => bin_i64(stack, i64::wrapping_sub),
                I64Mul => bin_i64(stack, i64::wrapping_mul),
                I64DivS => {
                    let b = pop_i64(stack);
                    let a = pop_i64(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    let (v, overflow) = a.overflowing_div(b);
                    if overflow {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I64(v));
                }
                I64DivU => {
                    let b = pop_i64(stack) as u64;
                    let a = pop_i64(stack) as u64;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64((a / b) as i64));
                }
                I64RemS => {
                    let b = pop_i64(stack);
                    let a = pop_i64(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64(a.wrapping_rem(b)));
                }
                I64RemU => {
                    let b = pop_i64(stack) as u64;
                    let a = pop_i64(stack) as u64;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64((a % b) as i64));
                }
                I64And => bin_i64(stack, |a, b| a & b),
                I64Or => bin_i64(stack, |a, b| a | b),
                I64Xor => bin_i64(stack, |a, b| a ^ b),
                I64Shl => bin_i64(stack, |a, b| a.wrapping_shl(b as u32)),
                I64ShrS => bin_i64(stack, |a, b| a.wrapping_shr(b as u32)),
                I64ShrU => bin_i64(stack, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64),
                I64Rotl => bin_i64(stack, |a, b| a.rotate_left(b as u32 & 63)),
                I64Rotr => bin_i64(stack, |a, b| a.rotate_right(b as u32 & 63)),

                // --------------------------------------------- f32 arith
                F32Abs => un_f32(stack, f32::abs),
                F32Neg => un_f32(stack, |a| -a),
                F32Ceil => un_f32(stack, f32::ceil),
                F32Floor => un_f32(stack, f32::floor),
                F32Trunc => un_f32(stack, f32::trunc),
                F32Nearest => un_f32(stack, nearest_f32),
                F32Sqrt => un_f32(stack, f32::sqrt),
                F32Add => bin_f32(stack, |a, b| a + b),
                F32Sub => bin_f32(stack, |a, b| a - b),
                F32Mul => bin_f32(stack, |a, b| a * b),
                F32Div => bin_f32(stack, |a, b| a / b),
                F32Min => bin_f32(stack, wasm_min_f32),
                F32Max => bin_f32(stack, wasm_max_f32),
                F32Copysign => bin_f32(stack, f32::copysign),

                // --------------------------------------------- f64 arith
                F64Abs => un_f64(stack, f64::abs),
                F64Neg => un_f64(stack, |a| -a),
                F64Ceil => un_f64(stack, f64::ceil),
                F64Floor => un_f64(stack, f64::floor),
                F64Trunc => un_f64(stack, f64::trunc),
                F64Nearest => un_f64(stack, nearest_f64),
                F64Sqrt => un_f64(stack, f64::sqrt),
                F64Add => bin_f64(stack, |a, b| a + b),
                F64Sub => bin_f64(stack, |a, b| a - b),
                F64Mul => bin_f64(stack, |a, b| a * b),
                F64Div => bin_f64(stack, |a, b| a / b),
                F64Min => bin_f64(stack, wasm_min_f64),
                F64Max => bin_f64(stack, wasm_max_f64),
                F64Copysign => bin_f64(stack, f64::copysign),

                // -------------------------------------------- conversions
                I32WrapI64 => {
                    let a = pop_i64(stack);
                    stack.push(Value::I32(a as i32));
                }
                I32TruncF32S => {
                    let a = pop_f32(stack);
                    stack.push(Value::I32(trunc_to_i32(a as f64)?));
                }
                I32TruncF32U => {
                    let a = pop_f32(stack);
                    stack.push(Value::I32(trunc_to_u32(a as f64)? as i32));
                }
                I32TruncF64S => {
                    let a = pop_f64(stack);
                    stack.push(Value::I32(trunc_to_i32(a)?));
                }
                I32TruncF64U => {
                    let a = pop_f64(stack);
                    stack.push(Value::I32(trunc_to_u32(a)? as i32));
                }
                I64ExtendI32S => {
                    let a = pop_i32(stack);
                    stack.push(Value::I64(a as i64));
                }
                I64ExtendI32U => {
                    let a = pop_i32(stack);
                    stack.push(Value::I64(a as u32 as i64));
                }
                I64TruncF32S => {
                    let a = pop_f32(stack);
                    stack.push(Value::I64(trunc_to_i64(a as f64)?));
                }
                I64TruncF32U => {
                    let a = pop_f32(stack);
                    stack.push(Value::I64(trunc_to_u64(a as f64)? as i64));
                }
                I64TruncF64S => {
                    let a = pop_f64(stack);
                    stack.push(Value::I64(trunc_to_i64(a)?));
                }
                I64TruncF64U => {
                    let a = pop_f64(stack);
                    stack.push(Value::I64(trunc_to_u64(a)? as i64));
                }
                F32ConvertI32S => {
                    let a = pop_i32(stack);
                    stack.push(Value::F32(a as f32));
                }
                F32ConvertI32U => {
                    let a = pop_i32(stack);
                    stack.push(Value::F32(a as u32 as f32));
                }
                F32ConvertI64S => {
                    let a = pop_i64(stack);
                    stack.push(Value::F32(a as f32));
                }
                F32ConvertI64U => {
                    let a = pop_i64(stack);
                    stack.push(Value::F32(a as u64 as f32));
                }
                F32DemoteF64 => {
                    let a = pop_f64(stack);
                    stack.push(Value::F32(a as f32));
                }
                F64ConvertI32S => {
                    let a = pop_i32(stack);
                    stack.push(Value::F64(a as f64));
                }
                F64ConvertI32U => {
                    let a = pop_i32(stack);
                    stack.push(Value::F64(a as u32 as f64));
                }
                F64ConvertI64S => {
                    let a = pop_i64(stack);
                    stack.push(Value::F64(a as f64));
                }
                F64ConvertI64U => {
                    let a = pop_i64(stack);
                    stack.push(Value::F64(a as u64 as f64));
                }
                F64PromoteF32 => {
                    let a = pop_f32(stack);
                    stack.push(Value::F64(a as f64));
                }
                I32ReinterpretF32 => {
                    let a = pop_f32(stack);
                    stack.push(Value::I32(a.to_bits() as i32));
                }
                I64ReinterpretF64 => {
                    let a = pop_f64(stack);
                    stack.push(Value::I64(a.to_bits() as i64));
                }
                F32ReinterpretI32 => {
                    let a = pop_i32(stack);
                    stack.push(Value::F32(f32::from_bits(a as u32)));
                }
                F64ReinterpretI64 => {
                    let a = pop_i64(stack);
                    stack.push(Value::F64(f64::from_bits(a as u64)));
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn mem(&mut self) -> Result<&mut Memory, Trap> {
        self.memory.as_mut().ok_or_else(|| Trap::host("module has no memory"))
    }
}

/// Takes a pre-resolved branch: copies the `arity` label values down to
/// the unwind height (relative to `obase`), truncates the junk between,
/// and returns the new program counter.
#[inline]
fn take_branch(stack: &mut Vec<Value>, obase: usize, jump: &Jump) -> usize {
    let dst = obase + jump.height as usize;
    let arity = jump.arity as usize;
    let src = stack.len() - arity;
    if src > dst {
        stack.copy_within(src.., dst);
    }
    stack.truncate(dst + arity);
    jump.target as usize
}

/// Charges `extra` further instructions of a fused group (the first
/// was charged by the shared dispatch prelude). When metered fuel runs
/// out mid-group, this reproduces the reference tier's trap state
/// exactly: `fuel_left` sub-instructions would have executed (none of
/// their effects are observable after the unwind — fused ops touch
/// only the discarded operand stack and locals) and the next one is
/// counted as the trapping instruction.
#[inline]
fn charge<const METERED: bool>(
    count: &mut u64,
    fuel_left: &mut u64,
    extra: u64,
) -> Result<(), Trap> {
    if METERED {
        if *fuel_left < extra {
            *count += *fuel_left + 1;
            *fuel_left = 0;
            return Err(Trap::FuelExhausted);
        }
        *fuel_left -= extra;
    }
    *count += extra;
    Ok(())
}

/// Reads an i32 local of the current frame.
#[inline]
fn loc_i32(stack: &[Value], lbase: usize, i: u16) -> i32 {
    stack[lbase + i as usize].as_i32().expect("validated i32 local")
}

/// Evaluates a fused i32 binary op. Each arm must mirror the plain
/// dispatch arm for the same operator exactly (wrapping arithmetic,
/// mod-32 shift counts, 0/1 comparisons).
#[inline]
fn i32_bin_eval(op: I32Bin, a: i32, b: i32) -> i32 {
    match op {
        I32Bin::Add => a.wrapping_add(b),
        I32Bin::Sub => a.wrapping_sub(b),
        I32Bin::Mul => a.wrapping_mul(b),
        I32Bin::And => a & b,
        I32Bin::Or => a | b,
        I32Bin::Xor => a ^ b,
        I32Bin::Shl => a.wrapping_shl(b as u32),
        I32Bin::ShrS => a.wrapping_shr(b as u32),
        I32Bin::ShrU => ((a as u32).wrapping_shr(b as u32)) as i32,
        I32Bin::Rotl => a.rotate_left(b as u32 & 31),
        I32Bin::Rotr => a.rotate_right(b as u32 & 31),
        I32Bin::Eq => (a == b) as i32,
        I32Bin::Ne => (a != b) as i32,
        I32Bin::LtS => (a < b) as i32,
        I32Bin::LtU => ((a as u32) < (b as u32)) as i32,
        I32Bin::GtS => (a > b) as i32,
        I32Bin::GtU => ((a as u32) > (b as u32)) as i32,
        I32Bin::LeS => (a <= b) as i32,
        I32Bin::LeU => ((a as u32) <= (b as u32)) as i32,
        I32Bin::GeS => (a >= b) as i32,
        I32Bin::GeU => ((a as u32) >= (b as u32)) as i32,
    }
}

// ------------------------------------------------------------ pop helpers

fn pop_i32(stack: &mut Vec<Value>) -> i32 {
    stack.pop().expect("validated stack").as_i32().expect("validated i32")
}

fn pop_addr(stack: &mut Vec<Value>) -> u32 {
    pop_i32(stack) as u32
}

fn pop_i64(stack: &mut Vec<Value>) -> i64 {
    stack.pop().expect("validated stack").as_i64().expect("validated i64")
}

fn pop_f32(stack: &mut Vec<Value>) -> f32 {
    stack.pop().expect("validated stack").as_f32().expect("validated f32")
}

fn pop_f64(stack: &mut Vec<Value>) -> f64 {
    stack.pop().expect("validated stack").as_f64().expect("validated f64")
}

fn un_i32(stack: &mut Vec<Value>, f: impl FnOnce(i32) -> i32) {
    let a = pop_i32(stack);
    stack.push(Value::I32(f(a)));
}

fn bin_i32(stack: &mut Vec<Value>, f: impl FnOnce(i32, i32) -> i32) {
    let b = pop_i32(stack);
    let a = pop_i32(stack);
    stack.push(Value::I32(f(a, b)));
}

fn cmp_i32(stack: &mut Vec<Value>, f: impl FnOnce(i32, i32) -> bool) {
    let b = pop_i32(stack);
    let a = pop_i32(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

fn cmp_u32(stack: &mut Vec<Value>, f: impl FnOnce(u32, u32) -> bool) {
    let b = pop_i32(stack) as u32;
    let a = pop_i32(stack) as u32;
    stack.push(Value::I32(f(a, b) as i32));
}

fn un_i64(stack: &mut Vec<Value>, f: impl FnOnce(i64) -> i64) {
    let a = pop_i64(stack);
    stack.push(Value::I64(f(a)));
}

fn bin_i64(stack: &mut Vec<Value>, f: impl FnOnce(i64, i64) -> i64) {
    let b = pop_i64(stack);
    let a = pop_i64(stack);
    stack.push(Value::I64(f(a, b)));
}

fn cmp_i64(stack: &mut Vec<Value>, f: impl FnOnce(i64, i64) -> bool) {
    let b = pop_i64(stack);
    let a = pop_i64(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

fn cmp_u64(stack: &mut Vec<Value>, f: impl FnOnce(u64, u64) -> bool) {
    let b = pop_i64(stack) as u64;
    let a = pop_i64(stack) as u64;
    stack.push(Value::I32(f(a, b) as i32));
}

fn un_f32(stack: &mut Vec<Value>, f: impl FnOnce(f32) -> f32) {
    let a = pop_f32(stack);
    stack.push(Value::F32(f(a)));
}

fn bin_f32(stack: &mut Vec<Value>, f: impl FnOnce(f32, f32) -> f32) {
    let b = pop_f32(stack);
    let a = pop_f32(stack);
    stack.push(Value::F32(f(a, b)));
}

fn cmp_f32(stack: &mut Vec<Value>, f: impl FnOnce(f32, f32) -> bool) {
    let b = pop_f32(stack);
    let a = pop_f32(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

fn un_f64(stack: &mut Vec<Value>, f: impl FnOnce(f64) -> f64) {
    let a = pop_f64(stack);
    stack.push(Value::F64(f(a)));
}

fn bin_f64(stack: &mut Vec<Value>, f: impl FnOnce(f64, f64) -> f64) {
    let b = pop_f64(stack);
    let a = pop_f64(stack);
    stack.push(Value::F64(f(a, b)));
}

fn cmp_f64(stack: &mut Vec<Value>, f: impl FnOnce(f64, f64) -> bool) {
    let b = pop_f64(stack);
    let a = pop_f64(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

// ------------------------------------------------ float semantics helpers

fn wasm_min_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        // min(-0, +0) = -0.
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

fn wasm_max_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else {
        a.max(b)
    }
}

fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else {
        a.max(b)
    }
}

fn nearest_f32(a: f32) -> f32 {
    a.round_ties_even()
}

fn nearest_f64(a: f64) -> f64 {
    a.round_ties_even()
}

fn trunc_to_i32(a: f64) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(-2147483648.0..2147483648.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i32)
}

fn trunc_to_u32(a: f64) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(0.0..4294967296.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u32)
}

fn trunc_to_i64(a: f64) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(-9223372036854775808.0..9223372036854775808.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

fn trunc_to_u64(a: f64) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(0.0..18446744073709551616.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}
