//! The tree-walking interpreter.
//!
//! Executes validated function bodies directly over the structured
//! [`Instr`] AST. Because validation has proven stack discipline, operand
//! pops use infallible accessors; all *dynamic* failure modes (memory
//! bounds, division, fuel, call depth, host errors) surface as [`Trap`]s.

use std::any::Any;
use std::sync::Arc;

use crate::host::{Caller, HostFunc};
use crate::instr::Instr;
use crate::memory::Memory;
use crate::module::Module;
use crate::trap::Trap;
use crate::types::Value;

/// Control-flow signal produced by a block of instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Fell through the end of the sequence.
    Normal,
    /// Branching to the n-th enclosing label.
    Branch(u32),
    /// Returning from the current function.
    Return,
}

/// Mutable execution context borrowing the instance's parts.
pub(crate) struct Exec<'a> {
    pub module: &'a Arc<Module>,
    pub memory: &'a mut Option<Memory>,
    pub globals: &'a mut [Value],
    pub host_funcs: &'a [HostFunc],
    pub host_data: &'a mut Box<dyn Any + Send>,
    pub fuel: &'a mut Option<u64>,
    pub instr_count: &'a mut u64,
    pub max_call_depth: usize,
}

impl<'a> Exec<'a> {
    /// Calls the function at `func_idx` (imports first) with `args`.
    pub fn call_function(
        &mut self,
        func_idx: u32,
        args: &[Value],
        depth: usize,
    ) -> Result<Vec<Value>, Trap> {
        if depth >= self.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        let imports = self.module.imports.len();
        if (func_idx as usize) < imports {
            let f = Arc::clone(&self.host_funcs[func_idx as usize]);
            let caller = Caller::new(self.memory.as_mut(), self.host_data.as_mut());
            return f(caller, args);
        }
        let module = Arc::clone(self.module);
        let def = &module.funcs[func_idx as usize - imports];
        let ty = &module.types[def.type_idx as usize];
        let mut locals: Vec<Value> = Vec::with_capacity(args.len() + def.locals.len());
        locals.extend_from_slice(args);
        locals.extend(def.locals.iter().map(|&t| Value::zero(t)));
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        self.run_seq(&def.body, &mut stack, &mut locals, depth)?;
        let arity = ty.results().len();
        // On fall-through or return, the top `arity` values are the
        // results (validation guarantees presence and types).
        let results = stack.split_off(stack.len() - arity);
        Ok(results)
    }

    /// Keeps the top `arity` values and truncates the rest down to
    /// `height` — the stack unwinding a branch performs at its target.
    fn unwind(stack: &mut Vec<Value>, height: usize, arity: usize) {
        let keep_from = stack.len() - arity;
        stack.drain(height..keep_from);
    }

    fn run_seq(
        &mut self,
        body: &[Instr],
        stack: &mut Vec<Value>,
        locals: &mut [Value],
        depth: usize,
    ) -> Result<Flow, Trap> {
        use Instr::*;
        for instr in body {
            *self.instr_count += 1;
            if let Some(fuel) = self.fuel.as_mut() {
                if *fuel == 0 {
                    return Err(Trap::FuelExhausted);
                }
                *fuel -= 1;
            }
            match instr {
                Unreachable => return Err(Trap::Unreachable),
                Nop => {}
                Block(bt, inner) => {
                    let height = stack.len();
                    match self.run_seq(inner, stack, locals, depth)? {
                        Flow::Normal => {}
                        Flow::Branch(0) => Self::unwind(stack, height, bt.arity()),
                        Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Loop(_bt, inner) => {
                    let height = stack.len();
                    loop {
                        match self.run_seq(inner, stack, locals, depth)? {
                            Flow::Normal => break,
                            // A branch to a loop re-enters it with an empty
                            // label (MVP loops take no parameters).
                            Flow::Branch(0) => {
                                Self::unwind(stack, height, 0);
                                continue;
                            }
                            Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                            Flow::Return => return Ok(Flow::Return),
                        }
                    }
                }
                If(bt, then, els) => {
                    let cond = pop_i32(stack);
                    let arm = if cond != 0 { then } else { els };
                    let height = stack.len();
                    match self.run_seq(arm, stack, locals, depth)? {
                        Flow::Normal => {}
                        Flow::Branch(0) => Self::unwind(stack, height, bt.arity()),
                        Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Br(n) => return Ok(Flow::Branch(*n)),
                BrIf(n) => {
                    if pop_i32(stack) != 0 {
                        return Ok(Flow::Branch(*n));
                    }
                }
                BrTable(targets, default) => {
                    let idx = pop_i32(stack) as u32 as usize;
                    let n = targets.get(idx).copied().unwrap_or(*default);
                    return Ok(Flow::Branch(n));
                }
                Return => return Ok(Flow::Return),
                Call(idx) => {
                    let ty = self
                        .module
                        .func_type(*idx)
                        .expect("validated call target")
                        .clone();
                    let split = stack.len() - ty.params().len();
                    let args: Vec<Value> = stack.split_off(split);
                    let results = self.call_function(*idx, &args, depth + 1)?;
                    stack.extend(results);
                }
                Drop => {
                    stack.pop().expect("validated drop");
                }
                Select => {
                    let cond = pop_i32(stack);
                    let b = stack.pop().expect("validated select");
                    let a = stack.pop().expect("validated select");
                    stack.push(if cond != 0 { a } else { b });
                }
                LocalGet(i) => stack.push(locals[*i as usize]),
                LocalSet(i) => locals[*i as usize] = stack.pop().expect("validated local.set"),
                LocalTee(i) => locals[*i as usize] = *stack.last().expect("validated local.tee"),
                GlobalGet(i) => stack.push(self.globals[*i as usize]),
                GlobalSet(i) => {
                    self.globals[*i as usize] = stack.pop().expect("validated global.set")
                }

                // ------------------------------------------------- memory
                I32Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::I32(i32::from_le_bytes(raw)));
                }
                I64Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<8>(a, m.offset)?;
                    stack.push(Value::I64(i64::from_le_bytes(raw)));
                }
                F32Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::F32(f32::from_le_bytes(raw)));
                }
                F64Load(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<8>(a, m.offset)?;
                    stack.push(Value::F64(f64::from_le_bytes(raw)));
                }
                I32Load8S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I32(raw[0] as i8 as i32));
                }
                I32Load8U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I32(raw[0] as i32));
                }
                I32Load16S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I32(i16::from_le_bytes(raw) as i32));
                }
                I32Load16U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I32(u16::from_le_bytes(raw) as i32));
                }
                I64Load8S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I64(raw[0] as i8 as i64));
                }
                I64Load8U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<1>(a, m.offset)?;
                    stack.push(Value::I64(raw[0] as i64));
                }
                I64Load16S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I64(i16::from_le_bytes(raw) as i64));
                }
                I64Load16U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<2>(a, m.offset)?;
                    stack.push(Value::I64(u16::from_le_bytes(raw) as i64));
                }
                I64Load32S(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::I64(i32::from_le_bytes(raw) as i64));
                }
                I64Load32U(m) => {
                    let a = pop_addr(stack);
                    let raw = self.mem()?.load::<4>(a, m.offset)?;
                    stack.push(Value::I64(u32::from_le_bytes(raw) as i64));
                }
                I32Store(m) => {
                    let v = pop_i32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<4>(a, m.offset, v.to_le_bytes())?;
                }
                I64Store(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<8>(a, m.offset, v.to_le_bytes())?;
                }
                F32Store(m) => {
                    let v = pop_f32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<4>(a, m.offset, v.to_le_bytes())?;
                }
                F64Store(m) => {
                    let v = pop_f64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<8>(a, m.offset, v.to_le_bytes())?;
                }
                I32Store8(m) => {
                    let v = pop_i32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<1>(a, m.offset, [v as u8])?;
                }
                I32Store16(m) => {
                    let v = pop_i32(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<2>(a, m.offset, (v as u16).to_le_bytes())?;
                }
                I64Store8(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<1>(a, m.offset, [v as u8])?;
                }
                I64Store16(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<2>(a, m.offset, (v as u16).to_le_bytes())?;
                }
                I64Store32(m) => {
                    let v = pop_i64(stack);
                    let a = pop_addr(stack);
                    self.mem()?.store::<4>(a, m.offset, (v as u32).to_le_bytes())?;
                }
                MemorySize => {
                    let pages = self.mem()?.size_pages();
                    stack.push(Value::I32(pages as i32));
                }
                MemoryGrow => {
                    let delta = pop_i32(stack) as u32;
                    let result = match self.mem()?.grow(delta) {
                        Some(prev) => prev as i32,
                        None => -1,
                    };
                    stack.push(Value::I32(result));
                }
                MemoryCopy => {
                    let len = pop_i32(stack) as u32;
                    let src = pop_addr(stack);
                    let dst = pop_addr(stack);
                    self.mem()?.copy_within(dst, src, len)?;
                }
                MemoryFill => {
                    let len = pop_i32(stack) as u32;
                    let byte = pop_i32(stack) as u8;
                    let dst = pop_addr(stack);
                    self.mem()?.fill(dst, byte, len)?;
                }

                // -------------------------------------------------- consts
                I32Const(v) => stack.push(Value::I32(*v)),
                I64Const(v) => stack.push(Value::I64(*v)),
                F32Const(v) => stack.push(Value::F32(*v)),
                F64Const(v) => stack.push(Value::F64(*v)),

                // --------------------------------------- i32 test/compare
                I32Eqz => un_i32(stack, |a| (a == 0) as i32),
                I32Eq => cmp_i32(stack, |a, b| a == b),
                I32Ne => cmp_i32(stack, |a, b| a != b),
                I32LtS => cmp_i32(stack, |a, b| a < b),
                I32LtU => cmp_u32(stack, |a, b| a < b),
                I32GtS => cmp_i32(stack, |a, b| a > b),
                I32GtU => cmp_u32(stack, |a, b| a > b),
                I32LeS => cmp_i32(stack, |a, b| a <= b),
                I32LeU => cmp_u32(stack, |a, b| a <= b),
                I32GeS => cmp_i32(stack, |a, b| a >= b),
                I32GeU => cmp_u32(stack, |a, b| a >= b),

                // --------------------------------------- i64 test/compare
                I64Eqz => {
                    let a = pop_i64(stack);
                    stack.push(Value::I32((a == 0) as i32));
                }
                I64Eq => cmp_i64(stack, |a, b| a == b),
                I64Ne => cmp_i64(stack, |a, b| a != b),
                I64LtS => cmp_i64(stack, |a, b| a < b),
                I64LtU => cmp_u64(stack, |a, b| a < b),
                I64GtS => cmp_i64(stack, |a, b| a > b),
                I64GtU => cmp_u64(stack, |a, b| a > b),
                I64LeS => cmp_i64(stack, |a, b| a <= b),
                I64LeU => cmp_u64(stack, |a, b| a <= b),
                I64GeS => cmp_i64(stack, |a, b| a >= b),
                I64GeU => cmp_u64(stack, |a, b| a >= b),

                // ------------------------------------------- f32 compares
                F32Eq => cmp_f32(stack, |a, b| a == b),
                F32Ne => cmp_f32(stack, |a, b| a != b),
                F32Lt => cmp_f32(stack, |a, b| a < b),
                F32Gt => cmp_f32(stack, |a, b| a > b),
                F32Le => cmp_f32(stack, |a, b| a <= b),
                F32Ge => cmp_f32(stack, |a, b| a >= b),

                // ------------------------------------------- f64 compares
                F64Eq => cmp_f64(stack, |a, b| a == b),
                F64Ne => cmp_f64(stack, |a, b| a != b),
                F64Lt => cmp_f64(stack, |a, b| a < b),
                F64Gt => cmp_f64(stack, |a, b| a > b),
                F64Le => cmp_f64(stack, |a, b| a <= b),
                F64Ge => cmp_f64(stack, |a, b| a >= b),

                // --------------------------------------------- i32 arith
                I32Clz => un_i32(stack, |a| a.leading_zeros() as i32),
                I32Ctz => un_i32(stack, |a| a.trailing_zeros() as i32),
                I32Popcnt => un_i32(stack, |a| a.count_ones() as i32),
                I32Add => bin_i32(stack, i32::wrapping_add),
                I32Sub => bin_i32(stack, i32::wrapping_sub),
                I32Mul => bin_i32(stack, i32::wrapping_mul),
                I32DivS => {
                    let b = pop_i32(stack);
                    let a = pop_i32(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    let (v, overflow) = a.overflowing_div(b);
                    if overflow {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I32(v));
                }
                I32DivU => {
                    let b = pop_i32(stack) as u32;
                    let a = pop_i32(stack) as u32;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32((a / b) as i32));
                }
                I32RemS => {
                    let b = pop_i32(stack);
                    let a = pop_i32(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32(a.wrapping_rem(b)));
                }
                I32RemU => {
                    let b = pop_i32(stack) as u32;
                    let a = pop_i32(stack) as u32;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32((a % b) as i32));
                }
                I32And => bin_i32(stack, |a, b| a & b),
                I32Or => bin_i32(stack, |a, b| a | b),
                I32Xor => bin_i32(stack, |a, b| a ^ b),
                I32Shl => bin_i32(stack, |a, b| a.wrapping_shl(b as u32)),
                I32ShrS => bin_i32(stack, |a, b| a.wrapping_shr(b as u32)),
                I32ShrU => bin_i32(stack, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32),
                I32Rotl => bin_i32(stack, |a, b| a.rotate_left(b as u32 & 31)),
                I32Rotr => bin_i32(stack, |a, b| a.rotate_right(b as u32 & 31)),

                // --------------------------------------------- i64 arith
                I64Clz => un_i64(stack, |a| a.leading_zeros() as i64),
                I64Ctz => un_i64(stack, |a| a.trailing_zeros() as i64),
                I64Popcnt => un_i64(stack, |a| a.count_ones() as i64),
                I64Add => bin_i64(stack, i64::wrapping_add),
                I64Sub => bin_i64(stack, i64::wrapping_sub),
                I64Mul => bin_i64(stack, i64::wrapping_mul),
                I64DivS => {
                    let b = pop_i64(stack);
                    let a = pop_i64(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    let (v, overflow) = a.overflowing_div(b);
                    if overflow {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I64(v));
                }
                I64DivU => {
                    let b = pop_i64(stack) as u64;
                    let a = pop_i64(stack) as u64;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64((a / b) as i64));
                }
                I64RemS => {
                    let b = pop_i64(stack);
                    let a = pop_i64(stack);
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64(a.wrapping_rem(b)));
                }
                I64RemU => {
                    let b = pop_i64(stack) as u64;
                    let a = pop_i64(stack) as u64;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64((a % b) as i64));
                }
                I64And => bin_i64(stack, |a, b| a & b),
                I64Or => bin_i64(stack, |a, b| a | b),
                I64Xor => bin_i64(stack, |a, b| a ^ b),
                I64Shl => bin_i64(stack, |a, b| a.wrapping_shl(b as u32)),
                I64ShrS => bin_i64(stack, |a, b| a.wrapping_shr(b as u32)),
                I64ShrU => bin_i64(stack, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64),
                I64Rotl => bin_i64(stack, |a, b| a.rotate_left(b as u32 & 63)),
                I64Rotr => bin_i64(stack, |a, b| a.rotate_right(b as u32 & 63)),

                // --------------------------------------------- f32 arith
                F32Abs => un_f32(stack, f32::abs),
                F32Neg => un_f32(stack, |a| -a),
                F32Ceil => un_f32(stack, f32::ceil),
                F32Floor => un_f32(stack, f32::floor),
                F32Trunc => un_f32(stack, f32::trunc),
                F32Nearest => un_f32(stack, nearest_f32),
                F32Sqrt => un_f32(stack, f32::sqrt),
                F32Add => bin_f32(stack, |a, b| a + b),
                F32Sub => bin_f32(stack, |a, b| a - b),
                F32Mul => bin_f32(stack, |a, b| a * b),
                F32Div => bin_f32(stack, |a, b| a / b),
                F32Min => bin_f32(stack, wasm_min_f32),
                F32Max => bin_f32(stack, wasm_max_f32),
                F32Copysign => bin_f32(stack, f32::copysign),

                // --------------------------------------------- f64 arith
                F64Abs => un_f64(stack, f64::abs),
                F64Neg => un_f64(stack, |a| -a),
                F64Ceil => un_f64(stack, f64::ceil),
                F64Floor => un_f64(stack, f64::floor),
                F64Trunc => un_f64(stack, f64::trunc),
                F64Nearest => un_f64(stack, nearest_f64),
                F64Sqrt => un_f64(stack, f64::sqrt),
                F64Add => bin_f64(stack, |a, b| a + b),
                F64Sub => bin_f64(stack, |a, b| a - b),
                F64Mul => bin_f64(stack, |a, b| a * b),
                F64Div => bin_f64(stack, |a, b| a / b),
                F64Min => bin_f64(stack, wasm_min_f64),
                F64Max => bin_f64(stack, wasm_max_f64),
                F64Copysign => bin_f64(stack, f64::copysign),

                // -------------------------------------------- conversions
                I32WrapI64 => {
                    let a = pop_i64(stack);
                    stack.push(Value::I32(a as i32));
                }
                I32TruncF32S => {
                    let a = pop_f32(stack);
                    stack.push(Value::I32(trunc_to_i32(a as f64)?));
                }
                I32TruncF32U => {
                    let a = pop_f32(stack);
                    stack.push(Value::I32(trunc_to_u32(a as f64)? as i32));
                }
                I32TruncF64S => {
                    let a = pop_f64(stack);
                    stack.push(Value::I32(trunc_to_i32(a)?));
                }
                I32TruncF64U => {
                    let a = pop_f64(stack);
                    stack.push(Value::I32(trunc_to_u32(a)? as i32));
                }
                I64ExtendI32S => {
                    let a = pop_i32(stack);
                    stack.push(Value::I64(a as i64));
                }
                I64ExtendI32U => {
                    let a = pop_i32(stack);
                    stack.push(Value::I64(a as u32 as i64));
                }
                I64TruncF32S => {
                    let a = pop_f32(stack);
                    stack.push(Value::I64(trunc_to_i64(a as f64)?));
                }
                I64TruncF32U => {
                    let a = pop_f32(stack);
                    stack.push(Value::I64(trunc_to_u64(a as f64)? as i64));
                }
                I64TruncF64S => {
                    let a = pop_f64(stack);
                    stack.push(Value::I64(trunc_to_i64(a)?));
                }
                I64TruncF64U => {
                    let a = pop_f64(stack);
                    stack.push(Value::I64(trunc_to_u64(a)? as i64));
                }
                F32ConvertI32S => {
                    let a = pop_i32(stack);
                    stack.push(Value::F32(a as f32));
                }
                F32ConvertI32U => {
                    let a = pop_i32(stack);
                    stack.push(Value::F32(a as u32 as f32));
                }
                F32ConvertI64S => {
                    let a = pop_i64(stack);
                    stack.push(Value::F32(a as f32));
                }
                F32ConvertI64U => {
                    let a = pop_i64(stack);
                    stack.push(Value::F32(a as u64 as f32));
                }
                F32DemoteF64 => {
                    let a = pop_f64(stack);
                    stack.push(Value::F32(a as f32));
                }
                F64ConvertI32S => {
                    let a = pop_i32(stack);
                    stack.push(Value::F64(a as f64));
                }
                F64ConvertI32U => {
                    let a = pop_i32(stack);
                    stack.push(Value::F64(a as u32 as f64));
                }
                F64ConvertI64S => {
                    let a = pop_i64(stack);
                    stack.push(Value::F64(a as f64));
                }
                F64ConvertI64U => {
                    let a = pop_i64(stack);
                    stack.push(Value::F64(a as u64 as f64));
                }
                F64PromoteF32 => {
                    let a = pop_f32(stack);
                    stack.push(Value::F64(a as f64));
                }
                I32ReinterpretF32 => {
                    let a = pop_f32(stack);
                    stack.push(Value::I32(a.to_bits() as i32));
                }
                I64ReinterpretF64 => {
                    let a = pop_f64(stack);
                    stack.push(Value::I64(a.to_bits() as i64));
                }
                F32ReinterpretI32 => {
                    let a = pop_i32(stack);
                    stack.push(Value::F32(f32::from_bits(a as u32)));
                }
                F64ReinterpretI64 => {
                    let a = pop_i64(stack);
                    stack.push(Value::F64(f64::from_bits(a as u64)));
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn mem(&mut self) -> Result<&mut Memory, Trap> {
        self.memory.as_mut().ok_or_else(|| Trap::host("module has no memory"))
    }
}

// ------------------------------------------------------------ pop helpers

fn pop_i32(stack: &mut Vec<Value>) -> i32 {
    stack.pop().expect("validated stack").as_i32().expect("validated i32")
}

fn pop_addr(stack: &mut Vec<Value>) -> u32 {
    pop_i32(stack) as u32
}

fn pop_i64(stack: &mut Vec<Value>) -> i64 {
    stack.pop().expect("validated stack").as_i64().expect("validated i64")
}

fn pop_f32(stack: &mut Vec<Value>) -> f32 {
    stack.pop().expect("validated stack").as_f32().expect("validated f32")
}

fn pop_f64(stack: &mut Vec<Value>) -> f64 {
    stack.pop().expect("validated stack").as_f64().expect("validated f64")
}

fn un_i32(stack: &mut Vec<Value>, f: impl FnOnce(i32) -> i32) {
    let a = pop_i32(stack);
    stack.push(Value::I32(f(a)));
}

fn bin_i32(stack: &mut Vec<Value>, f: impl FnOnce(i32, i32) -> i32) {
    let b = pop_i32(stack);
    let a = pop_i32(stack);
    stack.push(Value::I32(f(a, b)));
}

fn cmp_i32(stack: &mut Vec<Value>, f: impl FnOnce(i32, i32) -> bool) {
    let b = pop_i32(stack);
    let a = pop_i32(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

fn cmp_u32(stack: &mut Vec<Value>, f: impl FnOnce(u32, u32) -> bool) {
    let b = pop_i32(stack) as u32;
    let a = pop_i32(stack) as u32;
    stack.push(Value::I32(f(a, b) as i32));
}

fn un_i64(stack: &mut Vec<Value>, f: impl FnOnce(i64) -> i64) {
    let a = pop_i64(stack);
    stack.push(Value::I64(f(a)));
}

fn bin_i64(stack: &mut Vec<Value>, f: impl FnOnce(i64, i64) -> i64) {
    let b = pop_i64(stack);
    let a = pop_i64(stack);
    stack.push(Value::I64(f(a, b)));
}

fn cmp_i64(stack: &mut Vec<Value>, f: impl FnOnce(i64, i64) -> bool) {
    let b = pop_i64(stack);
    let a = pop_i64(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

fn cmp_u64(stack: &mut Vec<Value>, f: impl FnOnce(u64, u64) -> bool) {
    let b = pop_i64(stack) as u64;
    let a = pop_i64(stack) as u64;
    stack.push(Value::I32(f(a, b) as i32));
}

fn un_f32(stack: &mut Vec<Value>, f: impl FnOnce(f32) -> f32) {
    let a = pop_f32(stack);
    stack.push(Value::F32(f(a)));
}

fn bin_f32(stack: &mut Vec<Value>, f: impl FnOnce(f32, f32) -> f32) {
    let b = pop_f32(stack);
    let a = pop_f32(stack);
    stack.push(Value::F32(f(a, b)));
}

fn cmp_f32(stack: &mut Vec<Value>, f: impl FnOnce(f32, f32) -> bool) {
    let b = pop_f32(stack);
    let a = pop_f32(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

fn un_f64(stack: &mut Vec<Value>, f: impl FnOnce(f64) -> f64) {
    let a = pop_f64(stack);
    stack.push(Value::F64(f(a)));
}

fn bin_f64(stack: &mut Vec<Value>, f: impl FnOnce(f64, f64) -> f64) {
    let b = pop_f64(stack);
    let a = pop_f64(stack);
    stack.push(Value::F64(f(a, b)));
}

fn cmp_f64(stack: &mut Vec<Value>, f: impl FnOnce(f64, f64) -> bool) {
    let b = pop_f64(stack);
    let a = pop_f64(stack);
    stack.push(Value::I32(f(a, b) as i32));
}

// ------------------------------------------------ float semantics helpers

fn wasm_min_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        // min(-0, +0) = -0.
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

fn wasm_max_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else {
        a.max(b)
    }
}

fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else {
        a.max(b)
    }
}

fn nearest_f32(a: f32) -> f32 {
    a.round_ties_even()
}

fn nearest_f64(a: f64) -> f64 {
    a.round_ties_even()
}

fn trunc_to_i32(a: f64) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(-2147483648.0..2147483648.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i32)
}

fn trunc_to_u32(a: f64) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(0.0..4294967296.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u32)
}

fn trunc_to_i64(a: f64) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(-9223372036854775808.0..9223372036854775808.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

fn trunc_to_u64(a: f64) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = a.trunc();
    if !(0.0..18446744073709551616.0).contains(&t) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}
