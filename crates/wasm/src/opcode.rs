//! Opcode table shared by the encoder and decoder.
//!
//! Parameterless instructions are generated from a single table so the two
//! directions can never drift apart; instructions with immediates are
//! handled explicitly in `encode`/`decode`.

use crate::instr::Instr;

macro_rules! simple_ops {
    ($($variant:ident => $opcode:expr),* $(,)?) => {
        /// Returns the opcode of a parameterless instruction.
        pub(crate) fn simple_opcode(i: &Instr) -> Option<u8> {
            match i {
                $(Instr::$variant => Some($opcode),)*
                _ => None,
            }
        }

        /// Builds the parameterless instruction for `opcode`.
        pub(crate) fn simple_from_opcode(b: u8) -> Option<Instr> {
            match b {
                $($opcode => Some(Instr::$variant),)*
                _ => None,
            }
        }
    };
}

simple_ops! {
    Unreachable => 0x00,
    Nop => 0x01,
    Return => 0x0F,
    Drop => 0x1A,
    Select => 0x1B,
    I32Eqz => 0x45,
    I32Eq => 0x46,
    I32Ne => 0x47,
    I32LtS => 0x48,
    I32LtU => 0x49,
    I32GtS => 0x4A,
    I32GtU => 0x4B,
    I32LeS => 0x4C,
    I32LeU => 0x4D,
    I32GeS => 0x4E,
    I32GeU => 0x4F,
    I64Eqz => 0x50,
    I64Eq => 0x51,
    I64Ne => 0x52,
    I64LtS => 0x53,
    I64LtU => 0x54,
    I64GtS => 0x55,
    I64GtU => 0x56,
    I64LeS => 0x57,
    I64LeU => 0x58,
    I64GeS => 0x59,
    I64GeU => 0x5A,
    F32Eq => 0x5B,
    F32Ne => 0x5C,
    F32Lt => 0x5D,
    F32Gt => 0x5E,
    F32Le => 0x5F,
    F32Ge => 0x60,
    F64Eq => 0x61,
    F64Ne => 0x62,
    F64Lt => 0x63,
    F64Gt => 0x64,
    F64Le => 0x65,
    F64Ge => 0x66,
    I32Clz => 0x67,
    I32Ctz => 0x68,
    I32Popcnt => 0x69,
    I32Add => 0x6A,
    I32Sub => 0x6B,
    I32Mul => 0x6C,
    I32DivS => 0x6D,
    I32DivU => 0x6E,
    I32RemS => 0x6F,
    I32RemU => 0x70,
    I32And => 0x71,
    I32Or => 0x72,
    I32Xor => 0x73,
    I32Shl => 0x74,
    I32ShrS => 0x75,
    I32ShrU => 0x76,
    I32Rotl => 0x77,
    I32Rotr => 0x78,
    I64Clz => 0x79,
    I64Ctz => 0x7A,
    I64Popcnt => 0x7B,
    I64Add => 0x7C,
    I64Sub => 0x7D,
    I64Mul => 0x7E,
    I64DivS => 0x7F,
    I64DivU => 0x80,
    I64RemS => 0x81,
    I64RemU => 0x82,
    I64And => 0x83,
    I64Or => 0x84,
    I64Xor => 0x85,
    I64Shl => 0x86,
    I64ShrS => 0x87,
    I64ShrU => 0x88,
    I64Rotl => 0x89,
    I64Rotr => 0x8A,
    F32Abs => 0x8B,
    F32Neg => 0x8C,
    F32Ceil => 0x8D,
    F32Floor => 0x8E,
    F32Trunc => 0x8F,
    F32Nearest => 0x90,
    F32Sqrt => 0x91,
    F32Add => 0x92,
    F32Sub => 0x93,
    F32Mul => 0x94,
    F32Div => 0x95,
    F32Min => 0x96,
    F32Max => 0x97,
    F32Copysign => 0x98,
    F64Abs => 0x99,
    F64Neg => 0x9A,
    F64Ceil => 0x9B,
    F64Floor => 0x9C,
    F64Trunc => 0x9D,
    F64Nearest => 0x9E,
    F64Sqrt => 0x9F,
    F64Add => 0xA0,
    F64Sub => 0xA1,
    F64Mul => 0xA2,
    F64Div => 0xA3,
    F64Min => 0xA4,
    F64Max => 0xA5,
    F64Copysign => 0xA6,
    I32WrapI64 => 0xA7,
    I32TruncF32S => 0xA8,
    I32TruncF32U => 0xA9,
    I32TruncF64S => 0xAA,
    I32TruncF64U => 0xAB,
    I64ExtendI32S => 0xAC,
    I64ExtendI32U => 0xAD,
    I64TruncF32S => 0xAE,
    I64TruncF32U => 0xAF,
    I64TruncF64S => 0xB0,
    I64TruncF64U => 0xB1,
    F32ConvertI32S => 0xB2,
    F32ConvertI32U => 0xB3,
    F32ConvertI64S => 0xB4,
    F32ConvertI64U => 0xB5,
    F32DemoteF64 => 0xB6,
    F64ConvertI32S => 0xB7,
    F64ConvertI32U => 0xB8,
    F64ConvertI64S => 0xB9,
    F64ConvertI64U => 0xBA,
    F64PromoteF32 => 0xBB,
    I32ReinterpretF32 => 0xBC,
    I64ReinterpretF64 => 0xBD,
    F32ReinterpretI32 => 0xBE,
    F64ReinterpretI64 => 0xBF,
}

/// Opcode of the first load instruction; loads/stores occupy a contiguous
/// opcode range handled by a second table in encode/decode.
pub(crate) const OP_BLOCK: u8 = 0x02;
pub(crate) const OP_LOOP: u8 = 0x03;
pub(crate) const OP_IF: u8 = 0x04;
pub(crate) const OP_ELSE: u8 = 0x05;
pub(crate) const OP_END: u8 = 0x0B;
pub(crate) const OP_BR: u8 = 0x0C;
pub(crate) const OP_BR_IF: u8 = 0x0D;
pub(crate) const OP_BR_TABLE: u8 = 0x0E;
pub(crate) const OP_CALL: u8 = 0x10;
pub(crate) const OP_LOCAL_GET: u8 = 0x20;
pub(crate) const OP_LOCAL_SET: u8 = 0x21;
pub(crate) const OP_LOCAL_TEE: u8 = 0x22;
pub(crate) const OP_GLOBAL_GET: u8 = 0x23;
pub(crate) const OP_GLOBAL_SET: u8 = 0x24;
pub(crate) const OP_MEMORY_SIZE: u8 = 0x3F;
pub(crate) const OP_MEMORY_GROW: u8 = 0x40;
pub(crate) const OP_I32_CONST: u8 = 0x41;
pub(crate) const OP_I64_CONST: u8 = 0x42;
pub(crate) const OP_F32_CONST: u8 = 0x43;
pub(crate) const OP_F64_CONST: u8 = 0x44;
pub(crate) const OP_PREFIX_FC: u8 = 0xFC;
pub(crate) const FC_MEMORY_COPY: u32 = 10;
pub(crate) const FC_MEMORY_FILL: u32 = 11;

macro_rules! mem_ops {
    ($($variant:ident => $opcode:expr),* $(,)?) => {
        /// Returns `(opcode, memarg)` for a load/store instruction.
        pub(crate) fn memop_opcode(i: &Instr) -> Option<(u8, crate::instr::MemArg)> {
            match i {
                $(Instr::$variant(m) => Some(($opcode, *m)),)*
                _ => None,
            }
        }

        /// Builds a load/store instruction from `opcode` and its memarg.
        pub(crate) fn memop_from_opcode(b: u8, m: crate::instr::MemArg) -> Option<Instr> {
            match b {
                $($opcode => Some(Instr::$variant(m)),)*
                _ => None,
            }
        }
    };
}

mem_ops! {
    I32Load => 0x28,
    I64Load => 0x29,
    F32Load => 0x2A,
    F64Load => 0x2B,
    I32Load8S => 0x2C,
    I32Load8U => 0x2D,
    I32Load16S => 0x2E,
    I32Load16U => 0x2F,
    I64Load8S => 0x30,
    I64Load8U => 0x31,
    I64Load16S => 0x32,
    I64Load16U => 0x33,
    I64Load32S => 0x34,
    I64Load32U => 0x35,
    I32Store => 0x36,
    I64Store => 0x37,
    F32Store => 0x38,
    F64Store => 0x39,
    I32Store8 => 0x3A,
    I32Store16 => 0x3B,
    I64Store8 => 0x3C,
    I64Store16 => 0x3D,
    I64Store32 => 0x3E,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemArg;

    #[test]
    fn simple_table_round_trips() {
        for op in 0x00u8..=0xBF {
            if let Some(instr) = simple_from_opcode(op) {
                assert_eq!(simple_opcode(&instr), Some(op));
            }
        }
    }

    #[test]
    fn memop_table_round_trips() {
        let m = MemArg { align: 2, offset: 8 };
        for op in 0x28u8..=0x3E {
            let instr = memop_from_opcode(op, m).expect("contiguous range");
            assert_eq!(memop_opcode(&instr), Some((op, m)));
        }
    }

    #[test]
    fn control_opcodes_not_in_simple_table() {
        assert!(simple_from_opcode(OP_BLOCK).is_none());
        assert!(simple_from_opcode(OP_CALL).is_none());
        assert!(simple_from_opcode(OP_I32_CONST).is_none());
    }
}
