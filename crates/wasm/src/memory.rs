//! Linear memory: a contiguous, bounds-checked, growable byte array.
//!
//! This is the centrepiece of Roadrunner's data model (paper §3.1): "Within
//! the Wasm VM, linear memory is exposed as a contiguous block of memory
//! and accessible through specific offsets to the host." The host-facing
//! [`Memory::read`]/[`Memory::write`] APIs are what the shim builds its
//! Table-1 operations on; every access is bounds-checked so host-side bugs
//! surface as traps instead of corruption.

use crate::trap::Trap;
use crate::types::Limits;

/// Size of a WebAssembly page: 64 KiB.
pub const PAGE: usize = 65536;

/// A linear memory instance.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    limits: Limits,
    /// Engine-wide cap applied on top of the declared maximum.
    engine_max_pages: u32,
}

impl Memory {
    /// Allocates a memory with `limits.min` pages.
    ///
    /// # Panics
    ///
    /// Panics if `limits.min` exceeds `engine_max_pages` — instantiation
    /// validates limits before construction.
    pub fn new(limits: Limits, engine_max_pages: u32) -> Self {
        assert!(
            limits.min <= engine_max_pages,
            "initial pages {} exceed engine cap {engine_max_pages}",
            limits.min
        );
        Self { data: vec![0; limits.min as usize * PAGE], limits, engine_max_pages }
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.data.len() / PAGE) as u32
    }

    /// Current size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the memory has zero pages.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Declared limits.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Grows by `delta` pages. Returns the previous size in pages, or
    /// `None` if growth would exceed the declared or engine maximum
    /// (mirroring `memory.grow`'s `-1` result).
    pub fn grow(&mut self, delta: u32) -> Option<u32> {
        let old = self.size_pages();
        let new = old.checked_add(delta)?;
        if let Some(max) = self.limits.max {
            if new > max {
                return None;
            }
        }
        if new > self.engine_max_pages {
            return None;
        }
        self.data.resize(new as usize * PAGE, 0);
        Some(old)
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, Trap> {
        let end = addr.checked_add(len).ok_or(Trap::MemoryOutOfBounds {
            addr,
            len,
            memory_size: self.data.len() as u64,
        })?;
        if end > self.data.len() as u64 {
            return Err(Trap::MemoryOutOfBounds {
                addr,
                len,
                memory_size: self.data.len() as u64,
            });
        }
        Ok(addr as usize)
    }

    /// Borrows `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`Trap::MemoryOutOfBounds`] if the range exceeds the memory.
    pub fn read(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let start = self.check(addr as u64, len as u64)?;
        Ok(&self.data[start..start + len as usize])
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Errors
    ///
    /// [`Trap::MemoryOutOfBounds`] if the range exceeds the memory.
    pub fn write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Trap> {
        let start = self.check(addr as u64, bytes.len() as u64)?;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Loads `N` bytes at `addr + offset` (the dynamic+static addressing
    /// of load instructions).
    pub fn load<const N: usize>(&self, addr: u32, offset: u32) -> Result<[u8; N], Trap> {
        let ea = addr as u64 + offset as u64;
        let start = self.check(ea, N as u64)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[start..start + N]);
        Ok(out)
    }

    /// Stores `N` bytes at `addr + offset`.
    pub fn store<const N: usize>(
        &mut self,
        addr: u32,
        offset: u32,
        value: [u8; N],
    ) -> Result<(), Trap> {
        let ea = addr as u64 + offset as u64;
        let start = self.check(ea, N as u64)?;
        self.data[start..start + N].copy_from_slice(&value);
        Ok(())
    }

    /// `memory.fill`: sets `len` bytes at `dst` to `byte`.
    ///
    /// # Errors
    ///
    /// [`Trap::MemoryOutOfBounds`] if the range exceeds the memory.
    pub fn fill(&mut self, dst: u32, byte: u8, len: u32) -> Result<(), Trap> {
        let start = self.check(dst as u64, len as u64)?;
        self.data[start..start + len as usize].fill(byte);
        Ok(())
    }

    /// `memory.copy`: moves `len` bytes from `src` to `dst` (overlap-safe,
    /// like `memmove`).
    ///
    /// # Errors
    ///
    /// [`Trap::MemoryOutOfBounds`] if either range exceeds the memory.
    pub fn copy_within(&mut self, dst: u32, src: u32, len: u32) -> Result<(), Trap> {
        let s = self.check(src as u64, len as u64)?;
        let d = self.check(dst as u64, len as u64)?;
        self.data.copy_within(s..s + len as usize, d);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(pages: u32) -> Memory {
        Memory::new(Limits::new(pages, Some(16)), 1024)
    }

    #[test]
    fn initial_size_matches_limits() {
        let m = mem(2);
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.len(), 2 * PAGE);
    }

    #[test]
    fn memory_is_zero_initialized() {
        let m = mem(1);
        assert!(m.read(0, PAGE as u32).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem(1);
        m.write(100, b"roadrunner").unwrap();
        assert_eq!(m.read(100, 10).unwrap(), b"roadrunner");
    }

    #[test]
    fn out_of_bounds_read_traps() {
        let m = mem(1);
        let err = m.read(PAGE as u32 - 4, 8).unwrap_err();
        assert!(matches!(err, Trap::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn boundary_access_is_exact() {
        let mut m = mem(1);
        // The very last byte is accessible…
        m.write(PAGE as u32 - 1, &[0xFF]).unwrap();
        assert_eq!(m.read(PAGE as u32 - 1, 1).unwrap(), &[0xFF]);
        // …one past it is not.
        assert!(m.write(PAGE as u32, &[0]).is_err());
        assert!(m.read(0, PAGE as u32 + 1).is_err());
    }

    #[test]
    fn address_overflow_traps_cleanly() {
        let m = mem(1);
        assert!(m.load::<8>(u32::MAX, u32::MAX).is_err());
    }

    #[test]
    fn grow_respects_declared_max() {
        let mut m = mem(1);
        assert_eq!(m.grow(3), Some(1));
        assert_eq!(m.size_pages(), 4);
        assert_eq!(m.grow(100), None, "declared max is 16");
        assert_eq!(m.size_pages(), 4);
    }

    #[test]
    fn grow_respects_engine_cap() {
        let mut m = Memory::new(Limits::new(1, None), 4);
        assert_eq!(m.grow(3), Some(1));
        assert_eq!(m.grow(1), None, "engine cap is 4 pages");
    }

    #[test]
    fn grown_pages_are_zeroed_and_old_data_kept() {
        let mut m = mem(1);
        m.write(0, b"keep").unwrap();
        m.grow(1).unwrap();
        assert_eq!(m.read(0, 4).unwrap(), b"keep");
        assert!(m.read(PAGE as u32, 16).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_load_store() {
        let mut m = mem(1);
        m.store::<4>(8, 4, 0xDEADBEEFu32.to_le_bytes()).unwrap();
        let raw = m.load::<4>(8, 4).unwrap();
        assert_eq!(u32::from_le_bytes(raw), 0xDEADBEEF);
    }

    #[test]
    fn fill_and_copy() {
        let mut m = mem(1);
        m.fill(10, 0xAB, 20).unwrap();
        assert!(m.read(10, 20).unwrap().iter().all(|&b| b == 0xAB));
        m.copy_within(100, 10, 20).unwrap();
        assert!(m.read(100, 20).unwrap().iter().all(|&b| b == 0xAB));
        // Overlapping copy behaves like memmove.
        m.copy_within(15, 10, 20).unwrap();
        assert!(m.read(15, 20).unwrap().iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn fill_out_of_bounds_traps() {
        let mut m = mem(1);
        assert!(m.fill(PAGE as u32 - 2, 0, 4).is_err());
        assert!(m.copy_within(0, PAGE as u32 - 2, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "exceed engine cap")]
    fn oversized_initial_memory_panics() {
        Memory::new(Limits::new(100, None), 10);
    }
}
