//! Traps — the fail-stop error mechanism of the Wasm sandbox.
//!
//! The paper's security argument (§7, "Security Concerns") rests on this
//! behaviour: "In the event of a boundary violation, the function execution
//! simply fails without affecting other parts of the system." A [`Trap`]
//! is that failure: it aborts the running function and surfaces to the
//! embedder, never corrupting host or sibling-module state.

use std::error::Error;
use std::fmt;

/// Reason a WebAssembly execution aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The `unreachable` instruction executed.
    Unreachable,
    /// A load/store/bulk-memory access fell outside linear memory.
    MemoryOutOfBounds {
        /// First byte of the attempted access.
        addr: u64,
        /// Length of the attempted access.
        len: u64,
        /// Current memory size in bytes.
        memory_size: u64,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// `i32.div_s`/`i64.div_s` overflow (MIN / -1).
    IntegerOverflow,
    /// Float-to-int conversion of NaN or out-of-range value.
    InvalidConversionToInteger,
    /// Call stack exceeded the engine limit.
    StackOverflow,
    /// The instance ran out of execution fuel (used for CPU metering).
    FuelExhausted,
    /// A host function reported an error.
    Host(String),
    /// An exported item was missing or had the wrong kind/signature.
    BadExport(String),
    /// `memory.grow` beyond the declared or engine maximum. Not a spec
    /// trap (grow returns -1); raised only by embedder APIs that require
    /// growth to succeed.
    MemoryLimit,
}

impl Trap {
    /// Convenience constructor for host-side failures.
    pub fn host(msg: impl Into<String>) -> Self {
        Trap::Host(msg.into())
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds { addr, len, memory_size } => write!(
                f,
                "out-of-bounds memory access: [{addr}, {addr}+{len}) beyond {memory_size} bytes"
            ),
            Trap::DivisionByZero => write!(f, "integer division by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversionToInteger => write!(f, "invalid conversion to integer"),
            Trap::StackOverflow => write!(f, "call stack exhausted"),
            Trap::FuelExhausted => write!(f, "execution fuel exhausted"),
            Trap::Host(msg) => write!(f, "host error: {msg}"),
            Trap::BadExport(name) => write!(f, "unknown or mismatched export `{name}`"),
            Trap::MemoryLimit => write!(f, "memory limit exceeded"),
        }
    }
}

impl Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let t = Trap::MemoryOutOfBounds { addr: 100, len: 4, memory_size: 64 };
        let s = t.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("64"));
        assert!(Trap::host("boom").to_string().contains("boom"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<Trap>();
    }
}
