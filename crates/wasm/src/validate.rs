//! Module validation: the stack-discipline type checker.
//!
//! Implements the standard validation algorithm (spec appendix
//! "Validation Algorithm") over the reproduced subset: every function body
//! is checked instruction-by-instruction against its declared signature,
//! with full support for unreachable-code polymorphism. A module that
//! passes validation cannot make the interpreter pop a wrong-typed or
//! missing operand — the sandbox guarantee the paper's isolation story
//! builds on.

use std::error::Error;
use std::fmt;

use crate::instr::{BlockType, Instr};
use crate::memory::PAGE;
use crate::module::{ExportKind, Module};
use crate::types::ValType;

/// Error describing why a module failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    context: String,
    message: String,
}

impl ValidationError {
    fn new(context: impl Into<String>, message: impl Into<String>) -> Self {
        Self { context: context.into(), message: message.into() }
    }

    /// Where the problem was found (e.g. `func[3]`).
    pub fn context(&self) -> &str {
        &self.context
    }

    /// What the problem is.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validation error in {}: {}", self.context, self.message)
    }
}

impl Error for ValidationError {}

type VResult<T> = Result<T, ValidationError>;

/// Validates `module`.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found: out-of-range indices,
/// duplicate export names, ill-typed bodies, bad data segments, etc.
pub fn validate(module: &Module) -> VResult<()> {
    // Imports and functions reference real types.
    for (i, import) in module.imports.iter().enumerate() {
        if import.type_idx as usize >= module.types.len() {
            return Err(ValidationError::new(
                format!("import[{i}]"),
                format!("type index {} out of range", import.type_idx),
            ));
        }
    }
    for (i, func) in module.funcs.iter().enumerate() {
        if func.type_idx as usize >= module.types.len() {
            return Err(ValidationError::new(
                format!("func[{i}]"),
                format!("type index {} out of range", func.type_idx),
            ));
        }
    }

    // Memory limits are coherent.
    if let Some(limits) = module.memory {
        if let Some(max) = limits.max {
            if max < limits.min {
                return Err(ValidationError::new(
                    "memory",
                    format!("max {max} pages below min {} pages", limits.min),
                ));
            }
        }
    }

    // Globals initialize with their own type.
    for (i, global) in module.globals.iter().enumerate() {
        if global.init.ty() != global.ty {
            return Err(ValidationError::new(
                format!("global[{i}]"),
                format!("initializer is {}, expected {}", global.init.ty(), global.ty),
            ));
        }
    }

    // Exports: unique names, in-range indices.
    for (i, export) in module.exports.iter().enumerate() {
        if module.exports[..i].iter().any(|e| e.name == export.name) {
            return Err(ValidationError::new(
                format!("export[{i}]"),
                format!("duplicate export name `{}`", export.name),
            ));
        }
        match export.kind {
            ExportKind::Func(idx) => {
                if idx as usize >= module.func_count() {
                    return Err(ValidationError::new(
                        format!("export[{i}]"),
                        format!("function index {idx} out of range"),
                    ));
                }
            }
            ExportKind::Memory => {
                if module.memory.is_none() {
                    return Err(ValidationError::new(
                        format!("export[{i}]"),
                        "module has no memory to export",
                    ));
                }
            }
            ExportKind::Global(idx) => {
                if idx as usize >= module.globals.len() {
                    return Err(ValidationError::new(
                        format!("export[{i}]"),
                        format!("global index {idx} out of range"),
                    ));
                }
            }
        }
    }

    // Data segments fit the initial memory.
    for (i, seg) in module.data.iter().enumerate() {
        let Some(limits) = module.memory else {
            return Err(ValidationError::new(
                format!("data[{i}]"),
                "data segment requires a memory",
            ));
        };
        let end = seg.offset as u64 + seg.bytes.len() as u64;
        if end > limits.min as u64 * PAGE as u64 {
            return Err(ValidationError::new(
                format!("data[{i}]"),
                format!("segment [{}, {end}) exceeds initial memory", seg.offset),
            ));
        }
    }

    // Start function exists with signature () -> ().
    if let Some(start) = module.start {
        let Some(ty) = module.func_type(start) else {
            return Err(ValidationError::new(
                "start",
                format!("function index {start} out of range"),
            ));
        };
        if !ty.params().is_empty() || !ty.results().is_empty() {
            return Err(ValidationError::new("start", "start function must be () -> ()"));
        }
    }

    // Type-check every body.
    for (i, func) in module.funcs.iter().enumerate() {
        let ty = &module.types[func.type_idx as usize];
        let mut locals: Vec<ValType> = ty.params().to_vec();
        locals.extend_from_slice(&func.locals);
        let mut checker = FuncValidator {
            module,
            locals,
            stack: Vec::new(),
            ctrls: Vec::new(),
            context: format!("func[{i}]"),
        };
        checker.push_frame(FrameKind::Func, ty.results().to_vec());
        checker
            .check_instrs(&func.body)
            .and_then(|()| checker.pop_frame().map(|_| ()))?;
    }

    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Func,
    Block,
    Loop,
    If,
}

#[derive(Debug)]
struct CtrlFrame {
    kind: FrameKind,
    results: Vec<ValType>,
    height: usize,
    unreachable: bool,
}

struct FuncValidator<'m> {
    #[allow(dead_code)]
    module: &'m Module,
    locals: Vec<ValType>,
    stack: Vec<ValType>,
    ctrls: Vec<CtrlFrame>,
    context: String,
}

impl<'m> FuncValidator<'m> {
    fn fail<T>(&self, msg: impl Into<String>) -> VResult<T> {
        Err(ValidationError::new(self.context.clone(), msg))
    }

    fn push_frame(&mut self, kind: FrameKind, results: Vec<ValType>) {
        self.ctrls.push(CtrlFrame { kind, results, height: self.stack.len(), unreachable: false });
    }

    /// Closes the innermost frame: its results must be on the stack, then
    /// they are transferred to the parent.
    fn pop_frame(&mut self) -> VResult<Vec<ValType>> {
        let results = self.ctrls.last().expect("frame underflow").results.clone();
        for &ty in results.iter().rev() {
            self.pop_expect(ty)?;
        }
        let frame = self.ctrls.pop().expect("frame underflow");
        if self.stack.len() != frame.height {
            return self.fail(format!(
                "block leaves {} extra value(s) on the stack",
                self.stack.len() - frame.height
            ));
        }
        self.stack.extend_from_slice(&results);
        Ok(results)
    }

    fn push_val(&mut self, ty: ValType) {
        self.stack.push(ty);
    }

    /// Pops a value of any type; `None` means "unknown" (polymorphic
    /// stack below an unconditional branch).
    fn pop_any(&mut self) -> VResult<Option<ValType>> {
        let frame = self.ctrls.last().expect("no frame");
        if self.stack.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return self.fail("value stack underflow");
        }
        Ok(self.stack.pop())
    }

    fn pop_expect(&mut self, ty: ValType) -> VResult<()> {
        match self.pop_any()? {
            None => Ok(()),
            Some(actual) if actual == ty => Ok(()),
            Some(actual) => self.fail(format!("expected {ty} on stack, found {actual}")),
        }
    }

    fn set_unreachable(&mut self) {
        let frame = self.ctrls.last_mut().expect("no frame");
        self.stack.truncate(frame.height);
        frame.unreachable = true;
    }

    /// The types a branch to `depth` must supply.
    fn label_types(&self, depth: u32) -> VResult<Vec<ValType>> {
        let idx = self
            .ctrls
            .len()
            .checked_sub(1 + depth as usize)
            .ok_or_else(|| {
                ValidationError::new(self.context.clone(), format!("branch depth {depth} too deep"))
            })?;
        let frame = &self.ctrls[idx];
        // Branching to a loop re-enters its start, which (in the MVP) takes
        // no values; branching to a block/if/func supplies its results.
        Ok(if frame.kind == FrameKind::Loop { Vec::new() } else { frame.results.clone() })
    }

    fn check_instrs(&mut self, instrs: &[Instr]) -> VResult<()> {
        for i in instrs {
            self.check_instr(i)?;
        }
        Ok(())
    }

    fn block_results(bt: BlockType) -> Vec<ValType> {
        match bt {
            BlockType::Empty => Vec::new(),
            BlockType::Value(t) => vec![t],
        }
    }

    fn check_instr(&mut self, instr: &Instr) -> VResult<()> {
        use ValType::*;
        if let Some((params, results)) = numeric_sig(instr) {
            for &p in params.iter().rev() {
                self.pop_expect(p)?;
            }
            for &r in results {
                self.push_val(r);
            }
            return Ok(());
        }
        match instr {
            Instr::Unreachable => self.set_unreachable(),
            Instr::Nop => {}
            Instr::Block(bt, body) => {
                self.push_frame(FrameKind::Block, Self::block_results(*bt));
                self.check_instrs(body)?;
                self.pop_frame()?;
            }
            Instr::Loop(bt, body) => {
                self.push_frame(FrameKind::Loop, Self::block_results(*bt));
                self.check_instrs(body)?;
                self.pop_frame()?;
            }
            Instr::If(bt, then, els) => {
                self.pop_expect(I32)?;
                let results = Self::block_results(*bt);
                self.push_frame(FrameKind::If, results.clone());
                self.check_instrs(then)?;
                self.pop_frame()?;
                // Re-check the else arm against the same result type; the
                // then arm's results were pushed, pop them first.
                for &ty in results.iter().rev() {
                    self.pop_expect(ty)?;
                }
                self.push_frame(FrameKind::If, results);
                self.check_instrs(els)?;
                self.pop_frame()?;
            }
            Instr::Br(depth) => {
                for &ty in self.label_types(*depth)?.iter().rev() {
                    self.pop_expect(ty)?;
                }
                self.set_unreachable();
            }
            Instr::BrIf(depth) => {
                self.pop_expect(I32)?;
                let types = self.label_types(*depth)?;
                for &ty in types.iter().rev() {
                    self.pop_expect(ty)?;
                }
                for &ty in &types {
                    self.push_val(ty);
                }
            }
            Instr::BrTable(targets, default) => {
                self.pop_expect(I32)?;
                let expected = self.label_types(*default)?;
                for &t in targets {
                    let got = self.label_types(t)?;
                    if got != expected {
                        return self.fail(format!(
                            "br_table targets disagree: {got:?} vs {expected:?}"
                        ));
                    }
                }
                for &ty in expected.iter().rev() {
                    self.pop_expect(ty)?;
                }
                self.set_unreachable();
            }
            Instr::Return => {
                let results = self.ctrls[0].results.clone();
                for &ty in results.iter().rev() {
                    self.pop_expect(ty)?;
                }
                self.set_unreachable();
            }
            Instr::Call(idx) => {
                let Some(ty) = self.module.func_type(*idx) else {
                    return self.fail(format!("call to unknown function {idx}"));
                };
                let ty = ty.clone();
                for &p in ty.params().iter().rev() {
                    self.pop_expect(p)?;
                }
                for &r in ty.results() {
                    self.push_val(r);
                }
            }
            Instr::Drop => {
                self.pop_any()?;
            }
            Instr::Select => {
                self.pop_expect(I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        return self.fail(format!("select arms differ: {x} vs {y}"))
                    }
                    (Some(x), _) | (_, Some(x)) => self.push_val(x),
                    (None, None) => {
                        // Fully polymorphic select in dead code: the result
                        // is unknown; approximate with i32 (dead anyway).
                        self.push_val(I32)
                    }
                }
            }
            Instr::LocalGet(i) => {
                let Some(&ty) = self.locals.get(*i as usize) else {
                    return self.fail(format!("unknown local {i}"));
                };
                self.push_val(ty);
            }
            Instr::LocalSet(i) => {
                let Some(&ty) = self.locals.get(*i as usize) else {
                    return self.fail(format!("unknown local {i}"));
                };
                self.pop_expect(ty)?;
            }
            Instr::LocalTee(i) => {
                let Some(&ty) = self.locals.get(*i as usize) else {
                    return self.fail(format!("unknown local {i}"));
                };
                self.pop_expect(ty)?;
                self.push_val(ty);
            }
            Instr::GlobalGet(i) => {
                let Some(global) = self.module.globals.get(*i as usize) else {
                    return self.fail(format!("unknown global {i}"));
                };
                self.push_val(global.ty);
            }
            Instr::GlobalSet(i) => {
                let Some(global) = self.module.globals.get(*i as usize) else {
                    return self.fail(format!("unknown global {i}"));
                };
                if !global.mutable {
                    return self.fail(format!("global {i} is immutable"));
                }
                self.pop_expect(global.ty)?;
            }
            // Loads.
            Instr::I32Load(_) | Instr::I32Load8S(_) | Instr::I32Load8U(_)
            | Instr::I32Load16S(_) | Instr::I32Load16U(_) => self.mem_load(I32)?,
            Instr::I64Load(_) | Instr::I64Load8S(_) | Instr::I64Load8U(_)
            | Instr::I64Load16S(_) | Instr::I64Load16U(_) | Instr::I64Load32S(_)
            | Instr::I64Load32U(_) => self.mem_load(I64)?,
            Instr::F32Load(_) => self.mem_load(F32)?,
            Instr::F64Load(_) => self.mem_load(F64)?,
            // Stores.
            Instr::I32Store(_) | Instr::I32Store8(_) | Instr::I32Store16(_) => {
                self.mem_store(I32)?
            }
            Instr::I64Store(_) | Instr::I64Store8(_) | Instr::I64Store16(_)
            | Instr::I64Store32(_) => self.mem_store(I64)?,
            Instr::F32Store(_) => self.mem_store(F32)?,
            Instr::F64Store(_) => self.mem_store(F64)?,
            Instr::MemorySize => {
                self.require_memory()?;
                self.push_val(I32);
            }
            Instr::MemoryGrow => {
                self.require_memory()?;
                self.pop_expect(I32)?;
                self.push_val(I32);
            }
            Instr::MemoryCopy | Instr::MemoryFill => {
                self.require_memory()?;
                self.pop_expect(I32)?;
                self.pop_expect(I32)?;
                self.pop_expect(I32)?;
            }
            Instr::I32Const(_) => self.push_val(I32),
            Instr::I64Const(_) => self.push_val(I64),
            Instr::F32Const(_) => self.push_val(F32),
            Instr::F64Const(_) => self.push_val(F64),
            other => {
                return self.fail(format!("instruction not covered by validator: {other:?}"))
            }
        }
        Ok(())
    }

    fn require_memory(&self) -> VResult<()> {
        if self.module.memory.is_none() {
            return self.fail("instruction requires a memory");
        }
        Ok(())
    }

    fn mem_load(&mut self, ty: ValType) -> VResult<()> {
        self.require_memory()?;
        self.pop_expect(ValType::I32)?;
        self.push_val(ty);
        Ok(())
    }

    fn mem_store(&mut self, ty: ValType) -> VResult<()> {
        self.require_memory()?;
        self.pop_expect(ty)?;
        self.pop_expect(ValType::I32)?;
        Ok(())
    }
}

const I32_: ValType = ValType::I32;
const I64_: ValType = ValType::I64;
const F32_: ValType = ValType::F32;
const F64_: ValType = ValType::F64;

/// Signature of pure numeric instructions (no immediates, no memory).
/// Shared with [`crate::compile`], whose static height tracking must agree
/// with the checker's.
pub(crate) fn numeric_sig(i: &Instr) -> Option<(&'static [ValType], &'static [ValType])> {
    use Instr::*;
    Some(match i {
        // i32 unary / test.
        I32Clz | I32Ctz | I32Popcnt | I32Eqz => (&[I32_], &[I32_]),
        // i32 binops and comparisons.
        I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
        | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr | I32Eq | I32Ne | I32LtS
        | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU => {
            (&[I32_, I32_], &[I32_])
        }
        // i64.
        I64Clz | I64Ctz | I64Popcnt => (&[I64_], &[I64_]),
        I64Eqz => (&[I64_], &[I32_]),
        I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => (&[I64_, I64_], &[I64_]),
        I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS | I64GeU => {
            (&[I64_, I64_], &[I32_])
        }
        // f32.
        F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
            (&[F32_], &[F32_])
        }
        F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
            (&[F32_, F32_], &[F32_])
        }
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => (&[F32_, F32_], &[I32_]),
        // f64.
        F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
            (&[F64_], &[F64_])
        }
        F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
            (&[F64_, F64_], &[F64_])
        }
        F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => (&[F64_, F64_], &[I32_]),
        // Conversions.
        I32WrapI64 => (&[I64_], &[I32_]),
        I32TruncF32S | I32TruncF32U | I32ReinterpretF32 => (&[F32_], &[I32_]),
        I32TruncF64S | I32TruncF64U => (&[F64_], &[I32_]),
        I64ExtendI32S | I64ExtendI32U => (&[I32_], &[I64_]),
        I64TruncF32S | I64TruncF32U => (&[F32_], &[I64_]),
        I64TruncF64S | I64TruncF64U | I64ReinterpretF64 => (&[F64_], &[I64_]),
        F32ConvertI32S | F32ConvertI32U | F32ReinterpretI32 => (&[I32_], &[F32_]),
        F32ConvertI64S | F32ConvertI64U => (&[I64_], &[F32_]),
        F32DemoteF64 => (&[F64_], &[F32_]),
        F64ConvertI32S | F64ConvertI32U => (&[I32_], &[F64_]),
        F64ConvertI64S | F64ConvertI64U | F64ReinterpretI64 => (&[I64_], &[F64_]),
        F64PromoteF32 => (&[F32_], &[F64_]),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{FuncType, Value};

    fn check(b: ModuleBuilder) -> VResult<()> {
        validate(&b.build_unchecked())
    }

    #[test]
    fn well_typed_arithmetic_passes() {
        check(ModuleBuilder::new().func(
            FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
            [],
            [Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add],
        ))
        .unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([ValType::I32, ValType::I64], [ValType::I32]),
            [],
            [Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add],
        ))
        .unwrap_err();
        assert!(err.message().contains("expected i32"));
    }

    #[test]
    fn stack_underflow_rejected() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], [ValType::I32]),
            [],
            [Instr::I32Add],
        ))
        .unwrap_err();
        assert!(err.message().contains("underflow"));
    }

    #[test]
    fn leftover_values_rejected() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], []),
            [],
            [Instr::I32Const(1)],
        ))
        .unwrap_err();
        assert!(err.message().contains("extra value"));
    }

    #[test]
    fn unreachable_code_is_polymorphic() {
        // After `unreachable`, any instruction sequence type-checks.
        check(ModuleBuilder::new().func(
            FuncType::new([], [ValType::I64]),
            [],
            [Instr::Unreachable, Instr::I32Add, Instr::Drop],
        ))
        .unwrap();
    }

    #[test]
    fn branch_carries_block_result() {
        check(ModuleBuilder::new().func(
            FuncType::new([], [ValType::I32]),
            [],
            [Instr::Block(
                BlockType::Value(ValType::I32),
                vec![Instr::I32Const(7), Instr::Br(0)],
            )],
        ))
        .unwrap();
    }

    #[test]
    fn branch_to_loop_carries_nothing() {
        check(ModuleBuilder::new().func(
            FuncType::new([], []),
            [ValType::I32],
            [Instr::Loop(
                BlockType::Empty,
                vec![
                    Instr::LocalGet(0),
                    Instr::I32Const(1),
                    Instr::I32Sub,
                    Instr::LocalTee(0),
                    Instr::BrIf(0),
                ],
            )],
        ))
        .unwrap();
    }

    #[test]
    fn if_without_else_must_be_empty_typed() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], [ValType::I32]),
            [],
            [
                Instr::I32Const(1),
                Instr::If(BlockType::Value(ValType::I32), vec![Instr::I32Const(2)], vec![]),
            ],
        ))
        .unwrap_err();
        assert!(err.message().contains("underflow"));
    }

    #[test]
    fn if_arms_must_agree() {
        check(ModuleBuilder::new().func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [],
            [
                Instr::LocalGet(0),
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![Instr::I32Const(1)],
                    vec![Instr::I32Const(2)],
                ),
            ],
        ))
        .unwrap();
    }

    #[test]
    fn br_table_targets_must_agree() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([ValType::I32], []),
            [],
            [Instr::Block(
                BlockType::Empty,
                vec![Instr::Block(
                    BlockType::Value(ValType::I32),
                    vec![Instr::I32Const(0), Instr::LocalGet(0), Instr::BrTable(vec![0], 1)],
                )],
            )],
        ))
        .unwrap_err();
        assert!(err.message().contains("br_table"));
    }

    #[test]
    fn call_checks_signature() {
        let b = ModuleBuilder::new()
            .import_func("env", "h", FuncType::new([ValType::I64], [ValType::I32]))
            .func(
                FuncType::new([], [ValType::I32]),
                [],
                [Instr::I64Const(1), Instr::Call(0)],
            );
        check(b).unwrap();

        let bad = ModuleBuilder::new()
            .import_func("env", "h", FuncType::new([ValType::I64], [ValType::I32]))
            .func(
                FuncType::new([], [ValType::I32]),
                [],
                [Instr::I32Const(1), Instr::Call(0)],
            );
        assert!(check(bad).is_err());
    }

    #[test]
    fn call_to_unknown_function_rejected() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], []),
            [],
            [Instr::Call(9)],
        ))
        .unwrap_err();
        assert!(err.message().contains("unknown function"));
    }

    #[test]
    fn memory_ops_require_memory() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], [ValType::I32]),
            [],
            [Instr::I32Const(0), Instr::I32Load(Default::default())],
        ))
        .unwrap_err();
        assert!(err.message().contains("requires a memory"));
    }

    #[test]
    fn immutable_global_set_rejected() {
        let err = check(
            ModuleBuilder::new()
                .global(ValType::I32, false, Value::I32(1))
                .func(
                    FuncType::new([], []),
                    [],
                    [Instr::I32Const(2), Instr::GlobalSet(0)],
                ),
        )
        .unwrap_err();
        assert!(err.message().contains("immutable"));
    }

    #[test]
    fn select_arms_must_match() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], [ValType::I32]),
            [],
            [
                Instr::I32Const(1),
                Instr::I64Const(2),
                Instr::I32Const(0),
                Instr::Select,
            ],
        ))
        .unwrap_err();
        assert!(err.message().contains("select"));
    }

    #[test]
    fn data_segment_must_fit_initial_memory() {
        let err = check(
            ModuleBuilder::new().memory(1, None).data(PAGE as u32 - 2, vec![0; 4]),
        )
        .unwrap_err();
        assert!(err.message().contains("exceeds initial memory"));
    }

    #[test]
    fn duplicate_export_names_rejected() {
        let err = check(
            ModuleBuilder::new()
                .func(FuncType::new([], []), [], [])
                .export_func("f", 0)
                .export_func("f", 0),
        )
        .unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn start_must_be_nullary() {
        let err = check(
            ModuleBuilder::new()
                .func(FuncType::new([ValType::I32], []), [], [Instr::LocalGet(0), Instr::Drop])
                .start(0),
        )
        .unwrap_err();
        assert!(err.message().contains("start"));
    }

    #[test]
    fn bad_branch_depth_rejected() {
        let err = check(ModuleBuilder::new().func(
            FuncType::new([], []),
            [],
            [Instr::Br(5)],
        ))
        .unwrap_err();
        assert!(err.message().contains("depth"));
    }

    #[test]
    fn memory_copy_and_fill_check() {
        check(ModuleBuilder::new().memory(1, None).func(
            FuncType::new([], []),
            [],
            [
                Instr::I32Const(0),
                Instr::I32Const(64),
                Instr::I32Const(32),
                Instr::MemoryCopy,
                Instr::I32Const(0),
                Instr::I32Const(0xAB),
                Instr::I32Const(16),
                Instr::MemoryFill,
            ],
        ))
        .unwrap();
    }
}
