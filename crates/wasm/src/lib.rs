// Instantiation errors keep full import/export context for diagnostics;
// they only occur on the cold setup path, so their size stays acceptable.
#![allow(clippy::result_large_err)]

//! A miniature WebAssembly engine.
//!
//! The Roadrunner paper runs its functions on WasmEdge; this crate is the
//! reproduction's stand-in runtime, built from scratch with the properties
//! the paper relies on:
//!
//! * **Linear memory** ([`memory::Memory`]) — a contiguous, bounds-checked
//!   byte array the host can address by `(offset, len)`, the foundation of
//!   Roadrunner's data access model (paper §3.1).
//! * **Deny-by-default host access** ([`host::Linker`]) — guests only
//!   reach capabilities the embedder links in; WASI and Roadrunner's
//!   Table-1 APIs are both host-function families.
//! * **Sandbox isolation** ([`instance::Instance`]) — instances own their
//!   memory; boundary violations trap ([`Trap`]) without corrupting
//!   anything else.
//! * **Real binary format** ([`encode`]/[`decode`]) — modules round-trip
//!   through the standard `\0asm` encoding (MVP subset + bulk memory), so
//!   bundles, cold-start measurements and module sizes are genuine.
//! * **Validation** ([`validate`]) — the standard stack-discipline type
//!   checker runs before any instantiation.
//! * **Metering** — executed-instruction counts and optional fuel, which
//!   the simulation converts into CPU time.
//! * **Two execution tiers** ([`ExecTier`]) — function bodies run on flat
//!   pre-compiled bytecode (cached per module, reusable frame arena) by
//!   default, with the original tree walker kept as a reference path;
//!   both are trap-, fuel- and instruction-count-identical.
//!
//! # Example
//!
//! ```
//! use roadrunner_wasm::types::{FuncType, ValType, Value};
//! use roadrunner_wasm::{EngineLimits, Instance, Instr, Linker, ModuleBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = ModuleBuilder::new()
//!     .func(
//!         FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
//!         [],
//!         [Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Mul],
//!     )
//!     .export_func("mul", 0)
//!     .build()?;
//!
//! // Round-trip through the real binary format.
//! let bytes = roadrunner_wasm::encode::encode(&module);
//! let module = roadrunner_wasm::decode::decode(&bytes)?;
//!
//! let mut instance = Instance::new(module, &Linker::new(), EngineLimits::default(), Box::new(()))?;
//! let out = instance.invoke("mul", &[Value::I32(6), Value::I32(7)])?;
//! assert_eq!(out, vec![Value::I32(42)]);
//! # Ok(())
//! # }
//! ```

pub mod builder;
mod compile;
pub mod decode;
pub mod encode;
pub mod host;
pub mod instance;
pub mod instr;
mod interp;
mod leb;
pub mod limits;
pub mod memory;
pub mod module;
mod opcode;
pub mod trap;
pub mod types;
pub mod validate;

pub use builder::ModuleBuilder;
pub use host::{Caller, Linker};
pub use instance::{Instance, InstanceError};
pub use instr::{BlockType, Instr, MemArg};
pub use limits::{EngineLimits, ExecTier};
pub use memory::{Memory, PAGE};
pub use module::Module;
pub use trap::Trap;
pub use types::{FuncType, ValType, Value};
