//! LEB128 encoding as used by the WebAssembly binary format: unsigned for
//! indices and sizes, signed for `i32.const`/`i64.const` immediates.

/// Appends unsigned LEB128.
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    write_u64(out, value as u64);
}

/// Appends unsigned LEB128.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends signed LEB128.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, value as i64);
}

/// Appends signed LEB128.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads unsigned LEB128 bounded to 32 bits.
pub fn read_u32(input: &[u8], pos: &mut usize) -> Option<u32> {
    let v = read_unsigned(input, pos, 32)?;
    Some(v as u32)
}

/// Reads unsigned LEB128 bounded to 64 bits.
#[allow(dead_code)] // exercised by tests; kept for format completeness
pub fn read_u64(input: &[u8], pos: &mut usize) -> Option<u64> {
    read_unsigned(input, pos, 64)
}

fn read_unsigned(input: &[u8], pos: &mut usize, bits: u32) -> Option<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        if shift >= bits {
            return None;
        }
        let payload = u64::from(byte & 0x7F);
        // Reject set bits beyond the target width.
        if shift + 7 > bits && payload >> (bits - shift) != 0 {
            return None;
        }
        result |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
}

/// Reads signed LEB128 bounded to 32 bits.
pub fn read_i32(input: &[u8], pos: &mut usize) -> Option<i32> {
    let v = read_signed(input, pos, 33)?;
    i32::try_from(v).ok()
}

/// Reads signed LEB128 bounded to 64 bits.
pub fn read_i64(input: &[u8], pos: &mut usize) -> Option<i64> {
    read_signed(input, pos, 64)
}

fn read_signed(input: &[u8], pos: &mut usize, bits: u32) -> Option<i64> {
    let mut result: i64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        if shift >= bits + 7 {
            return None;
        }
        result |= i64::from(byte & 0x7F) << shift.min(63);
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift;
            }
            return Some(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unsigned_known_encodings() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 624485);
        assert_eq!(buf, vec![0xE5, 0x8E, 0x26]);
    }

    #[test]
    fn signed_known_encodings() {
        let mut buf = Vec::new();
        write_i32(&mut buf, -123456);
        assert_eq!(buf, vec![0xC0, 0xBB, 0x78]);
        buf.clear();
        write_i64(&mut buf, -1);
        assert_eq!(buf, vec![0x7F]);
        buf.clear();
        write_i32(&mut buf, 64);
        assert_eq!(buf, vec![0xC0, 0x00]);
    }

    #[test]
    fn truncated_reads_fail() {
        let mut pos = 0;
        assert!(read_u32(&[0x80], &mut pos).is_none());
        pos = 0;
        assert!(read_i64(&[0xFF, 0xFF], &mut pos).is_none());
    }

    #[test]
    fn u32_overflow_rejected() {
        // 2^35 encoded: too wide for u32.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 35);
        let mut pos = 0;
        assert!(read_u32(&buf, &mut pos).is_none());
    }

    proptest! {
        #[test]
        fn u32_round_trip(v in any::<u32>()) {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u32(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn u64_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos), Some(v));
        }

        #[test]
        fn i32_round_trip(v in any::<i32>()) {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i32(&buf, &mut pos), Some(v));
        }

        #[test]
        fn i64_round_trip(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }
}
