//! AST → flat bytecode lowering: the compile tier.
//!
//! The tree walker ([`crate::interp`]) re-discovers control flow on every
//! execution: each `Block`/`Loop`/`If` is a recursive Rust call, each
//! branch unwinds through `Flow` values, and each wasm→wasm call recurses.
//! This module lowers a validated function body once into a flat
//! [`Vec<Op>`] where
//!
//! * blocks, loops and ifs become *jumps*: every branch carries a
//!   pre-resolved instruction offset plus the static operand-stack height
//!   and arity needed to unwind in O(arity);
//! * `br_table` becomes a dense offset table ([`BrTableOp`]);
//! * immediates are unpacked (`MemArg` → bare static offset, call targets
//!   split into defined vs host at compile time);
//! * per-function metadata (param count, locals, result arity) is computed
//!   once, so the dispatch loop never touches `FuncType` again.
//!
//! The lowering is a single pass that mirrors the validator's control
//! stack. Forward targets are backpatched when a frame closes; loop
//! back-edges resolve immediately. Dead code (after `br`/`return`/
//! `unreachable`) is lowered with saturating height tracking — the
//! validator's unreachable-code polymorphism means static heights there
//! are meaningless, and the ops can never execute.
//!
//! Two synthetic ops exist only in flat code and are **not counted** by
//! the interpreter's instruction/fuel accounting, because they have no
//! tree-walker counterpart: [`Op::Goto`] (end of a then-arm skipping the
//! else) and [`Op::FnEnd`] (the fall-through return appended to every
//! body). Everything else counts exactly once, keeping `instr_count` and
//! fuel byte-identical to the reference tier.
//!
//! # Superinstruction fusion
//!
//! A peephole pass ([`fuse`]) then rewrites hot patterns over locals and
//! constants — `local.get a; local.get b; i32.add; local.set d` and
//! friends — into single register-style superinstructions, cutting both
//! dispatch count and operand-stack traffic. Only *pure* ops fuse:
//! non-trapping i32 arithmetic/comparisons, `local.get`/`local.set` and
//! `i32.const`. Each fused op charges the exact number of tree
//! instructions it replaces; when fuel runs out inside a group, the
//! remaining sub-instructions are skipped entirely, which is
//! unobservable — they could only have touched the operand stack and
//! locals, both discarded when the trap unwinds — while `instr_count`
//! and fuel land on exactly the reference tier's values. Runs never
//! extend across a branch target (fusion would hide the landing pad);
//! all surviving targets are remapped to the shortened stream.

use crate::instr::Instr;
use crate::module::Module;
use crate::types::ValType;
use crate::validate::numeric_sig;

/// A pre-resolved branch: where to jump and how to unwind the operand
/// stack when taking it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Jump {
    /// Destination offset within the function's flat code.
    pub target: u32,
    /// Operand-stack height of the target label's block, relative to the
    /// frame's operand base.
    pub height: u32,
    /// Values carried to the label (0 for loop back-edges).
    pub arity: u32,
}

/// Pre-resolved `br_table`: a dense jump table plus the default.
#[derive(Debug, Clone)]
pub(crate) struct BrTableOp {
    /// Jump per table entry, indexed by the popped selector.
    pub targets: Box<[Jump]>,
    /// Jump taken when the selector is out of range.
    pub default: Jump,
}

/// The non-trapping i32 binary operators eligible for fusion. The
/// interpreter's `i32_bin_eval` must agree op-for-op with the plain
/// dispatch arms; the differential suite holds it to that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum I32Bin {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Rotr,
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

/// Fused `local.get a; local.get b; <cmp>; br_if` — a compare-and-
/// branch with no operand-stack traffic (boxed: the jump plus operands
/// exceed the 16-byte op budget).
#[derive(Debug, Clone)]
pub(crate) struct BrFuseLL {
    pub op: I32Bin,
    pub a: u16,
    pub b: u16,
    pub jump: Jump,
}

/// Fused `local.get a; i32.const c; <cmp>; br_if`.
#[derive(Debug, Clone)]
pub(crate) struct BrFuseLC {
    pub op: I32Bin,
    pub a: u16,
    pub c: i32,
    pub jump: Jump,
}

/// The fusable twin of a flat op, if it has one. Division and
/// remainder are deliberately absent: they trap, and a trap inside a
/// fused group would need partial-execution bookkeeping.
fn i32_bin_of(op: &Op) -> Option<I32Bin> {
    Some(match op {
        Op::I32Add => I32Bin::Add,
        Op::I32Sub => I32Bin::Sub,
        Op::I32Mul => I32Bin::Mul,
        Op::I32And => I32Bin::And,
        Op::I32Or => I32Bin::Or,
        Op::I32Xor => I32Bin::Xor,
        Op::I32Shl => I32Bin::Shl,
        Op::I32ShrS => I32Bin::ShrS,
        Op::I32ShrU => I32Bin::ShrU,
        Op::I32Rotl => I32Bin::Rotl,
        Op::I32Rotr => I32Bin::Rotr,
        Op::I32Eq => I32Bin::Eq,
        Op::I32Ne => I32Bin::Ne,
        Op::I32LtS => I32Bin::LtS,
        Op::I32LtU => I32Bin::LtU,
        Op::I32GtS => I32Bin::GtS,
        Op::I32GtU => I32Bin::GtU,
        Op::I32LeS => I32Bin::LeS,
        Op::I32LeU => I32Bin::LeU,
        Op::I32GeS => I32Bin::GeS,
        Op::I32GeU => I32Bin::GeU,
        _ => return None,
    })
}

/// The fieldless pure-numeric instructions, shared verbatim between
/// [`Instr`] and [`Op`]. Invoked with a macro that receives the full
/// list, so the enum definition and the `Instr → Op` mapping can never
/// drift apart.
macro_rules! for_each_numeric_op {
    ($m:ident) => {
        $m! {
            I32Eqz, I32Eq, I32Ne, I32LtS, I32LtU, I32GtS, I32GtU, I32LeS, I32LeU,
            I32GeS, I32GeU, I64Eqz, I64Eq, I64Ne, I64LtS, I64LtU, I64GtS, I64GtU,
            I64LeS, I64LeU, I64GeS, I64GeU, F32Eq, F32Ne, F32Lt, F32Gt, F32Le,
            F32Ge, F64Eq, F64Ne, F64Lt, F64Gt, F64Le, F64Ge, I32Clz, I32Ctz,
            I32Popcnt, I32Add, I32Sub, I32Mul, I32DivS, I32DivU, I32RemS, I32RemU,
            I32And, I32Or, I32Xor, I32Shl, I32ShrS, I32ShrU, I32Rotl, I32Rotr,
            I64Clz, I64Ctz, I64Popcnt, I64Add, I64Sub, I64Mul, I64DivS, I64DivU,
            I64RemS, I64RemU, I64And, I64Or, I64Xor, I64Shl, I64ShrS, I64ShrU,
            I64Rotl, I64Rotr, F32Abs, F32Neg, F32Ceil, F32Floor, F32Trunc,
            F32Nearest, F32Sqrt, F32Add, F32Sub, F32Mul, F32Div, F32Min, F32Max,
            F32Copysign, F64Abs, F64Neg, F64Ceil, F64Floor, F64Trunc, F64Nearest,
            F64Sqrt, F64Add, F64Sub, F64Mul, F64Div, F64Min, F64Max, F64Copysign,
            I32WrapI64, I32TruncF32S, I32TruncF32U, I32TruncF64S, I32TruncF64U,
            I64ExtendI32S, I64ExtendI32U, I64TruncF32S, I64TruncF32U, I64TruncF64S,
            I64TruncF64U, F32ConvertI32S, F32ConvertI32U, F32ConvertI64S,
            F32ConvertI64U, F32DemoteF64, F64ConvertI32S, F64ConvertI32U,
            F64ConvertI64S, F64ConvertI64U, F64PromoteF32, I32ReinterpretF32,
            I64ReinterpretF64, F32ReinterpretI32, F64ReinterpretI64,
        }
    };
}

macro_rules! define_op {
    ($($num:ident),* $(,)?) => {
        /// One flat bytecode instruction.
        ///
        /// 16 bytes; numeric variants mirror [`Instr`] names one-to-one.
        #[derive(Debug, Clone)]
        pub(crate) enum Op {
            // Synthetic (uncounted) — see module docs.
            Goto(u32),
            FnEnd,
            // Control.
            Unreachable,
            Nop,
            /// `Block`/`Loop` header: counts one instruction, no effect.
            Enter,
            /// Pops the condition; jumps to the else arm (or merge point)
            /// when it is zero.
            IfElse(u32),
            Br(Jump),
            BrIf(Jump),
            BrTable(Box<BrTableOp>),
            Return,
            /// Call a module-defined function, by *defined* index.
            Call(u32),
            /// Call an imported host function.
            CallHost {
                /// Host-function index (= import index).
                func: u32,
                /// Number of arguments to slice off the operand stack.
                params: u32,
            },
            Drop,
            Select,
            LocalGet(u32),
            LocalSet(u32),
            LocalTee(u32),
            GlobalGet(u32),
            GlobalSet(u32),
            // Memory (immediate = static offset; align is a hint, dropped).
            I32Load(u32),
            I64Load(u32),
            F32Load(u32),
            F64Load(u32),
            I32Load8S(u32),
            I32Load8U(u32),
            I32Load16S(u32),
            I32Load16U(u32),
            I64Load8S(u32),
            I64Load8U(u32),
            I64Load16S(u32),
            I64Load16U(u32),
            I64Load32S(u32),
            I64Load32U(u32),
            I32Store(u32),
            I64Store(u32),
            F32Store(u32),
            F64Store(u32),
            I32Store8(u32),
            I32Store16(u32),
            I64Store8(u32),
            I64Store16(u32),
            I64Store32(u32),
            MemorySize,
            MemoryGrow,
            MemoryCopy,
            MemoryFill,
            I32Const(i32),
            I64Const(i64),
            F32Const(f32),
            F64Const(f64),
            // Fused superinstructions — produced only by the [`fuse`]
            // peephole pass, never by direct lowering. The trailing
            // comment gives the replaced pattern; each counts as that
            // many tree instructions ("L" local, "C" const, "T" stack
            // top; the second operand of `TL`/`TC` forms is the RHS).
            /// `local[dst] = local[a] ⊕ local[b]` (get·get·op·set, 4).
            I32BinLLSet { op: I32Bin, a: u16, b: u16, dst: u16 },
            /// `local[dst] = local[a] ⊕ c` (get·const·op·set, 4).
            I32BinLCSet { op: I32Bin, a: u16, c: i32, dst: u16 },
            /// `local[dst] = pop() ⊕ local[a]` (get·op·set, 3).
            I32BinTLSet { op: I32Bin, a: u16, dst: u16 },
            /// `local[dst] = pop() ⊕ c` (const·op·set, 3).
            I32BinTCSet { op: I32Bin, c: i32, dst: u16 },
            /// `push(local[a] ⊕ local[b])` (get·get·op, 3).
            I32BinLL { op: I32Bin, a: u16, b: u16 },
            /// `push(local[a] ⊕ c)` (get·const·op, 3).
            I32BinLC { op: I32Bin, a: u16, c: i32 },
            /// `push(pop() ⊕ local[a])` (get·op, 2).
            I32BinTL { op: I32Bin, a: u16 },
            /// `push(pop() ⊕ c)` (const·op, 2).
            I32BinTC { op: I32Bin, c: i32 },
            /// `local[dst] = local[src]`, any type (get·set, 2).
            LocalCopy { src: u16, dst: u16 },
            /// `local[dst] = c` (const·set, 2).
            I32ConstSet { c: i32, dst: u16 },
            /// Branch when `local[a] ⊕ local[b]` is nonzero
            /// (get·get·cmp·br_if, 4).
            BrIfBinLL(Box<BrFuseLL>),
            /// Branch when `local[a] ⊕ c` is nonzero
            /// (get·const·cmp·br_if, 4).
            BrIfBinLC(Box<BrFuseLC>),
            $( $num, )*
        }

        /// Maps a pure-numeric [`Instr`] to its [`Op`] twin.
        fn numeric_op(i: &Instr) -> Op {
            match i {
                $( Instr::$num => Op::$num, )*
                other => unreachable!("not a pure numeric instruction: {other:?}"),
            }
        }
    };
}

for_each_numeric_op!(define_op);

/// A function body lowered to flat bytecode plus the frame metadata the
/// dispatch loop needs, precomputed once.
#[derive(Debug)]
pub(crate) struct CompiledFunc {
    /// Flat code; always ends with [`Op::FnEnd`].
    pub code: Box<[Op]>,
    /// Number of parameters (popped from the caller's operand stack).
    pub params: u32,
    /// Declared locals, zero-initialized at call time.
    pub locals: Box<[ValType]>,
    /// `params + locals.len()`: operands start this far above the frame
    /// base.
    pub frame_size: u32,
    /// Number of result values.
    pub ret_arity: u32,
}

/// A whole module's functions in flat form, indexed by *defined* index
/// (imports excluded — they never have bodies).
#[derive(Debug)]
pub(crate) struct CompiledModule {
    /// One compiled body per `Module::funcs` entry.
    pub funcs: Box<[CompiledFunc]>,
}

/// Lowers every defined function of a **validated** module.
pub(crate) fn compile(module: &Module) -> CompiledModule {
    let funcs = module
        .funcs
        .iter()
        .map(|def| {
            let ty = &module.types[def.type_idx as usize];
            let ret_arity = ty.results().len() as u32;
            let mut c = FnCompiler {
                module,
                ops: Vec::with_capacity(def.body.iter().map(Instr::size).sum::<usize>() + 1),
                ctrls: vec![Ctrl {
                    kind: CtrlKind::Block,
                    arity: ret_arity,
                    height: 0,
                    patches: Vec::new(),
                }],
                height: 0,
            };
            c.seq(&def.body);
            // Branches to the function label land on the trailing FnEnd.
            let root = c.ctrls.pop().expect("root frame");
            let end = c.ops.len() as u32;
            for (at, slot) in root.patches {
                patch_op(&mut c.ops[at], slot, end);
            }
            c.ops.push(Op::FnEnd);
            CompiledFunc {
                code: fuse(c.ops).into_boxed_slice(),
                params: ty.params().len() as u32,
                locals: def.locals.clone().into_boxed_slice(),
                frame_size: (ty.params().len() + def.locals.len()) as u32,
                ret_arity,
            }
        })
        .collect();
    CompiledModule { funcs }
}

/// The superinstruction peephole pass (see module docs).
///
/// Branch targets never land *inside* a fused run — a run may begin at
/// a target (the jump then resumes at the superinstruction) but never
/// extend across one. After rewriting, every surviving jump offset is
/// remapped to the shortened stream. `Return`'s jump-to-`FnEnd` and
/// call return addresses need no remapping: both are computed from the
/// new stream at run time.
fn fuse(code: Vec<Op>) -> Vec<Op> {
    let mut is_target = vec![false; code.len()];
    for op in &code {
        match op {
            Op::Goto(t) | Op::IfElse(t) => is_target[*t as usize] = true,
            Op::Br(j) | Op::BrIf(j) => is_target[j.target as usize] = true,
            Op::BrTable(bt) => {
                for j in bt.targets.iter() {
                    is_target[j.target as usize] = true;
                }
                is_target[bt.default.target as usize] = true;
            }
            _ => {}
        }
    }

    let mut out = Vec::with_capacity(code.len());
    let mut map = vec![0u32; code.len()];
    let mut i = 0;
    while i < code.len() {
        // Ops usable from `i` before the next branch target (capped at
        // the longest pattern).
        let free = 1 + is_target[i + 1..].iter().take(3).take_while(|&&t| !t).count();
        match match_superop(&code[i..], free) {
            Some((op, len)) => {
                for slot in &mut map[i..i + len] {
                    *slot = out.len() as u32;
                }
                out.push(op);
                i += len;
            }
            None => {
                map[i] = out.len() as u32;
                out.push(code[i].clone());
                i += 1;
            }
        }
    }

    for op in &mut out {
        match op {
            Op::Goto(t) | Op::IfElse(t) => *t = map[*t as usize],
            Op::Br(j) | Op::BrIf(j) => j.target = map[j.target as usize],
            Op::BrIfBinLL(f) => f.jump.target = map[f.jump.target as usize],
            Op::BrIfBinLC(f) => f.jump.target = map[f.jump.target as usize],
            Op::BrTable(bt) => {
                for j in bt.targets.iter_mut() {
                    j.target = map[j.target as usize];
                }
                bt.default.target = map[bt.default.target as usize];
            }
            _ => {}
        }
    }
    out
}

/// Matches the longest superinstruction pattern at the head of `w`,
/// using at most `free` ops. Local indices above `u16::MAX` simply
/// don't fuse.
fn match_superop(w: &[Op], free: usize) -> Option<(Op, usize)> {
    let loc = |i: &u32| u16::try_from(*i).ok();
    if free >= 4 {
        if let [Op::LocalGet(a), Op::LocalGet(b), o, Op::BrIf(jump), ..] = w {
            if let (Some(op), Some(a), Some(b)) = (i32_bin_of(o), loc(a), loc(b)) {
                let f = BrFuseLL { op, a, b, jump: *jump };
                return Some((Op::BrIfBinLL(Box::new(f)), 4));
            }
        }
        if let [Op::LocalGet(a), Op::I32Const(c), o, Op::BrIf(jump), ..] = w {
            if let (Some(op), Some(a)) = (i32_bin_of(o), loc(a)) {
                let f = BrFuseLC { op, a, c: *c, jump: *jump };
                return Some((Op::BrIfBinLC(Box::new(f)), 4));
            }
        }
        if let [Op::LocalGet(a), Op::LocalGet(b), o, Op::LocalSet(d), ..] = w {
            if let (Some(op), Some(a), Some(b), Some(dst)) =
                (i32_bin_of(o), loc(a), loc(b), loc(d))
            {
                return Some((Op::I32BinLLSet { op, a, b, dst }, 4));
            }
        }
        if let [Op::LocalGet(a), Op::I32Const(c), o, Op::LocalSet(d), ..] = w {
            if let (Some(op), Some(a), Some(dst)) = (i32_bin_of(o), loc(a), loc(d)) {
                return Some((Op::I32BinLCSet { op, a, c: *c, dst }, 4));
            }
        }
    }
    if free >= 3 {
        if let [Op::LocalGet(a), o, Op::LocalSet(d), ..] = w {
            if let (Some(op), Some(a), Some(dst)) = (i32_bin_of(o), loc(a), loc(d)) {
                return Some((Op::I32BinTLSet { op, a, dst }, 3));
            }
        }
        if let [Op::I32Const(c), o, Op::LocalSet(d), ..] = w {
            if let (Some(op), Some(dst)) = (i32_bin_of(o), loc(d)) {
                return Some((Op::I32BinTCSet { op, c: *c, dst }, 3));
            }
        }
        if let [Op::LocalGet(a), Op::LocalGet(b), o, ..] = w {
            if let (Some(op), Some(a), Some(b)) = (i32_bin_of(o), loc(a), loc(b)) {
                return Some((Op::I32BinLL { op, a, b }, 3));
            }
        }
        if let [Op::LocalGet(a), Op::I32Const(c), o, ..] = w {
            if let (Some(op), Some(a)) = (i32_bin_of(o), loc(a)) {
                return Some((Op::I32BinLC { op, a, c: *c }, 3));
            }
        }
    }
    if free >= 2 {
        if let [Op::LocalGet(a), o, ..] = w {
            if let (Some(op), Some(a)) = (i32_bin_of(o), loc(a)) {
                return Some((Op::I32BinTL { op, a }, 2));
            }
        }
        if let [Op::I32Const(c), o, ..] = w {
            if let Some(op) = i32_bin_of(o) {
                return Some((Op::I32BinTC { op, c: *c }, 2));
            }
        }
        if let [Op::LocalGet(s), Op::LocalSet(d), ..] = w {
            if let (Some(src), Some(dst)) = (loc(s), loc(d)) {
                return Some((Op::LocalCopy { src, dst }, 2));
            }
        }
        if let [Op::I32Const(c), Op::LocalSet(d), ..] = w {
            if let Some(dst) = loc(d) {
                return Some((Op::I32ConstSet { c: *c, dst }, 2));
            }
        }
    }
    None
}

enum CtrlKind {
    /// `Block` and `If` (and the function root): branches go forward to
    /// the merge point, carrying the label arity.
    Block,
    /// `Loop`: branches go back to the stored body start, carrying 0.
    Loop(u32),
}

struct Ctrl {
    kind: CtrlKind,
    arity: u32,
    /// Static operand height at block entry (= unwind floor).
    height: usize,
    /// Ops awaiting this frame's merge offset: `(op index, slot)`, where
    /// `slot` selects the entry inside a `br_table`.
    patches: Vec<(usize, usize)>,
}

struct FnCompiler<'m> {
    module: &'m Module,
    ops: Vec<Op>,
    ctrls: Vec<Ctrl>,
    /// Static operand height. Meaningless (but safely clamped) in dead
    /// code, where the validator permits polymorphic stack use.
    height: usize,
}

fn patch_op(op: &mut Op, slot: usize, target: u32) {
    match op {
        Op::Goto(t) | Op::IfElse(t) => *t = target,
        Op::Br(j) | Op::BrIf(j) => j.target = target,
        Op::BrTable(bt) => {
            if slot < bt.targets.len() {
                bt.targets[slot].target = target;
            } else {
                bt.default.target = target;
            }
        }
        other => unreachable!("unpatchable op {other:?}"),
    }
}

impl FnCompiler<'_> {
    fn seq(&mut self, body: &[Instr]) {
        for instr in body {
            self.lower(instr);
        }
    }

    fn push_vals(&mut self, n: usize) {
        self.height += n;
    }

    /// Pops `n` static values, clamped at the innermost frame's floor so
    /// polymorphic dead code cannot underflow.
    fn pop_vals(&mut self, n: usize) {
        let floor = self.ctrls.last().expect("ctrl frame").height;
        self.height = self.height.saturating_sub(n).max(floor);
    }

    /// After an unconditional transfer the rest of the sequence is dead;
    /// reset to the frame floor, matching the validator.
    fn reset_to_floor(&mut self) {
        self.height = self.ctrls.last().expect("ctrl frame").height;
    }

    fn open(&mut self, kind: CtrlKind, arity: u32) {
        self.ctrls.push(Ctrl { kind, arity, height: self.height, patches: Vec::new() });
    }

    fn close(&mut self) {
        let frame = self.ctrls.pop().expect("ctrl frame");
        let merge = self.ops.len() as u32;
        for (at, slot) in frame.patches {
            patch_op(&mut self.ops[at], slot, merge);
        }
        self.height = frame.height + frame.arity as usize;
    }

    /// Builds the jump for a branch to the `depth`-th enclosing label.
    /// The op that will hold it sits at `at` (`slot` indexes `br_table`
    /// entries); forward targets are registered for backpatching.
    fn jump_to(&mut self, depth: u32, at: usize, slot: usize) -> Jump {
        let idx = self.ctrls.len() - 1 - depth as usize;
        let frame = &mut self.ctrls[idx];
        match frame.kind {
            CtrlKind::Loop(start) => {
                Jump { target: start, height: frame.height as u32, arity: 0 }
            }
            CtrlKind::Block => {
                frame.patches.push((at, slot));
                Jump { target: u32::MAX, height: frame.height as u32, arity: frame.arity }
            }
        }
    }

    fn emit(&mut self, op: Op, pops: usize, pushes: usize) {
        self.pop_vals(pops);
        self.push_vals(pushes);
        self.ops.push(op);
    }

    fn lower(&mut self, instr: &Instr) {
        use Instr as I;
        if let Some((params, results)) = numeric_sig(instr) {
            return self.emit(numeric_op(instr), params.len(), results.len());
        }
        match instr {
            I::Unreachable => {
                self.ops.push(Op::Unreachable);
                self.reset_to_floor();
            }
            I::Nop => self.ops.push(Op::Nop),
            I::Block(bt, inner) => {
                self.ops.push(Op::Enter);
                self.open(CtrlKind::Block, bt.arity() as u32);
                self.seq(inner);
                self.close();
            }
            I::Loop(bt, inner) => {
                self.ops.push(Op::Enter);
                // Back-edges re-enter *after* the header, so the Enter
                // counts once — exactly like the tree walker, which counts
                // the Loop instruction on entry but not per iteration.
                let start = self.ops.len() as u32;
                self.open(CtrlKind::Loop(start), bt.arity() as u32);
                self.seq(inner);
                self.close();
            }
            I::If(bt, then, els) => {
                self.pop_vals(1);
                let if_at = self.ops.len();
                self.ops.push(Op::IfElse(u32::MAX));
                self.open(CtrlKind::Block, bt.arity() as u32);
                self.seq(then);
                if els.is_empty() {
                    // No else: a false condition falls through to merge.
                    self.ctrls.last_mut().expect("if frame").patches.push((if_at, 0));
                } else {
                    let goto_at = self.ops.len();
                    self.ops.push(Op::Goto(u32::MAX));
                    let else_start = self.ops.len() as u32;
                    patch_op(&mut self.ops[if_at], 0, else_start);
                    let frame = self.ctrls.last_mut().expect("if frame");
                    frame.patches.push((goto_at, 0));
                    let floor = frame.height;
                    self.height = floor;
                    self.seq(els);
                }
                self.close();
            }
            I::Br(depth) => {
                let at = self.ops.len();
                let jump = self.jump_to(*depth, at, 0);
                self.ops.push(Op::Br(jump));
                self.reset_to_floor();
            }
            I::BrIf(depth) => {
                self.pop_vals(1);
                let at = self.ops.len();
                let jump = self.jump_to(*depth, at, 0);
                self.ops.push(Op::BrIf(jump));
            }
            I::BrTable(targets, default) => {
                self.pop_vals(1);
                let at = self.ops.len();
                let entries: Box<[Jump]> = targets
                    .iter()
                    .enumerate()
                    .map(|(slot, &d)| self.jump_to(d, at, slot))
                    .collect();
                let default = self.jump_to(*default, at, targets.len());
                self.ops.push(Op::BrTable(Box::new(BrTableOp { targets: entries, default })));
                self.reset_to_floor();
            }
            I::Return => {
                self.ops.push(Op::Return);
                self.reset_to_floor();
            }
            I::Call(idx) => {
                let ty = self.module.func_type(*idx).expect("validated call target");
                let (np, nr) = (ty.params().len(), ty.results().len());
                self.pop_vals(np);
                self.push_vals(nr);
                let imports = self.module.imports.len() as u32;
                if *idx < imports {
                    self.ops.push(Op::CallHost { func: *idx, params: np as u32 });
                } else {
                    self.ops.push(Op::Call(*idx - imports));
                }
            }
            I::Drop => self.emit(Op::Drop, 1, 0),
            I::Select => self.emit(Op::Select, 3, 1),
            I::LocalGet(i) => self.emit(Op::LocalGet(*i), 0, 1),
            I::LocalSet(i) => self.emit(Op::LocalSet(*i), 1, 0),
            I::LocalTee(i) => self.ops.push(Op::LocalTee(*i)),
            I::GlobalGet(i) => self.emit(Op::GlobalGet(*i), 0, 1),
            I::GlobalSet(i) => self.emit(Op::GlobalSet(*i), 1, 0),
            I::I32Load(m) => self.emit(Op::I32Load(m.offset), 1, 1),
            I::I64Load(m) => self.emit(Op::I64Load(m.offset), 1, 1),
            I::F32Load(m) => self.emit(Op::F32Load(m.offset), 1, 1),
            I::F64Load(m) => self.emit(Op::F64Load(m.offset), 1, 1),
            I::I32Load8S(m) => self.emit(Op::I32Load8S(m.offset), 1, 1),
            I::I32Load8U(m) => self.emit(Op::I32Load8U(m.offset), 1, 1),
            I::I32Load16S(m) => self.emit(Op::I32Load16S(m.offset), 1, 1),
            I::I32Load16U(m) => self.emit(Op::I32Load16U(m.offset), 1, 1),
            I::I64Load8S(m) => self.emit(Op::I64Load8S(m.offset), 1, 1),
            I::I64Load8U(m) => self.emit(Op::I64Load8U(m.offset), 1, 1),
            I::I64Load16S(m) => self.emit(Op::I64Load16S(m.offset), 1, 1),
            I::I64Load16U(m) => self.emit(Op::I64Load16U(m.offset), 1, 1),
            I::I64Load32S(m) => self.emit(Op::I64Load32S(m.offset), 1, 1),
            I::I64Load32U(m) => self.emit(Op::I64Load32U(m.offset), 1, 1),
            I::I32Store(m) => self.emit(Op::I32Store(m.offset), 2, 0),
            I::I64Store(m) => self.emit(Op::I64Store(m.offset), 2, 0),
            I::F32Store(m) => self.emit(Op::F32Store(m.offset), 2, 0),
            I::F64Store(m) => self.emit(Op::F64Store(m.offset), 2, 0),
            I::I32Store8(m) => self.emit(Op::I32Store8(m.offset), 2, 0),
            I::I32Store16(m) => self.emit(Op::I32Store16(m.offset), 2, 0),
            I::I64Store8(m) => self.emit(Op::I64Store8(m.offset), 2, 0),
            I::I64Store16(m) => self.emit(Op::I64Store16(m.offset), 2, 0),
            I::I64Store32(m) => self.emit(Op::I64Store32(m.offset), 2, 0),
            I::MemorySize => self.emit(Op::MemorySize, 0, 1),
            I::MemoryGrow => self.emit(Op::MemoryGrow, 1, 1),
            I::MemoryCopy => self.emit(Op::MemoryCopy, 3, 0),
            I::MemoryFill => self.emit(Op::MemoryFill, 3, 0),
            I::I32Const(v) => self.emit(Op::I32Const(*v), 0, 1),
            I::I64Const(v) => self.emit(Op::I64Const(*v), 0, 1),
            I::F32Const(v) => self.emit(Op::F32Const(*v), 0, 1),
            I::F64Const(v) => self.emit(Op::F64Const(*v), 0, 1),
            other => unreachable!("numeric instruction fell through: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::BlockType;
    use crate::types::{FuncType, Value};

    fn compile_body(body: Vec<Instr>) -> CompiledFunc {
        let module = ModuleBuilder::new()
            .func(FuncType::new([], [ValType::I32]), [], body)
            .build()
            .expect("validates");
        let mut compiled = compile(&module);
        let mut funcs = std::mem::take(&mut compiled.funcs).into_vec();
        funcs.remove(0)
    }

    #[test]
    fn op_stays_16_bytes() {
        assert_eq!(std::mem::size_of::<Op>(), 16);
    }

    #[test]
    fn straight_line_body_appends_fnend() {
        let f = compile_body(vec![Instr::I32Const(7)]);
        assert_eq!(f.code.len(), 2);
        assert!(matches!(f.code[0], Op::I32Const(7)));
        assert!(matches!(f.code[1], Op::FnEnd));
        assert_eq!(f.ret_arity, 1);
    }

    #[test]
    fn block_branch_resolves_to_merge_point() {
        // block (result i32) { i32.const 3; br 0 }; ...
        let f = compile_body(vec![
            Instr::Block(
                BlockType::Value(ValType::I32),
                vec![Instr::I32Const(3), Instr::Br(0)],
            ),
        ]);
        // Enter, I32Const, Br, FnEnd — the Br lands past the block.
        let Op::Br(j) = &f.code[2] else { panic!("expected Br, got {:?}", f.code[2]) };
        assert_eq!(j.target, 3);
        assert_eq!(j.arity, 1);
        assert_eq!(j.height, 0);
        assert!(matches!(f.code[3], Op::FnEnd));
    }

    #[test]
    fn loop_branch_goes_back_past_the_header() {
        // loop { br_if 0 } with a const condition.
        let f = compile_body(vec![
            Instr::Loop(
                BlockType::Empty,
                vec![Instr::I32Const(0), Instr::BrIf(0)],
            ),
            Instr::I32Const(1),
        ]);
        // Enter(0), I32Const(1), BrIf(2), I32Const(3), FnEnd(4).
        let Op::BrIf(j) = &f.code[2] else { panic!("expected BrIf, got {:?}", f.code[2]) };
        assert_eq!(j.target, 1, "loop back-edge skips the counted Enter header");
        assert_eq!(j.arity, 0);
    }

    #[test]
    fn if_without_else_jumps_to_merge() {
        let f = compile_body(vec![
            Instr::I32Const(1),
            Instr::If(BlockType::Empty, vec![Instr::Nop], vec![]),
            Instr::I32Const(9),
        ]);
        // I32Const(0), IfElse(1), Nop(2), I32Const(3), FnEnd(4).
        let Op::IfElse(t) = f.code[1] else { panic!("expected IfElse, got {:?}", f.code[1]) };
        assert_eq!(t, 3);
    }

    #[test]
    fn if_with_else_inserts_uncounted_goto() {
        let f = compile_body(vec![
            Instr::I32Const(1),
            Instr::If(
                BlockType::Value(ValType::I32),
                vec![Instr::I32Const(10)],
                vec![Instr::I32Const(20)],
            ),
        ]);
        // I32Const(0), IfElse(1), I32Const(2), Goto(3), I32Const(4), FnEnd(5).
        let Op::IfElse(t) = f.code[1] else { panic!("expected IfElse, got {:?}", f.code[1]) };
        assert_eq!(t, 4, "false condition jumps to the else arm");
        let Op::Goto(g) = f.code[3] else { panic!("expected Goto, got {:?}", f.code[3]) };
        assert_eq!(g, 5, "then arm skips the else to the merge point");
    }

    #[test]
    fn br_table_entries_resolve_independently() {
        // block { block { br_table [1, 0] default=1 } nop }; i32.const 7
        let f = compile_body(vec![
            Instr::Block(
                BlockType::Empty,
                vec![
                    Instr::Block(
                        BlockType::Empty,
                        vec![Instr::I32Const(0), Instr::BrTable(vec![1, 0], 1)],
                    ),
                    Instr::Nop,
                ],
            ),
            Instr::I32Const(7),
        ]);
        // Enter(0), Enter(1), I32Const(2), BrTable(3), Nop(4), I32Const(5), FnEnd(6).
        let Op::BrTable(bt) = &f.code[3] else { panic!("expected BrTable, got {:?}", f.code[3]) };
        // Entry 0 targets the outer block's merge, entry 1 the inner one.
        assert_eq!(bt.targets[0].target, 5);
        assert_eq!(bt.targets[1].target, 4);
        assert_eq!(bt.default.target, 5);
    }

    #[test]
    fn calls_split_host_from_defined_at_compile_time() {
        let module = ModuleBuilder::new()
            .import_func("env", "h", FuncType::new([], []))
            .func(FuncType::new([], []), [], vec![Instr::Call(0), Instr::Call(1)])
            .build()
            .expect("validates");
        let compiled = compile(&module);
        let code = &compiled.funcs[0].code;
        assert!(matches!(code[0], Op::CallHost { func: 0, params: 0 }));
        assert!(matches!(code[1], Op::Call(0)), "defined index space excludes imports");
    }

    #[test]
    fn polymorphic_dead_code_compiles_without_underflow() {
        // After `unreachable`, drops and numeric ops run on a polymorphic
        // stack; lowering must clamp instead of panicking.
        let f = compile_body(vec![
            Instr::Unreachable,
            Instr::Drop,
            Instr::I32Add,
            Instr::I32Const(0),
            Instr::Drop,
            Instr::Drop,
        ]);
        assert!(matches!(f.code[0], Op::Unreachable));
        assert!(matches!(f.code.last(), Some(Op::FnEnd)));
    }

    #[test]
    fn branch_to_function_label_targets_fnend() {
        let f = compile_body(vec![Instr::I32Const(5), Instr::Br(0)]);
        // I32Const(0), Br(1), FnEnd(2).
        let Op::Br(j) = &f.code[1] else { panic!("expected Br, got {:?}", f.code[1]) };
        assert_eq!(j.target, 2);
        assert_eq!(j.arity, 1, "function-label branches carry the result arity");
    }

    /// Like [`compile_body`] but with two zeroed i32 locals, for the
    /// fusion tests (superinstructions only form over locals/consts).
    fn compile_locals(body: Vec<Instr>) -> CompiledFunc {
        let module = ModuleBuilder::new()
            .func(FuncType::new([], [ValType::I32]), [ValType::I32; 2], body)
            .build()
            .expect("validates");
        let mut compiled = compile(&module);
        std::mem::take(&mut compiled.funcs).into_vec().remove(0)
    }

    #[test]
    fn fusion_rewrites_local_arithmetic_into_superops() {
        // get·get·add·set collapses to a single register-style op.
        let f = compile_locals(vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Add,
            Instr::LocalSet(0),
            Instr::LocalGet(0),
        ]);
        assert_eq!(f.code.len(), 3);
        assert!(matches!(
            f.code[0],
            Op::I32BinLLSet { op: I32Bin::Add, a: 0, b: 1, dst: 0 }
        ));
        assert!(matches!(f.code[1], Op::LocalGet(0)));
        assert!(matches!(f.code[2], Op::FnEnd));
    }

    #[test]
    fn fusion_handles_stack_top_forms() {
        // The value under get·add·set comes off the operand stack, so
        // only the trailing three ops fuse (TLSet), not the ctz.
        let f = compile_locals(vec![
            Instr::LocalGet(0),
            Instr::I32Ctz,
            Instr::LocalGet(1),
            Instr::I32Add,
            Instr::LocalSet(0),
            Instr::LocalGet(0),
        ]);
        assert_eq!(f.code.len(), 5);
        assert!(matches!(f.code[0], Op::LocalGet(0)));
        assert!(matches!(f.code[1], Op::I32Ctz));
        assert!(matches!(f.code[2], Op::I32BinTLSet { op: I32Bin::Add, a: 1, dst: 0 }));
        assert!(matches!(f.code[3], Op::LocalGet(0)));
    }

    #[test]
    fn fusion_never_extends_across_a_branch_target() {
        // The else arm's `i32.const 20` is immediately followed by the
        // merge point (the Goto target): const·set must NOT fuse, or the
        // then arm's jump would land mid-superinstruction.
        let f = compile_locals(vec![
            Instr::LocalGet(0),
            Instr::If(
                BlockType::Value(ValType::I32),
                vec![Instr::I32Const(10)],
                vec![Instr::I32Const(20)],
            ),
            Instr::LocalSet(1),
            Instr::LocalGet(1),
        ]);
        // LG0(0), IfElse(1)->4, IC10(2), Goto(3)->5, IC20(4), LS1(5), LG1(6), FnEnd(7).
        assert_eq!(f.code.len(), 8, "no pair may fuse across the else/merge targets");
        assert!(matches!(f.code[4], Op::I32Const(20)));
        assert!(matches!(f.code[5], Op::LocalSet(1)));
        let Op::IfElse(t) = f.code[1] else { panic!("expected IfElse, got {:?}", f.code[1]) };
        assert_eq!(t, 4);
        let Op::Goto(g) = f.code[3] else { panic!("expected Goto, got {:?}", f.code[3]) };
        assert_eq!(g, 5);
    }

    #[test]
    fn fusion_remaps_jump_targets_to_the_shortened_stream() {
        // A 4-op fusion before the If shifts every later offset by 3;
        // the IfElse target must follow.
        let f = compile_locals(vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Add,
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::If(BlockType::Empty, vec![Instr::Nop], vec![]),
            Instr::LocalGet(0),
        ]);
        // LLSet(0), LG0(1), IfElse(2), Nop(3), LG0(4), FnEnd(5).
        assert_eq!(f.code.len(), 6);
        assert!(matches!(f.code[0], Op::I32BinLLSet { .. }));
        let Op::IfElse(t) = f.code[2] else { panic!("expected IfElse, got {:?}", f.code[2]) };
        assert_eq!(t, 4, "merge offset remapped from the unfused stream");
    }

    #[test]
    fn fusion_fuses_loop_compare_branches() {
        // The canonical counted loop: the exit test becomes one
        // compare-and-branch, the increment one LCSet, and the back-edge
        // still re-enters past the counted loop header.
        let f = compile_locals(vec![
            Instr::Block(
                BlockType::Empty,
                vec![Instr::Loop(
                    BlockType::Empty,
                    vec![
                        Instr::LocalGet(1),
                        Instr::LocalGet(0),
                        Instr::I32GeU,
                        Instr::BrIf(1),
                        Instr::LocalGet(1),
                        Instr::I32Const(1),
                        Instr::I32Add,
                        Instr::LocalSet(1),
                        Instr::Br(0),
                    ],
                )],
            ),
            Instr::LocalGet(1),
        ]);
        // Enter(0), Enter(1), BrIfBinLL(2), LCSet(3), Br(4)->2, LG1(5), FnEnd(6).
        assert_eq!(f.code.len(), 7);
        let Op::BrIfBinLL(fused) = &f.code[2] else {
            panic!("expected BrIfBinLL, got {:?}", f.code[2])
        };
        assert_eq!(fused.op, I32Bin::GeU);
        assert_eq!((fused.a, fused.b), (1, 0));
        assert_eq!(fused.jump.target, 5, "block merge remapped past the fused body");
        assert!(matches!(
            f.code[3],
            Op::I32BinLCSet { op: I32Bin::Add, a: 1, c: 1, dst: 1 }
        ));
        let Op::Br(back) = &f.code[4] else { panic!("expected Br, got {:?}", f.code[4]) };
        assert_eq!(back.target, 2, "back-edge lands on the fused exit test, past Enter");
    }

    #[test]
    fn module_with_start_and_globals_compiles_every_func(){
        let module = ModuleBuilder::new()
            .global(ValType::I32, true, Value::I32(0))
            .func(FuncType::new([], []), [], vec![Instr::Nop])
            .func(
                FuncType::new([ValType::I64], [ValType::I64]),
                [ValType::I64],
                vec![Instr::LocalGet(0), Instr::LocalTee(1)],
            )
            .build()
            .expect("validates");
        let compiled = compile(&module);
        assert_eq!(compiled.funcs.len(), 2);
        assert_eq!(compiled.funcs[1].params, 1);
        assert_eq!(compiled.funcs[1].frame_size, 2);
        assert_eq!(compiled.funcs[1].locals.len(), 1);
    }
}
