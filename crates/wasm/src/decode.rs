//! Binary decoder: WebAssembly binary format → [`Module`].
//!
//! Accepts artifacts produced by [`crate::encode`] (and any standard
//! binary that stays within the reproduced subset). Structured control
//! flow is rebuilt from the flat opcode stream; anything outside the
//! subset (tables, element segments, SIMD, reference types) is rejected
//! with a positioned error.

use std::error::Error;
use std::fmt;

use crate::instr::{BlockType, Instr, MemArg};
use crate::leb;
use crate::module::{DataSegment, Export, ExportKind, FuncDef, GlobalDef, Import, Module};
use crate::opcode::*;
use crate::types::{FuncType, Limits, ValType, Value};

/// Error produced when decoding a Wasm binary fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WasmDecodeError {
    offset: usize,
    reason: String,
}

impl WasmDecodeError {
    fn new(offset: usize, reason: impl Into<String>) -> Self {
        Self { offset, reason: reason.into() }
    }

    /// Byte offset at which decoding failed.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Human-readable failure description.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for WasmDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wasm decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for WasmDecodeError {}

/// Decodes a binary into an (unvalidated) [`Module`].
///
/// # Errors
///
/// Returns [`WasmDecodeError`] on malformed input or constructs outside
/// the reproduced subset. Run [`crate::validate::validate`] on the result
/// before instantiating.
pub fn decode(bytes: &[u8]) -> Result<Module, WasmDecodeError> {
    Parser { input: bytes, pos: 0 }.module()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

type PResult<T> = Result<T, WasmDecodeError>;

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> PResult<T> {
        Err(WasmDecodeError::new(self.pos, reason))
    }

    fn byte(&mut self) -> PResult<u8> {
        let b = *self
            .input
            .get(self.pos)
            .ok_or_else(|| WasmDecodeError::new(self.pos, "unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn take(&mut self, len: usize) -> PResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.input.len())
            .ok_or_else(|| WasmDecodeError::new(self.pos, "unexpected end of input"))?;
        let out = &self.input[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> PResult<u32> {
        leb::read_u32(self.input, &mut self.pos)
            .ok_or_else(|| WasmDecodeError::new(self.pos, "bad unsigned LEB128"))
    }

    fn i32(&mut self) -> PResult<i32> {
        leb::read_i32(self.input, &mut self.pos)
            .ok_or_else(|| WasmDecodeError::new(self.pos, "bad signed LEB128"))
    }

    fn i64(&mut self) -> PResult<i64> {
        leb::read_i64(self.input, &mut self.pos)
            .ok_or_else(|| WasmDecodeError::new(self.pos, "bad signed LEB128"))
    }

    fn name(&mut self) -> PResult<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WasmDecodeError::new(self.pos, "name is not UTF-8"))
    }

    fn valtype(&mut self) -> PResult<ValType> {
        let b = self.byte()?;
        ValType::from_byte(b)
            .ok_or_else(|| WasmDecodeError::new(self.pos - 1, format!("bad value type 0x{b:02x}")))
    }

    fn module(mut self) -> PResult<Module> {
        let magic = self.take(8)?;
        if magic != crate::encode::PREAMBLE {
            return Err(WasmDecodeError::new(0, "bad magic or version"));
        }
        let mut module = Module::default();
        let mut last_section = 0u8;
        let mut saw_code = false;
        while self.peek().is_some() {
            let id = self.byte()?;
            let size = self.u32()? as usize;
            let section_end = self
                .pos
                .checked_add(size)
                .filter(|&e| e <= self.input.len())
                .ok_or_else(|| WasmDecodeError::new(self.pos, "section size out of range"))?;
            if id != 0 {
                if id <= last_section {
                    return self.err(format!("section {id} out of order"));
                }
                last_section = id;
            }
            match id {
                0 => {
                    // Custom section: skip (name + payload).
                    self.pos = section_end;
                }
                1 => self.type_section(&mut module)?,
                2 => self.import_section(&mut module)?,
                3 => self.function_section(&mut module)?,
                5 => self.memory_section(&mut module)?,
                6 => self.global_section(&mut module)?,
                7 => self.export_section(&mut module)?,
                8 => module.start = Some(self.u32()?),
                10 => {
                    saw_code = true;
                    self.code_section(&mut module)?;
                }
                11 => self.data_section(&mut module)?,
                4 | 9 => {
                    return self.err("table/element sections are outside the supported subset")
                }
                other => return self.err(format!("unknown section id {other}")),
            }
            if self.pos != section_end {
                return self.err(format!("section {id} size mismatch"));
            }
        }
        if !module.funcs.is_empty() && !saw_code {
            return self.err("function section present without code section");
        }
        Ok(module)
    }

    fn type_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        for _ in 0..count {
            let tag = self.byte()?;
            if tag != 0x60 {
                return self.err(format!("expected functype 0x60, got 0x{tag:02x}"));
            }
            let n_params = self.u32()?;
            let mut params = Vec::with_capacity(n_params as usize);
            for _ in 0..n_params {
                params.push(self.valtype()?);
            }
            let n_results = self.u32()?;
            let mut results = Vec::with_capacity(n_results as usize);
            for _ in 0..n_results {
                results.push(self.valtype()?);
            }
            module.types.push(FuncType::new(params, results));
        }
        Ok(())
    }

    fn import_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        for _ in 0..count {
            let mod_name = self.name()?;
            let field = self.name()?;
            let kind = self.byte()?;
            if kind != 0x00 {
                return self.err("only function imports are supported");
            }
            let type_idx = self.u32()?;
            module.imports.push(Import { module: mod_name, name: field, type_idx });
        }
        Ok(())
    }

    fn function_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        for _ in 0..count {
            let type_idx = self.u32()?;
            module.funcs.push(FuncDef { type_idx, locals: Vec::new(), body: Vec::new() });
        }
        Ok(())
    }

    fn memory_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        if count > 1 {
            return self.err("at most one memory is supported");
        }
        if count == 1 {
            module.memory = Some(self.limits()?);
        }
        Ok(())
    }

    fn limits(&mut self) -> PResult<Limits> {
        match self.byte()? {
            0x00 => Ok(Limits::new(self.u32()?, None)),
            0x01 => {
                let min = self.u32()?;
                let max = self.u32()?;
                Ok(Limits::new(min, Some(max)))
            }
            other => self.err(format!("bad limits flag 0x{other:02x}")),
        }
    }

    fn global_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        for _ in 0..count {
            let ty = self.valtype()?;
            let mutable = match self.byte()? {
                0x00 => false,
                0x01 => true,
                other => return self.err(format!("bad mutability flag 0x{other:02x}")),
            };
            let init = self.const_expr()?;
            if init.ty() != ty {
                return self.err("global initializer type mismatch");
            }
            module.globals.push(GlobalDef { ty, mutable, init });
        }
        Ok(())
    }

    fn const_expr(&mut self) -> PResult<Value> {
        let value = match self.byte()? {
            OP_I32_CONST => Value::I32(self.i32()?),
            OP_I64_CONST => Value::I64(self.i64()?),
            OP_F32_CONST => {
                let raw = self.take(4)?;
                Value::F32(f32::from_le_bytes(raw.try_into().expect("4 bytes")))
            }
            OP_F64_CONST => {
                let raw = self.take(8)?;
                Value::F64(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
            }
            other => return self.err(format!("unsupported const expr opcode 0x{other:02x}")),
        };
        if self.byte()? != OP_END {
            return self.err("const expr must end with `end`");
        }
        Ok(value)
    }

    fn export_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        for _ in 0..count {
            let name = self.name()?;
            let kind_byte = self.byte()?;
            let idx = self.u32()?;
            let kind = match kind_byte {
                0x00 => ExportKind::Func(idx),
                0x02 => ExportKind::Memory,
                0x03 => ExportKind::Global(idx),
                other => return self.err(format!("unsupported export kind 0x{other:02x}")),
            };
            module.exports.push(Export { name, kind });
        }
        Ok(())
    }

    fn code_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()? as usize;
        if count != module.funcs.len() {
            return self.err(format!(
                "code section has {count} bodies for {} functions",
                module.funcs.len()
            ));
        }
        for i in 0..count {
            let size = self.u32()? as usize;
            let body_end = self
                .pos
                .checked_add(size)
                .filter(|&e| e <= self.input.len())
                .ok_or_else(|| WasmDecodeError::new(self.pos, "code body out of range"))?;
            let n_runs = self.u32()?;
            let mut locals = Vec::new();
            for _ in 0..n_runs {
                let run = self.u32()?;
                let ty = self.valtype()?;
                if locals.len() as u64 + run as u64 > 50_000 {
                    return self.err("too many locals");
                }
                locals.extend(std::iter::repeat_n(ty, run as usize));
            }
            let (body, terminator) = self.instrs()?;
            if terminator != OP_END {
                return self.err("function body must end with `end`");
            }
            if self.pos != body_end {
                return self.err("code body size mismatch");
            }
            module.funcs[i].locals = locals;
            module.funcs[i].body = body;
        }
        Ok(())
    }

    fn data_section(&mut self, module: &mut Module) -> PResult<()> {
        let count = self.u32()?;
        for _ in 0..count {
            let mem_idx = self.u32()?;
            if mem_idx != 0 {
                return self.err("data segment must target memory 0");
            }
            let offset = match self.const_expr()? {
                Value::I32(v) => v as u32,
                _ => return self.err("data offset must be an i32 const"),
            };
            let len = self.u32()? as usize;
            let bytes = self.take(len)?.to_vec();
            module.data.push(DataSegment { offset, bytes });
        }
        Ok(())
    }

    fn blocktype(&mut self) -> PResult<BlockType> {
        let b = self.byte()?;
        if b == 0x40 {
            return Ok(BlockType::Empty);
        }
        ValType::from_byte(b)
            .map(BlockType::Value)
            .ok_or_else(|| WasmDecodeError::new(self.pos - 1, "bad block type"))
    }

    /// Parses instructions until `end` (0x0B) or `else` (0x05), returning
    /// the terminator consumed.
    fn instrs(&mut self) -> PResult<(Vec<Instr>, u8)> {
        let mut out = Vec::new();
        loop {
            let op = self.byte()?;
            if op == OP_END || op == OP_ELSE {
                return Ok((out, op));
            }
            out.push(self.instr(op)?);
        }
    }

    fn instr(&mut self, op: u8) -> PResult<Instr> {
        if let Some(i) = simple_from_opcode(op) {
            return Ok(i);
        }
        if (0x28..=0x3E).contains(&op) {
            let align = self.u32()?;
            let offset = self.u32()?;
            return memop_from_opcode(op, MemArg { align, offset })
                .ok_or_else(|| WasmDecodeError::new(self.pos, "bad memory opcode"));
        }
        match op {
            OP_BLOCK => {
                let bt = self.blocktype()?;
                let (body, term) = self.instrs()?;
                if term != OP_END {
                    return self.err("block must end with `end`");
                }
                Ok(Instr::Block(bt, body))
            }
            OP_LOOP => {
                let bt = self.blocktype()?;
                let (body, term) = self.instrs()?;
                if term != OP_END {
                    return self.err("loop must end with `end`");
                }
                Ok(Instr::Loop(bt, body))
            }
            OP_IF => {
                let bt = self.blocktype()?;
                let (then, term) = self.instrs()?;
                let els = if term == OP_ELSE {
                    let (els, term2) = self.instrs()?;
                    if term2 != OP_END {
                        return self.err("if/else must end with `end`");
                    }
                    els
                } else {
                    Vec::new()
                };
                Ok(Instr::If(bt, then, els))
            }
            OP_BR => Ok(Instr::Br(self.u32()?)),
            OP_BR_IF => Ok(Instr::BrIf(self.u32()?)),
            OP_BR_TABLE => {
                let count = self.u32()? as usize;
                if count > 100_000 {
                    return self.err("br_table too large");
                }
                let mut targets = Vec::with_capacity(count);
                for _ in 0..count {
                    targets.push(self.u32()?);
                }
                let default = self.u32()?;
                Ok(Instr::BrTable(targets, default))
            }
            OP_CALL => Ok(Instr::Call(self.u32()?)),
            OP_LOCAL_GET => Ok(Instr::LocalGet(self.u32()?)),
            OP_LOCAL_SET => Ok(Instr::LocalSet(self.u32()?)),
            OP_LOCAL_TEE => Ok(Instr::LocalTee(self.u32()?)),
            OP_GLOBAL_GET => Ok(Instr::GlobalGet(self.u32()?)),
            OP_GLOBAL_SET => Ok(Instr::GlobalSet(self.u32()?)),
            OP_MEMORY_SIZE => {
                self.expect_zero_byte()?;
                Ok(Instr::MemorySize)
            }
            OP_MEMORY_GROW => {
                self.expect_zero_byte()?;
                Ok(Instr::MemoryGrow)
            }
            OP_I32_CONST => Ok(Instr::I32Const(self.i32()?)),
            OP_I64_CONST => Ok(Instr::I64Const(self.i64()?)),
            OP_F32_CONST => {
                let raw = self.take(4)?;
                Ok(Instr::F32Const(f32::from_le_bytes(raw.try_into().expect("4 bytes"))))
            }
            OP_F64_CONST => {
                let raw = self.take(8)?;
                Ok(Instr::F64Const(f64::from_le_bytes(raw.try_into().expect("8 bytes"))))
            }
            OP_PREFIX_FC => {
                let sub = self.u32()?;
                match sub {
                    FC_MEMORY_COPY => {
                        self.expect_zero_byte()?;
                        self.expect_zero_byte()?;
                        Ok(Instr::MemoryCopy)
                    }
                    FC_MEMORY_FILL => {
                        self.expect_zero_byte()?;
                        Ok(Instr::MemoryFill)
                    }
                    other => self.err(format!("unsupported 0xFC sub-opcode {other}")),
                }
            }
            other => self.err(format!("unsupported opcode 0x{other:02x}")),
        }
    }

    fn expect_zero_byte(&mut self) -> PResult<()> {
        if self.byte()? != 0x00 {
            return self.err("expected reserved zero byte");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::encode::encode;
    use crate::types::ValType;

    #[test]
    fn rejects_bad_magic() {
        let err = decode(b"\0asx\x01\0\0\0").unwrap_err();
        assert!(err.reason().contains("magic"));
    }

    #[test]
    fn rejects_truncation_everywhere_except_section_boundaries() {
        let m = ModuleBuilder::new()
            .memory(1, Some(2))
            .func(
                FuncType::new([ValType::I32], [ValType::I32]),
                [ValType::I64],
                [Instr::LocalGet(0)],
            )
            .export_func("f", 0)
            .data(8, b"hello".to_vec())
            .build_unchecked();
        let bytes = encode(&m);
        // A cut exactly at a section boundary is a well-formed (shorter)
        // module unless it separates the function section from its code.
        let mut boundaries = vec![8usize];
        let mut pos = 8usize;
        let mut has_funcs_without_code = false;
        while pos < bytes.len() {
            let id = bytes[pos];
            let mut p = pos + 1;
            let size = crate::leb::read_u32(&bytes, &mut p).unwrap() as usize;
            pos = p + size;
            if id == 3 {
                has_funcs_without_code = true;
            }
            if id == 10 {
                has_funcs_without_code = false;
            }
            if !has_funcs_without_code {
                boundaries.push(pos);
            }
        }
        for cut in 0..bytes.len() {
            if boundaries.contains(&cut) {
                assert!(decode(&bytes[..cut]).is_ok(), "boundary cut at {cut}");
            } else {
                assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} of {}", bytes.len());
            }
        }
    }

    #[test]
    fn decodes_what_encode_produces() {
        let m = ModuleBuilder::new()
            .memory(1, None)
            .global(ValType::I64, true, Value::I64(-7))
            .func(
                FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
                [],
                [Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add],
            )
            .export_func("add", 0)
            .export_memory("memory")
            .data(0, vec![1, 2, 3])
            .build_unchecked();
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn rejects_table_section() {
        // Hand-built binary with a table section (id 4).
        let mut bytes = crate::encode::PREAMBLE.to_vec();
        bytes.extend_from_slice(&[4, 1, 0]);
        assert!(decode(&bytes).unwrap_err().reason().contains("subset"));
    }

    #[test]
    fn rejects_out_of_order_sections() {
        let mut bytes = crate::encode::PREAMBLE.to_vec();
        // memory section (5) then type section (1): out of order.
        bytes.extend_from_slice(&[5, 3, 1, 0x00, 1]);
        bytes.extend_from_slice(&[1, 1, 0]);
        assert!(decode(&bytes).unwrap_err().reason().contains("order"));
    }

    #[test]
    fn skips_custom_sections() {
        let m = ModuleBuilder::new().memory(1, None).build_unchecked();
        let mut bytes = crate::encode::PREAMBLE.to_vec();
        // Custom section before the memory section.
        bytes.extend_from_slice(&[0, 5, 4]);
        bytes.extend_from_slice(b"name");
        bytes.extend_from_slice(&encode(&m)[8..]);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.memory, m.memory);
    }

    #[test]
    fn random_garbage_never_panics() {
        // A fixed xorshift so the test is deterministic.
        let mut state = 0x12345678u64;
        for len in 0..300 {
            let mut buf = crate::encode::PREAMBLE.to_vec();
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                buf.push((state & 0xFF) as u8);
            }
            let _ = decode(&buf);
        }
    }
}
