//! Core WebAssembly types: value types, runtime values, function
//! signatures and limits.

use std::fmt;

/// A WebAssembly value type. The engine implements the MVP numeric types;
/// reference types are outside the reproduced subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer (also used for pointers into linear memory).
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// The binary-format type byte (spec §5.3.1).
    pub fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7F,
            ValType::I64 => 0x7E,
            ValType::F32 => 0x7D,
            ValType::F64 => 0x7C,
        }
    }

    /// Parses a binary-format type byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x7F => Some(ValType::I32),
            0x7E => Some(ValType::I64),
            0x7D => Some(ValType::F32),
            0x7C => Some(ValType::F64),
            _ => None,
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A runtime WebAssembly value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An `i32` value.
    I32(i32),
    /// An `i64` value.
    I64(i64),
    /// An `f32` value.
    F32(f32),
    /// An `f64` value.
    F64(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// The zero value of `ty` (locals default to zero).
    pub fn zero(ty: ValType) -> Self {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// Returns the `i32` payload, if this is an [`Value::I32`].
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the `i64` payload, if this is an [`Value::I64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the `f32` payload, if this is an [`Value::F32`].
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the `f64` payload, if this is an [`Value::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The `i32` payload interpreted as an unsigned linear-memory address.
    pub fn as_addr(&self) -> Option<u32> {
        self.as_i32().map(|v| v as u32)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "i32:{v}"),
            Value::I64(v) => write!(f, "i64:{v}"),
            Value::F32(v) => write!(f, "f32:{v}"),
            Value::F64(v) => write!(f, "f64:{v}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I32(v as i32)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// A function signature: parameter and result types.
///
/// ```
/// # use roadrunner_wasm::types::{FuncType, ValType};
/// let sig = FuncType::new([ValType::I32, ValType::I32], [ValType::I32]);
/// assert_eq!(sig.params().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    params: Vec<ValType>,
    results: Vec<ValType>,
}

impl FuncType {
    /// Creates a signature from parameter and result type lists.
    pub fn new(
        params: impl IntoIterator<Item = ValType>,
        results: impl IntoIterator<Item = ValType>,
    ) -> Self {
        Self {
            params: params.into_iter().collect(),
            results: results.into_iter().collect(),
        }
    }

    /// Parameter types.
    pub fn params(&self) -> &[ValType] {
        &self.params
    }

    /// Result types.
    pub fn results(&self) -> &[ValType] {
        &self.results
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Memory limits in 64 KiB pages (spec §2.5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Initial page count.
    pub min: u32,
    /// Optional maximum page count.
    pub max: Option<u32>,
}

impl Limits {
    /// Creates limits; `max = None` means growable to the engine cap.
    pub fn new(min: u32, max: Option<u32>) -> Self {
        Self { min, max }
    }

    /// Whether `pages` satisfies these limits.
    pub fn allows(&self, pages: u32) -> bool {
        pages >= self.min && self.max.is_none_or(|m| pages <= m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_round_trip() {
        for ty in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(ty.to_byte()), Some(ty));
        }
        assert_eq!(ValType::from_byte(0x00), None);
    }

    #[test]
    fn value_type_and_accessors() {
        assert_eq!(Value::I32(5).ty(), ValType::I32);
        assert_eq!(Value::I32(5).as_i32(), Some(5));
        assert_eq!(Value::I32(5).as_i64(), None);
        assert_eq!(Value::I64(-1).as_i64(), Some(-1));
        assert_eq!(Value::F32(1.5).as_f32(), Some(1.5));
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
    }

    #[test]
    fn address_interpretation_is_unsigned() {
        assert_eq!(Value::I32(-1).as_addr(), Some(u32::MAX));
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(ValType::I32), Value::I32(0));
        assert_eq!(Value::zero(ValType::F64), Value::F64(0.0));
    }

    #[test]
    fn functype_display() {
        let sig = FuncType::new([ValType::I32, ValType::I64], [ValType::F64]);
        assert_eq!(sig.to_string(), "(i32, i64) -> (f64)");
    }

    #[test]
    fn limits_allow() {
        let l = Limits::new(1, Some(4));
        assert!(!l.allows(0));
        assert!(l.allows(1));
        assert!(l.allows(4));
        assert!(!l.allows(5));
        let unbounded = Limits::new(2, None);
        assert!(unbounded.allows(1_000_000));
    }
}
