//! Instances: a module brought to life inside its own sandbox.
//!
//! An [`Instance`] bundles a validated module with its linear memory,
//! globals, resolved host imports, fuel and host state — the "Wasm VM"
//! of the paper. Instances never share memory: every byte that crosses an
//! instance boundary does so through host functions or the embedder APIs,
//! which is exactly the property Roadrunner's shim mediates.

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::host::{HostFunc, Linker};
use crate::interp::{Exec, Machine};
use crate::limits::{EngineLimits, ExecTier};
use crate::memory::Memory;
use crate::module::{ExportKind, Module};
use crate::trap::Trap;
use crate::types::{FuncType, Value};
use crate::validate::{validate, ValidationError};

/// Error raised while instantiating a module.
#[derive(Debug)]
pub enum InstanceError {
    /// The module failed validation.
    Validation(ValidationError),
    /// An import had no definition in the linker.
    MissingImport {
        /// Import module namespace.
        module: String,
        /// Import field name.
        name: String,
    },
    /// An import's linker definition has a different signature.
    ImportTypeMismatch {
        /// Import module namespace.
        module: String,
        /// Import field name.
        name: String,
        /// Signature the module expects.
        expected: FuncType,
        /// Signature the linker provides.
        found: FuncType,
    },
    /// The module's initial memory exceeds the engine limit.
    MemoryTooLarge {
        /// Pages requested by the module.
        requested: u32,
        /// Engine cap in pages.
        cap: u32,
    },
    /// A data segment fell outside the initial memory.
    DataSegmentOutOfRange,
    /// The start function trapped.
    StartTrapped(Trap),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Validation(e) => write!(f, "{e}"),
            InstanceError::MissingImport { module, name } => {
                write!(f, "unresolved import `{module}::{name}`")
            }
            InstanceError::ImportTypeMismatch { module, name, expected, found } => write!(
                f,
                "import `{module}::{name}` signature mismatch: module expects {expected}, linker provides {found}"
            ),
            InstanceError::MemoryTooLarge { requested, cap } => {
                write!(f, "initial memory of {requested} pages exceeds engine cap of {cap}")
            }
            InstanceError::DataSegmentOutOfRange => {
                write!(f, "data segment outside initial memory")
            }
            InstanceError::StartTrapped(t) => write!(f, "start function trapped: {t}"),
        }
    }
}

impl Error for InstanceError {}

impl From<ValidationError> for InstanceError {
    fn from(e: ValidationError) -> Self {
        InstanceError::Validation(e)
    }
}

/// An instantiated module: the unit of execution and isolation.
pub struct Instance {
    module: Arc<Module>,
    memory: Option<Memory>,
    globals: Vec<Value>,
    host_funcs: Vec<HostFunc>,
    host_data: Box<dyn Any + Send>,
    limits: EngineLimits,
    fuel: Option<u64>,
    instr_count: u64,
    /// Reusable value stack + frame arena for the flat tier.
    machine: Machine,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("funcs", &self.module.func_count())
            .field("memory_pages", &self.memory.as_ref().map(Memory::size_pages))
            .field("instr_count", &self.instr_count)
            .finish_non_exhaustive()
    }
}

impl Instance {
    /// Validates `module`, resolves its imports against `linker`,
    /// initializes memory/globals/data and runs the start function.
    ///
    /// `host_data` is embedder state host functions can reach through
    /// [`crate::host::Caller::data`]; pass `()` when unused.
    ///
    /// # Errors
    ///
    /// See [`InstanceError`] for every failure mode.
    pub fn new(
        module: Module,
        linker: &Linker,
        limits: EngineLimits,
        host_data: Box<dyn Any + Send>,
    ) -> Result<Self, InstanceError> {
        validate(&module)?;

        let mut host_funcs = Vec::with_capacity(module.imports.len());
        for import in &module.imports {
            let Some((ty, f)) = linker.resolve(&import.module, &import.name) else {
                return Err(InstanceError::MissingImport {
                    module: import.module.clone(),
                    name: import.name.clone(),
                });
            };
            let expected = &module.types[import.type_idx as usize];
            if ty != expected {
                return Err(InstanceError::ImportTypeMismatch {
                    module: import.module.clone(),
                    name: import.name.clone(),
                    expected: expected.clone(),
                    found: ty.clone(),
                });
            }
            host_funcs.push(Arc::clone(f));
        }

        let mut memory = match module.memory {
            Some(mem_limits) => {
                if mem_limits.min > limits.max_memory_pages {
                    return Err(InstanceError::MemoryTooLarge {
                        requested: mem_limits.min,
                        cap: limits.max_memory_pages,
                    });
                }
                Some(Memory::new(mem_limits, limits.max_memory_pages))
            }
            None => None,
        };

        for seg in &module.data {
            let mem = memory.as_mut().ok_or(InstanceError::DataSegmentOutOfRange)?;
            mem.write(seg.offset, &seg.bytes)
                .map_err(|_| InstanceError::DataSegmentOutOfRange)?;
        }

        let globals = module.globals.iter().map(|g| g.init).collect();

        let mut instance = Self {
            module: Arc::new(module),
            memory,
            globals,
            host_funcs,
            host_data,
            limits,
            fuel: limits.initial_fuel,
            instr_count: 0,
            machine: Machine::default(),
        };

        if let Some(start) = instance.module.start {
            instance
                .call_index(start, &[])
                .map_err(InstanceError::StartTrapped)?;
        }

        Ok(instance)
    }

    /// Invokes the exported function `name` with `args`.
    ///
    /// # Errors
    ///
    /// [`Trap::BadExport`] if `name` is missing or not a function, a
    /// host-error trap if argument types mismatch, plus any runtime trap.
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let Some(export) = self.module.export(name) else {
            return Err(Trap::BadExport(name.to_owned()));
        };
        let ExportKind::Func(idx) = export.kind else {
            return Err(Trap::BadExport(name.to_owned()));
        };
        let ty = self.module.func_type(idx).expect("validated export").clone();
        if args.len() != ty.params().len()
            || args.iter().zip(ty.params()).any(|(a, &p)| a.ty() != p)
        {
            return Err(Trap::host(format!(
                "invoke `{name}`: arguments do not match signature {ty}"
            )));
        }
        self.call_index(idx, args)
    }

    fn call_index(&mut self, func_idx: u32, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let module = Arc::clone(&self.module);
        let mut exec = Exec {
            module: &module,
            memory: &mut self.memory,
            globals: &mut self.globals,
            host_funcs: &self.host_funcs,
            host_data: &mut self.host_data,
            fuel: &mut self.fuel,
            instr_count: &mut self.instr_count,
            max_call_depth: self.limits.max_call_depth,
        };
        match self.limits.exec_tier {
            ExecTier::Compiled => {
                let code = Arc::clone(module.code());
                exec.run_flat(&mut self.machine, &code, func_idx, args)
            }
            ExecTier::Reference => exec.call_function(func_idx, args, 0),
        }
    }

    /// The instance's module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Shared linear memory view (if the module declares one).
    pub fn memory(&self) -> Option<&Memory> {
        self.memory.as_ref()
    }

    /// Mutable linear memory view.
    pub fn memory_mut(&mut self) -> Option<&mut Memory> {
        self.memory.as_mut()
    }

    /// Reads an exported global by name.
    pub fn global(&self, name: &str) -> Option<Value> {
        match self.module.export(name)?.kind {
            ExportKind::Global(idx) => self.globals.get(idx as usize).copied(),
            _ => None,
        }
    }

    /// The embedder state, downcast to `T`.
    pub fn data<T: 'static>(&self) -> Option<&T> {
        self.host_data.downcast_ref::<T>()
    }

    /// Mutable embedder state, downcast to `T`.
    pub fn data_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.host_data.downcast_mut::<T>()
    }

    /// Remaining fuel (`None` when metering is disabled).
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Replenishes fuel (enables metering if it was off).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = Some(fuel);
    }

    /// Instructions executed so far — the basis for the embedder's CPU
    /// accounting (interpreted instructions × per-instruction cost).
    pub fn instr_count(&self) -> u64 {
        self.instr_count
    }

    /// Resets the executed-instruction counter (between invocations).
    pub fn reset_instr_count(&mut self) {
        self.instr_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{BlockType, Instr, MemArg};
    use crate::types::ValType;

    fn instantiate(module: Module) -> Instance {
        Instance::new(module, &Linker::new(), EngineLimits::default(), Box::new(()))
            .expect("instantiates")
    }

    #[test]
    fn add_function_works() {
        let module = ModuleBuilder::new()
            .func(
                FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
                [],
                [Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add],
            )
            .export_func("add", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        let out = inst.invoke("add", &[Value::I32(2), Value::I32(40)]).unwrap();
        assert_eq!(out, vec![Value::I32(42)]);
        assert!(inst.instr_count() > 0);
    }

    #[test]
    fn factorial_via_loop() {
        // fact(n): local acc=1; loop { if n<=1 break; acc*=n; n-=1 }
        let module = ModuleBuilder::new()
            .func(
                FuncType::new([ValType::I64], [ValType::I64]),
                [ValType::I64],
                [
                    Instr::I64Const(1),
                    Instr::LocalSet(1),
                    Instr::Block(
                        BlockType::Empty,
                        vec![Instr::Loop(
                            BlockType::Empty,
                            vec![
                                Instr::LocalGet(0),
                                Instr::I64Const(1),
                                Instr::I64LeS,
                                Instr::BrIf(1),
                                Instr::LocalGet(1),
                                Instr::LocalGet(0),
                                Instr::I64Mul,
                                Instr::LocalSet(1),
                                Instr::LocalGet(0),
                                Instr::I64Const(1),
                                Instr::I64Sub,
                                Instr::LocalSet(0),
                                Instr::Br(0),
                            ],
                        )],
                    ),
                    Instr::LocalGet(1),
                ],
            )
            .export_func("fact", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        let out = inst.invoke("fact", &[Value::I64(10)]).unwrap();
        assert_eq!(out, vec![Value::I64(3_628_800)]);
    }

    #[test]
    fn recursion_and_stack_overflow() {
        // f(n) = n == 0 ? 0 : f(n-1) + 1, recursive.
        let module = ModuleBuilder::new()
            .func(
                FuncType::new([ValType::I32], [ValType::I32]),
                [],
                [
                    Instr::LocalGet(0),
                    Instr::I32Eqz,
                    Instr::If(
                        BlockType::Value(ValType::I32),
                        vec![Instr::I32Const(0)],
                        vec![
                            Instr::LocalGet(0),
                            Instr::I32Const(1),
                            Instr::I32Sub,
                            Instr::Call(0),
                            Instr::I32Const(1),
                            Instr::I32Add,
                        ],
                    ),
                ],
            )
            .export_func("depth", 0)
            .build()
            .unwrap();
        let mut inst = Instance::new(
            module,
            &Linker::new(),
            EngineLimits::default().with_max_call_depth(64),
            Box::new(()),
        )
        .unwrap();
        assert_eq!(inst.invoke("depth", &[Value::I32(10)]).unwrap(), vec![Value::I32(10)]);
        assert_eq!(
            inst.invoke("depth", &[Value::I32(100)]).unwrap_err(),
            Trap::StackOverflow
        );
    }

    #[test]
    fn host_function_call_and_state() {
        let mut linker = Linker::new();
        linker.define(
            "env",
            "accumulate",
            FuncType::new([ValType::I32], []),
            |mut caller, args| {
                *caller.data::<i32>()? += args[0].as_i32().expect("typed arg");
                Ok(vec![])
            },
        );
        let module = ModuleBuilder::new()
            .import_func("env", "accumulate", FuncType::new([ValType::I32], []))
            .func(
                FuncType::new([], []),
                [],
                [
                    Instr::I32Const(5),
                    Instr::Call(0),
                    Instr::I32Const(7),
                    Instr::Call(0),
                ],
            )
            .export_func("run", 1)
            .build()
            .unwrap();
        let mut inst =
            Instance::new(module, &linker, EngineLimits::default(), Box::new(0i32)).unwrap();
        inst.invoke("run", &[]).unwrap();
        assert_eq!(*inst.data::<i32>().unwrap(), 12);
    }

    #[test]
    fn memory_data_segments_and_bulk_ops() {
        let module = ModuleBuilder::new()
            .memory(1, Some(4))
            .data(16, b"roadrunner".to_vec())
            .func(
                FuncType::new([], []),
                [],
                [
                    // Copy the data segment elsewhere and fill a region.
                    Instr::I32Const(100),
                    Instr::I32Const(16),
                    Instr::I32Const(10),
                    Instr::MemoryCopy,
                    Instr::I32Const(200),
                    Instr::I32Const(0x2A),
                    Instr::I32Const(4),
                    Instr::MemoryFill,
                ],
            )
            .export_func("run", 0)
            .export_memory("memory")
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        inst.invoke("run", &[]).unwrap();
        let mem = inst.memory().unwrap();
        assert_eq!(mem.read(100, 10).unwrap(), b"roadrunner");
        assert_eq!(mem.read(200, 4).unwrap(), &[0x2A; 4]);
    }

    #[test]
    fn traps_propagate() {
        let module = ModuleBuilder::new()
            .func(
                FuncType::new([ValType::I32], [ValType::I32]),
                [],
                [Instr::I32Const(1), Instr::LocalGet(0), Instr::I32DivS],
            )
            .export_func("inv", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        assert_eq!(inst.invoke("inv", &[Value::I32(0)]).unwrap_err(), Trap::DivisionByZero);
        // The instance stays usable after a trap — fail-stop, not corrupt.
        assert_eq!(inst.invoke("inv", &[Value::I32(1)]).unwrap(), vec![Value::I32(1)]);
    }

    #[test]
    fn fuel_exhaustion() {
        let module = ModuleBuilder::new()
            .func(
                FuncType::new([], []),
                [],
                [Instr::Loop(BlockType::Empty, vec![Instr::Br(0)])],
            )
            .export_func("spin", 0)
            .build()
            .unwrap();
        let mut inst = Instance::new(
            module,
            &Linker::new(),
            EngineLimits::default().with_fuel(10_000),
            Box::new(()),
        )
        .unwrap();
        assert_eq!(inst.invoke("spin", &[]).unwrap_err(), Trap::FuelExhausted);
        // Refuelling makes it runnable again.
        inst.set_fuel(100);
        assert_eq!(inst.invoke("spin", &[]).unwrap_err(), Trap::FuelExhausted);
    }

    #[test]
    fn missing_import_rejected() {
        let module = ModuleBuilder::new()
            .import_func("env", "nope", FuncType::new([], []))
            .build()
            .unwrap();
        match Instance::new(module, &Linker::new(), EngineLimits::default(), Box::new(())) {
            Err(InstanceError::MissingImport { module, name }) => {
                assert_eq!(module, "env");
                assert_eq!(name, "nope");
            }
            other => panic!("expected MissingImport, got {other:?}"),
        }
    }

    #[test]
    fn import_signature_mismatch_rejected() {
        let mut linker = Linker::new();
        linker.define("env", "f", FuncType::new([ValType::I64], []), |_, _| Ok(vec![]));
        let module = ModuleBuilder::new()
            .import_func("env", "f", FuncType::new([ValType::I32], []))
            .build()
            .unwrap();
        assert!(matches!(
            Instance::new(module, &linker, EngineLimits::default(), Box::new(())),
            Err(InstanceError::ImportTypeMismatch { .. })
        ));
    }

    #[test]
    fn memory_cap_enforced_at_instantiation() {
        let module = ModuleBuilder::new().memory(100, None).build().unwrap();
        assert!(matches!(
            Instance::new(
                module,
                &Linker::new(),
                EngineLimits::default().with_max_memory_pages(10),
                Box::new(())
            ),
            Err(InstanceError::MemoryTooLarge { requested: 100, cap: 10 })
        ));
    }

    #[test]
    fn start_function_runs() {
        let module = ModuleBuilder::new()
            .memory(1, None)
            .func(
                FuncType::new([], []),
                [],
                [Instr::I32Const(0), Instr::I32Const(0xAB), Instr::I32Store8(MemArg::default())],
            )
            .start(0)
            .build()
            .unwrap();
        let inst = instantiate(module);
        assert_eq!(inst.memory().unwrap().read(0, 1).unwrap(), &[0xAB]);
    }

    #[test]
    fn invoke_checks_arguments() {
        let module = ModuleBuilder::new()
            .func(FuncType::new([ValType::I32], []), [], [Instr::LocalGet(0), Instr::Drop])
            .export_func("f", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        assert!(matches!(inst.invoke("f", &[]).unwrap_err(), Trap::Host(_)));
        assert!(matches!(
            inst.invoke("f", &[Value::I64(1)]).unwrap_err(),
            Trap::Host(_)
        ));
        assert!(matches!(
            inst.invoke("missing", &[]).unwrap_err(),
            Trap::BadExport(_)
        ));
    }

    #[test]
    fn br_table_dispatch() {
        // Returns 10/20/30 for inputs 0/1/other via br_table.
        let module = ModuleBuilder::new()
            .func(
                FuncType::new([ValType::I32], [ValType::I32]),
                [],
                [Instr::Block(
                    BlockType::Value(ValType::I32),
                    vec![Instr::Block(
                        BlockType::Empty,
                        vec![Instr::Block(
                            BlockType::Empty,
                            vec![
                                Instr::LocalGet(0),
                                Instr::BrTable(vec![0, 1], 1),
                            ],
                        ),
                        Instr::I32Const(10),
                        Instr::Br(1),
                        ],
                    ),
                    Instr::I32Const(20),
                    ],
                )],
            )
            .export_func("dispatch", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        assert_eq!(inst.invoke("dispatch", &[Value::I32(0)]).unwrap(), vec![Value::I32(10)]);
        assert_eq!(inst.invoke("dispatch", &[Value::I32(1)]).unwrap(), vec![Value::I32(20)]);
        assert_eq!(inst.invoke("dispatch", &[Value::I32(9)]).unwrap(), vec![Value::I32(20)]);
    }

    #[test]
    fn globals_read_write() {
        let module = ModuleBuilder::new()
            .global(ValType::I64, true, Value::I64(5))
            .func(
                FuncType::new([], [ValType::I64]),
                [],
                [
                    Instr::GlobalGet(0),
                    Instr::I64Const(10),
                    Instr::I64Mul,
                    Instr::GlobalSet(0),
                    Instr::GlobalGet(0),
                ],
            )
            .export_func("bump", 0)
            .export_global("g", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        assert_eq!(inst.invoke("bump", &[]).unwrap(), vec![Value::I64(50)]);
        assert_eq!(inst.global("g"), Some(Value::I64(50)));
    }

    #[test]
    fn memory_grow_from_guest() {
        let module = ModuleBuilder::new()
            .memory(1, Some(3))
            .func(
                FuncType::new([], [ValType::I32, ValType::I32]),
                [],
                [
                    Instr::I32Const(1),
                    Instr::MemoryGrow,
                    Instr::I32Const(100),
                    Instr::MemoryGrow,
                ],
            )
            .export_func("grow", 0)
            .build()
            .unwrap();
        let mut inst = instantiate(module);
        let out = inst.invoke("grow", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(1), Value::I32(-1)]);
        assert_eq!(inst.memory().unwrap().size_pages(), 2);
    }
}
