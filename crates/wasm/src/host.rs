//! Host functions and the linker.
//!
//! Wasm's deny-by-default model means a guest can only reach capabilities
//! the embedder explicitly links in. The WASI layer and Roadrunner's
//! Table-1 APIs are both defined as host functions through this interface.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::memory::Memory;
use crate::trap::Trap;
use crate::types::{FuncType, Value};

/// The view a host function gets of the calling instance: its linear
/// memory (if any) plus the embedder-supplied host state.
pub struct Caller<'a> {
    memory: Option<&'a mut Memory>,
    data: &'a mut dyn Any,
}

impl<'a> Caller<'a> {
    pub(crate) fn new(memory: Option<&'a mut Memory>, data: &'a mut dyn Any) -> Self {
        Self { memory, data }
    }

    /// The calling instance's linear memory.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the module declared no memory.
    pub fn memory(&mut self) -> Result<&mut Memory, Trap> {
        self.memory.as_deref_mut().ok_or_else(|| Trap::host("module has no memory"))
    }

    /// Downcasts the host state to `T`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if the instance was created with a different
    /// host-state type.
    pub fn data<T: 'static>(&mut self) -> Result<&mut T, Trap> {
        self.data
            .downcast_mut::<T>()
            .ok_or_else(|| Trap::host("host state has unexpected type"))
    }

    /// Reads a guest string given `(ptr, len)` — the common ABI for
    /// passing strings out of linear memory.
    pub fn read_string(&mut self, ptr: u32, len: u32) -> Result<String, Trap> {
        let bytes = self.memory()?.read(ptr, len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| Trap::host("guest string is not UTF-8"))
    }
}

impl fmt::Debug for Caller<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Caller")
            .field("has_memory", &self.memory.is_some())
            .finish_non_exhaustive()
    }
}

/// A host function: called with the caller view and the (type-checked)
/// arguments, returns result values or a trap.
pub type HostFunc =
    Arc<dyn Fn(Caller<'_>, &[Value]) -> Result<Vec<Value>, Trap> + Send + Sync>;

/// Registry of host functions for import resolution, keyed by
/// `(module, name)` like the binary format's two-level namespace.
#[derive(Clone, Default)]
pub struct Linker {
    funcs: HashMap<(String, String), (FuncType, HostFunc)>,
}

impl Linker {
    /// Creates an empty linker (no capabilities — deny by default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a host function under `module::name` with signature `ty`.
    /// Re-defining a name replaces the previous definition.
    pub fn define<F>(&mut self, module: &str, name: &str, ty: FuncType, f: F) -> &mut Self
    where
        F: Fn(Caller<'_>, &[Value]) -> Result<Vec<Value>, Trap> + Send + Sync + 'static,
    {
        self.funcs
            .insert((module.to_owned(), name.to_owned()), (ty, Arc::new(f)));
        self
    }

    /// Looks up a definition.
    pub fn resolve(&self, module: &str, name: &str) -> Option<&(FuncType, HostFunc)> {
        self.funcs.get(&(module.to_owned(), name.to_owned()))
    }

    /// Number of defined host functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether no functions are defined.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

impl fmt::Debug for Linker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<String> =
            self.funcs.keys().map(|(m, n)| format!("{m}::{n}")).collect();
        names.sort();
        f.debug_struct("Linker").field("funcs", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType;

    #[test]
    fn define_and_resolve() {
        let mut linker = Linker::new();
        assert!(linker.is_empty());
        linker.define("env", "double", FuncType::new([ValType::I32], [ValType::I32]), |_, args| {
            Ok(vec![Value::I32(args[0].as_i32().unwrap() * 2)])
        });
        assert_eq!(linker.len(), 1);
        assert!(linker.resolve("env", "double").is_some());
        assert!(linker.resolve("env", "missing").is_none());
        assert!(linker.resolve("other", "double").is_none());
    }

    #[test]
    fn redefinition_replaces() {
        let mut linker = Linker::new();
        let ty = FuncType::new([], [ValType::I32]);
        linker.define("env", "f", ty.clone(), |_, _| Ok(vec![Value::I32(1)]));
        linker.define("env", "f", ty, |_, _| Ok(vec![Value::I32(2)]));
        assert_eq!(linker.len(), 1);
        let (_, f) = linker.resolve("env", "f").unwrap();
        let mut data = ();
        let out = f(Caller::new(None, &mut data), &[]).unwrap();
        assert_eq!(out, vec![Value::I32(2)]);
    }

    #[test]
    fn caller_without_memory_traps() {
        let mut data = ();
        let mut caller = Caller::new(None, &mut data);
        assert!(caller.memory().is_err());
    }

    #[test]
    fn caller_data_downcast() {
        let mut data = 42i64;
        let mut caller = Caller::new(None, &mut data);
        assert_eq!(*caller.data::<i64>().unwrap(), 42);
        assert!(caller.data::<String>().is_err());
    }

    #[test]
    fn debug_lists_function_names() {
        let mut linker = Linker::new();
        linker.define("env", "f", FuncType::new([], []), |_, _| Ok(vec![]));
        assert!(format!("{linker:?}").contains("env::f"));
    }
}
