//! Binary encoder: [`Module`] → WebAssembly binary format.
//!
//! Emits the standard section layout (magic, version, sections 1–11) for
//! the reproduced subset. Artifacts produced here are what the platform
//! stores in function bundles and what cold-start measurements load.

use crate::instr::{BlockType, Instr};
use crate::leb;
use crate::module::{ExportKind, Module};
use crate::opcode::*;
use crate::types::{FuncType, Limits, Value};

/// The 8-byte preamble: `\0asm` + version 1.
pub const PREAMBLE: [u8; 8] = [0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00];

/// Encodes `module` into the binary format.
///
/// ```
/// # use roadrunner_wasm::{ModuleBuilder, encode};
/// let module = ModuleBuilder::new().build().unwrap();
/// let bytes = encode::encode(&module);
/// assert_eq!(&bytes[0..4], b"\0asm");
/// ```
pub fn encode(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&PREAMBLE);

    // Section 1: types.
    if !module.types.is_empty() {
        section(&mut out, 1, |buf| {
            leb::write_u32(buf, module.types.len() as u32);
            for ty in &module.types {
                encode_functype(buf, ty);
            }
        });
    }

    // Section 2: imports (host functions only in this subset).
    if !module.imports.is_empty() {
        section(&mut out, 2, |buf| {
            leb::write_u32(buf, module.imports.len() as u32);
            for import in &module.imports {
                name(buf, &import.module);
                name(buf, &import.name);
                buf.push(0x00); // func import
                leb::write_u32(buf, import.type_idx);
            }
        });
    }

    // Section 3: function type indices.
    if !module.funcs.is_empty() {
        section(&mut out, 3, |buf| {
            leb::write_u32(buf, module.funcs.len() as u32);
            for f in &module.funcs {
                leb::write_u32(buf, f.type_idx);
            }
        });
    }

    // Section 5: memory.
    if let Some(limits) = module.memory {
        section(&mut out, 5, |buf| {
            leb::write_u32(buf, 1);
            encode_limits(buf, limits);
        });
    }

    // Section 6: globals.
    if !module.globals.is_empty() {
        section(&mut out, 6, |buf| {
            leb::write_u32(buf, module.globals.len() as u32);
            for g in &module.globals {
                buf.push(g.ty.to_byte());
                buf.push(if g.mutable { 0x01 } else { 0x00 });
                encode_const_expr(buf, g.init);
            }
        });
    }

    // Section 7: exports.
    if !module.exports.is_empty() {
        section(&mut out, 7, |buf| {
            leb::write_u32(buf, module.exports.len() as u32);
            for e in &module.exports {
                name(buf, &e.name);
                match e.kind {
                    ExportKind::Func(idx) => {
                        buf.push(0x00);
                        leb::write_u32(buf, idx);
                    }
                    ExportKind::Memory => {
                        buf.push(0x02);
                        leb::write_u32(buf, 0);
                    }
                    ExportKind::Global(idx) => {
                        buf.push(0x03);
                        leb::write_u32(buf, idx);
                    }
                }
            }
        });
    }

    // Section 8: start.
    if let Some(start) = module.start {
        section(&mut out, 8, |buf| {
            leb::write_u32(buf, start);
        });
    }

    // Section 10: code.
    if !module.funcs.is_empty() {
        section(&mut out, 10, |buf| {
            leb::write_u32(buf, module.funcs.len() as u32);
            for f in &module.funcs {
                let mut body = Vec::new();
                encode_locals(&mut body, &f.locals);
                for instr in &f.body {
                    encode_instr(&mut body, instr);
                }
                body.push(OP_END);
                leb::write_u32(buf, body.len() as u32);
                buf.extend_from_slice(&body);
            }
        });
    }

    // Section 11: data.
    if !module.data.is_empty() {
        section(&mut out, 11, |buf| {
            leb::write_u32(buf, module.data.len() as u32);
            for seg in &module.data {
                leb::write_u32(buf, 0); // memory index
                encode_const_expr(buf, Value::I32(seg.offset as i32));
                leb::write_u32(buf, seg.bytes.len() as u32);
                buf.extend_from_slice(&seg.bytes);
            }
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    let mut buf = Vec::new();
    fill(&mut buf);
    out.push(id);
    leb::write_u32(out, buf.len() as u32);
    out.extend_from_slice(&buf);
}

fn name(out: &mut Vec<u8>, s: &str) {
    leb::write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_functype(out: &mut Vec<u8>, ty: &FuncType) {
    out.push(0x60);
    leb::write_u32(out, ty.params().len() as u32);
    for p in ty.params() {
        out.push(p.to_byte());
    }
    leb::write_u32(out, ty.results().len() as u32);
    for r in ty.results() {
        out.push(r.to_byte());
    }
}

fn encode_limits(out: &mut Vec<u8>, limits: Limits) {
    match limits.max {
        None => {
            out.push(0x00);
            leb::write_u32(out, limits.min);
        }
        Some(max) => {
            out.push(0x01);
            leb::write_u32(out, limits.min);
            leb::write_u32(out, max);
        }
    }
}

fn encode_const_expr(out: &mut Vec<u8>, value: Value) {
    match value {
        Value::I32(v) => {
            out.push(OP_I32_CONST);
            leb::write_i32(out, v);
        }
        Value::I64(v) => {
            out.push(OP_I64_CONST);
            leb::write_i64(out, v);
        }
        Value::F32(v) => {
            out.push(OP_F32_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::F64(v) => {
            out.push(OP_F64_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out.push(OP_END);
}

fn encode_locals(out: &mut Vec<u8>, locals: &[crate::types::ValType]) {
    // Run-length compress consecutive identical local types, as the
    // binary format requires.
    let mut runs: Vec<(u32, crate::types::ValType)> = Vec::new();
    for &ty in locals {
        match runs.last_mut() {
            Some((count, last)) if *last == ty => *count += 1,
            _ => runs.push((1, ty)),
        }
    }
    leb::write_u32(out, runs.len() as u32);
    for (count, ty) in runs {
        leb::write_u32(out, count);
        out.push(ty.to_byte());
    }
}

fn encode_blocktype(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(ty) => out.push(ty.to_byte()),
    }
}

/// Encodes one instruction (recursing into nested blocks).
pub(crate) fn encode_instr(out: &mut Vec<u8>, instr: &Instr) {
    if let Some(op) = simple_opcode(instr) {
        out.push(op);
        return;
    }
    if let Some((op, m)) = memop_opcode(instr) {
        out.push(op);
        leb::write_u32(out, m.align);
        leb::write_u32(out, m.offset);
        return;
    }
    match instr {
        Instr::Block(bt, body) => {
            out.push(OP_BLOCK);
            encode_blocktype(out, *bt);
            for i in body {
                encode_instr(out, i);
            }
            out.push(OP_END);
        }
        Instr::Loop(bt, body) => {
            out.push(OP_LOOP);
            encode_blocktype(out, *bt);
            for i in body {
                encode_instr(out, i);
            }
            out.push(OP_END);
        }
        Instr::If(bt, then, els) => {
            out.push(OP_IF);
            encode_blocktype(out, *bt);
            for i in then {
                encode_instr(out, i);
            }
            if !els.is_empty() {
                out.push(OP_ELSE);
                for i in els {
                    encode_instr(out, i);
                }
            }
            out.push(OP_END);
        }
        Instr::Br(depth) => {
            out.push(OP_BR);
            leb::write_u32(out, *depth);
        }
        Instr::BrIf(depth) => {
            out.push(OP_BR_IF);
            leb::write_u32(out, *depth);
        }
        Instr::BrTable(targets, default) => {
            out.push(OP_BR_TABLE);
            leb::write_u32(out, targets.len() as u32);
            for t in targets {
                leb::write_u32(out, *t);
            }
            leb::write_u32(out, *default);
        }
        Instr::Call(idx) => {
            out.push(OP_CALL);
            leb::write_u32(out, *idx);
        }
        Instr::LocalGet(i) => {
            out.push(OP_LOCAL_GET);
            leb::write_u32(out, *i);
        }
        Instr::LocalSet(i) => {
            out.push(OP_LOCAL_SET);
            leb::write_u32(out, *i);
        }
        Instr::LocalTee(i) => {
            out.push(OP_LOCAL_TEE);
            leb::write_u32(out, *i);
        }
        Instr::GlobalGet(i) => {
            out.push(OP_GLOBAL_GET);
            leb::write_u32(out, *i);
        }
        Instr::GlobalSet(i) => {
            out.push(OP_GLOBAL_SET);
            leb::write_u32(out, *i);
        }
        Instr::MemorySize => {
            out.push(OP_MEMORY_SIZE);
            out.push(0x00);
        }
        Instr::MemoryGrow => {
            out.push(OP_MEMORY_GROW);
            out.push(0x00);
        }
        Instr::MemoryCopy => {
            out.push(OP_PREFIX_FC);
            leb::write_u32(out, FC_MEMORY_COPY);
            out.push(0x00);
            out.push(0x00);
        }
        Instr::MemoryFill => {
            out.push(OP_PREFIX_FC);
            leb::write_u32(out, FC_MEMORY_FILL);
            out.push(0x00);
        }
        Instr::I32Const(v) => {
            out.push(OP_I32_CONST);
            leb::write_i32(out, *v);
        }
        Instr::I64Const(v) => {
            out.push(OP_I64_CONST);
            leb::write_i64(out, *v);
        }
        Instr::F32Const(v) => {
            out.push(OP_F32_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Instr::F64Const(v) => {
            out.push(OP_F64_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        other => unreachable!("instruction {other:?} not covered by opcode tables"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    #[test]
    fn empty_module_is_just_preamble() {
        let m = ModuleBuilder::new().build().unwrap();
        assert_eq!(encode(&m), PREAMBLE.to_vec());
    }

    #[test]
    fn preamble_is_standard() {
        assert_eq!(&PREAMBLE[0..4], b"\0asm");
        assert_eq!(&PREAMBLE[4..8], &[1, 0, 0, 0]);
    }

    #[test]
    fn locals_are_run_length_encoded() {
        let mut out = Vec::new();
        encode_locals(
            &mut out,
            &[ValType::I32, ValType::I32, ValType::I64, ValType::I32],
        );
        // 3 runs: (2 × i32), (1 × i64), (1 × i32).
        assert_eq!(out, vec![3, 2, 0x7F, 1, 0x7E, 1, 0x7F]);
    }

    #[test]
    fn if_without_else_omits_else_opcode() {
        let mut out = Vec::new();
        encode_instr(
            &mut out,
            &Instr::If(BlockType::Empty, vec![Instr::Nop], vec![]),
        );
        assert!(!out.contains(&OP_ELSE));
        let mut out2 = Vec::new();
        encode_instr(
            &mut out2,
            &Instr::If(BlockType::Empty, vec![Instr::Nop], vec![Instr::Nop]),
        );
        assert!(out2.contains(&OP_ELSE));
    }
}
