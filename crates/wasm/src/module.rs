//! Module definitions: the validated, executable form of a Wasm binary.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::compile::{compile, CompiledModule};
use crate::instr::Instr;
use crate::types::{FuncType, Limits, ValType, Value};

/// An imported host function (the only import kind in the reproduced
/// subset — Wasm's deny-by-default model means every host capability is an
/// explicit import).
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Import module namespace (e.g. `wasi_snapshot_preview1`, `roadrunner`).
    pub module: String,
    /// Import field name (e.g. `fd_write`, `send_to_host`).
    pub name: String,
    /// Index into the module's type section.
    pub type_idx: u32,
}

/// A function defined inside the module.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Index into the module's type section.
    pub type_idx: u32,
    /// Declared locals (parameters come from the signature).
    pub locals: Vec<ValType>,
    /// Structured body.
    pub body: Vec<Instr>,
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Value type of the global.
    pub ty: ValType,
    /// Whether `global.set` is allowed.
    pub mutable: bool,
    /// Constant initializer.
    pub init: Value,
}

/// What an export refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// A function, by function index (imports first).
    Func(u32),
    /// The module's linear memory.
    Memory,
    /// A global, by global index.
    Global(u32),
}

/// A named export.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Export name.
    pub name: String,
    /// Exported item.
    pub kind: ExportKind,
}

/// An active data segment copied into linear memory at instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Destination offset in linear memory.
    pub offset: u32,
    /// Bytes to place.
    pub bytes: Vec<u8>,
}

/// Lazily-compiled flat bytecode, shared across clones of a module.
///
/// Cloning a `Module` (e.g. handing one to [`crate::Instance::new`])
/// shares the cell, so the first instantiation compiles once and every
/// later clone — including the embedder's retained copy — reuses the
/// result; instantiation pays zero extra cost after the first compile.
///
/// The cache is keyed on identity, not content: mutating a module's
/// function bodies after it has executed is unsupported (all supported
/// construction paths — [`crate::ModuleBuilder`] and
/// [`crate::decode::decode`] — produce their final bodies up front).
#[derive(Default)]
pub(crate) struct CodeCache(Arc<OnceLock<Arc<CompiledModule>>>);

impl Clone for CodeCache {
    fn clone(&self) -> Self {
        CodeCache(Arc::clone(&self.0))
    }
}

impl fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeCache").field("compiled", &self.0.get().is_some()).finish()
    }
}

impl PartialEq for CodeCache {
    /// The cache is derived state; two modules with equal fields are
    /// equal regardless of which has compiled.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// A complete WebAssembly module (the decoded/validated form).
///
/// Construct one with [`crate::ModuleBuilder`] or by decoding a binary
/// with [`crate::decode::decode`]; both run [`crate::validate`] before the
/// module can be instantiated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Function signatures referenced by functions and imports.
    pub types: Vec<FuncType>,
    /// Imported host functions (these occupy the first function indices).
    pub imports: Vec<Import>,
    /// Module-defined functions.
    pub funcs: Vec<FuncDef>,
    /// Linear memory limits, if the module declares a memory.
    pub memory: Option<Limits>,
    /// Module globals.
    pub globals: Vec<GlobalDef>,
    /// Named exports.
    pub exports: Vec<Export>,
    /// Active data segments.
    pub data: Vec<DataSegment>,
    /// Optional start function, run at instantiation.
    pub start: Option<u32>,
    /// Flat-bytecode cache (compiled on first execution).
    pub(crate) compiled: CodeCache,
}

impl Module {
    /// The module's flat bytecode, compiling (once) on first use.
    pub(crate) fn code(&self) -> &Arc<CompiledModule> {
        self.compiled.0.get_or_init(|| Arc::new(compile(self)))
    }

    /// Total number of functions in the index space (imports + defined).
    pub fn func_count(&self) -> usize {
        self.imports.len() + self.funcs.len()
    }

    /// Signature of the function at `func_idx` in the combined index
    /// space, or `None` if the index or its type index is out of range.
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        let idx = func_idx as usize;
        let type_idx = if idx < self.imports.len() {
            self.imports[idx].type_idx
        } else {
            self.funcs.get(idx - self.imports.len())?.type_idx
        };
        self.types.get(type_idx as usize)
    }

    /// Looks up an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Total instruction count across all function bodies (module
    /// statistics; used in cold-start sizing).
    pub fn instr_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.body.iter().map(Instr::size).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType;

    fn tiny_module() -> Module {
        Module {
            types: vec![
                FuncType::new([ValType::I32], [ValType::I32]),
                FuncType::new([], []),
            ],
            imports: vec![Import {
                module: "env".into(),
                name: "host0".into(),
                type_idx: 1,
            }],
            funcs: vec![FuncDef {
                type_idx: 0,
                locals: vec![ValType::I64],
                body: vec![Instr::LocalGet(0), Instr::Return],
            }],
            memory: Some(Limits::new(1, Some(4))),
            globals: vec![],
            exports: vec![Export { name: "f".into(), kind: ExportKind::Func(1) }],
            data: vec![],
            start: None,
            compiled: CodeCache::default(),
        }
    }

    #[test]
    fn code_cache_is_shared_across_clones() {
        let m = tiny_module();
        let clone = m.clone();
        // Compiling through the clone fills the original's cell too.
        let _ = clone.code();
        assert!(m.compiled.0.get().is_some(), "clones share the compile cache");
        assert!(Arc::ptr_eq(m.code(), clone.code()));
        // Equality ignores the cache: a fresh, uncompiled copy still
        // compares equal (preserves encode/decode round-trip equality).
        let fresh = tiny_module();
        assert_eq!(fresh, m);
    }

    #[test]
    fn func_index_space_covers_imports_then_funcs() {
        let m = tiny_module();
        assert_eq!(m.func_count(), 2);
        assert_eq!(m.func_type(0).unwrap().params().len(), 0); // the import
        assert_eq!(m.func_type(1).unwrap().params().len(), 1); // defined fn
        assert!(m.func_type(2).is_none());
    }

    #[test]
    fn export_lookup() {
        let m = tiny_module();
        assert_eq!(m.export("f").unwrap().kind, ExportKind::Func(1));
        assert!(m.export("missing").is_none());
    }

    #[test]
    fn instr_count_sums_bodies() {
        assert_eq!(tiny_module().instr_count(), 2);
    }
}
