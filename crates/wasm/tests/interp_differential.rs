//! Differential property suite: the flat-bytecode tier and the tree
//! walker must be observationally identical.
//!
//! Every case builds one module, instantiates it once per
//! [`ExecTier`], invokes the same export, and asserts agreement on the
//! full observable state:
//!
//! * the invoke outcome — result values **and** trap variant,
//! * `instr_count` (exact, including the trapping instruction),
//! * remaining fuel (cases run both unmetered and with small budgets
//!   that exhaust mid-loop),
//! * host-call logs (order and arguments seen across the boundary),
//! * linear memory contents and exported globals afterwards.
//!
//! The generators lean on typed construction: each strategy emits an
//! instruction sequence with a known stack effect, so generated modules
//! always validate, while division, out-of-bounds accesses, fuel
//! budgets and call depth still make traps common.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use roadrunner_wasm::types::{FuncType, ValType, Value};
use roadrunner_wasm::{
    BlockType, EngineLimits, ExecTier, Instance, Instr, Linker, MemArg, Module, ModuleBuilder,
    Trap,
};

/// Function index of the `env.acc` host import.
const HOST: u32 = 0;
/// Function index of the exported entry point.
const RUN: u32 = 1;
/// Function index of the wasm-defined helper.
const HELPER: u32 = 2;
/// Locals 0 and 1 are scratch; local 2 is reserved for loop counters.
const SCRATCH: u32 = 2;
const COUNTER: u32 = 2;

/// Everything an embedder can observe after one invocation.
#[derive(Debug, PartialEq)]
struct Observation {
    outcome: Result<Vec<Value>, Trap>,
    instrs: u64,
    fuel_left: Option<u64>,
    host_log: Vec<i32>,
    global: Option<Value>,
    memory: Vec<u8>,
}

/// Wraps the generated body into a full module: one host import, the
/// `run` entry (type `[] -> [i32]`, three i32 locals), a helper the
/// body may call, one page of memory, and a mutable exported global.
fn build_module(body: Vec<Instr>) -> Module {
    ModuleBuilder::new()
        .import_func("env", "acc", FuncType::new([ValType::I32], [ValType::I32]))
        .func(FuncType::new([], [ValType::I32]), [ValType::I32; 3], body)
        .func(
            FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
            [],
            [
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32Add,
                Instr::LocalGet(0),
                Instr::I32Xor,
            ],
        )
        .memory(1, Some(2))
        .global(ValType::I32, true, Value::I32(7))
        .export_func("run", RUN)
        .export_memory("mem")
        .export_global("g", 0)
        .build()
        .expect("generated module must validate")
}

/// Runs `module` on the given tier and captures the observable state.
fn run_tier(module: &Module, tier: ExecTier, fuel: Option<u64>) -> Observation {
    let mut linker = Linker::new();
    linker.define(
        "env",
        "acc",
        FuncType::new([ValType::I32], [ValType::I32]),
        |mut caller, args| {
            let x = match args[0] {
                Value::I32(v) => v,
                _ => unreachable!("acc takes one i32"),
            };
            caller.data::<Vec<i32>>()?.push(x);
            Ok(vec![Value::I32(x.wrapping_add(1))])
        },
    );
    let mut limits = EngineLimits::default().with_exec_tier(tier).with_max_call_depth(48);
    if let Some(f) = fuel {
        limits = limits.with_fuel(f);
    }
    let mut inst = Instance::new(module.clone(), &linker, limits, Box::new(Vec::<i32>::new()))
        .expect("instantiation");
    let outcome = inst.invoke("run", &[]);
    Observation {
        outcome,
        instrs: inst.instr_count(),
        fuel_left: inst.fuel(),
        host_log: inst.data::<Vec<i32>>().cloned().unwrap(),
        global: inst.global("g"),
        memory: inst
            .memory()
            .map(|m| m.read(0, m.len() as u32).unwrap().to_vec())
            .unwrap_or_default(),
    }
}

/// Asserts tier equivalence for one module + fuel budget. Memory is
/// compared separately so a mismatch doesn't dump 64 KiB into the
/// failure message.
fn assert_tiers_agree(body: Vec<Instr>, fuel: Option<u64>) -> Result<(), TestCaseError> {
    let module = build_module(body);
    let flat = run_tier(&module, ExecTier::Compiled, fuel);
    let tree = run_tier(&module, ExecTier::Reference, fuel);
    prop_assert_eq!(&flat.outcome, &tree.outcome, "invoke outcome diverged");
    prop_assert_eq!(flat.instrs, tree.instrs, "instr_count diverged");
    prop_assert_eq!(flat.fuel_left, tree.fuel_left, "remaining fuel diverged");
    prop_assert_eq!(&flat.host_log, &tree.host_log, "host-call log diverged");
    prop_assert_eq!(flat.global, tree.global, "global diverged");
    prop_assert!(flat.memory == tree.memory, "linear memory diverged");
    Ok(())
}

// --------------------------------------------------------------- generators

/// Interesting i32 constants: boundary values dominate so wrapping,
/// division overflow (`i32::MIN / -1`) and shift-mask cases come up.
fn arb_const() -> impl Strategy<Value = i32> {
    prop_oneof![
        4 => (-4i32..=4).prop_map(|v| v),
        2 => any::<i32>(),
        1 => Just(i32::MIN),
        1 => Just(i32::MAX),
        1 => Just(-1),
    ]
}

/// An address expression. Weighted toward in-bounds (masked to the
/// first page) but sometimes raw, so out-of-bounds traps occur.
fn arb_addr(expr: BoxedStrategy<Vec<Instr>>) -> impl Strategy<Value = Vec<Instr>> {
    prop_oneof![
        3 => expr.clone().prop_map(|mut e| {
            e.push(Instr::I32Const(0xFFC));
            e.push(Instr::I32And);
            e
        }),
        1 => expr,
    ]
}

/// A sequence with net stack effect `[] -> [i32]`, built recursively.
fn arb_expr() -> BoxedStrategy<Vec<Instr>> {
    let leaf = prop_oneof![
        3 => arb_const().prop_map(|v| vec![Instr::I32Const(v)]),
        2 => (0..SCRATCH).prop_map(|i| vec![Instr::LocalGet(i)]),
        1 => Just(vec![Instr::GlobalGet(0)]),
        1 => Just(vec![Instr::MemorySize]),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        let unop = prop_oneof![
            Just(Instr::I32Eqz),
            Just(Instr::I32Clz),
            Just(Instr::I32Ctz),
            Just(Instr::I32Popcnt),
        ];
        let binop = prop_oneof![
            Just(Instr::I32Add),
            Just(Instr::I32Sub),
            Just(Instr::I32Mul),
            Just(Instr::I32And),
            Just(Instr::I32Or),
            Just(Instr::I32Xor),
            Just(Instr::I32Shl),
            Just(Instr::I32ShrS),
            Just(Instr::I32ShrU),
            Just(Instr::I32Rotl),
            Just(Instr::I32DivS),
            Just(Instr::I32DivU),
            Just(Instr::I32RemS),
            Just(Instr::I32RemU),
            Just(Instr::I32Eq),
            Just(Instr::I32Ne),
            Just(Instr::I32LtS),
            Just(Instr::I32GtU),
            Just(Instr::I32LeS),
            Just(Instr::I32GeU),
        ];
        let load = prop_oneof![
            Just(Instr::I32Load(MemArg::default())),
            Just(Instr::I32Load8U(MemArg::default())),
            Just(Instr::I32Load16S(MemArg::offset(2))),
        ];
        prop_oneof![
            // unary
            (inner.clone(), unop).prop_map(|(mut a, op)| {
                a.push(op);
                a
            }),
            // binary (incl. comparisons and trapping div/rem)
            (inner.clone(), inner.clone(), binop).prop_map(|(mut a, b, op)| {
                a.extend(b);
                a.push(op);
                a
            }),
            // select
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(mut a, b, c)| {
                a.extend(b);
                a.extend(c);
                a.push(Instr::Select);
                a
            }),
            // if/else with an i32 result
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(mut cond, t, e)| {
                cond.push(Instr::If(BlockType::Value(ValType::I32), t, e));
                cond
            }),
            // block with a value and a conditional early exit: on branch
            // the pending value is the block result; ditto on fall-through
            (inner.clone(), inner.clone()).prop_map(|(mut val, mut cond)| {
                val.append(&mut cond);
                val.push(Instr::BrIf(0));
                vec![Instr::Block(BlockType::Value(ValType::I32), val)]
            }),
            // memory load (address sometimes out of bounds)
            (arb_addr(inner.clone()), load).prop_map(|(mut a, op)| {
                a.push(op);
                a
            }),
            // wasm -> wasm call
            (inner.clone(), inner.clone()).prop_map(|(mut a, b)| {
                a.extend(b);
                a.push(Instr::Call(HELPER));
                a
            }),
            // wasm -> host call
            inner.clone().prop_map(|mut a| {
                a.push(Instr::Call(HOST));
                a
            }),
            // local.tee round-trip
            (inner.clone(), 0..SCRATCH).prop_map(|(mut a, i)| {
                a.push(Instr::LocalTee(i));
                a
            }),
        ]
        .boxed()
    })
    .boxed()
}

/// A sequence with net stack effect `[] -> []`.
fn arb_stmt() -> BoxedStrategy<Vec<Instr>> {
    let expr = arb_expr();
    let simple = prop_oneof![
        Just(vec![Instr::Nop]),
        (expr.clone(), 0..SCRATCH).prop_map(|(mut e, i)| {
            e.push(Instr::LocalSet(i));
            e
        }),
        expr.clone().prop_map(|mut e| {
            e.push(Instr::GlobalSet(0));
            e
        }),
        expr.clone().prop_map(|mut e| {
            e.push(Instr::Drop);
            e
        }),
        (arb_addr(expr.clone()), expr.clone()).prop_map(|(mut a, v)| {
            a.extend(v);
            a.push(Instr::I32Store(MemArg::default()));
            a
        }),
        (arb_addr(expr.clone()), expr.clone()).prop_map(|(mut a, v)| {
            a.extend(v);
            a.push(Instr::I32Store8(MemArg::offset(1)));
            a
        }),
    ]
    .boxed();

    // Bounded loop: local 2 counts down from a small constant; the body
    // is a nested statement. Exercises back-edges (counted once at
    // entry, not per iteration) and is the main fuel-exhaustion site.
    let looped = (0u32..6, simple.clone()).prop_map(|(n, inner)| {
        let mut body = vec![
            Instr::LocalGet(COUNTER),
            Instr::I32Eqz,
            Instr::BrIf(1),
            Instr::LocalGet(COUNTER),
            Instr::I32Const(1),
            Instr::I32Sub,
            Instr::LocalSet(COUNTER),
        ];
        body.extend(inner);
        body.push(Instr::Br(0));
        vec![
            Instr::I32Const(n as i32),
            Instr::LocalSet(COUNTER),
            Instr::Block(BlockType::Empty, vec![Instr::Loop(BlockType::Empty, body)]),
        ]
    });

    // Three-way br_table dispatch over nested empty blocks; each arm is
    // a nested statement.
    let dispatch = (expr, simple.clone(), simple.clone()).prop_map(|(sel, arm0, arm1)| {
        let mut innermost = sel;
        innermost.push(Instr::BrTable(vec![0, 1], 2));
        let mut mid = vec![Instr::Block(BlockType::Empty, innermost)];
        mid.extend(arm0);
        let mut outer = vec![Instr::Block(BlockType::Empty, mid)];
        outer.extend(arm1);
        vec![Instr::Block(BlockType::Empty, outer)]
    });

    prop_oneof![4 => simple, 1 => looped, 1 => dispatch].boxed()
}

/// A full `run` body: a few statements then the result expression,
/// occasionally behind an explicit `return`.
fn arb_body() -> impl Strategy<Value = Vec<Instr>> {
    (
        proptest::collection::vec(arb_stmt(), 0..4),
        arb_expr(),
        any::<bool>(),
    )
        .prop_map(|(stmts, expr, explicit_return)| {
            let mut body: Vec<Instr> = stmts.into_iter().flatten().collect();
            body.extend(expr);
            if explicit_return {
                body.push(Instr::Return);
            }
            body
        })
}

/// Fuel budgets: mostly unmetered, but often a budget small enough to
/// exhaust mid-execution.
fn arb_fuel() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        2 => Just(None),
        2 => (0u64..250).prop_map(Some),
        1 => (0u64..25).prop_map(Some),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn tiers_agree_on_arbitrary_modules(body in arb_body(), fuel in arb_fuel()) {
        assert_tiers_agree(body, fuel)?;
    }
}

// ------------------------------------------------------- deterministic cases

/// Sweeps every fuel budget from 0 to past completion on a fixed loop,
/// so the exhaustion point crosses every instruction — including block
/// entries, back-edges, and the call boundary.
#[test]
fn fuel_boundary_sweep_matches_on_every_budget() {
    let body = vec![
        Instr::I32Const(5),
        Instr::LocalSet(COUNTER),
        Instr::Block(
            BlockType::Empty,
            vec![Instr::Loop(
                BlockType::Empty,
                vec![
                    Instr::LocalGet(COUNTER),
                    Instr::I32Eqz,
                    Instr::BrIf(1),
                    Instr::LocalGet(COUNTER),
                    Instr::I32Const(1),
                    Instr::I32Sub,
                    Instr::LocalSet(COUNTER),
                    Instr::LocalGet(COUNTER),
                    Instr::Call(HOST),
                    Instr::GlobalGet(0),
                    Instr::Call(HELPER),
                    Instr::GlobalSet(0),
                    Instr::Br(0),
                ],
            )],
        ),
        Instr::GlobalGet(0),
    ];
    let module = build_module(body);
    // Find the unmetered cost first, then sweep a little past it.
    let full = run_tier(&module, ExecTier::Compiled, None);
    assert!(full.outcome.is_ok());
    let cost = full.instrs;
    for budget in 0..=cost + 2 {
        let flat = run_tier(&module, ExecTier::Compiled, Some(budget));
        let tree = run_tier(&module, ExecTier::Reference, Some(budget));
        assert_eq!(flat, tree, "divergence at fuel budget {budget}");
        if budget < cost {
            assert_eq!(
                flat.outcome,
                Err(Trap::FuelExhausted),
                "budget {budget} below cost {cost} must exhaust"
            );
        }
    }
}

/// Deep recursion must hit [`Trap::StackOverflow`] at the same depth
/// (and instruction count) on both tiers.
#[test]
fn stack_overflow_depth_matches() {
    let module = ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [],
            [
                Instr::LocalGet(0),
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![
                        Instr::LocalGet(0),
                        Instr::I32Const(1),
                        Instr::I32Sub,
                        Instr::Call(0),
                    ],
                    vec![Instr::I32Const(0)],
                ),
            ],
        )
        .export_func("down", 0)
        .build()
        .unwrap();

    for depth_limit in [1usize, 2, 3, 17] {
        let mut observed = Vec::new();
        for tier in [ExecTier::Compiled, ExecTier::Reference] {
            let limits = EngineLimits::default()
                .with_exec_tier(tier)
                .with_max_call_depth(depth_limit);
            let mut inst =
                Instance::new(module.clone(), &Linker::new(), limits, Box::new(())).unwrap();
            let out = inst.invoke("down", &[Value::I32(1000)]);
            observed.push((out, inst.instr_count()));
        }
        assert_eq!(observed[0], observed[1], "depth limit {depth_limit}");
        assert_eq!(observed[0].0, Err(Trap::StackOverflow));
    }
}

/// A trap raised *inside a host function* must propagate identically,
/// leaving the same partial state behind.
#[test]
fn host_trap_propagates_identically() {
    let body = vec![
        Instr::I32Const(10),
        Instr::Call(HOST),
        Instr::Drop,
        Instr::I32Const(99),
        Instr::Call(HOST),
    ];
    let module = build_module(body);
    let make = |tier| {
        let mut linker = Linker::new();
        linker.define(
            "env",
            "acc",
            FuncType::new([ValType::I32], [ValType::I32]),
            |mut caller, args| {
                let x = match args[0] {
                    Value::I32(v) => v,
                    _ => unreachable!(),
                };
                caller.data::<Vec<i32>>()?.push(x);
                if x == 99 {
                    return Err(Trap::Unreachable);
                }
                Ok(vec![Value::I32(x)])
            },
        );
        let mut inst = Instance::new(
            module.clone(),
            &linker,
            EngineLimits::default().with_exec_tier(tier),
            Box::new(Vec::<i32>::new()),
        )
        .unwrap();
        let out = inst.invoke("run", &[]);
        (out, inst.instr_count(), inst.data::<Vec<i32>>().cloned().unwrap())
    };
    let flat = make(ExecTier::Compiled);
    let tree = make(ExecTier::Reference);
    assert_eq!(flat, tree);
    assert_eq!(flat.0, Err(Trap::Unreachable));
    assert_eq!(flat.2, vec![10, 99], "host saw both calls before the trap");
}

/// Division traps (by zero and `i32::MIN / -1`) carry the same variant
/// and leave the same counts on both tiers.
#[test]
fn division_traps_match() {
    for (a, b, expect_trap) in [
        (10, 0, true),
        (i32::MIN, -1, true),
        (i32::MIN, 1, false),
        (7, -3, false),
    ] {
        let body = vec![Instr::I32Const(a), Instr::I32Const(b), Instr::I32DivS];
        let module = build_module(body);
        let flat = run_tier(&module, ExecTier::Compiled, None);
        let tree = run_tier(&module, ExecTier::Reference, None);
        assert_eq!(flat, tree, "divergence for {a} / {b}");
        assert_eq!(flat.outcome.is_err(), expect_trap, "{a} / {b}");
    }
}
