//! Property tests over the binary format: arbitrary generated modules
//! must survive encode → decode bit-exactly, and valid modules must both
//! instantiate and execute identically before and after a round trip.

use proptest::prelude::*;
use roadrunner_wasm::instr::{BlockType, Instr, MemArg};
use roadrunner_wasm::types::{FuncType, ValType, Value};
use roadrunner_wasm::{decode, encode, EngineLimits, Instance, Linker, ModuleBuilder};

fn arb_valtype() -> impl Strategy<Value = ValType> {
    prop_oneof![
        Just(ValType::I32),
        Just(ValType::I64),
        Just(ValType::F32),
        Just(ValType::F64),
    ]
}

/// Straight-line i32 instruction streams that are always valid for a
/// `() -> i32` function: they keep exactly one i32 growing on the stack.
fn arb_i32_chain() -> impl Strategy<Value = Vec<Instr>> {
    let step = prop_oneof![
        any::<i32>().prop_map(|v| vec![Instr::I32Const(v), Instr::I32Add]),
        any::<i32>().prop_map(|v| vec![Instr::I32Const(v), Instr::I32Xor]),
        any::<i32>().prop_map(|v| vec![Instr::I32Const(v), Instr::I32Sub]),
        Just(vec![Instr::I32Popcnt]),
        Just(vec![Instr::I32Eqz]),
        Just(vec![Instr::I32Const(13), Instr::I32Mul]),
        Just(vec![
            Instr::I32Const(5),
            Instr::I32Const(1),
            Instr::Select,
        ]),
        (0u32..4).prop_map(|d| {
            vec![Instr::Block(
                BlockType::Value(ValType::I32),
                vec![Instr::I32Const(d as i32), Instr::Br(0)],
            ), Instr::I32Add]
        }),
    ];
    proptest::collection::vec(step, 0..24).prop_map(|chunks| {
        let mut body = vec![Instr::I32Const(1)];
        for c in chunks {
            body.extend(c);
        }
        body
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_modules_round_trip_bit_exactly(
        body in arb_i32_chain(),
        locals in proptest::collection::vec(arb_valtype(), 0..6),
        mem_pages in 1u32..4,
        data in proptest::collection::vec(any::<u8>(), 0..64),
        global_init in any::<i64>(),
    ) {
        let module = ModuleBuilder::new()
            .memory(mem_pages, Some(mem_pages + 4))
            .global(ValType::I64, true, Value::I64(global_init))
            .func(FuncType::new([], [ValType::I32]), locals, body)
            .export_func("run", 0)
            .export_memory("memory")
            .data(0, data)
            .build()
            .expect("generated module validates");
        let bytes = encode::encode(&module);
        let decoded = decode::decode(&bytes).expect("round trip decodes");
        prop_assert_eq!(&decoded, &module);
        // Encoding the decoded module reproduces the same bytes.
        prop_assert_eq!(encode::encode(&decoded), bytes);
    }

    #[test]
    fn execution_agrees_before_and_after_round_trip(body in arb_i32_chain()) {
        let module = ModuleBuilder::new()
            .func(FuncType::new([], [ValType::I32]), [], body)
            .export_func("run", 0)
            .build()
            .expect("validates");
        let decoded = decode::decode(&encode::encode(&module)).expect("decodes");
        let mut a = Instance::new(
            module,
            &Linker::new(),
            EngineLimits::default(),
            Box::new(()),
        )
        .expect("instantiates");
        let mut b = Instance::new(
            decoded,
            &Linker::new(),
            EngineLimits::default(),
            Box::new(()),
        )
        .expect("instantiates");
        prop_assert_eq!(a.invoke("run", &[]).unwrap(), b.invoke("run", &[]).unwrap());
    }

    #[test]
    fn memarg_immediates_round_trip(
        align in 0u32..4,
        offset in any::<u32>(),
    ) {
        let m = MemArg { align, offset };
        let module = ModuleBuilder::new()
            .memory(1, None)
            .func(
                FuncType::new([], []),
                [],
                // Load from a safe base so validation passes; never run.
                [Instr::I32Const(0), Instr::I32Load8U(m), Instr::Drop],
            )
            .build()
            .expect("validates");
        let decoded = decode::decode(&encode::encode(&module)).unwrap();
        prop_assert_eq!(decoded, module);
    }
}

#[test]
fn deeply_nested_blocks_round_trip() {
    let mut body = vec![Instr::Nop];
    for _ in 0..64 {
        body = vec![Instr::Block(BlockType::Empty, body)];
    }
    let module = ModuleBuilder::new()
        .func(FuncType::new([], []), [], body)
        .export_func("deep", 0)
        .build()
        .unwrap();
    let decoded = decode::decode(&encode::encode(&module)).unwrap();
    assert_eq!(decoded, module);
    let mut inst =
        Instance::new(decoded, &Linker::new(), EngineLimits::default(), Box::new(())).unwrap();
    inst.invoke("deep", &[]).unwrap();
}

#[test]
fn every_numeric_opcode_survives_a_round_trip() {
    use Instr::*;
    // One representative body exercising each opcode. Operands in dead
    // code are polymorphic, but *pushed* results keep their concrete
    // types (per spec), so each opcode is bracketed by `unreachable` to
    // reset the stack between type families.
    let ops = vec![
        I32Clz, I32Ctz, I32Popcnt, I32Add, I32Sub, I32Mul, I32DivS, I32DivU, I32RemS,
        I32RemU, I32And, I32Or, I32Xor, I32Shl, I32ShrS, I32ShrU, I32Rotl, I32Rotr,
        I32Eqz, I32Eq, I32Ne, I32LtS, I32LtU, I32GtS, I32GtU, I32LeS, I32LeU, I32GeS,
        I32GeU, I64Clz, I64Ctz, I64Popcnt, I64Add, I64Sub, I64Mul, I64DivS, I64DivU,
        I64RemS, I64RemU, I64And, I64Or, I64Xor, I64Shl, I64ShrS, I64ShrU, I64Rotl,
        I64Rotr, I64Eqz, I64Eq, I64Ne, I64LtS, I64LtU, I64GtS, I64GtU, I64LeS, I64LeU,
        I64GeS, I64GeU, F32Abs, F32Neg, F32Ceil, F32Floor, F32Trunc, F32Nearest,
        F32Sqrt, F32Add, F32Sub, F32Mul, F32Div, F32Min, F32Max, F32Copysign, F32Eq,
        F32Ne, F32Lt, F32Gt, F32Le, F32Ge, F64Abs, F64Neg, F64Ceil, F64Floor, F64Trunc,
        F64Nearest, F64Sqrt, F64Add, F64Sub, F64Mul, F64Div, F64Min, F64Max,
        F64Copysign, F64Eq, F64Ne, F64Lt, F64Gt, F64Le, F64Ge, I32WrapI64, I32TruncF32S,
        I32TruncF32U, I32TruncF64S, I32TruncF64U, I64ExtendI32S, I64ExtendI32U,
        I64TruncF32S, I64TruncF32U, I64TruncF64S, I64TruncF64U, F32ConvertI32S,
        F32ConvertI32U, F32ConvertI64S, F32ConvertI64U, F32DemoteF64, F64ConvertI32S,
        F64ConvertI32U, F64ConvertI64S, F64ConvertI64U, F64PromoteF32,
        I32ReinterpretF32, I64ReinterpretF64, F32ReinterpretI32, F64ReinterpretI64,
    ];
    let mut body = Vec::with_capacity(ops.len() * 2 + 1);
    for op in ops {
        body.push(Unreachable);
        body.push(op);
    }
    body.push(Unreachable);
    let module = ModuleBuilder::new()
        .memory(1, None)
        .func(FuncType::new([], []), [], body)
        .build()
        .unwrap();
    let decoded = decode::decode(&encode::encode(&module)).unwrap();
    assert_eq!(decoded, module);
}
