//! Micro-benchmarks for the interpreter's hot paths, run on both
//! execution tiers so the flat-bytecode speedup over the tree walker is
//! visible per-kernel (the end-to-end gate lives in `bench_wasm`).
//!
//! Covered: the dispatch loop on a compute-bound kernel, a call-heavy
//! recursive fib, the host-call round-trip, and `Instance::new` cost
//! (which after the first compile must not pay for lowering again).
//!
//! Run: `cargo bench -p roadrunner-wasm`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use roadrunner_wasm::types::{FuncType, ValType, Value};
use roadrunner_wasm::{
    BlockType, EngineLimits, ExecTier, Instance, Instr, Linker, MemArg, Module, ModuleBuilder,
};

const TIERS: [(&str, ExecTier); 2] =
    [("flat", ExecTier::Compiled), ("tree", ExecTier::Reference)];

/// `loop(n) { x = xorshift32(x); acc += x }` — pure local arithmetic
/// and branch dispatch in the local-SSA style compilers emit, no calls,
/// no memory: the tree walker's worst case.
///
/// Locals: 0 = n (param), 1 = i, 2 = x, 3 = acc, 4 = t.
fn compute_module() -> Module {
    let shift = |amount: i32, op: Instr| {
        vec![
            // t = x <shift> amount; x = x ^ t
            Instr::LocalGet(2),
            Instr::I32Const(amount),
            op,
            Instr::LocalSet(4),
            Instr::LocalGet(2),
            Instr::LocalGet(4),
            Instr::I32Xor,
            Instr::LocalSet(2),
        ]
    };
    let mut body = vec![
        Instr::LocalGet(1),
        Instr::LocalGet(0),
        Instr::I32GeU,
        Instr::BrIf(1),
    ];
    body.extend(shift(13, Instr::I32Shl));
    body.extend(shift(17, Instr::I32ShrU));
    body.extend(shift(5, Instr::I32Shl));
    body.extend([
        // acc += x
        Instr::LocalGet(3),
        Instr::LocalGet(2),
        Instr::I32Add,
        Instr::LocalSet(3),
        // i += 1
        Instr::LocalGet(1),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalSet(1),
        Instr::Br(0),
    ]);
    ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [ValType::I32; 4],
            [
                // x starts at the nonzero xorshift seed.
                Instr::I32Const(0x9E3779B9u32 as i32),
                Instr::LocalSet(2),
                Instr::Block(BlockType::Empty, vec![Instr::Loop(BlockType::Empty, body)]),
                Instr::LocalGet(3),
            ],
        )
        .export_func("run", 0)
        .build()
        .unwrap()
}

/// Naive recursive fib — every iteration is two wasm->wasm calls, so
/// this measures frame setup/teardown.
fn fib_module() -> Module {
    ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [],
            [
                Instr::LocalGet(0),
                Instr::I32Const(2),
                Instr::I32LtS,
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![Instr::LocalGet(0)],
                    vec![
                        Instr::LocalGet(0),
                        Instr::I32Const(1),
                        Instr::I32Sub,
                        Instr::Call(0),
                        Instr::LocalGet(0),
                        Instr::I32Const(2),
                        Instr::I32Sub,
                        Instr::Call(0),
                        Instr::I32Add,
                    ],
                ),
            ],
        )
        .export_func("fib", 0)
        .build()
        .unwrap()
}

/// `loop(n) { mem[i%page] = load(mem[i%page]) + 1 }` — bounds-checked
/// loads/stores dominate.
fn memory_module() -> Module {
    ModuleBuilder::new()
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [ValType::I32, ValType::I32],
            [
                Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(
                        BlockType::Empty,
                        vec![
                            Instr::LocalGet(1),
                            Instr::LocalGet(0),
                            Instr::I32GeU,
                            Instr::BrIf(1),
                            // addr = (i * 4) & 0xFFFC
                            Instr::LocalGet(1),
                            Instr::I32Const(4),
                            Instr::I32Mul,
                            Instr::I32Const(0xFFFC),
                            Instr::I32And,
                            Instr::LocalTee(2),
                            Instr::LocalGet(2),
                            Instr::I32Load(MemArg::natural(4)),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::I32Store(MemArg::natural(4)),
                            Instr::LocalGet(1),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::LocalSet(1),
                            Instr::Br(0),
                        ],
                    )],
                ),
                Instr::LocalGet(1),
            ],
        )
        .memory(1, Some(1))
        .export_func("run", 0)
        .build()
        .unwrap()
}

/// `loop(n) { acc = host(acc) }` — measures the wasm->host boundary.
fn host_module() -> Module {
    ModuleBuilder::new()
        .import_func("env", "bump", FuncType::new([ValType::I32], [ValType::I32]))
        .func(
            FuncType::new([ValType::I32], [ValType::I32]),
            [ValType::I32, ValType::I32],
            [
                Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(
                        BlockType::Empty,
                        vec![
                            Instr::LocalGet(1),
                            Instr::LocalGet(0),
                            Instr::I32GeU,
                            Instr::BrIf(1),
                            Instr::LocalGet(2),
                            Instr::Call(0),
                            Instr::LocalSet(2),
                            Instr::LocalGet(1),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::LocalSet(1),
                            Instr::Br(0),
                        ],
                    )],
                ),
                Instr::LocalGet(2),
            ],
        )
        .export_func("run", 1)
        .build()
        .unwrap()
}

fn instantiate(module: &Module, tier: ExecTier, linker: &Linker) -> Instance {
    Instance::new(
        module.clone(),
        linker,
        EngineLimits::default().with_exec_tier(tier),
        Box::new(()),
    )
    .unwrap()
}

fn bench_compute(c: &mut Criterion) {
    let module = compute_module();
    let n = 10_000;
    let mut group = c.benchmark_group("compute_loop");
    group.throughput(Throughput::Elements(n as u64));
    for (name, tier) in TIERS {
        let mut inst = instantiate(&module, tier, &Linker::new());
        group.bench_function(name, |b| {
            b.iter(|| inst.invoke("run", &[Value::I32(black_box(n))]).unwrap())
        });
    }
    group.finish();
}

fn bench_fib(c: &mut Criterion) {
    let module = fib_module();
    let mut group = c.benchmark_group("fib_calls");
    for (name, tier) in TIERS {
        let mut inst = instantiate(&module, tier, &Linker::new());
        group.bench_function(name, |b| {
            b.iter(|| inst.invoke("fib", &[Value::I32(black_box(18))]).unwrap())
        });
    }
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let module = memory_module();
    let n = 10_000;
    let mut group = c.benchmark_group("memory_loop");
    group.throughput(Throughput::Elements(n as u64));
    for (name, tier) in TIERS {
        let mut inst = instantiate(&module, tier, &Linker::new());
        group.bench_function(name, |b| {
            b.iter(|| inst.invoke("run", &[Value::I32(black_box(n))]).unwrap())
        });
    }
    group.finish();
}

fn bench_host_roundtrip(c: &mut Criterion) {
    let module = host_module();
    let mut linker = Linker::new();
    linker.define(
        "env",
        "bump",
        FuncType::new([ValType::I32], [ValType::I32]),
        |_caller, args| {
            let x = match args[0] {
                Value::I32(v) => v,
                _ => unreachable!(),
            };
            Ok(vec![Value::I32(x.wrapping_add(1))])
        },
    );
    let n = 1_000;
    let mut group = c.benchmark_group("host_roundtrip");
    group.throughput(Throughput::Elements(n as u64));
    for (name, tier) in TIERS {
        let mut inst = instantiate(&module, tier, &linker);
        group.bench_function(name, |b| {
            b.iter(|| inst.invoke("run", &[Value::I32(black_box(n))]).unwrap())
        });
    }
    group.finish();
}

/// Instantiation cost. The first `Instance::new` on the compiled tier
/// pays the one-time lowering; this bench measures the steady state,
/// where the module's `CodeCache` is already filled and instantiation
/// must cost the same as the reference tier.
fn bench_instantiate(c: &mut Criterion) {
    let module = compute_module();
    // Warm the code cache so the measurement excludes the first compile.
    instantiate(&module, ExecTier::Compiled, &Linker::new())
        .invoke("run", &[Value::I32(1)])
        .unwrap();
    let linker = Linker::new();
    let mut group = c.benchmark_group("instance_new");
    for (name, tier) in TIERS {
        group.bench_function(name, |b| {
            b.iter(|| black_box(instantiate(&module, tier, &linker)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compute,
    bench_fib,
    bench_memory,
    bench_host_roundtrip,
    bench_instantiate
);
criterion_main!(benches);
