//! Socket adapters bridging WASI descriptors to virtual-kernel endpoints.

use roadrunner_vkernel::node::Sandbox;
use roadrunner_vkernel::tcp::TcpEndpoint;
use roadrunner_vkernel::unix::UnixEndpoint;
use roadrunner_vkernel::VkError;

use crate::ctx::{errno, WasiSocket};

fn map_err(e: VkError) -> i32 {
    match e {
        VkError::Closed => errno::BADF,
        _ => errno::IO,
    }
}

/// A WASI socket over a virtual TCP connection (the baselines' network
/// path).
#[derive(Debug)]
pub struct TcpSocket {
    endpoint: TcpEndpoint,
}

impl TcpSocket {
    /// Wraps an established endpoint.
    pub fn new(endpoint: TcpEndpoint) -> Self {
        Self { endpoint }
    }
}

impl WasiSocket for TcpSocket {
    fn send(&mut self, sandbox: &Sandbox, data: &[u8]) -> Result<usize, i32> {
        self.endpoint.send(sandbox, data).map_err(map_err)
    }

    fn recv(&mut self, sandbox: &Sandbox) -> Result<Option<Vec<u8>>, i32> {
        match self.endpoint.recv(sandbox) {
            Ok(Some(seg)) => Ok(Some(seg.to_vec())),
            Ok(None) => Ok(None),
            Err(e) => Err(map_err(e)),
        }
    }
}

/// A WASI socket over a Unix-domain endpoint (co-located functions).
#[derive(Debug)]
pub struct UnixSocket {
    endpoint: UnixEndpoint,
}

impl UnixSocket {
    /// Wraps one end of a socket pair.
    pub fn new(endpoint: UnixEndpoint) -> Self {
        Self { endpoint }
    }
}

impl WasiSocket for UnixSocket {
    fn send(&mut self, sandbox: &Sandbox, data: &[u8]) -> Result<usize, i32> {
        self.endpoint.send(sandbox, data).map_err(map_err)
    }

    fn recv(&mut self, sandbox: &Sandbox) -> Result<Option<Vec<u8>>, i32> {
        match self.endpoint.recv(sandbox) {
            Ok(Some(seg)) => Ok(Some(seg.to_vec())),
            Ok(None) => Ok(None),
            Err(e) => Err(map_err(e)),
        }
    }
}

/// An in-process loopback socket for tests: everything sent is readable
/// back in FIFO order.
#[derive(Debug, Default)]
pub struct LoopbackSocket {
    queue: std::collections::VecDeque<Vec<u8>>,
    closed: bool,
}

impl LoopbackSocket {
    /// Creates an empty loopback.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the loopback closed; subsequent receives report end of
    /// stream once drained.
    pub fn close(&mut self) {
        self.closed = true;
    }
}

impl WasiSocket for LoopbackSocket {
    fn send(&mut self, _sandbox: &Sandbox, data: &[u8]) -> Result<usize, i32> {
        if self.closed {
            return Err(errno::BADF);
        }
        self.queue.push_back(data.to_vec());
        Ok(data.len())
    }

    fn recv(&mut self, _sandbox: &Sandbox) -> Result<Option<Vec<u8>>, i32> {
        match self.queue.pop_front() {
            Some(seg) => Ok(Some(seg)),
            None if self.closed => Ok(None),
            None => Ok(Some(Vec::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_vkernel::net::Link;
    use roadrunner_vkernel::tcp::TcpConn;
    use roadrunner_vkernel::unix::UnixConn;
    use roadrunner_vkernel::{CostModel, VirtualClock};
    use std::sync::Arc;

    fn sandbox(name: &str) -> Sandbox {
        Sandbox::detached(name, VirtualClock::new(), Arc::new(CostModel::paper_testbed()))
    }

    #[test]
    fn tcp_adapter_round_trips() {
        let sa = sandbox("a");
        let sb = sandbox("b");
        let (ea, eb) = TcpConn::establish(&sa, Link::loopback("lo"));
        let mut tx = TcpSocket::new(ea);
        let mut rx = TcpSocket::new(eb);
        tx.send(&sa, b"hello").unwrap();
        let got = rx.recv(&sb).unwrap().unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn unix_adapter_round_trips() {
        let sa = sandbox("a");
        let sb = sandbox("b");
        let (ea, eb) = UnixConn::pair();
        let mut tx = UnixSocket::new(ea);
        let mut rx = UnixSocket::new(eb);
        tx.send(&sa, b"ipc").unwrap();
        assert_eq!(rx.recv(&sb).unwrap().unwrap(), b"ipc");
    }

    #[test]
    fn loopback_fifo_and_close() {
        let sb = sandbox("x");
        let mut lo = LoopbackSocket::new();
        lo.send(&sb, b"1").unwrap();
        lo.send(&sb, b"2").unwrap();
        assert_eq!(lo.recv(&sb).unwrap().unwrap(), b"1");
        lo.close();
        assert_eq!(lo.recv(&sb).unwrap().unwrap(), b"2");
        assert_eq!(lo.recv(&sb).unwrap(), None);
        assert_eq!(lo.send(&sb, b"3").unwrap_err(), errno::BADF);
    }
}
