//! A WASI-like host interface for the `roadrunner-wasm` engine.
//!
//! WebAssembly follows deny-by-default: a module reaches the outside
//! world only through imported host functions. The standard set of those
//! is WASI, and the paper's baselines route *all* their I/O through it —
//! paying a boundary crossing plus a copy in or out of linear memory on
//! every call. This crate reproduces that interface (preview-1 ABI:
//! iovec arrays, errno returns) and charges those costs to the calling
//! sandbox's account, making the "WASI overhead" of the paper's Fig. 2a
//! a measurable quantity.
//!
//! * [`WasiCtx`] — per-instance state: stdio, an in-memory filesystem,
//!   sockets, args/env, deterministic randomness, exit code.
//! * [`mod@register`] — installs `fd_read`/`fd_write`/`sock_send`/… into a
//!   [`roadrunner_wasm::Linker`].
//! * [`sock`] — socket adapters over the virtual kernel's TCP and Unix
//!   endpoints.
//!
//! The host-state type is generic via [`HasWasi`], so the Roadrunner shim
//! can embed a `WasiCtx` inside its own state: unmodified modules keep
//! using plain WASI while opted-in modules use the fast path — the
//! backward-compatibility property of the paper's §7.

pub mod ctx;
pub mod register;
pub mod sock;

pub use ctx::{errno, WasiCtx, WasiSocket};
pub use register::{register, HasWasi, MODULE, PROC_EXIT};
