//! Registration of the WASI host-function family into a [`Linker`].
//!
//! Functions follow the `wasi_snapshot_preview1` ABI (iovec arrays in
//! linear memory, errno return codes) so guest code generated for real
//! WASI toolchains maps 1:1. Every call charges the guest↔host boundary
//! cost plus per-byte VM I/O for data crossing the sandbox — the overhead
//! the paper's Fig. 2 quantifies.

use roadrunner_wasm::types::{FuncType, ValType};
use roadrunner_wasm::{Caller, Linker, Memory, Trap};

use crate::ctx::{errno, WasiCtx};

/// Import namespace used by WASI preview 1.
pub const MODULE: &str = "wasi_snapshot_preview1";

/// Trap message raised by `proc_exit`; embedders treat it as a clean
/// termination and read the code from [`WasiCtx::exit_code`].
pub const PROC_EXIT: &str = "proc_exit";

/// Access to the [`WasiCtx`] inside an instance's host state.
///
/// Implemented by any embedder state that embeds a WASI context (the
/// Roadrunner shim's state does, so unmodified modules keep working —
/// the paper's backward-compatibility requirement in §7).
pub trait HasWasi {
    /// The embedded WASI context.
    fn wasi(&mut self) -> &mut WasiCtx;
}

impl HasWasi for WasiCtx {
    fn wasi(&mut self) -> &mut WasiCtx {
        self
    }
}

/// One guest iovec: a `(ptr, len)` pair in linear memory.
#[derive(Debug, Clone, Copy)]
struct IoVec {
    ptr: u32,
    len: u32,
}

fn read_iovecs(memory: &Memory, iovs: u32, count: u32) -> Result<Vec<IoVec>, Trap> {
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let base = iovs + i * 8;
        let ptr = u32::from_le_bytes(memory.load::<4>(base, 0)?);
        let len = u32::from_le_bytes(memory.load::<4>(base, 4)?);
        out.push(IoVec { ptr, len });
    }
    Ok(out)
}

fn arg_i32(args: &[roadrunner_wasm::Value], i: usize) -> i32 {
    args[i].as_i32().expect("typed by signature")
}

fn arg_i64(args: &[roadrunner_wasm::Value], i: usize) -> i64 {
    args[i].as_i64().expect("typed by signature")
}

fn ret(errno: i32) -> Result<Vec<roadrunner_wasm::Value>, Trap> {
    Ok(vec![roadrunner_wasm::Value::I32(errno)])
}

/// Registers the full WASI subset into `linker` for host state `T`.
pub fn register<T: HasWasi + Send + 'static>(linker: &mut Linker) {
    let i32_ = ValType::I32;
    let i64_ = ValType::I64;

    // fd_write(fd, iovs, iovs_len, nwritten) -> errno
    linker.define(
        MODULE,
        "fd_write",
        FuncType::new([i32_, i32_, i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let fd = arg_i32(args, 0) as u32;
            let iovs = arg_i32(args, 1) as u32;
            let count = arg_i32(args, 2) as u32;
            let nwritten_ptr = arg_i32(args, 3) as u32;
            let mut data = Vec::new();
            {
                let memory = caller.memory()?;
                for iov in read_iovecs(memory, iovs, count)? {
                    data.extend_from_slice(memory.read(iov.ptr, iov.len)?);
                }
            }
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(data.len());
            let result = ctx.write_fd(fd, &data);
            match result {
                Ok(n) => {
                    caller.memory()?.store::<4>(nwritten_ptr, 0, (n as u32).to_le_bytes())?;
                    ret(errno::SUCCESS)
                }
                Err(e) => ret(e),
            }
        },
    );

    // fd_read(fd, iovs, iovs_len, nread) -> errno
    linker.define(
        MODULE,
        "fd_read",
        FuncType::new([i32_, i32_, i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let fd = arg_i32(args, 0) as u32;
            let iovs = arg_i32(args, 1) as u32;
            let count = arg_i32(args, 2) as u32;
            let nread_ptr = arg_i32(args, 3) as u32;
            let iovecs = read_iovecs(caller.memory()?, iovs, count)?;
            let want: usize = iovecs.iter().map(|v| v.len as usize).sum();
            let ctx = caller.data::<T>()?.wasi();
            let data = match ctx.read_fd(fd, want) {
                Ok(d) => d,
                Err(e) => return ret(e),
            };
            ctx.charge_boundary(data.len());
            let memory = caller.memory()?;
            let mut offset = 0usize;
            for iov in iovecs {
                if offset >= data.len() {
                    break;
                }
                let take = (iov.len as usize).min(data.len() - offset);
                memory.write(iov.ptr, &data[offset..offset + take])?;
                offset += take;
            }
            memory.store::<4>(nread_ptr, 0, (offset as u32).to_le_bytes())?;
            ret(errno::SUCCESS)
        },
    );

    // fd_close(fd) -> errno
    linker.define(
        MODULE,
        "fd_close",
        FuncType::new([i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let fd = arg_i32(args, 0) as u32;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(0);
            match ctx.close_fd(fd) {
                Ok(()) => ret(errno::SUCCESS),
                Err(e) => ret(e),
            }
        },
    );

    // fd_seek(fd, offset, whence, newoffset) -> errno
    linker.define(
        MODULE,
        "fd_seek",
        FuncType::new([i32_, i64_, i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let fd = arg_i32(args, 0) as u32;
            let offset = arg_i64(args, 1);
            let whence = arg_i32(args, 2) as u8;
            let new_ptr = arg_i32(args, 3) as u32;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(0);
            match ctx.seek_fd(fd, offset, whence) {
                Ok(pos) => {
                    caller.memory()?.store::<8>(new_ptr, 0, pos.to_le_bytes())?;
                    ret(errno::SUCCESS)
                }
                Err(e) => ret(e),
            }
        },
    );

    // path_open(dirfd, dirflags, path, path_len, oflags, rights_base,
    //           rights_inheriting, fdflags, opened_fd) -> errno
    linker.define(
        MODULE,
        "path_open",
        FuncType::new(
            [i32_, i32_, i32_, i32_, i32_, i64_, i64_, i32_, i32_],
            [i32_],
        ),
        |mut caller: Caller<'_>, args| {
            let path_ptr = arg_i32(args, 2) as u32;
            let path_len = arg_i32(args, 3) as u32;
            let oflags = arg_i32(args, 4);
            let fd_ptr = arg_i32(args, 8) as u32;
            let path = caller.read_string(path_ptr, path_len)?;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(path.len());
            let create = oflags & 0x1 != 0; // OFLAGS_CREAT
            match ctx.open_path(&path, create) {
                Ok(fd) => {
                    caller.memory()?.store::<4>(fd_ptr, 0, fd.to_le_bytes())?;
                    ret(errno::SUCCESS)
                }
                Err(e) => ret(e),
            }
        },
    );

    // random_get(buf, len) -> errno
    linker.define(
        MODULE,
        "random_get",
        FuncType::new([i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let buf = arg_i32(args, 0) as u32;
            let len = arg_i32(args, 1) as usize;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(len);
            let mut bytes = Vec::with_capacity(len);
            while bytes.len() < len {
                bytes.extend_from_slice(&ctx.next_random().to_le_bytes());
            }
            bytes.truncate(len);
            caller.memory()?.write(buf, &bytes)?;
            ret(errno::SUCCESS)
        },
    );

    // clock_time_get(id, precision, time_ptr) -> errno
    linker.define(
        MODULE,
        "clock_time_get",
        FuncType::new([i32_, i64_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let time_ptr = arg_i32(args, 2) as u32;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(8);
            let now = ctx.sandbox().clock().now();
            caller.memory()?.store::<8>(time_ptr, 0, now.to_le_bytes())?;
            ret(errno::SUCCESS)
        },
    );

    // args_sizes_get(argc_ptr, argv_buf_size_ptr) -> errno
    linker.define(
        MODULE,
        "args_sizes_get",
        FuncType::new([i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let argc_ptr = arg_i32(args, 0) as u32;
            let size_ptr = arg_i32(args, 1) as u32;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(8);
            let argc = ctx.args().len() as u32;
            let buf: u32 = ctx.args().iter().map(|a| a.len() as u32 + 1).sum();
            let memory = caller.memory()?;
            memory.store::<4>(argc_ptr, 0, argc.to_le_bytes())?;
            memory.store::<4>(size_ptr, 0, buf.to_le_bytes())?;
            ret(errno::SUCCESS)
        },
    );

    // args_get(argv_ptr, argv_buf_ptr) -> errno
    linker.define(
        MODULE,
        "args_get",
        FuncType::new([i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let argv_ptr = arg_i32(args, 0) as u32;
            let buf_ptr = arg_i32(args, 1) as u32;
            let arg_list = {
                let ctx = caller.data::<T>()?.wasi();
                let list = ctx.args().to_vec();
                ctx.charge_boundary(list.iter().map(String::len).sum());
                list
            };
            let memory = caller.memory()?;
            let mut cursor = buf_ptr;
            for (i, arg) in arg_list.iter().enumerate() {
                memory.store::<4>(argv_ptr + (i as u32) * 4, 0, cursor.to_le_bytes())?;
                memory.write(cursor, arg.as_bytes())?;
                memory.write(cursor + arg.len() as u32, &[0])?;
                cursor += arg.len() as u32 + 1;
            }
            ret(errno::SUCCESS)
        },
    );

    // environ_sizes_get / environ_get — same layout as args.
    linker.define(
        MODULE,
        "environ_sizes_get",
        FuncType::new([i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let count_ptr = arg_i32(args, 0) as u32;
            let size_ptr = arg_i32(args, 1) as u32;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(8);
            let count = ctx.env().len() as u32;
            let buf: u32 = ctx.env().iter().map(|(k, v)| (k.len() + v.len() + 2) as u32).sum();
            let memory = caller.memory()?;
            memory.store::<4>(count_ptr, 0, count.to_le_bytes())?;
            memory.store::<4>(size_ptr, 0, buf.to_le_bytes())?;
            ret(errno::SUCCESS)
        },
    );

    linker.define(
        MODULE,
        "environ_get",
        FuncType::new([i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let environ_ptr = arg_i32(args, 0) as u32;
            let buf_ptr = arg_i32(args, 1) as u32;
            let pairs = {
                let ctx = caller.data::<T>()?.wasi();
                let pairs: Vec<String> =
                    ctx.env().iter().map(|(k, v)| format!("{k}={v}")).collect();
                ctx.charge_boundary(pairs.iter().map(String::len).sum());
                pairs
            };
            let memory = caller.memory()?;
            let mut cursor = buf_ptr;
            for (i, entry) in pairs.iter().enumerate() {
                memory.store::<4>(environ_ptr + (i as u32) * 4, 0, cursor.to_le_bytes())?;
                memory.write(cursor, entry.as_bytes())?;
                memory.write(cursor + entry.len() as u32, &[0])?;
                cursor += entry.len() as u32 + 1;
            }
            ret(errno::SUCCESS)
        },
    );

    // proc_exit(code) -> never returns
    linker.define(
        MODULE,
        "proc_exit",
        FuncType::new([i32_], []),
        |mut caller: Caller<'_>, args| {
            let code = arg_i32(args, 0) as u32;
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(0);
            ctx.exit_code = Some(code);
            Err(Trap::host(PROC_EXIT))
        },
    );

    // sock_send(fd, si_data, si_data_len, si_flags, so_datalen) -> errno
    linker.define(
        MODULE,
        "sock_send",
        FuncType::new([i32_, i32_, i32_, i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let fd = arg_i32(args, 0) as u32;
            let iovs = arg_i32(args, 1) as u32;
            let count = arg_i32(args, 2) as u32;
            let sent_ptr = arg_i32(args, 4) as u32;
            let mut data = Vec::new();
            {
                let memory = caller.memory()?;
                for iov in read_iovecs(memory, iovs, count)? {
                    data.extend_from_slice(memory.read(iov.ptr, iov.len)?);
                }
            }
            let ctx = caller.data::<T>()?.wasi();
            ctx.charge_boundary(data.len());
            let sandbox = ctx.sandbox().clone();
            let Some(socket) = ctx.socket_mut(fd) else {
                return ret(errno::BADF);
            };
            match socket.send(&sandbox, &data) {
                Ok(n) => {
                    caller.memory()?.store::<4>(sent_ptr, 0, (n as u32).to_le_bytes())?;
                    ret(errno::SUCCESS)
                }
                Err(e) => ret(e),
            }
        },
    );

    // sock_recv(fd, ri_data, ri_data_len, ri_flags, ro_datalen, ro_flags)
    linker.define(
        MODULE,
        "sock_recv",
        FuncType::new([i32_, i32_, i32_, i32_, i32_, i32_], [i32_]),
        |mut caller: Caller<'_>, args| {
            let fd = arg_i32(args, 0) as u32;
            let iovs = arg_i32(args, 1) as u32;
            let count = arg_i32(args, 2) as u32;
            let recvd_ptr = arg_i32(args, 4) as u32;
            let flags_ptr = arg_i32(args, 5) as u32;
            let iovecs = read_iovecs(caller.memory()?, iovs, count)?;
            let ctx = caller.data::<T>()?.wasi();
            let sandbox = ctx.sandbox().clone();
            let Some(socket) = ctx.socket_mut(fd) else {
                return ret(errno::BADF);
            };
            let data = match socket.recv(&sandbox) {
                Ok(Some(d)) => d,
                // Peer closed: zero bytes, ro_flags = 0 (like EOF).
                Ok(None) => Vec::new(),
                Err(e) => return ret(e),
            };
            caller.data::<T>()?.wasi().charge_boundary(data.len());
            let memory = caller.memory()?;
            let mut offset = 0usize;
            for iov in iovecs {
                if offset >= data.len() {
                    break;
                }
                let take = (iov.len as usize).min(data.len() - offset);
                memory.write(iov.ptr, &data[offset..offset + take])?;
                offset += take;
            }
            memory.store::<4>(recvd_ptr, 0, (offset as u32).to_le_bytes())?;
            memory.store::<4>(flags_ptr, 0, 0u32.to_le_bytes())?;
            ret(errno::SUCCESS)
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sock::LoopbackSocket;
    use roadrunner_vkernel::node::Sandbox;
    use roadrunner_vkernel::{CostModel, VirtualClock};
    use roadrunner_wasm::types::Value;
    use roadrunner_wasm::{EngineLimits, Instance, Instr, MemArg, ModuleBuilder};
    use std::sync::Arc;

    fn wasi_ctx() -> WasiCtx {
        let sandbox =
            Sandbox::detached("guest", VirtualClock::new(), Arc::new(CostModel::paper_testbed()));
        WasiCtx::new(sandbox)
    }

    fn linker() -> Linker {
        let mut linker = Linker::new();
        register::<WasiCtx>(&mut linker);
        linker
    }

    /// Builds a module that writes `msg` to fd 1 via one iovec at address
    /// 0 (iovec) / 16 (payload).
    fn hello_module(msg: &[u8]) -> roadrunner_wasm::Module {
        let i32_ = ValType::I32;
        ModuleBuilder::new()
            .import_func(
                MODULE,
                "fd_write",
                FuncType::new([i32_, i32_, i32_, i32_], [i32_]),
            )
            .memory(1, None)
            .data(16, msg.to_vec())
            .func(
                FuncType::new([], [ValType::I32]),
                [],
                [
                    // iovec { ptr: 16, len: msg.len() } at address 0.
                    Instr::I32Const(0),
                    Instr::I32Const(16),
                    Instr::I32Store(MemArg::default()),
                    Instr::I32Const(4),
                    Instr::I32Const(msg.len() as i32),
                    Instr::I32Store(MemArg::default()),
                    // fd_write(1, 0, 1, 8)
                    Instr::I32Const(1),
                    Instr::I32Const(0),
                    Instr::I32Const(1),
                    Instr::I32Const(8),
                    Instr::Call(0),
                ],
            )
            .export_func("_start", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn guest_fd_write_reaches_stdout() {
        let module = hello_module(b"hello wasi");
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(wasi_ctx()))
                .unwrap();
        let out = inst.invoke("_start", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(errno::SUCCESS)]);
        let ctx = inst.data::<WasiCtx>().unwrap();
        assert_eq!(ctx.stdout, b"hello wasi");
        assert!(ctx.call_count >= 1);
        assert!(ctx.sandbox().account().user_ns() > 0, "boundary cost charged");
    }

    #[test]
    fn proc_exit_traps_with_code() {
        let module = ModuleBuilder::new()
            .import_func(MODULE, "proc_exit", FuncType::new([ValType::I32], []))
            .memory(1, None)
            .func(FuncType::new([], []), [], [Instr::I32Const(42), Instr::Call(0)])
            .export_func("_start", 1)
            .build()
            .unwrap();
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(wasi_ctx()))
                .unwrap();
        let err = inst.invoke("_start", &[]).unwrap_err();
        assert_eq!(err, Trap::host(PROC_EXIT));
        assert_eq!(inst.data::<WasiCtx>().unwrap().exit_code, Some(42));
    }

    #[test]
    fn random_get_fills_guest_memory_deterministically() {
        let module = ModuleBuilder::new()
            .import_func(MODULE, "random_get", FuncType::new([ValType::I32; 2], [ValType::I32]))
            .memory(1, None)
            .func(
                FuncType::new([], [ValType::I32]),
                [],
                [Instr::I32Const(64), Instr::I32Const(16), Instr::Call(0)],
            )
            .export_func("roll", 1)
            .build()
            .unwrap();
        let run = |seed: u64| {
            let mut ctx = wasi_ctx();
            ctx.seed_rng(seed);
            let mut inst = Instance::new(
                module.clone(),
                &linker(),
                EngineLimits::default(),
                Box::new(ctx),
            )
            .unwrap();
            inst.invoke("roll", &[]).unwrap();
            inst.memory().unwrap().read(64, 16).unwrap().to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        assert!(run(5).iter().any(|&b| b != 0));
    }

    #[test]
    fn clock_time_get_reads_virtual_clock() {
        let module = ModuleBuilder::new()
            .import_func(
                MODULE,
                "clock_time_get",
                FuncType::new([ValType::I32, ValType::I64, ValType::I32], [ValType::I32]),
            )
            .memory(1, None)
            .func(
                FuncType::new([], [ValType::I32]),
                [],
                [
                    Instr::I32Const(0),
                    Instr::I64Const(0),
                    Instr::I32Const(128),
                    Instr::Call(0),
                ],
            )
            .export_func("now", 1)
            .build()
            .unwrap();
        let ctx = wasi_ctx();
        let clock = ctx.sandbox().clock().clone();
        clock.advance(123_456);
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(ctx)).unwrap();
        inst.invoke("now", &[]).unwrap();
        let raw = inst.memory().unwrap().load::<8>(128, 0).unwrap();
        // The boundary charge advances the clock past the sampled floor.
        assert!(u64::from_le_bytes(raw) >= 123_456);
    }

    #[test]
    fn sock_send_and_recv_through_loopback() {
        let i32_ = ValType::I32;
        let module = ModuleBuilder::new()
            .import_func(
                MODULE,
                "sock_send",
                FuncType::new([i32_, i32_, i32_, i32_, i32_], [i32_]),
            )
            .import_func(
                MODULE,
                "sock_recv",
                FuncType::new([i32_, i32_, i32_, i32_, i32_, i32_], [i32_]),
            )
            .memory(1, None)
            .data(32, b"ping".to_vec())
            .func(
                FuncType::new([i32_], [i32_]),
                [],
                [
                    // iovec {32, 4} at 0.
                    Instr::I32Const(0),
                    Instr::I32Const(32),
                    Instr::I32Store(MemArg::default()),
                    Instr::I32Const(4),
                    Instr::I32Const(4),
                    Instr::I32Store(MemArg::default()),
                    // sock_send(fd, 0, 1, 0, 8)
                    Instr::LocalGet(0),
                    Instr::I32Const(0),
                    Instr::I32Const(1),
                    Instr::I32Const(0),
                    Instr::I32Const(8),
                    Instr::Call(0),
                    Instr::Drop,
                    // recv iovec {64, 16} at 12.
                    Instr::I32Const(12),
                    Instr::I32Const(64),
                    Instr::I32Store(MemArg::default()),
                    Instr::I32Const(16),
                    Instr::I32Const(16),
                    Instr::I32Store(MemArg::default()),
                    // sock_recv(fd, 12, 1, 0, 20, 24)
                    Instr::LocalGet(0),
                    Instr::I32Const(12),
                    Instr::I32Const(1),
                    Instr::I32Const(0),
                    Instr::I32Const(20),
                    Instr::I32Const(24),
                    Instr::Call(1),
                ],
            )
            .export_func("echo", 2)
            .build()
            .unwrap();
        let mut ctx = wasi_ctx();
        let fd = ctx.add_socket(Box::new(LoopbackSocket::new()));
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(ctx)).unwrap();
        let out = inst.invoke("echo", &[Value::I32(fd as i32)]).unwrap();
        assert_eq!(out, vec![Value::I32(errno::SUCCESS)]);
        let mem = inst.memory().unwrap();
        assert_eq!(mem.read(64, 4).unwrap(), b"ping");
        let received = u32::from_le_bytes(mem.load::<4>(20, 0).unwrap());
        assert_eq!(received, 4);
    }

    #[test]
    fn sock_on_bad_fd_returns_badf() {
        let i32_ = ValType::I32;
        let module = ModuleBuilder::new()
            .import_func(
                MODULE,
                "sock_send",
                FuncType::new([i32_, i32_, i32_, i32_, i32_], [i32_]),
            )
            .memory(1, None)
            .func(
                FuncType::new([], [i32_]),
                [],
                [
                    Instr::I32Const(99),
                    Instr::I32Const(0),
                    Instr::I32Const(0),
                    Instr::I32Const(0),
                    Instr::I32Const(8),
                    Instr::Call(0),
                ],
            )
            .export_func("bad", 1)
            .build()
            .unwrap();
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(wasi_ctx()))
                .unwrap();
        let out = inst.invoke("bad", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(errno::BADF)]);
    }

    #[test]
    fn args_roundtrip_through_guest_memory() {
        let i32_ = ValType::I32;
        let module = ModuleBuilder::new()
            .import_func(MODULE, "args_sizes_get", FuncType::new([i32_, i32_], [i32_]))
            .import_func(MODULE, "args_get", FuncType::new([i32_, i32_], [i32_]))
            .memory(1, None)
            .func(
                FuncType::new([], [i32_]),
                [],
                [
                    Instr::I32Const(0),
                    Instr::I32Const(4),
                    Instr::Call(0),
                    Instr::Drop,
                    Instr::I32Const(8),
                    Instr::I32Const(64),
                    Instr::Call(1),
                ],
            )
            .export_func("load_args", 2)
            .build()
            .unwrap();
        let mut ctx = wasi_ctx();
        ctx.set_args(["prog", "input.bin"]);
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(ctx)).unwrap();
        inst.invoke("load_args", &[]).unwrap();
        let mem = inst.memory().unwrap();
        assert_eq!(u32::from_le_bytes(mem.load::<4>(0, 0).unwrap()), 2); // argc
        let total = u32::from_le_bytes(mem.load::<4>(4, 0).unwrap());
        assert_eq!(total, 5 + 10); // "prog\0" + "input.bin\0"
        assert_eq!(mem.read(64, 4).unwrap(), b"prog");
        assert_eq!(mem.read(69, 9).unwrap(), b"input.bin");
    }

    #[test]
    fn file_io_through_path_open() {
        let i32_ = ValType::I32;
        let i64_ = ValType::I64;
        let module = ModuleBuilder::new()
            .import_func(
                MODULE,
                "path_open",
                FuncType::new(
                    [i32_, i32_, i32_, i32_, i32_, i64_, i64_, i32_, i32_],
                    [i32_],
                ),
            )
            .import_func(MODULE, "fd_read", FuncType::new([i32_, i32_, i32_, i32_], [i32_]))
            .memory(1, None)
            .data(0, b"/data/frame.raw".to_vec())
            .func(
                FuncType::new([], [i32_]),
                [ValType::I32],
                [
                    // path_open(3, 0, path=0, len=15, oflags=0, 0, 0, 0, fd@100)
                    Instr::I32Const(3),
                    Instr::I32Const(0),
                    Instr::I32Const(0),
                    Instr::I32Const(15),
                    Instr::I32Const(0),
                    Instr::I64Const(0),
                    Instr::I64Const(0),
                    Instr::I32Const(0),
                    Instr::I32Const(100),
                    Instr::Call(0),
                    Instr::Drop,
                    // fd = *(100)
                    Instr::I32Const(100),
                    Instr::I32Load(MemArg::default()),
                    Instr::LocalSet(0),
                    // iovec {200, 8} at 104.
                    Instr::I32Const(104),
                    Instr::I32Const(200),
                    Instr::I32Store(MemArg::default()),
                    Instr::I32Const(108),
                    Instr::I32Const(8),
                    Instr::I32Store(MemArg::default()),
                    // fd_read(fd, 104, 1, 112)
                    Instr::LocalGet(0),
                    Instr::I32Const(104),
                    Instr::I32Const(1),
                    Instr::I32Const(112),
                    Instr::Call(1),
                ],
            )
            .export_func("read_file", 2)
            .build()
            .unwrap();
        let mut ctx = wasi_ctx();
        ctx.put_file("/data/frame.raw", b"RAWDATA!".to_vec());
        let mut inst =
            Instance::new(module, &linker(), EngineLimits::default(), Box::new(ctx)).unwrap();
        let out = inst.invoke("read_file", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(errno::SUCCESS)]);
        assert_eq!(inst.memory().unwrap().read(200, 8).unwrap(), b"RAWDATA!");
    }
}
