//! The WASI context: per-instance host state behind the system interface.

use std::collections::HashMap;

use roadrunner_vkernel::node::Sandbox;

/// WASI errno values used by this subset.
pub mod errno {
    /// Success.
    pub const SUCCESS: i32 = 0;
    /// Bad file descriptor.
    pub const BADF: i32 = 8;
    /// Invalid argument.
    pub const INVAL: i32 = 28;
    /// I/O error.
    pub const IO: i32 = 29;
    /// No such file or directory.
    pub const NOENT: i32 = 44;
}

/// A socket backend a WASI `sock_send`/`sock_recv` pair talks to.
///
/// The baselines install adapters over the virtual kernel's TCP or Unix
/// endpoints; tests install loopback stubs.
pub trait WasiSocket: Send {
    /// Sends `data`, returning bytes accepted.
    fn send(&mut self, sandbox: &Sandbox, data: &[u8]) -> Result<usize, i32>;
    /// Receives up to one buffered segment (empty when nothing is ready,
    /// `None` when the peer closed).
    fn recv(&mut self, sandbox: &Sandbox) -> Result<Option<Vec<u8>>, i32>;
}

#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    cursor: usize,
    writable: bool,
}

/// Host-side state for one WASI instance: stdio, an in-memory filesystem,
/// sockets, args/env, and the sandbox whose account is charged for every
/// boundary crossing.
///
/// The paper's Fig. 2a shows WASI-mediated host access dominating Wasm
/// execution time for I/O workloads — the per-call boundary cost plus the
/// copy in/out of linear memory charged here is exactly that overhead.
pub struct WasiCtx {
    sandbox: Sandbox,
    /// Bytes written to fd 1.
    pub stdout: Vec<u8>,
    /// Bytes written to fd 2.
    pub stderr: Vec<u8>,
    /// Bytes readable from fd 0.
    pub stdin: Vec<u8>,
    stdin_cursor: usize,
    args: Vec<String>,
    env: Vec<(String, String)>,
    files: HashMap<String, Vec<u8>>,
    open_files: HashMap<u32, OpenFile>,
    sockets: HashMap<u32, Box<dyn WasiSocket>>,
    next_fd: u32,
    rng_state: u64,
    /// Exit code recorded by `proc_exit`.
    pub exit_code: Option<u32>,
    /// Number of WASI calls made (diagnostic; each one paid the boundary
    /// cost).
    pub call_count: u64,
}

impl std::fmt::Debug for WasiCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WasiCtx")
            .field("sandbox", &self.sandbox.account().name())
            .field("stdout_len", &self.stdout.len())
            .field("files", &self.files.len())
            .field("call_count", &self.call_count)
            .finish_non_exhaustive()
    }
}

impl WasiCtx {
    /// Creates a context charging costs to `sandbox`.
    pub fn new(sandbox: Sandbox) -> Self {
        Self {
            sandbox,
            stdout: Vec::new(),
            stderr: Vec::new(),
            stdin: Vec::new(),
            stdin_cursor: 0,
            args: Vec::new(),
            env: Vec::new(),
            files: HashMap::new(),
            open_files: HashMap::new(),
            sockets: HashMap::new(),
            next_fd: 4, // 0-2 stdio, 3 reserved for the preopened root
            rng_state: 0x853c_49e6_748f_ea9b,
            exit_code: None,
            call_count: 0,
        }
    }

    /// The sandbox charged for WASI work.
    pub fn sandbox(&self) -> &Sandbox {
        &self.sandbox
    }

    /// Sets command-line arguments.
    pub fn set_args<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, args: I) {
        self.args = args.into_iter().map(Into::into).collect();
    }

    /// Arguments visible to the guest.
    pub fn args(&self) -> &[String] {
        &self.args
    }

    /// Adds an environment variable.
    pub fn push_env(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.env.push((key.into(), value.into()));
    }

    /// Environment visible to the guest.
    pub fn env(&self) -> &[(String, String)] {
        &self.env
    }

    /// Seeds the deterministic `random_get` stream.
    pub fn seed_rng(&mut self, seed: u64) {
        self.rng_state = seed.max(1);
    }

    pub(crate) fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Places a file in the in-memory filesystem.
    pub fn put_file(&mut self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.insert(path.into(), contents);
    }

    /// Reads a file back out of the in-memory filesystem.
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Installs a socket backend; returns its fd.
    pub fn add_socket(&mut self, socket: Box<dyn WasiSocket>) -> u32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.sockets.insert(fd, socket);
        fd
    }

    pub(crate) fn socket_mut(&mut self, fd: u32) -> Option<&mut Box<dyn WasiSocket>> {
        self.sockets.get_mut(&fd)
    }

    pub(crate) fn open_path(&mut self, path: &str, create: bool) -> Result<u32, i32> {
        if !self.files.contains_key(path) {
            if create {
                self.files.insert(path.to_owned(), Vec::new());
            } else {
                return Err(errno::NOENT);
            }
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open_files
            .insert(fd, OpenFile { path: path.to_owned(), cursor: 0, writable: true });
        Ok(fd)
    }

    pub(crate) fn close_fd(&mut self, fd: u32) -> Result<(), i32> {
        if self.open_files.remove(&fd).is_some() || self.sockets.remove(&fd).is_some() {
            Ok(())
        } else {
            Err(errno::BADF)
        }
    }

    pub(crate) fn write_fd(&mut self, fd: u32, data: &[u8]) -> Result<usize, i32> {
        match fd {
            1 => {
                self.stdout.extend_from_slice(data);
                Ok(data.len())
            }
            2 => {
                self.stderr.extend_from_slice(data);
                Ok(data.len())
            }
            _ => {
                let open = self.open_files.get_mut(&fd).ok_or(errno::BADF)?;
                if !open.writable {
                    return Err(errno::INVAL);
                }
                let file = self.files.get_mut(&open.path).ok_or(errno::NOENT)?;
                let end = open.cursor + data.len();
                if file.len() < end {
                    file.resize(end, 0);
                }
                file[open.cursor..end].copy_from_slice(data);
                open.cursor = end;
                Ok(data.len())
            }
        }
    }

    pub(crate) fn read_fd(&mut self, fd: u32, max: usize) -> Result<Vec<u8>, i32> {
        match fd {
            0 => {
                let end = (self.stdin_cursor + max).min(self.stdin.len());
                let out = self.stdin[self.stdin_cursor..end].to_vec();
                self.stdin_cursor = end;
                Ok(out)
            }
            _ => {
                let open = self.open_files.get_mut(&fd).ok_or(errno::BADF)?;
                let file = self.files.get(&open.path).ok_or(errno::NOENT)?;
                let end = (open.cursor + max).min(file.len());
                let out = file[open.cursor..end].to_vec();
                open.cursor = end;
                Ok(out)
            }
        }
    }

    pub(crate) fn seek_fd(&mut self, fd: u32, offset: i64, whence: u8) -> Result<u64, i32> {
        let open = self.open_files.get_mut(&fd).ok_or(errno::BADF)?;
        let len = self.files.get(&open.path).map(Vec::len).unwrap_or(0) as i64;
        let base = match whence {
            0 => 0,                    // SET
            1 => open.cursor as i64,   // CUR
            2 => len,                  // END
            _ => return Err(errno::INVAL),
        };
        let target = base + offset;
        if target < 0 {
            return Err(errno::INVAL);
        }
        open.cursor = target as usize;
        Ok(target as u64)
    }

    /// Charges one guest↔host boundary crossing plus `bytes` of VM I/O to
    /// the sandbox (user time) and bumps the call counter. Exposed so
    /// other host-function families (e.g. Roadrunner's Table-1 API) share
    /// the same boundary accounting.
    pub fn charge_boundary(&mut self, bytes: usize) {
        self.call_count += 1;
        let cost = self.sandbox.cost();
        let ns = cost.wasm_boundary_ns + cost.vm_io_ns(bytes);
        self.sandbox.charge_user(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_vkernel::{CostModel, VirtualClock};
    use std::sync::Arc;

    fn ctx() -> WasiCtx {
        let sandbox =
            Sandbox::detached("wasi", VirtualClock::new(), Arc::new(CostModel::paper_testbed()));
        WasiCtx::new(sandbox)
    }

    #[test]
    fn stdout_and_stderr_capture() {
        let mut c = ctx();
        assert_eq!(c.write_fd(1, b"out").unwrap(), 3);
        assert_eq!(c.write_fd(2, b"err").unwrap(), 3);
        assert_eq!(c.stdout, b"out");
        assert_eq!(c.stderr, b"err");
    }

    #[test]
    fn stdin_reads_advance_cursor() {
        let mut c = ctx();
        c.stdin = b"abcdef".to_vec();
        assert_eq!(c.read_fd(0, 4).unwrap(), b"abcd");
        assert_eq!(c.read_fd(0, 4).unwrap(), b"ef");
        assert_eq!(c.read_fd(0, 4).unwrap(), b"");
    }

    #[test]
    fn file_open_read_write() {
        let mut c = ctx();
        c.put_file("/in.bin", vec![1, 2, 3, 4]);
        let fd = c.open_path("/in.bin", false).unwrap();
        assert_eq!(c.read_fd(fd, 2).unwrap(), vec![1, 2]);
        assert_eq!(c.read_fd(fd, 10).unwrap(), vec![3, 4]);
        c.seek_fd(fd, 0, 0).unwrap();
        c.write_fd(fd, &[9, 9]).unwrap();
        assert_eq!(c.file("/in.bin").unwrap(), &[9, 9, 3, 4]);
        c.close_fd(fd).unwrap();
        assert_eq!(c.read_fd(fd, 1).unwrap_err(), errno::BADF);
    }

    #[test]
    fn missing_file_is_noent() {
        let mut c = ctx();
        assert_eq!(c.open_path("/missing", false).unwrap_err(), errno::NOENT);
        let fd = c.open_path("/created", true).unwrap();
        c.write_fd(fd, b"x").unwrap();
        assert_eq!(c.file("/created").unwrap(), b"x");
    }

    #[test]
    fn seek_whence_variants() {
        let mut c = ctx();
        c.put_file("/f", vec![0; 10]);
        let fd = c.open_path("/f", false).unwrap();
        assert_eq!(c.seek_fd(fd, 4, 0).unwrap(), 4);
        assert_eq!(c.seek_fd(fd, 2, 1).unwrap(), 6);
        assert_eq!(c.seek_fd(fd, -1, 2).unwrap(), 9);
        assert_eq!(c.seek_fd(fd, -100, 1).unwrap_err(), errno::INVAL);
        assert_eq!(c.seek_fd(fd, 0, 9).unwrap_err(), errno::INVAL);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = ctx();
        let mut b = ctx();
        a.seed_rng(7);
        b.seed_rng(7);
        assert_eq!(a.next_random(), b.next_random());
        b.seed_rng(8);
        assert_ne!(a.next_random(), b.next_random());
    }

    #[test]
    fn boundary_charges_accumulate() {
        let mut c = ctx();
        let before = c.sandbox().account().user_ns();
        c.charge_boundary(1 << 20);
        assert!(c.sandbox().account().user_ns() > before);
        assert_eq!(c.call_count, 1);
    }

    #[test]
    fn bad_fd_errors() {
        let mut c = ctx();
        assert_eq!(c.write_fd(99, b"x").unwrap_err(), errno::BADF);
        assert_eq!(c.read_fd(99, 1).unwrap_err(), errno::BADF);
        assert_eq!(c.close_fd(99).unwrap_err(), errno::BADF);
    }
}
