// `RoadrunnerError` deliberately carries rich diagnostic context (region
// descriptors, trust details); errors are cold paths here, so the enum's
// size is not worth boxing away.
#![allow(clippy::result_large_err)]

//! **Roadrunner** — near-zero-copy, serialization-free data transfer for
//! WebAssembly-based serverless functions.
//!
//! Reproduction of Marcelino, Pusztai & Nastic, *"Roadrunner:
//! Accelerating Data Delivery to WebAssembly-Based Serverless
//! Functions"*, MIDDLEWARE 2025. See `DESIGN.md` at the repository root
//! for the system inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! # What it does
//!
//! Serverless functions normally exchange data over HTTP: serialize →
//! copy across the user/kernel boundary → network → copy back →
//! deserialize. For Wasm functions, every one of those steps also crosses
//! the VM boundary through WASI. Roadrunner is a sidecar *shim* that
//! skips the expensive parts:
//!
//! * the guest hands the shim a **region descriptor** (`send_to_host`),
//!   not the payload — locating data costs O(1);
//! * payloads move as **raw linear-memory bytes**, never serialized;
//! * between hosts, the **virtual data hose** (`vmsplice` + `splice`)
//!   moves page references instead of copying bytes.
//!
//! # Crate map
//!
//! | Module | Paper section | Content |
//! |--------|--------------|---------|
//! | [`shim`] | §3.2 | VM lifecycle, Table-1 host APIs, region checks |
//! | [`api`] | Table 1 | Guest-visible `roadrunner::*` imports |
//! | [`guest`] | §6.1 | Guest-module SDK (producer/consumer/relay/…) |
//! | [`userspace`] | §4.1 | Same-VM transfers |
//! | [`kernelspace`] | §4.2 | Unix-socket transfers |
//! | [`hose`] | §4.3 | The virtual data hose (Algorithm 1) |
//! | [`plane`] | §3.2.3 | Mode selection + workflow integration |
//! | [`region`] | §3.1 | Pre-registered regions, bounds checks |
//!
//! # Quickstart
//!
//! ```
//! use bytes::Bytes;
//! use roadrunner::{guest, Mode, RoadrunnerPlane, ShimConfig};
//! use roadrunner_platform::FunctionBundle;
//! use roadrunner_vkernel::Testbed;
//! use roadrunner_wasm::encode;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), roadrunner::RoadrunnerError> {
//! let bed = Arc::new(Testbed::paper());
//! let mut plane = RoadrunnerPlane::new(bed, ShimConfig::default());
//!
//! let wrap = |name: &str, m| {
//!     Arc::new(
//!         FunctionBundle::wasm(name, encode::encode(&m))
//!             .with_workflow("demo")
//!             .with_tenant("acme"),
//!     )
//! };
//! plane.deploy(0, "a", wrap("a", guest::producer()), "produce", false)?;
//! plane.deploy(1, "b", wrap("b", guest::consumer()), "consume", true)?;
//! assert_eq!(plane.mode_of("a", "b")?, Mode::Network);
//!
//! let received = plane.transfer_edge("a", "b", &Bytes::from_static(b"hello, hose"))?;
//! assert_eq!(&received[..], b"hello, hose");
//! # Ok(())
//! # }
//! ```

pub mod api;
pub mod config;
pub mod error;
pub mod guest;
pub mod hose;
pub mod kernelspace;
pub mod plane;
pub mod region;
pub mod shim;
pub mod userspace;

pub use api::ShimState;
pub use config::ShimConfig;
pub use error::RoadrunnerError;
pub use plane::{EdgeBreakdown, Mode, RoadrunnerPlane};
pub use region::{MemoryRegion, RegionRegistry};
pub use shim::Shim;
