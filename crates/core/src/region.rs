//! Memory regions and the shim's access-control registry.
//!
//! The paper's §3.1: "Roadrunner restricts shim-to-Wasm access to
//! pre-registered memory regions and applies bounds checking before any
//! read or write operation." A guest registers regions by calling
//! `send_to_host` (or implicitly when the shim allocates an inbox for
//! it); any host access outside a registered region is refused.

use crate::error::RoadrunnerError;

/// A `(address, length)` window into a function's linear memory — what
/// `locate_memory_region` returns in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryRegion {
    /// Start offset in linear memory.
    pub addr: u32,
    /// Length in bytes.
    pub len: u32,
}

impl MemoryRegion {
    /// Creates a region.
    pub fn new(addr: u32, len: u32) -> Self {
        Self { addr, len }
    }

    /// Exclusive end offset.
    ///
    /// Computed in 64 bits so `addr + len` cannot wrap.
    pub fn end(&self) -> u64 {
        self.addr as u64 + self.len as u64
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains(&self, other: &MemoryRegion) -> bool {
        other.addr >= self.addr && other.end() <= self.end()
    }

    /// Whether the region fits inside a memory of `memory_len` bytes.
    pub fn fits(&self, memory_len: usize) -> bool {
        self.end() <= memory_len as u64
    }
}

/// Per-function registry of regions the shim may touch.
#[derive(Debug, Default)]
pub struct RegionRegistry {
    regions: Vec<MemoryRegion>,
}

impl RegionRegistry {
    /// Creates an empty registry (no host access allowed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a region for host access.
    pub fn register(&mut self, region: MemoryRegion) {
        self.regions.push(region);
    }

    /// Removes a previously registered region (all exact matches).
    pub fn revoke(&mut self, region: MemoryRegion) {
        self.regions.retain(|r| r != &region);
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Verifies `access` is covered by some registered region *and* fits
    /// the current memory size.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::AccessViolation`] when either check fails —
    /// the fail-stop behaviour the paper's security section describes.
    pub fn check(&self, access: MemoryRegion, memory_len: usize) -> Result<(), RoadrunnerError> {
        if !access.fits(memory_len) {
            return Err(RoadrunnerError::AccessViolation(format!(
                "region [{}, {}) exceeds memory of {} bytes",
                access.addr,
                access.end(),
                memory_len
            )));
        }
        if !self.regions.iter().any(|r| r.contains(&access)) {
            return Err(RoadrunnerError::AccessViolation(format!(
                "region [{}, {}) is not registered for host access",
                access.addr,
                access.end()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment() {
        let big = MemoryRegion::new(100, 100);
        assert!(big.contains(&MemoryRegion::new(100, 100)));
        assert!(big.contains(&MemoryRegion::new(150, 50)));
        assert!(!big.contains(&MemoryRegion::new(99, 2)));
        assert!(!big.contains(&MemoryRegion::new(150, 51)));
    }

    #[test]
    fn end_does_not_wrap() {
        let r = MemoryRegion::new(u32::MAX, u32::MAX);
        assert_eq!(r.end(), u32::MAX as u64 * 2);
        assert!(!r.fits(1 << 20));
    }

    #[test]
    fn check_requires_registration() {
        let mut reg = RegionRegistry::new();
        let err = reg.check(MemoryRegion::new(0, 10), 1 << 16).unwrap_err();
        assert!(matches!(err, RoadrunnerError::AccessViolation(_)));
        reg.register(MemoryRegion::new(0, 100));
        reg.check(MemoryRegion::new(0, 10), 1 << 16).unwrap();
        reg.check(MemoryRegion::new(90, 10), 1 << 16).unwrap();
        assert!(reg.check(MemoryRegion::new(95, 10), 1 << 16).is_err());
    }

    #[test]
    fn check_requires_fit_in_memory() {
        let mut reg = RegionRegistry::new();
        reg.register(MemoryRegion::new(0, 1 << 20));
        assert!(reg.check(MemoryRegion::new(0, 1 << 20), 1 << 16).is_err());
    }

    #[test]
    fn revoke_removes_access() {
        let mut reg = RegionRegistry::new();
        let r = MemoryRegion::new(0, 64);
        reg.register(r);
        assert_eq!(reg.len(), 1);
        reg.revoke(r);
        assert!(reg.is_empty());
        assert!(reg.check(MemoryRegion::new(0, 1), 1 << 16).is_err());
    }
}
