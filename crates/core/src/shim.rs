//! The Roadrunner shim: sidecar lifecycle manager and memory mediator.
//!
//! One shim runs beside each function sandbox (or beside a group of
//! mutually-trusting functions sharing a Wasm VM in user-space mode). It
//! owns the VM lifecycle — "memory configuration, binary loading, and
//! runtime interaction" (paper §3.2.2) — and mediates *every* host access
//! to guest linear memory through registered regions with bounds checks.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use roadrunner_platform::FunctionBundle;
use roadrunner_platform::BundleKind;
use roadrunner_vkernel::node::{Node, Sandbox};
use roadrunner_wasi::WasiCtx;
use roadrunner_wasm::types::Value;
use roadrunner_wasm::{decode, Instance, Linker, Trap};

use crate::api::{register_roadrunner_api, ShimState};
use crate::config::ShimConfig;
use crate::error::RoadrunnerError;
use crate::guest::{ALLOCATE, DEALLOCATE};
use crate::region::MemoryRegion;

struct LoadedModule {
    instance: Instance,
    bundle: Arc<FunctionBundle>,
    /// Last observed linear-memory size, for RAM accounting.
    known_memory_len: usize,
}

/// A Roadrunner sidecar shim: one Wasm VM, one sandbox (cgroup), one or
/// more modules of the same workflow/tenant.
pub struct Shim {
    name: String,
    sandbox: Sandbox,
    config: ShimConfig,
    linker: Linker,
    modules: HashMap<String, LoadedModule>,
}

impl std::fmt::Debug for Shim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shim")
            .field("name", &self.name)
            .field("modules", &self.modules.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl Shim {
    /// Creates a shim on `node`, with its own sandbox named after it.
    pub fn new(name: impl Into<String>, node: &Node, config: ShimConfig) -> Self {
        let name = name.into();
        let sandbox = node.sandbox(format!("shim-{name}"));
        let mut linker = Linker::new();
        roadrunner_wasi::register::<ShimState>(&mut linker);
        register_roadrunner_api(&mut linker);
        Self { name, sandbox, config, linker, modules: HashMap::new() }
    }

    /// Shim name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sandbox charged for everything this shim and its guests do.
    pub fn sandbox(&self) -> &Sandbox {
        &self.sandbox
    }

    /// Names of loaded modules.
    pub fn module_names(&self) -> Vec<&str> {
        self.modules.keys().map(String::as_str).collect()
    }

    /// Effective transfer chunk size.
    pub fn io_chunk(&self) -> usize {
        self.config
            .io_chunk_bytes
            .unwrap_or(self.sandbox.cost().io_chunk_bytes)
            .max(1)
    }

    /// Loads `bundle` into this shim's VM as `module_name`.
    ///
    /// Enforces the paper's trust rule before co-locating: every already
    /// loaded module must share workflow *and* tenant with the newcomer.
    /// Charges cold-start costs (binary decode + VM init) when
    /// [`ShimConfig::charge_load_costs`] is set, and tracks the VM's
    /// initial memory in the sandbox's RAM account.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::TrustViolation`] on a workflow/tenant mismatch,
    /// [`RoadrunnerError::Config`] for non-Wasm bundles, decode and
    /// instantiation errors otherwise.
    pub fn load_module(
        &mut self,
        module_name: impl Into<String>,
        bundle: Arc<FunctionBundle>,
    ) -> Result<(), RoadrunnerError> {
        let module_name = module_name.into();
        for (existing_name, existing) in &self.modules {
            if !existing.bundle.trusts(&bundle) {
                return Err(RoadrunnerError::TrustViolation(format!(
                    "module `{module_name}` ({:?}/{:?}) may not share a VM with `{existing_name}` ({:?}/{:?})",
                    bundle.workflow(),
                    bundle.tenant(),
                    existing.bundle.workflow(),
                    existing.bundle.tenant(),
                )));
            }
        }
        let BundleKind::WasmModule { binary } = bundle.kind() else {
            return Err(RoadrunnerError::Config(format!(
                "bundle `{}` is not a Wasm module",
                bundle.name()
            )));
        };
        let module = decode::decode(binary).map_err(|e| {
            RoadrunnerError::Config(format!("bundle `{}`: {e}", bundle.name()))
        })?;

        if self.config.charge_load_costs {
            let cost = self.sandbox.cost();
            let load_ns = (binary.len() as f64 / cost.wasm_load_bytes_per_ns).round() as u64
                + cost.wasm_init_ns;
            self.sandbox.charge_user(load_ns);
        }

        let mut limits = self.config.engine_limits;
        if let Some(pages) = bundle.manifest().memory_limit_pages {
            limits.max_memory_pages = pages;
        }
        let state = ShimState::new(WasiCtx::new(self.sandbox.clone()));
        let instance = Instance::new(module, &self.linker, limits, Box::new(state))?;
        let memory_len = instance.memory().map(|m| m.len()).unwrap_or(0);
        self.sandbox.account().alloc(memory_len as u64);
        self.modules.insert(
            module_name,
            LoadedModule { instance, bundle, known_memory_len: memory_len },
        );
        Ok(())
    }

    fn module_mut(&mut self, name: &str) -> Result<&mut LoadedModule, RoadrunnerError> {
        self.modules
            .get_mut(name)
            .ok_or_else(|| RoadrunnerError::UnknownModule(name.to_owned()))
    }

    fn module_ref(&self, name: &str) -> Result<&LoadedModule, RoadrunnerError> {
        self.modules
            .get(name)
            .ok_or_else(|| RoadrunnerError::UnknownModule(name.to_owned()))
    }

    /// The bundle a module was loaded from.
    pub fn bundle_of(&self, module: &str) -> Result<&Arc<FunctionBundle>, RoadrunnerError> {
        Ok(&self.module_ref(module)?.bundle)
    }

    /// Current linear-memory size of a module.
    pub fn memory_len(&self, module: &str) -> Result<usize, RoadrunnerError> {
        Ok(self
            .module_ref(module)?
            .instance
            .memory()
            .map(|m| m.len())
            .unwrap_or(0))
    }

    /// Invokes an exported guest function, charging interpreted
    /// instructions as user CPU time and tracking memory growth.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::UnknownModule`] or any guest [`Trap`].
    pub fn invoke(
        &mut self,
        module: &str,
        func: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, RoadrunnerError> {
        let wasm_instr_ns = self.sandbox.cost().wasm_instr_ns;
        let sandbox = self.sandbox.clone();
        let entry = self.module_mut(module)?;
        entry.instance.reset_instr_count();
        let result = entry.instance.invoke(func, args);
        let executed = entry.instance.instr_count();
        sandbox.charge_user((executed as f64 * wasm_instr_ns).round() as u64);
        // RAM accounting: linear memory only grows.
        let now_len = entry.instance.memory().map(|m| m.len()).unwrap_or(0);
        if now_len > entry.known_memory_len {
            sandbox.account().alloc((now_len - entry.known_memory_len) as u64);
            entry.known_memory_len = now_len;
        }
        result.map_err(RoadrunnerError::from)
    }

    /// Table 1 `read_memory_host`: copies a registered region out of the
    /// guest's linear memory into a host buffer, charging the Wasm VM I/O
    /// cost. This is the *only* copy Roadrunner pays on the source side.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::AccessViolation`] if the region was never
    /// registered (or is out of bounds).
    pub fn read_memory_host(
        &mut self,
        module: &str,
        region: MemoryRegion,
    ) -> Result<Bytes, RoadrunnerError> {
        let sandbox = self.sandbox.clone();
        let entry = self.module_mut(module)?;
        let memory_len = entry.instance.memory().map(|m| m.len()).unwrap_or(0);
        let state = entry
            .instance
            .data::<ShimState>()
            .ok_or_else(|| RoadrunnerError::Config("host state is not ShimState".into()))?;
        state.regions().check(region, memory_len)?;
        let memory = entry
            .instance
            .memory()
            .ok_or_else(|| RoadrunnerError::Config("module has no memory".into()))?;
        let data = Bytes::copy_from_slice(memory.read(region.addr, region.len)?);
        sandbox.charge_user(sandbox.cost().vm_io_ns(data.len()));
        Ok(data)
    }

    /// Allocates an inbox of `len` bytes in the guest (via its exported
    /// `allocate_memory`) and registers it for host access, without
    /// writing anything yet. Streaming transfers fill it incrementally
    /// with [`Shim::write_into_inbox`].
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::MissingGuestApi`] if the guest exports no
    /// allocator; traps and access errors otherwise.
    pub fn allocate_inbox(
        &mut self,
        module: &str,
        len: usize,
    ) -> Result<MemoryRegion, RoadrunnerError> {
        let len = u32::try_from(len).map_err(|_| {
            RoadrunnerError::AccessViolation("payload exceeds 32-bit address space".into())
        })?;
        let addr = match self.invoke(module, ALLOCATE, &[Value::I32(len as i32)]) {
            Ok(values) => values[0].as_i32().ok_or_else(|| {
                RoadrunnerError::MissingGuestApi(format!("{ALLOCATE} returned no address"))
            })? as u32,
            Err(RoadrunnerError::Trap(Trap::BadExport(_))) => {
                return Err(RoadrunnerError::MissingGuestApi(ALLOCATE.to_owned()))
            }
            Err(e) => return Err(e),
        };
        let region = MemoryRegion::new(addr, len);
        let entry = self.module_mut(module)?;
        let state = entry
            .instance
            .data_mut::<ShimState>()
            .ok_or_else(|| RoadrunnerError::Config("host state is not ShimState".into()))?;
        state.regions_mut().register(region);
        Ok(region)
    }

    /// Writes `data` into a registered inbox at `offset`, charging the
    /// per-byte Wasm VM I/O cost. The write must stay inside `region`.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::AccessViolation`] if the slice would leave the
    /// registered region.
    pub fn write_into_inbox(
        &mut self,
        module: &str,
        region: MemoryRegion,
        offset: u32,
        data: &[u8],
    ) -> Result<(), RoadrunnerError> {
        let slice = MemoryRegion::new(region.addr + offset, data.len() as u32);
        if !region.contains(&slice) {
            return Err(RoadrunnerError::AccessViolation(format!(
                "write of {} bytes at offset {offset} escapes region [{}, {})",
                data.len(),
                region.addr,
                region.end()
            )));
        }
        let sandbox = self.sandbox.clone();
        let entry = self.module_mut(module)?;
        let memory_len = entry.instance.memory().map(|m| m.len()).unwrap_or(0);
        let state = entry
            .instance
            .data::<ShimState>()
            .ok_or_else(|| RoadrunnerError::Config("host state is not ShimState".into()))?;
        state.regions().check(slice, memory_len)?;
        let memory = entry
            .instance
            .memory_mut()
            .ok_or_else(|| RoadrunnerError::Config("module has no memory".into()))?;
        memory.write(slice.addr, data)?;
        let now_len = entry.instance.memory().map(|m| m.len()).unwrap_or(0);
        if now_len > entry.known_memory_len {
            sandbox.account().alloc((now_len - entry.known_memory_len) as u64);
            entry.known_memory_len = now_len;
        }
        sandbox.charge_user(sandbox.cost().vm_io_ns(data.len()));
        Ok(())
    }

    /// Table 1 `write_memory_host`: asks the guest allocator for space
    /// (`allocate_memory`), writes `data` into it, registers the region
    /// and returns it. This is the *only* copy Roadrunner pays on the
    /// target side.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::MissingGuestApi`] if the guest exports no
    /// allocator; traps and access errors otherwise.
    pub fn write_memory_host(
        &mut self,
        module: &str,
        data: &[u8],
    ) -> Result<MemoryRegion, RoadrunnerError> {
        let region = self.allocate_inbox(module, data.len())?;
        self.write_into_inbox(module, region, 0, data)?;
        Ok(region)
    }

    /// Releases a region: calls the guest's `deallocate_memory` and
    /// revokes host access.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Shim::invoke`].
    pub fn deallocate(
        &mut self,
        module: &str,
        region: MemoryRegion,
    ) -> Result<(), RoadrunnerError> {
        self.invoke(module, DEALLOCATE, &[Value::I32(region.addr as i32)])?;
        let entry = self.module_mut(module)?;
        if let Some(state) = entry.instance.data_mut::<ShimState>() {
            state.regions_mut().revoke(region);
        }
        Ok(())
    }

    /// Takes the outbox region the guest last handed over via
    /// `send_to_host`.
    pub fn take_outbox(&mut self, module: &str) -> Result<Option<MemoryRegion>, RoadrunnerError> {
        let entry = self.module_mut(module)?;
        Ok(entry
            .instance
            .data_mut::<ShimState>()
            .and_then(ShimState::take_outbox))
    }

    /// Looks at the pending outbox without consuming it.
    pub fn peek_outbox(&self, module: &str) -> Result<Option<MemoryRegion>, RoadrunnerError> {
        let entry = self.module_ref(module)?;
        Ok(entry
            .instance
            .data::<ShimState>()
            .and_then(ShimState::peek_outbox))
    }

    /// Cost-free verification read used by tests and integrity checks —
    /// still subject to region registration and bounds checks, but does
    /// not charge the sandbox (it models offline inspection, not data
    /// plane traffic).
    pub fn peek_memory(
        &self,
        module: &str,
        region: MemoryRegion,
    ) -> Result<Bytes, RoadrunnerError> {
        let entry = self.module_ref(module)?;
        let memory_len = entry.instance.memory().map(|m| m.len()).unwrap_or(0);
        let state = entry
            .instance
            .data::<ShimState>()
            .ok_or_else(|| RoadrunnerError::Config("host state is not ShimState".into()))?;
        state.regions().check(region, memory_len)?;
        let memory = entry
            .instance
            .memory()
            .ok_or_else(|| RoadrunnerError::Config("module has no memory".into()))?;
        Ok(Bytes::copy_from_slice(memory.read(region.addr, region.len)?))
    }

    /// Direct WASI-context access for a module (installing sockets,
    /// seeding files, reading stdout).
    pub fn wasi_mut(&mut self, module: &str) -> Result<&mut WasiCtx, RoadrunnerError> {
        let entry = self.module_mut(module)?;
        entry
            .instance
            .data_mut::<ShimState>()
            .map(ShimState::wasi_mut)
            .ok_or_else(|| RoadrunnerError::Config("host state is not ShimState".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest;
    use roadrunner_vkernel::Testbed;
    use roadrunner_wasm::encode;

    fn wasm_bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("wf")
                .with_tenant("acme"),
        )
    }

    fn shim_on(bed: &Testbed) -> Shim {
        Shim::new("test", bed.node(0), ShimConfig::default().with_load_costs(false))
    }

    #[test]
    fn load_and_invoke() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("a", wasm_bundle("a", guest::producer())).unwrap();
        shim.invoke("a", "produce", &[Value::I32(4096), Value::I32(16)]).unwrap();
        assert_eq!(
            shim.take_outbox("a").unwrap(),
            Some(MemoryRegion::new(4096, 16))
        );
        assert_eq!(shim.take_outbox("a").unwrap(), None);
        assert!(shim.sandbox().account().user_ns() > 0, "instructions charged");
    }

    #[test]
    fn trust_rule_blocks_foreign_modules() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("a", wasm_bundle("a", guest::producer())).unwrap();
        let foreign = Arc::new(
            FunctionBundle::wasm("evil", encode::encode(&guest::consumer()))
                .with_workflow("other-wf")
                .with_tenant("acme"),
        );
        let err = shim.load_module("evil", foreign).unwrap_err();
        assert!(matches!(err, RoadrunnerError::TrustViolation(_)));
        // Same workflow + tenant is allowed.
        shim.load_module("b", wasm_bundle("b", guest::consumer())).unwrap();
        assert_eq!(shim.module_names().len(), 2);
    }

    #[test]
    fn read_requires_registration() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("a", wasm_bundle("a", guest::producer())).unwrap();
        let err = shim
            .read_memory_host("a", MemoryRegion::new(4096, 8))
            .unwrap_err();
        assert!(matches!(err, RoadrunnerError::AccessViolation(_)));
        // After the guest registers via send_to_host, reads succeed.
        shim.invoke("a", "produce", &[Value::I32(4096), Value::I32(8)]).unwrap();
        shim.read_memory_host("a", MemoryRegion::new(4096, 8)).unwrap();
        // …but only inside the registered window.
        let err = shim
            .read_memory_host("a", MemoryRegion::new(4100, 8))
            .unwrap_err();
        assert!(matches!(err, RoadrunnerError::AccessViolation(_)));
    }

    #[test]
    fn write_allocates_registers_and_copies() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("b", wasm_bundle("b", guest::consumer())).unwrap();
        let region = shim.write_memory_host("b", b"roadrunner payload").unwrap();
        assert_eq!(region.len, 18);
        let back = shim.peek_memory("b", region).unwrap();
        assert_eq!(&back[..], b"roadrunner payload");
        // The consumer can now be invoked over the delivered region.
        let ack = shim
            .invoke(
                "b",
                "consume",
                &[Value::I32(region.addr as i32), Value::I32(region.len as i32)],
            )
            .unwrap();
        assert!(ack[0].as_i32().is_some());
    }

    #[test]
    fn write_grows_memory_and_tracks_ram() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("b", wasm_bundle("b", guest::consumer())).unwrap();
        let ram_before = shim.sandbox().account().ram_current();
        let payload = vec![7u8; 10 << 20];
        let region = shim.write_memory_host("b", &payload).unwrap();
        assert_eq!(region.len as usize, payload.len());
        let ram_after = shim.sandbox().account().ram_current();
        assert!(
            ram_after >= ram_before + (10 << 20),
            "RAM accounting must see the growth: {ram_before} -> {ram_after}"
        );
        assert_eq!(&shim.peek_memory("b", region).unwrap()[..], &payload[..]);
    }

    #[test]
    fn deallocate_revokes_access() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("b", wasm_bundle("b", guest::consumer())).unwrap();
        let region = shim.write_memory_host("b", &[1, 2, 3, 4]).unwrap();
        shim.deallocate("b", region).unwrap();
        assert!(matches!(
            shim.peek_memory("b", region),
            Err(RoadrunnerError::AccessViolation(_))
        ));
    }

    #[test]
    fn unknown_module_errors() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        assert!(matches!(
            shim.invoke("ghost", "f", &[]),
            Err(RoadrunnerError::UnknownModule(_))
        ));
        assert!(matches!(
            shim.read_memory_host("ghost", MemoryRegion::new(0, 1)),
            Err(RoadrunnerError::UnknownModule(_))
        ));
    }

    #[test]
    fn missing_allocator_is_reported() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        shim.load_module("plain", wasm_bundle("plain", guest::hello_world()))
            .unwrap();
        let err = shim.write_memory_host("plain", b"x").unwrap_err();
        assert!(matches!(err, RoadrunnerError::MissingGuestApi(_)));
    }

    #[test]
    fn container_bundle_rejected() {
        let bed = Testbed::paper();
        let mut shim = shim_on(&bed);
        let bundle = Arc::new(
            FunctionBundle::container("c", 1024)
                .with_workflow("wf")
                .with_tenant("acme"),
        );
        assert!(matches!(
            shim.load_module("c", bundle),
            Err(RoadrunnerError::Config(_))
        ));
    }

    #[test]
    fn load_costs_are_charged_when_enabled() {
        let bed = Testbed::paper();
        let mut cheap = Shim::new("cheap", bed.node(0), ShimConfig::default().with_load_costs(false));
        let mut paid = Shim::new("paid", bed.node(0), ShimConfig::default());
        let bundle = wasm_bundle("a", guest::producer());
        cheap.load_module("a", Arc::clone(&bundle)).unwrap();
        let cheap_ns = cheap.sandbox().account().user_ns();
        paid.load_module("a", bundle).unwrap();
        let paid_ns = paid.sandbox().account().user_ns();
        assert!(paid_ns > cheap_ns);
        assert!(paid_ns >= bed.cost().wasm_init_ns);
    }
}
