//! User-space data transfer (paper §4.1, Fig. 4a).
//!
//! Both functions live as modules inside **one** Wasm VM managed by one
//! shim, so the transfer never leaves the process: the shim reads the
//! source's registered region and writes it into the target's freshly
//! allocated region. No syscalls, no context switches, no serialization —
//! only the two Wasm VM I/O passes.

use bytes::Bytes;

use crate::error::RoadrunnerError;
use crate::region::MemoryRegion;
use crate::shim::Shim;

/// Moves the source module's pending outbox into the target module.
///
/// Steps (numbering from Fig. 4a): the guest already did ①
/// `locate_memory_region` + `send_to_host`; this performs ② the shim read,
/// ③ `allocate_memory` in the target, ④/⑤ the write into the target.
/// Returns the target region and the transferred bytes.
///
/// # Errors
///
/// [`RoadrunnerError::Config`] if the source has no pending outbox, plus
/// any shim access/trap error.
pub fn transfer(
    shim: &mut Shim,
    from: &str,
    to: &str,
) -> Result<(MemoryRegion, Bytes), RoadrunnerError> {
    let region = shim.take_outbox(from)?.ok_or_else(|| {
        RoadrunnerError::Config(format!("module `{from}` has no pending outbox"))
    })?;
    let data = shim.read_memory_host(from, region)?;
    let target = shim.write_memory_host(to, &data)?;
    shim.deallocate(from, region)?;
    Ok((target, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShimConfig;
    use crate::guest;
    use roadrunner_platform::FunctionBundle;
    use roadrunner_vkernel::Testbed;
    use roadrunner_wasm::encode;
    use roadrunner_wasm::types::Value;
    use std::sync::Arc;

    fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("wf")
                .with_tenant("t"),
        )
    }

    fn shared_vm_shim(bed: &Testbed) -> Shim {
        let mut shim =
            Shim::new("vm", bed.node(0), ShimConfig::default().with_load_costs(false));
        shim.load_module("a", bundle("a", guest::producer())).unwrap();
        shim.load_module("b", bundle("b", guest::consumer())).unwrap();
        shim
    }

    #[test]
    fn transfers_bytes_between_modules() {
        let bed = Testbed::paper();
        let mut shim = shared_vm_shim(&bed);
        let payload = vec![0x5Au8; 100_000];
        let src = shim.write_memory_host("a", &payload).unwrap();
        shim.invoke("a", "produce", &[Value::I32(src.addr as i32), Value::I32(src.len as i32)])
            .unwrap();
        let (target, moved) = transfer(&mut shim, "a", "b").unwrap();
        assert_eq!(&moved[..], &payload[..]);
        assert_eq!(&shim.peek_memory("b", target).unwrap()[..], &payload[..]);
    }

    #[test]
    fn transfer_without_outbox_fails() {
        let bed = Testbed::paper();
        let mut shim = shared_vm_shim(&bed);
        assert!(matches!(
            transfer(&mut shim, "a", "b"),
            Err(RoadrunnerError::Config(_))
        ));
    }

    #[test]
    fn no_kernel_time_is_spent() {
        let bed = Testbed::paper();
        let mut shim = shared_vm_shim(&bed);
        let payload = vec![1u8; 1 << 20];
        let src = shim.write_memory_host("a", &payload).unwrap();
        shim.invoke("a", "produce", &[Value::I32(src.addr as i32), Value::I32(src.len as i32)])
            .unwrap();
        let kernel_before = shim.sandbox().account().kernel_ns();
        transfer(&mut shim, "a", "b").unwrap();
        assert_eq!(
            shim.sandbox().account().kernel_ns(),
            kernel_before,
            "user-space mode must not enter the kernel"
        );
    }

    #[test]
    fn source_region_is_released_after_transfer() {
        let bed = Testbed::paper();
        let mut shim = shared_vm_shim(&bed);
        let src = shim.write_memory_host("a", &[9u8; 64]).unwrap();
        shim.invoke("a", "produce", &[Value::I32(src.addr as i32), Value::I32(src.len as i32)])
            .unwrap();
        transfer(&mut shim, "a", "b").unwrap();
        assert!(matches!(
            shim.peek_memory("a", src),
            Err(RoadrunnerError::AccessViolation(_))
        ));
    }
}
