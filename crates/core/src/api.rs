//! The Roadrunner data-access API (paper Table 1) — host side.
//!
//! Guest-visible functions live in the `roadrunner` import namespace;
//! [`ShimState`] is the per-function host state they operate on. The shim
//! half of the API (`read_memory_host`, `write_memory_host`) lives on
//! [`crate::Shim`].
//!
//! Backward compatibility (paper §7): the shim registers both this
//! namespace *and* plain WASI, and a module that never imports
//! `roadrunner::*` runs completely unchanged.

use roadrunner_wasi::{HasWasi, WasiCtx};
use roadrunner_wasm::types::{FuncType, ValType};
use roadrunner_wasm::{Caller, Linker};

use crate::region::{MemoryRegion, RegionRegistry};

/// Per-function host state: the embedded WASI context (so unmodified
/// modules keep working), the outbox region the guest last handed over,
/// and the registry of regions the shim may touch.
#[derive(Debug)]
pub struct ShimState {
    wasi: WasiCtx,
    outbox: Option<MemoryRegion>,
    regions: RegionRegistry,
}

impl ShimState {
    /// Creates state around an existing WASI context.
    pub fn new(wasi: WasiCtx) -> Self {
        Self { wasi, outbox: None, regions: RegionRegistry::new() }
    }

    /// The embedded WASI context.
    pub fn wasi(&self) -> &WasiCtx {
        &self.wasi
    }

    /// Mutable WASI context.
    pub fn wasi_mut(&mut self) -> &mut WasiCtx {
        &mut self.wasi
    }

    /// Region the guest last passed to `send_to_host`, consuming it.
    pub fn take_outbox(&mut self) -> Option<MemoryRegion> {
        self.outbox.take()
    }

    /// Region the guest last passed to `send_to_host`, without consuming.
    pub fn peek_outbox(&self) -> Option<MemoryRegion> {
        self.outbox
    }

    /// The access-control registry.
    pub fn regions(&self) -> &RegionRegistry {
        &self.regions
    }

    /// Mutable access-control registry (the shim registers inbox regions
    /// it allocates itself).
    pub fn regions_mut(&mut self) -> &mut RegionRegistry {
        &mut self.regions
    }
}

impl HasWasi for ShimState {
    fn wasi(&mut self) -> &mut WasiCtx {
        &mut self.wasi
    }
}

/// Registers the guest-side Roadrunner API into `linker`:
///
/// * `roadrunner::send_to_host(addr, len)` — the guest locates its data
///   (Table 1 `locate_memory_region` happens guest-side) and transfers
///   the region descriptor to the shim. The region becomes registered
///   for host access; only one fixed-size descriptor crosses the
///   boundary — never the payload itself.
pub fn register_roadrunner_api(linker: &mut Linker) {
    linker.define(
        crate::guest::RR_MODULE,
        crate::guest::SEND_TO_HOST,
        FuncType::new([ValType::I32, ValType::I32], []),
        |mut caller: Caller<'_>, args| {
            let addr = args[0].as_i32().expect("typed by signature") as u32;
            let len = args[1].as_i32().expect("typed by signature") as u32;
            let memory_len = caller.memory()?.len();
            let state = caller.data::<ShimState>()?;
            let region = MemoryRegion::new(addr, len);
            if !region.fits(memory_len) {
                return Err(roadrunner_wasm::Trap::host(format!(
                    "send_to_host region [{}, {}) exceeds memory of {memory_len} bytes",
                    region.addr,
                    region.end(),
                )));
            }
            // Only the 8-byte descriptor crosses the boundary.
            state.wasi_mut().charge_boundary(8);
            state.regions_mut().register(region);
            state.outbox = Some(region);
            Ok(vec![])
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest;
    use roadrunner_vkernel::node::Sandbox;
    use roadrunner_vkernel::{CostModel, VirtualClock};
    use roadrunner_wasm::types::Value;
    use roadrunner_wasm::{EngineLimits, Instance, Trap};
    use std::sync::Arc;

    fn state() -> ShimState {
        let sandbox = Sandbox::detached(
            "api-test",
            VirtualClock::new(),
            Arc::new(CostModel::paper_testbed()),
        );
        ShimState::new(WasiCtx::new(sandbox))
    }

    fn linker() -> Linker {
        let mut linker = Linker::new();
        roadrunner_wasi::register::<ShimState>(&mut linker);
        register_roadrunner_api(&mut linker);
        linker
    }

    #[test]
    fn send_to_host_records_outbox_and_registers_region() {
        let mut inst = Instance::new(
            guest::producer(),
            &linker(),
            EngineLimits::default(),
            Box::new(state()),
        )
        .unwrap();
        inst.invoke("produce", &[Value::I32(4096), Value::I32(100)]).unwrap();
        let st = inst.data_mut::<ShimState>().unwrap();
        assert_eq!(st.peek_outbox(), Some(MemoryRegion::new(4096, 100)));
        assert_eq!(st.regions().len(), 1);
        assert_eq!(st.take_outbox(), Some(MemoryRegion::new(4096, 100)));
        assert_eq!(st.take_outbox(), None);
    }

    #[test]
    fn send_to_host_rejects_region_beyond_memory() {
        let mut inst = Instance::new(
            guest::producer(),
            &linker(),
            EngineLimits::default(),
            Box::new(state()),
        )
        .unwrap();
        let err = inst
            .invoke("produce", &[Value::I32(0), Value::I32(i32::MAX)])
            .unwrap_err();
        assert!(matches!(err, Trap::Host(msg) if msg.contains("exceeds memory")));
    }

    #[test]
    fn descriptor_crossing_is_cheap() {
        let mut inst = Instance::new(
            guest::producer(),
            &linker(),
            EngineLimits::default(),
            Box::new(state()),
        )
        .unwrap();
        // Grow the guest heap so a 50 MB region actually exists…
        let addr = inst.invoke(guest::ALLOCATE, &[Value::I32(50_000_000)]).unwrap()[0]
            .as_i32()
            .unwrap();
        let charged_before = {
            let st = inst.data::<ShimState>().unwrap();
            st.wasi().sandbox().account().user_ns()
        };
        inst.invoke("produce", &[Value::I32(addr), Value::I32(50_000_000)]).unwrap();
        let st = inst.data::<ShimState>().unwrap();
        let cost = CostModel::paper_testbed();
        // …then the handoff charge covers an 8-byte descriptor, nowhere
        // near 50 MB of VM I/O.
        let charged = st.wasi().sandbox().account().user_ns() - charged_before;
        assert!(charged < 10 * cost.wasm_boundary_ns, "charged {charged} ns");
        assert!(charged < cost.vm_io_ns(50_000_000) / 1000);
    }

    #[test]
    fn unmodified_wasi_module_runs_without_roadrunner_imports() {
        // Backward compatibility: hello_world imports nothing and a plain
        // WASI+roadrunner linker still instantiates it.
        let mut inst = Instance::new(
            guest::hello_world(),
            &linker(),
            EngineLimits::default(),
            Box::new(state()),
        )
        .unwrap();
        assert!(inst.invoke("_start", &[]).is_ok());
    }
}
