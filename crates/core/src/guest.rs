//! Guest-module SDK: builders for the Wasm functions used throughout the
//! evaluation.
//!
//! The paper's guests are Rust programs compiled to Wasm against the
//! Table-1 API. This reproduction has no guest compiler, so these
//! builders emit the equivalent modules instruction-by-instruction. Every
//! guest follows the Roadrunner ABI:
//!
//! * a mutable global `$heap` and exports `allocate_memory(len) -> addr`
//!   / `deallocate_memory(addr)` implementing a LIFO bump allocator with
//!   on-demand `memory.grow` — the memory-management half of Table 1;
//! * the import `roadrunner::send_to_host(addr, len)` — the guest half of
//!   the data-management API (`locate_memory_region` is the guest knowing
//!   where its data lives; `read_memory_wasm` is ordinary loads);
//! * handler exports (`produce`, `consume`, …) invoked by the shim with
//!   `(addr, len)` of their input region.

use roadrunner_wasm::types::{FuncType, ValType, Value};
use roadrunner_wasm::{BlockType, Instr, MemArg, Module, ModuleBuilder};

/// Import namespace of the Roadrunner data-access API.
pub const RR_MODULE: &str = "roadrunner";
/// Name of the guest→shim handoff import.
pub const SEND_TO_HOST: &str = "send_to_host";
/// Export name of the guest allocator.
pub const ALLOCATE: &str = "allocate_memory";
/// Export name of the guest deallocator.
pub const DEALLOCATE: &str = "deallocate_memory";

/// Index of the heap-pointer global in SDK modules.
const HEAP_GLOBAL: u32 = 0;
/// First byte the bump allocator may hand out (below it: guest scratch).
const HEAP_BASE: i32 = 4096;
/// Pages grown per step when the heap outgrows memory (16 MiB).
const GROW_STEP_PAGES: i32 = 256;

fn i32t() -> ValType {
    ValType::I32
}

/// Instruction sequence: aligns local 0 (a length) to 8 bytes.
fn align_len_to_8(len_local: u32) -> Vec<Instr> {
    vec![
        Instr::LocalGet(len_local),
        Instr::I32Const(7),
        Instr::I32Add,
        Instr::I32Const(-8),
        Instr::I32And,
        Instr::LocalSet(len_local),
    ]
}

/// Body of `allocate_memory(len: i32) -> i32`.
fn allocate_body() -> Vec<Instr> {
    let mut body = align_len_to_8(0);
    body.extend([
        // old = heap; heap += len
        Instr::GlobalGet(HEAP_GLOBAL),
        Instr::LocalSet(1),
        Instr::GlobalGet(HEAP_GLOBAL),
        Instr::LocalGet(0),
        Instr::I32Add,
        Instr::GlobalSet(HEAP_GLOBAL),
        // Grow until heap fits in memory.
        Instr::Block(
            BlockType::Empty,
            vec![Instr::Loop(
                BlockType::Empty,
                vec![
                    Instr::GlobalGet(HEAP_GLOBAL),
                    Instr::MemorySize,
                    Instr::I32Const(16),
                    Instr::I32Shl,
                    Instr::I32LeU,
                    Instr::BrIf(1),
                    Instr::I32Const(GROW_STEP_PAGES),
                    Instr::MemoryGrow,
                    Instr::I32Const(-1),
                    Instr::I32Eq,
                    Instr::If(BlockType::Empty, vec![Instr::Unreachable], vec![]),
                    Instr::Br(0),
                ],
            )],
        ),
        Instr::LocalGet(1),
    ]);
    body
}

/// Body of `deallocate_memory(addr: i32)` — LIFO reset: releasing an
/// address returns the bump pointer to it (valid for the shim's
/// allocate-consume-free pattern; documented simplification).
fn deallocate_body() -> Vec<Instr> {
    vec![
        Instr::LocalGet(0),
        Instr::GlobalGet(HEAP_GLOBAL),
        Instr::I32LtU,
        Instr::If(
            BlockType::Empty,
            vec![
                Instr::LocalGet(0),
                Instr::I32Const(HEAP_BASE),
                Instr::I32GeU,
                Instr::If(
                    BlockType::Empty,
                    vec![Instr::LocalGet(0), Instr::GlobalSet(HEAP_GLOBAL)],
                    vec![],
                ),
            ],
            vec![],
        ),
    ]
}

/// Starts an SDK module: memory, heap global, allocator exports, and the
/// `send_to_host` import at function index 0.
fn sdk_builder() -> ModuleBuilder {
    ModuleBuilder::new()
        .import_func(RR_MODULE, SEND_TO_HOST, FuncType::new([i32t(), i32t()], []))
        .memory(1, None)
        .global(ValType::I32, true, Value::I32(HEAP_BASE))
}

/// Appends the allocator exports; call after all other `import_func`s.
fn with_allocator(b: ModuleBuilder) -> ModuleBuilder {
    let alloc_idx = b.next_func_index();
    b.func(FuncType::new([i32t()], [i32t()]), [i32t()], allocate_body())
        .export_func(ALLOCATE, alloc_idx)
        .func(FuncType::new([i32t()], []), [], deallocate_body())
        .export_func(DEALLOCATE, alloc_idx + 1)
}

/// Builds the producer guest (function `a` of §6.1): its `produce(addr,
/// len)` handler locates its payload and hands the region to the shim via
/// `send_to_host` — no serialization, no copies.
pub fn producer() -> Module {
    let b = with_allocator(sdk_builder());
    let produce_idx = b.next_func_index();
    b.func(
        FuncType::new([i32t(), i32t()], []),
        [],
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::Call(0)],
    )
    .export_func("produce", produce_idx)
    .export_memory("memory")
    .build()
    .expect("producer module validates")
}

/// Builds the consumer guest (function `b` of §6.1): `consume(addr, len)`
/// reads its input directly from linear memory (first and last words) and
/// returns a small acknowledgement value.
pub fn consumer() -> Module {
    let b = with_allocator(sdk_builder());
    let consume_idx = b.next_func_index();
    b.func(
        FuncType::new([i32t(), i32t()], [i32t()]),
        [],
        vec![
            Instr::LocalGet(1),
            Instr::I32Const(8),
            Instr::I32GeU,
            Instr::If(
                BlockType::Value(ValType::I32),
                vec![
                    Instr::LocalGet(0),
                    Instr::I32Load(MemArg::default()),
                    Instr::LocalGet(0),
                    Instr::LocalGet(1),
                    Instr::I32Add,
                    Instr::I32Const(4),
                    Instr::I32Sub,
                    Instr::I32Load(MemArg::default()),
                    Instr::I32Xor,
                ],
                vec![Instr::LocalGet(1)],
            ),
        ],
    )
    .export_func("consume", consume_idx)
    .export_memory("memory")
    .build()
    .expect("consumer module validates")
}

/// Builds a relay guest used in chains: `relay(addr, len)` immediately
/// re-sends its input region to the shim (receive → forward).
pub fn relay() -> Module {
    let b = with_allocator(sdk_builder());
    let relay_idx = b.next_func_index();
    b.func(
        FuncType::new([i32t(), i32t()], []),
        [],
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::Call(0)],
    )
    .export_func("relay", relay_idx)
    .export_memory("memory")
    .build()
    .expect("relay module validates")
}

/// Builds the "Hello World" guest of Fig. 2a: pure computation, **no**
/// WASI imports — the case where Wasm beats containers on execution time.
pub fn hello_world() -> Module {
    ModuleBuilder::new()
        .memory(1, Some(2))
        .func(
            FuncType::new([], [i32t()]),
            [i32t(), i32t()],
            vec![
                // for i in 0..10_000 { acc = acc.wrapping_add(i*i) }
                Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(
                        BlockType::Empty,
                        vec![
                            Instr::LocalGet(0),
                            Instr::I32Const(10_000),
                            Instr::I32GeU,
                            Instr::BrIf(1),
                            Instr::LocalGet(1),
                            Instr::LocalGet(0),
                            Instr::LocalGet(0),
                            Instr::I32Mul,
                            Instr::I32Add,
                            Instr::LocalSet(1),
                            Instr::LocalGet(0),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::LocalSet(0),
                            Instr::Br(0),
                        ],
                    )],
                ),
                Instr::LocalGet(1),
            ],
        )
        .export_func("_start", 0)
        .build()
        .expect("hello module validates")
}

/// Chunk size the WASI-socket guests send/receive with (8 KiB — a
/// typical guest-side buffer; every chunk pays a boundary crossing).
pub const WASI_SOCK_CHUNK: i32 = 8192;

/// Builds the WasmEdge-baseline *sender* guest: exports the allocator
/// plus `send_all(fd, addr, len) -> errno`, which frames the payload with
/// an 8-byte length header and pushes it through `sock_send` in
/// [`WASI_SOCK_CHUNK`] chunks — each one a boundary crossing plus a copy
/// out of linear memory, exactly the per-chunk WASI tax the paper
/// measures.
pub fn wasi_sender() -> Module {
    let i32_ = i32t();
    let sock_send_ty = FuncType::new([i32_, i32_, i32_, i32_, i32_], [i32_]);
    // Scratch layout: header at 64 (8 bytes), iovec at 80, result at 96.
    let b = ModuleBuilder::new()
        .import_func(roadrunner_wasi::MODULE, "sock_send", sock_send_ty)
        .memory(1, None)
        .global(ValType::I32, true, Value::I32(HEAP_BASE));
    let alloc_idx = b.next_func_index();
    let b = b
        .func(FuncType::new([i32_], [i32_]), [i32_], allocate_body())
        .export_func(ALLOCATE, alloc_idx)
        .func(FuncType::new([i32_], []), [], deallocate_body())
        .export_func(DEALLOCATE, alloc_idx + 1);
    let send_all_idx = b.next_func_index();
    // Params: fd(0), addr(1), len(2); locals: off(3), chunk(4).
    let body = vec![
        // Header: *(i64*)64 = len; iovec {64, 8}; sock_send.
        Instr::I32Const(64),
        Instr::LocalGet(2),
        Instr::I64ExtendI32U,
        Instr::I64Store(MemArg::default()),
        Instr::I32Const(80),
        Instr::I32Const(64),
        Instr::I32Store(MemArg::default()),
        Instr::I32Const(84),
        Instr::I32Const(8),
        Instr::I32Store(MemArg::default()),
        Instr::LocalGet(0),
        Instr::I32Const(80),
        Instr::I32Const(1),
        Instr::I32Const(0),
        Instr::I32Const(96),
        Instr::Call(0),
        Instr::Drop,
        // Chunk loop.
        Instr::I32Const(0),
        Instr::LocalSet(3),
        Instr::Block(
            BlockType::Empty,
            vec![Instr::Loop(
                BlockType::Empty,
                vec![
                    Instr::LocalGet(3),
                    Instr::LocalGet(2),
                    Instr::I32GeU,
                    Instr::BrIf(1),
                    // chunk = min(len - off, WASI_SOCK_CHUNK)
                    Instr::LocalGet(2),
                    Instr::LocalGet(3),
                    Instr::I32Sub,
                    Instr::I32Const(WASI_SOCK_CHUNK),
                    Instr::LocalGet(2),
                    Instr::LocalGet(3),
                    Instr::I32Sub,
                    Instr::I32Const(WASI_SOCK_CHUNK),
                    Instr::I32LtU,
                    Instr::Select,
                    Instr::LocalSet(4),
                    // iovec { addr + off, chunk }
                    Instr::I32Const(80),
                    Instr::LocalGet(1),
                    Instr::LocalGet(3),
                    Instr::I32Add,
                    Instr::I32Store(MemArg::default()),
                    Instr::I32Const(84),
                    Instr::LocalGet(4),
                    Instr::I32Store(MemArg::default()),
                    Instr::LocalGet(0),
                    Instr::I32Const(80),
                    Instr::I32Const(1),
                    Instr::I32Const(0),
                    Instr::I32Const(96),
                    Instr::Call(0),
                    Instr::Drop,
                    Instr::LocalGet(3),
                    Instr::LocalGet(4),
                    Instr::I32Add,
                    Instr::LocalSet(3),
                    Instr::Br(0),
                ],
            )],
        ),
        Instr::I32Const(0),
    ];
    b.func(FuncType::new([i32_, i32_, i32_], [i32_]), [i32_, i32_], body)
        .export_func("send_all", send_all_idx)
        .export_memory("memory")
        .build()
        .expect("wasi sender validates")
}

/// Builds the WasmEdge-baseline *receiver* guest: exports the allocator,
/// `recv_all(fd) -> addr` (reads the length header, allocates, then
/// drains `sock_recv` into the buffer — a boundary crossing plus a copy
/// into linear memory per segment) and `last_len() -> len`.
pub fn wasi_receiver() -> Module {
    let i32_ = i32t();
    let sock_recv_ty = FuncType::new([i32_, i32_, i32_, i32_, i32_, i32_], [i32_]);
    // Scratch: header at 64, iovec at 80, nread at 96, roflags at 100.
    let b = ModuleBuilder::new()
        .import_func(roadrunner_wasi::MODULE, "sock_recv", sock_recv_ty)
        .memory(1, None)
        .global(ValType::I32, true, Value::I32(HEAP_BASE))
        // LAST_LEN global.
        .global(ValType::I32, true, Value::I32(0));
    let alloc_idx = b.next_func_index();
    let b = b
        .func(FuncType::new([i32_], [i32_]), [i32_], allocate_body())
        .export_func(ALLOCATE, alloc_idx)
        .func(FuncType::new([i32_], []), [], deallocate_body())
        .export_func(DEALLOCATE, alloc_idx + 1);
    let recv_all_idx = b.next_func_index();
    // Params: fd(0); locals: total(1), off(2), got(3), addr(4).
    let body = vec![
        // iovec {64, 8}; sock_recv header.
        Instr::I32Const(80),
        Instr::I32Const(64),
        Instr::I32Store(MemArg::default()),
        Instr::I32Const(84),
        Instr::I32Const(8),
        Instr::I32Store(MemArg::default()),
        Instr::LocalGet(0),
        Instr::I32Const(80),
        Instr::I32Const(1),
        Instr::I32Const(0),
        Instr::I32Const(96),
        Instr::I32Const(100),
        Instr::Call(0),
        Instr::Drop,
        Instr::I32Const(64),
        Instr::I64Load(MemArg::default()),
        Instr::I32WrapI64,
        Instr::LocalSet(1),
        Instr::LocalGet(1),
        Instr::GlobalSet(1),
        // addr = allocate_memory(total)
        Instr::LocalGet(1),
        Instr::Call(1),
        Instr::LocalSet(4),
        Instr::I32Const(0),
        Instr::LocalSet(2),
        Instr::Block(
            BlockType::Empty,
            vec![Instr::Loop(
                BlockType::Empty,
                vec![
                    Instr::LocalGet(2),
                    Instr::LocalGet(1),
                    Instr::I32GeU,
                    Instr::BrIf(1),
                    // iovec { addr + off, total - off }
                    Instr::I32Const(80),
                    Instr::LocalGet(4),
                    Instr::LocalGet(2),
                    Instr::I32Add,
                    Instr::I32Store(MemArg::default()),
                    Instr::I32Const(84),
                    Instr::LocalGet(1),
                    Instr::LocalGet(2),
                    Instr::I32Sub,
                    Instr::I32Store(MemArg::default()),
                    Instr::LocalGet(0),
                    Instr::I32Const(80),
                    Instr::I32Const(1),
                    Instr::I32Const(0),
                    Instr::I32Const(96),
                    Instr::I32Const(100),
                    Instr::Call(0),
                    Instr::Drop,
                    Instr::I32Const(96),
                    Instr::I32Load(MemArg::default()),
                    Instr::LocalSet(3),
                    // A zero-byte read mid-stream means the peer stalled:
                    // fail stop instead of spinning.
                    Instr::LocalGet(3),
                    Instr::I32Eqz,
                    Instr::If(BlockType::Empty, vec![Instr::Unreachable], vec![]),
                    Instr::LocalGet(2),
                    Instr::LocalGet(3),
                    Instr::I32Add,
                    Instr::LocalSet(2),
                    Instr::Br(0),
                ],
            )],
        ),
        Instr::LocalGet(4),
    ];
    let b = b
        .func(FuncType::new([i32_], [i32_]), [i32_, i32_, i32_, i32_], body)
        .export_func("recv_all", recv_all_idx);
    let last_len_idx = b.next_func_index();
    b.func(FuncType::new([], [i32_]), [], vec![Instr::GlobalGet(1)])
        .export_func("last_len", last_len_idx)
        .export_memory("memory")
        .build()
        .expect("wasi receiver validates")
}

/// Parameters of the resize-image guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeSpec {
    /// Input width in pixels (8-bit grayscale).
    pub width: u32,
    /// Input height in pixels.
    pub height: u32,
}

impl ResizeSpec {
    /// Bytes of the input image.
    pub fn input_len(&self) -> u32 {
        self.width * self.height
    }

    /// Bytes of the half-scale output image.
    pub fn output_len(&self) -> u32 {
        (self.width / 2) * (self.height / 2)
    }
}

/// Address of the guest's input buffer in the resize module.
pub const RESIZE_IN_ADDR: u32 = 1024;
/// Path the resize guest opens for its input.
pub const RESIZE_INPUT_PATH: &str = "/in.img";

/// Builds the "Resize Image" guest of Fig. 2a: WASI-dependent. Opens
/// `/in.img`, reads `width × height` grayscale bytes, performs 2×
/// nearest-neighbour downscaling pixel-by-pixel, and writes the result to
/// stdout — file I/O, boundary crossings and real per-pixel work.
pub fn resize_image(spec: ResizeSpec) -> Module {
    assert!(spec.width >= 2 && spec.height >= 2, "image must be at least 2x2");
    let i32_ = i32t();
    let i64_ = ValType::I64;
    let w = spec.width as i32;
    let h = spec.height as i32;
    let in_addr = RESIZE_IN_ADDR as i32;
    let out_addr = in_addr + w * h;
    // Scratch layout below 1024: path at 0, fd cell at 256, iovecs at
    // 260/268, counters at 280/284.
    let fd_cell = 256;
    let iov1 = 260;
    let iov2 = 268;
    let nread = 280;
    let nwritten = 284;
    let total = out_addr as u32 + spec.output_len();
    let pages = total.div_ceil(65536) + 1;

    let path_open_ty = FuncType::new(
        [i32_, i32_, i32_, i32_, i32_, i64_, i64_, i32_, i32_],
        [i32_],
    );
    let rw_ty = FuncType::new([i32_, i32_, i32_, i32_], [i32_]);

    // Locals: 0 = x, 1 = y, 2 = fd.
    let mut body = vec![
        // path_open(3, 0, path=0, len, 0, 0, 0, 0, fd_cell)
        Instr::I32Const(3),
        Instr::I32Const(0),
        Instr::I32Const(0),
        Instr::I32Const(RESIZE_INPUT_PATH.len() as i32),
        Instr::I32Const(0),
        Instr::I64Const(0),
        Instr::I64Const(0),
        Instr::I32Const(0),
        Instr::I32Const(fd_cell),
        Instr::Call(0),
        Instr::Drop,
        Instr::I32Const(fd_cell),
        Instr::I32Load(MemArg::default()),
        Instr::LocalSet(2),
        // iovec { in_addr, w*h } at iov1; fd_read(fd, iov1, 1, nread)
        Instr::I32Const(iov1),
        Instr::I32Const(in_addr),
        Instr::I32Store(MemArg::default()),
        Instr::I32Const(iov1 + 4),
        Instr::I32Const(w * h),
        Instr::I32Store(MemArg::default()),
        Instr::LocalGet(2),
        Instr::I32Const(iov1),
        Instr::I32Const(1),
        Instr::I32Const(nread),
        Instr::Call(1),
        Instr::Drop,
    ];
    // Nested y/x loops: out[y*(w/2)+x] = in[(2y)*w + 2x].
    body.push(Instr::I32Const(0));
    body.push(Instr::LocalSet(1));
    body.push(Instr::Block(
        BlockType::Empty,
        vec![Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::I32Const(h / 2),
                Instr::I32GeU,
                Instr::BrIf(1),
                Instr::I32Const(0),
                Instr::LocalSet(0),
                Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(
                        BlockType::Empty,
                        vec![
                            Instr::LocalGet(0),
                            Instr::I32Const(w / 2),
                            Instr::I32GeU,
                            Instr::BrIf(1),
                            // dst = out_addr + y*(w/2) + x
                            Instr::LocalGet(1),
                            Instr::I32Const(w / 2),
                            Instr::I32Mul,
                            Instr::LocalGet(0),
                            Instr::I32Add,
                            Instr::I32Const(out_addr),
                            Instr::I32Add,
                            // src value = load8(in_addr + 2y*w + 2x)
                            Instr::LocalGet(1),
                            Instr::I32Const(2 * w),
                            Instr::I32Mul,
                            Instr::LocalGet(0),
                            Instr::I32Const(1),
                            Instr::I32Shl,
                            Instr::I32Add,
                            Instr::I32Const(in_addr),
                            Instr::I32Add,
                            Instr::I32Load8U(MemArg::default()),
                            Instr::I32Store8(MemArg::default()),
                            Instr::LocalGet(0),
                            Instr::I32Const(1),
                            Instr::I32Add,
                            Instr::LocalSet(0),
                            Instr::Br(0),
                        ],
                    )],
                ),
                Instr::LocalGet(1),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        )],
    ));
    // iovec { out_addr, out_len } at iov2; fd_write(1, iov2, 1, nwritten)
    body.extend([
        Instr::I32Const(iov2),
        Instr::I32Const(out_addr),
        Instr::I32Store(MemArg::default()),
        Instr::I32Const(iov2 + 4),
        Instr::I32Const(spec.output_len() as i32),
        Instr::I32Store(MemArg::default()),
        Instr::I32Const(1),
        Instr::I32Const(iov2),
        Instr::I32Const(1),
        Instr::I32Const(nwritten),
        Instr::Call(2),
    ]);

    ModuleBuilder::new()
        .import_func(roadrunner_wasi::MODULE, "path_open", path_open_ty)
        .import_func(roadrunner_wasi::MODULE, "fd_read", rw_ty.clone())
        .import_func(roadrunner_wasi::MODULE, "fd_write", rw_ty)
        .memory(pages, None)
        .data(0, RESIZE_INPUT_PATH.as_bytes().to_vec())
        .func(FuncType::new([], [i32_]), [i32_, i32_, i32_], body)
        .export_func("_start", 3)
        .export_memory("memory")
        .build()
        .expect("resize module validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_wasm::{decode, encode, EngineLimits, Instance, Linker, Trap};

    fn bare_rr_linker() -> Linker {
        let mut linker = Linker::new();
        linker.define(
            RR_MODULE,
            SEND_TO_HOST,
            FuncType::new([ValType::I32, ValType::I32], []),
            |mut caller, args| {
                let pair =
                    (args[0].as_i32().unwrap() as u32, args[1].as_i32().unwrap() as u32);
                *caller.data::<Option<(u32, u32)>>()? = Some(pair);
                Ok(vec![])
            },
        );
        linker
    }

    fn instantiate(module: Module) -> Instance {
        Instance::new(
            module,
            &bare_rr_linker(),
            EngineLimits::default(),
            Box::new(None::<(u32, u32)>),
        )
        .unwrap()
    }

    #[test]
    fn sdk_modules_encode_and_decode() {
        for module in [producer(), consumer(), relay(), hello_world()] {
            let bytes = encode::encode(&module);
            assert_eq!(decode::decode(&bytes).unwrap(), module);
        }
    }

    #[test]
    fn allocator_returns_aligned_disjoint_regions() {
        let mut inst = instantiate(producer());
        let a = inst.invoke(ALLOCATE, &[Value::I32(100)]).unwrap()[0].as_i32().unwrap();
        let b = inst.invoke(ALLOCATE, &[Value::I32(50)]).unwrap()[0].as_i32().unwrap();
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 100, "allocations must not overlap");
        assert_eq!(a, HEAP_BASE);
    }

    #[test]
    fn allocator_grows_memory_on_demand() {
        let mut inst = instantiate(producer());
        let before = inst.memory().unwrap().size_pages();
        let addr = inst
            .invoke(ALLOCATE, &[Value::I32(20 << 20)])
            .unwrap()[0]
            .as_i32()
            .unwrap();
        assert!(addr > 0);
        assert!(inst.memory().unwrap().size_pages() > before);
        // The whole region is writable.
        inst.memory_mut().unwrap().write(addr as u32 + (20 << 20) - 1, &[1]).unwrap();
    }

    #[test]
    fn deallocate_is_lifo() {
        let mut inst = instantiate(producer());
        let a = inst.invoke(ALLOCATE, &[Value::I32(64)]).unwrap()[0].as_i32().unwrap();
        inst.invoke(DEALLOCATE, &[Value::I32(a)]).unwrap();
        let b = inst.invoke(ALLOCATE, &[Value::I32(64)]).unwrap()[0].as_i32().unwrap();
        assert_eq!(a, b, "freed space is reused");
    }

    #[test]
    fn deallocate_below_heap_base_is_ignored() {
        let mut inst = instantiate(producer());
        inst.invoke(DEALLOCATE, &[Value::I32(8)]).unwrap();
        let a = inst.invoke(ALLOCATE, &[Value::I32(8)]).unwrap()[0].as_i32().unwrap();
        assert_eq!(a, HEAP_BASE, "heap pointer must not drop below base");
    }

    #[test]
    fn producer_hands_region_to_host() {
        let mut inst = instantiate(producer());
        inst.invoke("produce", &[Value::I32(4096), Value::I32(512)]).unwrap();
        assert_eq!(*inst.data::<Option<(u32, u32)>>().unwrap(), Some((4096, 512)));
    }

    #[test]
    fn consumer_acknowledges_from_memory() {
        let mut inst = instantiate(consumer());
        let mem = inst.memory_mut().unwrap();
        mem.write(4096, &0xAABBCCDDu32.to_le_bytes()).unwrap();
        mem.write(4096 + 60, &0x00000001u32.to_le_bytes()).unwrap();
        let out = inst.invoke("consume", &[Value::I32(4096), Value::I32(64)]).unwrap();
        assert_eq!(out[0].as_i32().unwrap() as u32, 0xAABBCCDD ^ 0x1);
        // Short inputs return their length.
        let out = inst.invoke("consume", &[Value::I32(0), Value::I32(3)]).unwrap();
        assert_eq!(out[0], Value::I32(3));
    }

    #[test]
    fn consumer_traps_on_wild_pointer() {
        let mut inst = instantiate(consumer());
        let err = inst
            .invoke("consume", &[Value::I32(i32::MAX), Value::I32(100)])
            .unwrap_err();
        assert!(matches!(err, Trap::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn hello_world_computes_without_wasi() {
        let module = hello_world();
        assert!(module.imports.is_empty(), "hello world must not import WASI");
        let mut inst = Instance::new(
            module,
            &Linker::new(),
            EngineLimits::default(),
            Box::new(()),
        )
        .unwrap();
        let out = inst.invoke("_start", &[]).unwrap();
        // sum of i*i for i in 0..10_000 (mod 2^32).
        let expected: i32 = (0..10_000i64).map(|i| i * i).sum::<i64>() as u32 as i32;
        assert_eq!(out[0].as_i32().unwrap(), expected);
    }

    #[test]
    fn resize_module_downscales() {
        use roadrunner_vkernel::node::Sandbox;
        use roadrunner_vkernel::{CostModel, VirtualClock};
        use roadrunner_wasi::WasiCtx;
        use std::sync::Arc;

        let spec = ResizeSpec { width: 8, height: 4 };
        let module = resize_image(spec);
        let mut linker = Linker::new();
        roadrunner_wasi::register::<WasiCtx>(&mut linker);
        let sandbox = Sandbox::detached(
            "resize",
            VirtualClock::new(),
            Arc::new(CostModel::paper_testbed()),
        );
        let mut ctx = WasiCtx::new(sandbox);
        // 8x4 gradient image.
        let img: Vec<u8> = (0..32u32).map(|i| i as u8).collect();
        ctx.put_file(RESIZE_INPUT_PATH, img);
        let mut inst =
            Instance::new(module, &linker, EngineLimits::default(), Box::new(ctx)).unwrap();
        inst.invoke("_start", &[]).unwrap();
        let ctx = inst.data::<WasiCtx>().unwrap();
        // Output is 4x2: rows 0 and 2, every other column.
        assert_eq!(ctx.stdout, vec![0, 2, 4, 6, 16, 18, 20, 22]);
        assert!(ctx.call_count >= 3, "path_open + fd_read + fd_write");
    }

    #[test]
    fn wasi_sender_and_receiver_stream_over_a_socket_pair() {
        use roadrunner_vkernel::node::Sandbox;
        use roadrunner_vkernel::unix::UnixConn;
        use roadrunner_vkernel::{CostModel, VirtualClock};
        use roadrunner_wasi::sock::UnixSocket;
        use roadrunner_wasi::WasiCtx;
        use std::sync::Arc;

        let clock = VirtualClock::new();
        let cost = Arc::new(CostModel::paper_testbed());
        let mut wasi_linker = Linker::new();
        roadrunner_wasi::register::<WasiCtx>(&mut wasi_linker);
        let (ea, eb) = UnixConn::pair();

        // Sender instance.
        let sa = Sandbox::detached("tx", clock.clone(), Arc::clone(&cost));
        let mut ctx_a = WasiCtx::new(sa.clone());
        let fd_a = ctx_a.add_socket(Box::new(UnixSocket::new(ea)));
        let mut tx = Instance::new(
            wasi_sender(),
            &wasi_linker,
            EngineLimits::default(),
            Box::new(ctx_a),
        )
        .unwrap();

        // Receiver instance.
        let sb = Sandbox::detached("rx", clock, cost);
        let mut ctx_b = WasiCtx::new(sb.clone());
        let fd_b = ctx_b.add_socket(Box::new(UnixSocket::new(eb)));
        let mut rx = Instance::new(
            wasi_receiver(),
            &wasi_linker,
            EngineLimits::default(),
            Box::new(ctx_b),
        )
        .unwrap();

        // Place a payload into the sender's memory and stream it.
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let addr = tx.invoke(ALLOCATE, &[Value::I32(payload.len() as i32)]).unwrap()[0]
            .as_i32()
            .unwrap();
        tx.memory_mut().unwrap().write(addr as u32, &payload).unwrap();
        let errno = tx
            .invoke(
                "send_all",
                &[
                    Value::I32(fd_a as i32),
                    Value::I32(addr),
                    Value::I32(payload.len() as i32),
                ],
            )
            .unwrap();
        assert_eq!(errno, vec![Value::I32(0)]);

        let out_addr = rx.invoke("recv_all", &[Value::I32(fd_b as i32)]).unwrap()[0]
            .as_i32()
            .unwrap();
        let out_len = rx.invoke("last_len", &[]).unwrap()[0].as_i32().unwrap();
        assert_eq!(out_len as usize, payload.len());
        let got = rx
            .memory()
            .unwrap()
            .read(out_addr as u32, out_len as u32)
            .unwrap()
            .to_vec();
        assert_eq!(got, payload);
        // Many chunked crossings happened on both sides.
        assert!(tx.data::<WasiCtx>().unwrap().call_count > 10);
        assert!(rx.data::<WasiCtx>().unwrap().call_count > 1);
        assert!(sa.account().kernel_ns() > 0);
        assert!(sb.account().kernel_ns() > 0);
    }

    #[test]
    fn resize_spec_sizes() {
        let spec = ResizeSpec { width: 640, height: 480 };
        assert_eq!(spec.input_len(), 307_200);
        assert_eq!(spec.output_len(), 76_800);
    }
}
