//! Kernel-space data transfer (paper §4.2, Fig. 4b).
//!
//! Co-located functions in separate sandboxes — each with its own shim —
//! exchange raw bytes over a Unix-domain socket. No serialization is
//! involved; the costs that remain are the user↔kernel copies, syscalls
//! and the receiver's wakeup context switch.
//!
//! Framing: an 8-byte little-endian length header, then the payload in
//! [`Shim::io_chunk`]-sized chunks.

use roadrunner_vkernel::unix::UnixEndpoint;

use crate::error::RoadrunnerError;
use crate::region::MemoryRegion;
use crate::shim::Shim;

/// Sends the source module's pending outbox over `endpoint`.
/// Returns the number of payload bytes sent.
///
/// # Errors
///
/// [`RoadrunnerError::Config`] if no outbox is pending; shim and socket
/// errors otherwise.
pub fn send(
    shim: &mut Shim,
    module: &str,
    endpoint: &UnixEndpoint,
) -> Result<usize, RoadrunnerError> {
    let region = shim.take_outbox(module)?.ok_or_else(|| {
        RoadrunnerError::Config(format!("module `{module}` has no pending outbox"))
    })?;
    let data = shim.read_memory_host(module, region)?;
    let sandbox = shim.sandbox().clone();
    endpoint.send(&sandbox, &(data.len() as u64).to_le_bytes())?;
    let chunk = shim.io_chunk();
    let mut offset = 0;
    while offset < data.len() {
        let end = (offset + chunk).min(data.len());
        endpoint.send(&sandbox, &data[offset..end])?;
        offset = end;
    }
    shim.deallocate(module, region)?;
    Ok(data.len())
}

/// Receives one framed payload from `endpoint` into `module`'s memory.
/// Returns the filled inbox region.
///
/// # Errors
///
/// [`RoadrunnerError::Kernel`] if the peer closed mid-message; shim
/// errors otherwise.
pub fn recv(
    shim: &mut Shim,
    module: &str,
    endpoint: &UnixEndpoint,
) -> Result<MemoryRegion, RoadrunnerError> {
    let sandbox = shim.sandbox().clone();
    let mut header = Vec::with_capacity(8);
    while header.len() < 8 {
        match endpoint.recv(&sandbox)? {
            None => return Err(roadrunner_vkernel::VkError::Closed.into()),
            Some(seg) if seg.is_empty() => {
                return Err(RoadrunnerError::Config(
                    "kernel-space recv: no framed message pending".into(),
                ))
            }
            Some(seg) => header.extend_from_slice(&seg),
        }
    }
    let total = u64::from_le_bytes(header[..8].try_into().expect("8 bytes")) as usize;
    let mut extra = header.split_off(8);
    let region = shim.allocate_inbox(module, total)?;
    let mut offset = 0usize;
    if !extra.is_empty() {
        shim.write_into_inbox(module, region, 0, &extra)?;
        offset = extra.len();
        extra.clear();
    }
    while offset < total {
        match endpoint.recv(&sandbox)? {
            None => return Err(roadrunner_vkernel::VkError::Closed.into()),
            Some(seg) if seg.is_empty() => {
                return Err(RoadrunnerError::Config(format!(
                    "kernel-space recv: stream stalled at {offset}/{total} bytes"
                )))
            }
            Some(seg) => {
                shim.write_into_inbox(module, region, offset as u32, &seg)?;
                offset += seg.len();
            }
        }
    }
    Ok(region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShimConfig;
    use crate::guest;
    use roadrunner_platform::FunctionBundle;
    use roadrunner_vkernel::unix::UnixConn;
    use roadrunner_vkernel::Testbed;
    use roadrunner_wasm::encode;
    use roadrunner_wasm::types::Value;
    use std::sync::Arc;

    fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("wf")
                .with_tenant("t"),
        )
    }

    fn shims(bed: &Testbed) -> (Shim, Shim) {
        let mut sa = Shim::new("a", bed.node(0), ShimConfig::default().with_load_costs(false));
        sa.load_module("a", bundle("a", guest::producer())).unwrap();
        let mut sb = Shim::new("b", bed.node(0), ShimConfig::default().with_load_costs(false));
        sb.load_module("b", bundle("b", guest::consumer())).unwrap();
        (sa, sb)
    }

    fn produce(shim: &mut Shim, module: &str, payload: &[u8]) {
        let region = shim.write_memory_host(module, payload).unwrap();
        shim.invoke(
            module,
            "produce",
            &[Value::I32(region.addr as i32), Value::I32(region.len as i32)],
        )
        .unwrap();
    }

    #[test]
    fn payload_crosses_sandboxes_intact() {
        let bed = Testbed::paper();
        let (mut sa, mut sb) = shims(&bed);
        let (ea, eb) = UnixConn::pair();
        let payload: Vec<u8> = (0..250_000u32).map(|i| (i % 251) as u8).collect();
        produce(&mut sa, "a", &payload);
        let sent = send(&mut sa, "a", &ea).unwrap();
        assert_eq!(sent, payload.len());
        let region = recv(&mut sb, "b", &eb).unwrap();
        assert_eq!(&sb.peek_memory("b", region).unwrap()[..], &payload[..]);
    }

    #[test]
    fn both_sides_pay_kernel_time_but_no_serialization() {
        let bed = Testbed::paper();
        let (mut sa, mut sb) = shims(&bed);
        let (ea, eb) = UnixConn::pair();
        produce(&mut sa, "a", &vec![3u8; 1 << 20]);
        let ka = sa.sandbox().account().kernel_ns();
        send(&mut sa, "a", &ea).unwrap();
        assert!(sa.sandbox().account().kernel_ns() > ka, "sender enters the kernel");
        let kb = sb.sandbox().account().kernel_ns();
        recv(&mut sb, "b", &eb).unwrap();
        assert!(sb.sandbox().account().kernel_ns() > kb, "receiver enters the kernel");
    }

    #[test]
    fn empty_payload_round_trips() {
        let bed = Testbed::paper();
        let (mut sa, mut sb) = shims(&bed);
        let (ea, eb) = UnixConn::pair();
        produce(&mut sa, "a", &[]);
        assert_eq!(send(&mut sa, "a", &ea).unwrap(), 0);
        let region = recv(&mut sb, "b", &eb).unwrap();
        assert_eq!(region.len, 0);
    }

    #[test]
    fn recv_without_message_fails_cleanly() {
        let bed = Testbed::paper();
        let (_sa, mut sb) = shims(&bed);
        let (_ea, eb) = UnixConn::pair();
        assert!(matches!(
            recv(&mut sb, "b", &eb),
            Err(RoadrunnerError::Config(_))
        ));
    }

    #[test]
    fn closed_peer_reports_kernel_error() {
        let bed = Testbed::paper();
        let (_sa, mut sb) = shims(&bed);
        let (ea, eb) = UnixConn::pair();
        ea.close();
        assert!(matches!(
            recv(&mut sb, "b", &eb),
            Err(RoadrunnerError::Kernel(_))
        ));
    }

    #[test]
    fn send_without_outbox_fails() {
        let bed = Testbed::paper();
        let (mut sa, _sb) = shims(&bed);
        let (ea, _eb) = UnixConn::pair();
        assert!(matches!(
            send(&mut sa, "a", &ea),
            Err(RoadrunnerError::Config(_))
        ));
    }
}
