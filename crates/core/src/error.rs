//! Roadrunner's error type.

use std::error::Error;
use std::fmt;

use roadrunner_platform::PlatformError;
use roadrunner_vkernel::VkError;
use roadrunner_wasm::{InstanceError, Trap};

/// Errors surfaced by the Roadrunner shim and its transfer modes.
#[derive(Debug)]
pub enum RoadrunnerError {
    /// Guest execution trapped.
    Trap(Trap),
    /// Module instantiation failed.
    Instance(InstanceError),
    /// A virtual-kernel object failed.
    Kernel(VkError),
    /// The shim refused a memory access (unregistered region or
    /// out-of-bounds) — the §3.1 enforcement path.
    AccessViolation(String),
    /// Trust validation failed (different workflow/tenant) — user-space
    /// mode requires explicit trust.
    TrustViolation(String),
    /// A named module is not loaded in this shim's VM.
    UnknownModule(String),
    /// The guest is missing a required export (e.g. `allocate_memory`).
    MissingGuestApi(String),
    /// Configuration problem.
    Config(String),
}

impl fmt::Display for RoadrunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadrunnerError::Trap(t) => write!(f, "guest trapped: {t}"),
            RoadrunnerError::Instance(e) => write!(f, "instantiation failed: {e}"),
            RoadrunnerError::Kernel(e) => write!(f, "kernel object failed: {e}"),
            RoadrunnerError::AccessViolation(msg) => write!(f, "access violation: {msg}"),
            RoadrunnerError::TrustViolation(msg) => write!(f, "trust violation: {msg}"),
            RoadrunnerError::UnknownModule(name) => write!(f, "unknown module `{name}`"),
            RoadrunnerError::MissingGuestApi(name) => {
                write!(f, "guest does not export required API `{name}`")
            }
            RoadrunnerError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for RoadrunnerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RoadrunnerError::Trap(t) => Some(t),
            RoadrunnerError::Instance(e) => Some(e),
            RoadrunnerError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Trap> for RoadrunnerError {
    fn from(t: Trap) -> Self {
        RoadrunnerError::Trap(t)
    }
}

impl From<InstanceError> for RoadrunnerError {
    fn from(e: InstanceError) -> Self {
        RoadrunnerError::Instance(e)
    }
}

impl From<VkError> for RoadrunnerError {
    fn from(e: VkError) -> Self {
        RoadrunnerError::Kernel(e)
    }
}

impl From<RoadrunnerError> for PlatformError {
    fn from(e: RoadrunnerError) -> Self {
        match e {
            RoadrunnerError::TrustViolation(msg) | RoadrunnerError::AccessViolation(msg) => {
                PlatformError::AccessDenied(msg)
            }
            other => PlatformError::Transfer(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_detail() {
        let e: RoadrunnerError = Trap::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        assert!(e.source().is_some());
        let e: RoadrunnerError = VkError::Closed.into();
        assert!(e.to_string().contains("closed"));
    }

    #[test]
    fn trust_violations_map_to_access_denied() {
        let p: PlatformError = RoadrunnerError::TrustViolation("wf mismatch".into()).into();
        assert!(matches!(p, PlatformError::AccessDenied(_)));
        let p: PlatformError = RoadrunnerError::UnknownModule("m".into()).into();
        assert!(matches!(p, PlatformError::Transfer(_)));
    }
}
