//! The Roadrunner data plane: mode selection and workflow integration.
//!
//! [`RoadrunnerPlane`] owns the shims of a deployment and implements
//! [`roadrunner_platform::DataPlane`], so the platform's workflow engine
//! can run over it. For every edge it derives the best transfer mode from
//! placement alone — "Roadrunner optimizes communication regardless of
//! the scheduler's decisions" (paper §2.2):
//!
//! * same shim (functions the user grouped into one VM) → **user space**;
//! * same node, different sandboxes → **kernel space** (Unix socket);
//! * different nodes → **network** (virtual data hose).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use roadrunner_platform::{DataPlane, FunctionBundle, PlatformError, TransferTiming};
use roadrunner_vkernel::tcp::{TcpConn, TcpEndpoint};
use roadrunner_vkernel::unix::{UnixConn, UnixEndpoint};
use roadrunner_vkernel::{Nanos, Testbed};
use roadrunner_wasm::types::Value;

use crate::config::ShimConfig;
use crate::error::RoadrunnerError;
use crate::region::MemoryRegion;
use crate::shim::Shim;
use crate::{hose, kernelspace, userspace};

/// Which transfer mechanism an edge used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Both functions in one Wasm VM (paper §4.1).
    UserSpace,
    /// Co-located sandboxes over a Unix socket (paper §4.2).
    KernelSpace,
    /// Remote nodes over the virtual data hose (paper §4.3).
    Network,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Mode::UserSpace => "user-space",
            Mode::KernelSpace => "kernel-space",
            Mode::Network => "network",
        };
        f.write_str(s)
    }
}

/// Timing breakdown of the last transfer, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeBreakdown {
    /// Mode the edge used.
    pub mode: Mode,
    /// Input delivery + source handler execution (function work, not
    /// transfer — the paper measures from "source sends" onwards).
    pub prepare_ns: Nanos,
    /// From outbox handoff to the payload resting in the target's linear
    /// memory (the paper's transfer latency).
    pub transfer_ns: Nanos,
    /// Target handler execution.
    pub consume_ns: Nanos,
}

impl EdgeBreakdown {
    /// Everything, end to end.
    pub fn total_ns(&self) -> Nanos {
        self.prepare_ns + self.transfer_ns + self.consume_ns
    }
}

struct FunctionEntry {
    shim_idx: usize,
    node: usize,
    handler: String,
    /// Result arity of the handler export (0 or 1) — consume returns an
    /// ack, produce/relay return nothing.
    handler_returns: bool,
}

/// The live Roadrunner deployment: shims, placements and cached channels.
pub struct RoadrunnerPlane {
    testbed: Arc<Testbed>,
    shims: Vec<Shim>,
    functions: HashMap<String, FunctionEntry>,
    unix_links: HashMap<(usize, usize), (UnixEndpoint, UnixEndpoint)>,
    tcp_links: HashMap<(usize, usize), (TcpEndpoint, TcpEndpoint)>,
    last_breakdown: Option<EdgeBreakdown>,
    config: ShimConfig,
}

impl std::fmt::Debug for RoadrunnerPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoadrunnerPlane")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .field("shims", &self.shims.len())
            .finish_non_exhaustive()
    }
}

impl RoadrunnerPlane {
    /// Creates an empty plane over `testbed`.
    pub fn new(testbed: Arc<Testbed>, config: ShimConfig) -> Self {
        Self {
            testbed,
            shims: Vec::new(),
            functions: HashMap::new(),
            unix_links: HashMap::new(),
            tcp_links: HashMap::new(),
            last_breakdown: None,
            config,
        }
    }

    /// Deploys `function` in its **own** shim/sandbox on `node`.
    /// `handler` is the export invoked when input arrives;
    /// `handler_returns` tells the plane whether it yields an ack value.
    ///
    /// # Errors
    ///
    /// Shim load errors (bad bundle, trust — not applicable here).
    pub fn deploy(
        &mut self,
        node: usize,
        function: &str,
        bundle: Arc<FunctionBundle>,
        handler: &str,
        handler_returns: bool,
    ) -> Result<(), RoadrunnerError> {
        let mut shim = Shim::new(function, self.testbed.node(node), self.config);
        shim.load_module(function, bundle)?;
        let shim_idx = self.shims.len();
        self.shims.push(shim);
        self.functions.insert(
            function.to_owned(),
            FunctionEntry {
                shim_idx,
                node,
                handler: handler.to_owned(),
                handler_returns,
            },
        );
        Ok(())
    }

    /// Deploys `function` **into the same Wasm VM** as `colocate_with`,
    /// enabling user-space mode between them. The shim enforces the
    /// workflow/tenant trust rule.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::UnknownModule`] if `colocate_with` is not
    /// deployed; [`RoadrunnerError::TrustViolation`] on a trust mismatch.
    pub fn deploy_into_shared_vm(
        &mut self,
        colocate_with: &str,
        function: &str,
        bundle: Arc<FunctionBundle>,
        handler: &str,
        handler_returns: bool,
    ) -> Result<(), RoadrunnerError> {
        let host = self
            .functions
            .get(colocate_with)
            .ok_or_else(|| RoadrunnerError::UnknownModule(colocate_with.to_owned()))?;
        let shim_idx = host.shim_idx;
        let node = host.node;
        self.shims[shim_idx].load_module(function, bundle)?;
        self.functions.insert(
            function.to_owned(),
            FunctionEntry {
                shim_idx,
                node,
                handler: handler.to_owned(),
                handler_returns,
            },
        );
        Ok(())
    }

    fn entry(&self, function: &str) -> Result<&FunctionEntry, RoadrunnerError> {
        self.functions
            .get(function)
            .ok_or_else(|| RoadrunnerError::UnknownModule(function.to_owned()))
    }

    /// The mode an edge between two deployed functions will use.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::UnknownModule`] for undeployed functions.
    pub fn mode_of(&self, from: &str, to: &str) -> Result<Mode, RoadrunnerError> {
        self.mode_of_placed(from, to, None, None)
    }

    /// The mode an edge will use for an **instance** whose scheduler
    /// placed the endpoints on `src_node` / `dst_node` (`None` falls
    /// back to the deployment node). Functions sharing one Wasm VM stay
    /// user-space — a VM is indivisible — but sandboxed functions take
    /// the mode their *instance* placement implies, not the one the
    /// deployment's static colocation would suggest.
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::UnknownModule`] for undeployed functions.
    pub fn mode_of_placed(
        &self,
        from: &str,
        to: &str,
        src_node: Option<usize>,
        dst_node: Option<usize>,
    ) -> Result<Mode, RoadrunnerError> {
        let a = self.entry(from)?;
        let b = self.entry(to)?;
        Ok(if a.shim_idx == b.shim_idx {
            Mode::UserSpace
        } else if src_node.unwrap_or(a.node) == dst_node.unwrap_or(b.node) {
            Mode::KernelSpace
        } else {
            Mode::Network
        })
    }

    /// Breakdown of the most recent transfer.
    pub fn last_breakdown(&self) -> Option<EdgeBreakdown> {
        self.last_breakdown
    }

    /// Shim hosting `function` (for telemetry and tests).
    ///
    /// # Errors
    ///
    /// [`RoadrunnerError::UnknownModule`] for undeployed functions.
    pub fn shim_of(&self, function: &str) -> Result<&Shim, RoadrunnerError> {
        Ok(&self.shims[self.entry(function)?.shim_idx])
    }

    fn unix_pair(&mut self, a: usize, b: usize) -> (usize, usize) {
        let key = if a < b { (a, b) } else { (b, a) };
        self.unix_links.entry(key).or_insert_with(UnixConn::pair);
        (key.0, key.1)
    }

    /// Ensures a TCP connection exists between the two shims. A fresh
    /// connection is established over the link joining `node_a` and
    /// `node_b` (the effective nodes of the edge that first needed it);
    /// an existing shim-pair connection is reused as-is.
    fn tcp_pair(&mut self, a: usize, b: usize, node_a: usize, node_b: usize) {
        let key = if a < b { (a, b) } else { (b, a) };
        if !self.tcp_links.contains_key(&key) {
            let link = Arc::clone(self.testbed.link_between(node_a, node_b));
            let sandbox = self.shims[key.0].sandbox().clone();
            let pair = TcpConn::establish(&sandbox, link);
            self.tcp_links.insert(key, pair);
        }
    }

    /// Delivers `payload` into `function` and runs its handler —
    /// the ingress step a platform performs for the first function of a
    /// workflow.
    ///
    /// # Errors
    ///
    /// Shim access and trap errors.
    pub fn inject(&mut self, function: &str, payload: &[u8]) -> Result<(), RoadrunnerError> {
        // Field-disjoint borrows (`functions` read, `shims` written) keep
        // the handler name borrowed instead of cloning it per delivery —
        // this runs once per edge of every workflow instance.
        let entry = self
            .functions
            .get(function)
            .ok_or_else(|| RoadrunnerError::UnknownModule(function.to_owned()))?;
        let shim = &mut self.shims[entry.shim_idx];
        let region = shim.write_memory_host(function, payload)?;
        shim.invoke(
            function,
            &entry.handler,
            &[Value::I32(region.addr as i32), Value::I32(region.len as i32)],
        )?;
        Ok(())
    }

    fn run_handler(
        &mut self,
        function: &str,
        region: MemoryRegion,
    ) -> Result<(), RoadrunnerError> {
        let entry = self
            .functions
            .get(function)
            .ok_or_else(|| RoadrunnerError::UnknownModule(function.to_owned()))?;
        let out = self.shims[entry.shim_idx].invoke(
            function,
            &entry.handler,
            &[Value::I32(region.addr as i32), Value::I32(region.len as i32)],
        )?;
        if entry.handler_returns {
            debug_assert_eq!(out.len(), 1, "acking handlers return one value");
        }
        Ok(())
    }

    /// Executes one edge: ensures the source has pending output, moves it
    /// with the placement-derived mode, runs the target handler, and
    /// returns the bytes as they rest in the target's memory.
    ///
    /// # Errors
    ///
    /// Any shim/kernel error from the underlying mode.
    pub fn transfer_edge(
        &mut self,
        from: &str,
        to: &str,
        payload: &Bytes,
    ) -> Result<Bytes, RoadrunnerError> {
        self.transfer_edge_placed(from, to, payload, None, None)
    }

    /// [`transfer_edge`](Self::transfer_edge) for an instance whose
    /// scheduler overrode the endpoints' nodes: the mode — and, for a
    /// first network transfer, the link the connection is established
    /// over — follow the *effective* placement.
    ///
    /// # Errors
    ///
    /// Any shim/kernel error from the underlying mode.
    pub fn transfer_edge_placed(
        &mut self,
        from: &str,
        to: &str,
        payload: &Bytes,
        src_node: Option<usize>,
        dst_node: Option<usize>,
    ) -> Result<Bytes, RoadrunnerError> {
        let mode = self.mode_of_placed(from, to, src_node, dst_node)?;
        let eff_src = src_node.unwrap_or(self.entry(from)?.node);
        let eff_dst = dst_node.unwrap_or(self.entry(to)?.node);
        let clock = self.testbed.clock().clone();

        // Preparation: if the source holds no pending outbox (workflow
        // entry point), deliver the payload and run its handler.
        let t0 = clock.now();
        let from_shim = self.entry(from)?.shim_idx;
        // Peek without consuming; `peek_outbox` itself rejects unknown
        // modules, so no existence pre-check is needed.
        let has_outbox = self.shims[from_shim].peek_outbox(from)?.is_some();
        if !has_outbox {
            self.inject(from, payload)?;
        }
        let prepare_ns = clock.now() - t0;

        // Transfer proper.
        let t1 = clock.now();
        let to_shim = self.entry(to)?.shim_idx;
        let region_b = match mode {
            Mode::UserSpace => {
                let shim = &mut self.shims[from_shim];
                let (region, _) = userspace::transfer(shim, from, to)?;
                region
            }
            Mode::KernelSpace => {
                let (i, j) = self.unix_pair(from_shim, to_shim);
                let (ea, eb) = self.unix_links.get(&(i, j)).expect("just ensured");
                // Endpoint 0 belongs to shim i; pick by direction.
                let (send_ep, recv_ep) =
                    if from_shim == i { (ea, eb) } else { (eb, ea) };
                let send_ep = send_ep_clone(send_ep);
                let recv_ep = send_ep_clone(recv_ep);
                kernelspace::send(&mut self.shims[from_shim], from, &send_ep)?;
                kernelspace::recv(&mut self.shims[to_shim], to, &recv_ep)?
            }
            Mode::Network => {
                self.tcp_pair(from_shim, to_shim, eff_src, eff_dst);
                let key = if from_shim < to_shim {
                    (from_shim, to_shim)
                } else {
                    (to_shim, from_shim)
                };
                let (ea, eb) = self.tcp_links.get(&key).expect("just ensured");
                let (send_ep, recv_ep) =
                    if from_shim == key.0 { (ea, eb) } else { (eb, ea) };
                let send_ep = tcp_ep_clone(send_ep);
                let recv_ep = tcp_ep_clone(recv_ep);
                hose::send(&mut self.shims[from_shim], from, &send_ep)?;
                hose::recv(&mut self.shims[to_shim], to, &recv_ep)?
            }
        };
        let transfer_ns = clock.now() - t1;

        // Target handler.
        let t2 = clock.now();
        self.run_handler(to, region_b)?;
        let consume_ns = clock.now() - t2;

        self.last_breakdown = Some(EdgeBreakdown { mode, prepare_ns, transfer_ns, consume_ns });

        // Integrity read-back. If the target handler forwarded the data
        // (relay) the region is still registered; if it consumed it we
        // read before releasing.
        let received = self.shims[to_shim].peek_memory(to, region_b)?;
        let target_kept = self.shims[to_shim].peek_outbox(to)?.is_some();
        if !target_kept {
            self.shims[to_shim].deallocate(to, region_b)?;
        }
        Ok(received)
    }
}

// The vkernel endpoints are handle types over shared state; expose
// cheap clones for split-borrow ergonomics.
fn send_ep_clone(ep: &UnixEndpoint) -> UnixEndpoint {
    ep.clone_handle()
}

fn tcp_ep_clone(ep: &TcpEndpoint) -> TcpEndpoint {
    ep.clone_handle()
}

impl DataPlane for RoadrunnerPlane {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_edge(from, to, &payload).map_err(PlatformError::from)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let received = self.transfer_edge(from, to, &payload).map_err(PlatformError::from)?;
        let timing = self.last_breakdown.map(|bd| TransferTiming {
            prepare_ns: bd.prepare_ns,
            transfer_ns: bd.transfer_ns,
            consume_ns: bd.consume_ns,
        });
        Ok((received, timing))
    }

    fn transfer_placed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
        src_node: Option<usize>,
        dst_node: Option<usize>,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let received = self
            .transfer_edge_placed(from, to, &payload, src_node, dst_node)
            .map_err(PlatformError::from)?;
        let timing = self.last_breakdown.map(|bd| TransferTiming {
            prepare_ns: bd.prepare_ns,
            transfer_ns: bd.transfer_ns,
            consume_ns: bd.consume_ns,
        });
        Ok((received, timing))
    }

    fn placement(&self, function: &str) -> Option<usize> {
        self.functions.get(function).map(|e| e.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest;
    use roadrunner_wasm::encode;

    fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("wf")
                .with_tenant("t"),
        )
    }

    fn plane() -> RoadrunnerPlane {
        RoadrunnerPlane::new(
            Arc::new(Testbed::paper()),
            ShimConfig::default().with_load_costs(false),
        )
    }

    #[test]
    fn mode_selection_follows_placement() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy_into_shared_vm("a", "a2", bundle("a2", guest::consumer()), "consume", true)
            .unwrap();
        p.deploy(0, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        p.deploy(1, "c", bundle("c", guest::consumer()), "consume", true).unwrap();
        assert_eq!(p.mode_of("a", "a2").unwrap(), Mode::UserSpace);
        assert_eq!(p.mode_of("a", "b").unwrap(), Mode::KernelSpace);
        assert_eq!(p.mode_of("a", "c").unwrap(), Mode::Network);
        assert!(p.mode_of("a", "ghost").is_err());
    }

    #[test]
    fn user_space_edge_end_to_end() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy_into_shared_vm("a", "b", bundle("b", guest::consumer()), "consume", true)
            .unwrap();
        let payload = Bytes::from(vec![0xC3u8; 65_000]);
        let received = p.transfer_edge("a", "b", &payload).unwrap();
        assert_eq!(&received[..], &payload[..]);
        let bd = p.last_breakdown().unwrap();
        assert_eq!(bd.mode, Mode::UserSpace);
        assert!(bd.transfer_ns > 0);
    }

    #[test]
    fn kernel_space_edge_end_to_end() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy(0, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        let payload = Bytes::from((0..200_000u32).map(|i| (i % 256) as u8).collect::<Vec<_>>());
        let received = p.transfer_edge("a", "b", &payload).unwrap();
        assert_eq!(&received[..], &payload[..]);
        assert_eq!(p.last_breakdown().unwrap().mode, Mode::KernelSpace);
    }

    #[test]
    fn network_edge_end_to_end() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        let payload = Bytes::from(vec![0x77u8; 300_000]);
        let received = p.transfer_edge("a", "b", &payload).unwrap();
        assert_eq!(&received[..], &payload[..]);
        let bd = p.last_breakdown().unwrap();
        assert_eq!(bd.mode, Mode::Network);
        // Wire time must appear in the transfer phase.
        assert!(bd.transfer_ns >= p.testbed.wan().wire_ns(300_000));
    }

    #[test]
    fn placement_overrides_flip_the_mode_with_the_instance() {
        // Regression: two functions deployed colocated on node 0, but the
        // instance's scheduler separated them — the edge must go over the
        // network, not the deployment's Unix socket. (The plane used to
        // consult only the static deployment node.)
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy(0, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        assert_eq!(p.mode_of("a", "b").unwrap(), Mode::KernelSpace);
        assert_eq!(
            p.mode_of_placed("a", "b", Some(0), Some(1)).unwrap(),
            Mode::Network
        );
        // And the converse: deployment-separated functions whose instance
        // landed together use the kernel-space path.
        p.deploy(1, "c", bundle("c", guest::consumer()), "consume", true).unwrap();
        assert_eq!(p.mode_of("a", "c").unwrap(), Mode::Network);
        assert_eq!(
            p.mode_of_placed("a", "c", Some(1), Some(1)).unwrap(),
            Mode::KernelSpace
        );

        let payload = Bytes::from(vec![0x5Au8; 120_000]);
        let received = p.transfer_edge_placed("a", "b", &payload, Some(0), Some(1)).unwrap();
        assert_eq!(&received[..], &payload[..]);
        let bd = p.last_breakdown().unwrap();
        assert_eq!(bd.mode, Mode::Network);
        // Wire time over the 0–1 link shows up in the transfer phase.
        assert!(bd.transfer_ns >= p.testbed.wan().wire_ns(120_000));
    }

    #[test]
    fn shared_vm_functions_stay_user_space_under_any_override() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy_into_shared_vm("a", "b", bundle("b", guest::consumer()), "consume", true)
            .unwrap();
        // A VM is indivisible: overrides cannot split it.
        assert_eq!(
            p.mode_of_placed("a", "b", Some(0), Some(1)).unwrap(),
            Mode::UserSpace
        );
    }

    #[test]
    fn untrusted_colocation_is_refused() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        let foreign = Arc::new(
            FunctionBundle::wasm("x", encode::encode(&guest::consumer()))
                .with_workflow("other")
                .with_tenant("t"),
        );
        assert!(matches!(
            p.deploy_into_shared_vm("a", "x", foreign, "consume", true),
            Err(RoadrunnerError::TrustViolation(_))
        ));
    }

    #[test]
    fn chain_through_relay() {
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy(0, "r", bundle("r", guest::relay()), "relay", false).unwrap();
        p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        let payload = Bytes::from(vec![0x11u8; 50_000]);
        let mid = p.transfer_edge("a", "r", &payload).unwrap();
        assert_eq!(&mid[..], &payload[..]);
        // The relay re-sent: its outbox is pending, so the next edge
        // skips preparation and forwards the same bytes.
        let out = p.transfer_edge("r", "b", &mid).unwrap();
        assert_eq!(&out[..], &payload[..]);
        assert_eq!(p.last_breakdown().unwrap().mode, Mode::Network);
    }

    #[test]
    fn transfer_detailed_reports_breakdown_and_placement() {
        use roadrunner_platform::DataPlane;
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        assert_eq!(p.placement("a"), Some(0));
        assert_eq!(p.placement("b"), Some(1));
        assert_eq!(p.placement("ghost"), None);
        let payload = Bytes::from(vec![0x42u8; 80_000]);
        let (received, timing) = p.transfer_detailed("a", "b", payload.clone()).unwrap();
        assert_eq!(&received[..], &payload[..]);
        let timing = timing.expect("roadrunner attributes every edge");
        let bd = p.last_breakdown().unwrap();
        assert_eq!(timing.prepare_ns, bd.prepare_ns);
        assert_eq!(timing.transfer_ns, bd.transfer_ns);
        assert_eq!(timing.consume_ns, bd.consume_ns);
        assert_eq!(timing.total_ns(), bd.total_ns());
    }

    #[test]
    fn workflow_engine_runs_over_the_plane() {
        use roadrunner_platform::{execute, WorkflowSpec};
        let mut p = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        p.deploy(0, "r", bundle("r", guest::relay()), "relay", false).unwrap();
        p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
        let clock = p.testbed.clock().clone();
        let spec = WorkflowSpec::sequence(
            "wf",
            "t",
            ["a".to_owned(), "r".to_owned(), "b".to_owned()],
        );
        let payload = Bytes::from(vec![9u8; 10_000]);
        let run = execute(&mut p, &clock, &spec, payload.clone()).unwrap();
        assert_eq!(run.edges.len(), 2);
        assert!(run.edges.iter().all(|e| e.received[..] == payload[..]));
        assert!(run.total_latency_ns > 0);
    }
}
