//! Shim configuration.

use roadrunner_wasm::EngineLimits;

/// Configuration applied when a shim brings up its Wasm VM (paper
/// §3.2.5: "configures the Wasm runtime, which includes setting resource
/// limits such as memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShimConfig {
    /// Engine limits for every module loaded into this shim's VM.
    pub engine_limits: EngineLimits,
    /// Whether module loading charges cold-start costs (binary decode +
    /// VM init) to the sandbox. Benchmarks measuring only steady-state
    /// transfers disable this.
    pub charge_load_costs: bool,
    /// Chunk size for kernel-space and network transfers; defaults to the
    /// cost model's I/O chunk when `None`.
    pub io_chunk_bytes: Option<usize>,
}

impl ShimConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the engine limits.
    pub fn with_engine_limits(mut self, limits: EngineLimits) -> Self {
        self.engine_limits = limits;
        self
    }

    /// Enables or disables cold-start charging.
    pub fn with_load_costs(mut self, charge: bool) -> Self {
        self.charge_load_costs = charge;
        self
    }

    /// Overrides the transfer chunk size.
    pub fn with_io_chunk(mut self, bytes: usize) -> Self {
        self.io_chunk_bytes = Some(bytes);
        self
    }
}

impl Default for ShimConfig {
    fn default() -> Self {
        Self {
            engine_limits: EngineLimits::default(),
            charge_load_costs: true,
            io_chunk_bytes: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ShimConfig::default();
        assert!(c.charge_load_costs);
        assert!(c.io_chunk_bytes.is_none());
    }

    #[test]
    fn builder_chains() {
        let c = ShimConfig::new()
            .with_load_costs(false)
            .with_io_chunk(4096)
            .with_engine_limits(EngineLimits::default().with_fuel(10));
        assert!(!c.charge_load_costs);
        assert_eq!(c.io_chunk_bytes, Some(4096));
        assert_eq!(c.engine_limits.initial_fuel, Some(10));
    }
}
