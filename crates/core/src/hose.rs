//! The virtual data hose: network transfer (paper §4.3, Algorithm 1).
//!
//! Remote functions exchange data through a dedicated pipe + socket pair
//! using the kernel's reference-moving primitives:
//!
//! * source: `read_memory_host` → `vmsplice` gifts the host buffer's
//!   pages into the pipe → `splice` moves the references into the socket;
//! * wire: the NIC transmits (bandwidth/RTT from the link model);
//! * target: `splice` socket → pipe → pages land in user space →
//!   `write_memory_host` into the target VM.
//!
//! The only per-byte CPU work is the Wasm VM I/O at both ends; everything
//! in between is page-reference bookkeeping. Tests verify zero-copy by
//! pointer identity across the whole hose.

use roadrunner_vkernel::pipe::Pipe;
use roadrunner_vkernel::tcp::TcpEndpoint;

use crate::error::RoadrunnerError;
use crate::region::MemoryRegion;
use crate::shim::Shim;

/// Hose pipe capacity: enlarged from the 64 KiB default with the
/// equivalent of `fcntl(F_SETPIPE_SZ)` so syscall counts stay low.
pub const HOSE_PIPE_CAPACITY: usize = 1 << 20;

/// Sends the source module's pending outbox through the virtual data
/// hose over `tcp`. Returns the payload byte count.
///
/// Implements the source half of Algorithm 1
/// (`network_data_transfer_source`).
///
/// # Errors
///
/// [`RoadrunnerError::Config`] if no outbox is pending; shim, pipe and
/// socket errors otherwise.
pub fn send(shim: &mut Shim, module: &str, tcp: &TcpEndpoint) -> Result<usize, RoadrunnerError> {
    let region = shim.take_outbox(module)?.ok_or_else(|| {
        RoadrunnerError::Config(format!("module `{module}` has no pending outbox"))
    })?;
    // ① read the data out of the Wasm VM (the unavoidable VM I/O copy).
    let data = shim.read_memory_host(module, region)?;
    let sandbox = shim.sandbox().clone();
    // ② create the virtual data hose — enlarged like `F_SETPIPE_SZ` so
    // each vmsplice/splice syscall moves up to 1 MiB of page references.
    let mut vdh = Pipe::new(HOSE_PIPE_CAPACITY);
    // Length header travels the ordinary way (8 bytes, negligible).
    tcp.send(&sandbox, &(data.len() as u64).to_le_bytes())?;
    // ③ vmsplice the user pages in, ④ splice them on towards the socket.
    let chunk = vdh.capacity();
    let mut offset = 0usize;
    while offset < data.len() {
        let end = (offset + chunk).min(data.len());
        // `Bytes::slice` is a reference, not a copy — the gift is real.
        vdh.vmsplice_gift(&sandbox, data.slice(offset..end))?;
        while let Some(seg) = vdh.splice_out(&sandbox, chunk)? {
            if seg.is_empty() {
                break;
            }
            tcp.send_spliced(&sandbox, seg)?;
        }
        offset = end;
    }
    let total = data.len();
    drop(data);
    shim.deallocate(module, region)?;
    Ok(total)
}

/// Receives one framed payload from the hose into `module`'s memory.
/// Returns the filled inbox region.
///
/// Implements the target half of Algorithm 1
/// (`network_data_transfer_target`).
///
/// # Errors
///
/// [`RoadrunnerError::Kernel`] if the peer closed mid-message; shim
/// errors otherwise.
pub fn recv(
    shim: &mut Shim,
    module: &str,
    tcp: &TcpEndpoint,
) -> Result<MemoryRegion, RoadrunnerError> {
    let sandbox = shim.sandbox().clone();
    // Header arrives through the ordinary lane.
    let mut header = Vec::with_capacity(8);
    while header.len() < 8 {
        match tcp.recv(&sandbox)? {
            None => return Err(roadrunner_vkernel::VkError::Closed.into()),
            Some(seg) if seg.is_empty() => {
                return Err(RoadrunnerError::Config(
                    "hose recv: no framed message pending".into(),
                ))
            }
            Some(seg) => header.extend_from_slice(&seg),
        }
    }
    let total = u64::from_le_bytes(header[..8].try_into().expect("8 bytes")) as usize;
    let overshoot = header.split_off(8);

    // ⑤ allocate the target region, then splice pages from the socket
    // through the target-side pipe and write them into the VM.
    let region = shim.allocate_inbox(module, total)?;
    let mut vdh = Pipe::new(HOSE_PIPE_CAPACITY);
    let mut offset = 0usize;
    if !overshoot.is_empty() {
        shim.write_into_inbox(module, region, 0, &overshoot)?;
        offset = overshoot.len();
    }
    while offset < total {
        match tcp.recv_spliced(&sandbox)? {
            None => return Err(roadrunner_vkernel::VkError::Closed.into()),
            Some(seg) if seg.is_empty() => {
                return Err(RoadrunnerError::Config(format!(
                    "hose recv: stream stalled at {offset}/{total} bytes"
                )))
            }
            Some(seg) => {
                vdh.splice_in(&sandbox, seg)?;
                while let Some(pages) = vdh.splice_out(&sandbox, usize::MAX)? {
                    if pages.is_empty() {
                        break;
                    }
                    shim.write_into_inbox(module, region, offset as u32, &pages)?;
                    offset += pages.len();
                }
            }
        }
    }
    Ok(region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShimConfig;
    use crate::guest;
    use roadrunner_platform::FunctionBundle;
    use roadrunner_vkernel::tcp::TcpConn;
    use roadrunner_vkernel::Testbed;
    use roadrunner_wasm::encode;
    use roadrunner_wasm::types::Value;
    use std::sync::Arc;

    fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("wf")
                .with_tenant("t"),
        )
    }

    fn shims(bed: &Testbed) -> (Shim, Shim) {
        let mut sa = Shim::new("a", bed.node(0), ShimConfig::default().with_load_costs(false));
        sa.load_module("a", bundle("a", guest::producer())).unwrap();
        let mut sb = Shim::new("b", bed.node(1), ShimConfig::default().with_load_costs(false));
        sb.load_module("b", bundle("b", guest::consumer())).unwrap();
        (sa, sb)
    }

    fn produce(shim: &mut Shim, module: &str, payload: &[u8]) {
        let region = shim.write_memory_host(module, payload).unwrap();
        shim.invoke(
            module,
            "produce",
            &[Value::I32(region.addr as i32), Value::I32(region.len as i32)],
        )
        .unwrap();
    }

    #[test]
    fn payload_crosses_nodes_intact() {
        let bed = Testbed::paper();
        let (mut sa, mut sb) = shims(&bed);
        let (ta, tb) = TcpConn::establish(sa.sandbox(), Arc::clone(bed.wan()));
        let payload: Vec<u8> = (0..500_000u32).map(|i| (i % 253) as u8).collect();
        produce(&mut sa, "a", &payload);
        assert_eq!(send(&mut sa, "a", &ta).unwrap(), payload.len());
        let region = recv(&mut sb, "b", &tb).unwrap();
        assert_eq!(&sb.peek_memory("b", region).unwrap()[..], &payload[..]);
    }

    #[test]
    fn wire_time_dominates_on_the_paper_wan() {
        let bed = Testbed::paper();
        let (mut sa, mut sb) = shims(&bed);
        let (ta, tb) = TcpConn::establish(sa.sandbox(), Arc::clone(bed.wan()));
        let payload = vec![1u8; 10 << 20];
        produce(&mut sa, "a", &payload);
        let t0 = bed.clock().now();
        send(&mut sa, "a", &ta).unwrap();
        recv(&mut sb, "b", &tb).unwrap();
        let elapsed = bed.clock().now() - t0;
        let wire = bed.wan().wire_ns(10 << 20);
        assert!(elapsed >= wire, "elapsed {elapsed} < wire {wire}");
        // The hose adds less than 40% on top of raw wire time for 10 MB.
        assert!(elapsed < wire * 14 / 10, "elapsed {elapsed} vs wire {wire}");
    }

    #[test]
    fn hose_kernel_cost_is_page_maps_not_copies() {
        // Compare hose kernel time vs what copying the same payload
        // through a Unix socket costs: the hose must be much cheaper.
        let bed = Testbed::paper();
        let payload = vec![7u8; 8 << 20];
        let (mut sa, _sb) = shims(&bed);
        let (ta, _tb) = TcpConn::establish(sa.sandbox(), Arc::clone(bed.loopback(0)));
        produce(&mut sa, "a", &payload);
        // Isolate the send path's kernel cost.
        let k0 = sa.sandbox().account().kernel_ns();
        send(&mut sa, "a", &ta).unwrap();
        let hose_kernel = sa.sandbox().account().kernel_ns() - k0;
        let copy_kernel = {
            let cost = bed.cost();
            // One user→kernel copy of 8 MiB at memcpy speed.
            cost.memcpy_ns(8 << 20)
        };
        assert!(
            hose_kernel < copy_kernel / 2,
            "hose kernel {hose_kernel} should be far below a copy {copy_kernel}"
        );
    }

    #[test]
    fn closed_peer_fails_recv() {
        let bed = Testbed::paper();
        let (_sa, mut sb) = shims(&bed);
        let sandbox = sb.sandbox().clone();
        let (ta, tb) = TcpConn::establish(&sandbox, Arc::clone(bed.wan()));
        ta.close();
        assert!(matches!(
            recv(&mut sb, "b", &tb),
            Err(RoadrunnerError::Kernel(_))
        ));
    }

    #[test]
    fn empty_payload_round_trips() {
        let bed = Testbed::paper();
        let (mut sa, mut sb) = shims(&bed);
        let (ta, tb) = TcpConn::establish(sa.sandbox(), Arc::clone(bed.wan()));
        produce(&mut sa, "a", &[]);
        assert_eq!(send(&mut sa, "a", &ta).unwrap(), 0);
        assert_eq!(recv(&mut sb, "b", &tb).unwrap().len, 0);
    }
}
