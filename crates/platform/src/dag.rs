//! First-class workflow graphs.
//!
//! The paper evaluates three invocation shapes — sequential chains,
//! fan-out and fan-in (§6.1) — but real serverless workflows are
//! arbitrary DAGs: diamonds, scatter-gather, multi-stage pipelines.
//! [`WorkflowDag`] is the general form: named function nodes joined by
//! payload-carrying edges, with validation (cycle detection, duplicate
//! edges, connectivity) and a deterministic topological order the
//! executors in [`workflow`](crate::workflow) drive.

use std::collections::HashMap;

use crate::error::PlatformError;

/// A directed graph of function invocations.
///
/// Nodes are interned by name in insertion order (the `HashMap` guard
/// keeps lookup O(1), so building a graph of `e` edges is O(e)). Edges
/// keep per-source insertion order, which makes every traversal — and
/// therefore every execution — deterministic.
///
/// ```
/// # use roadrunner_platform::dag::WorkflowDag;
/// let mut dag = WorkflowDag::new();
/// dag.add_edge("a", "b").add_edge("a", "c").add_edge("b", "d").add_edge("c", "d");
/// assert_eq!(dag.node_count(), 4);
/// assert!(dag.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkflowDag {
    names: Vec<String>,
    index: HashMap<String, usize>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    edge_count: usize,
}

impl WorkflowDag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its node id (existing id if present).
    pub fn add_node(&mut self, name: impl AsRef<str>) -> usize {
        let name = name.as_ref();
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        i
    }

    /// Adds the edge `from → to`, interning both endpoints. Returns
    /// `&mut self` for chaining. Structural problems (self-loops, cycles,
    /// duplicates) are reported by [`validate`](Self::validate), not here.
    pub fn add_edge(&mut self, from: impl AsRef<str>, to: impl AsRef<str>) -> &mut Self {
        let u = self.add_node(from);
        let v = self.add_node(to);
        self.succ[u].push(v);
        self.pred[v].push(u);
        self.edge_count += 1;
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Node names in insertion order (each appears once).
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Name of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Id of the node called `name`, if present.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Successor ids of node `i` in edge-insertion order.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// Predecessor ids of node `i` in edge-insertion order.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.pred[i]
    }

    /// All edges as `(from, to)` id pairs, grouped by source in node
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.pred.iter().map(Vec::len).collect()
    }

    /// Nodes with no incoming edges (the workflow's entry points).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.node_count()).filter(|&i| self.pred[i].is_empty()).collect()
    }

    /// Nodes with no outgoing edges (the workflow's results).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.node_count()).filter(|&i| self.succ[i].is_empty()).collect()
    }

    /// Checks structural validity: at least one edge, no duplicate edges,
    /// no cycles (Kahn's algorithm), and weak connectivity (no orphaned
    /// sub-workflows).
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] naming the first problem found.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.edge_count == 0 {
            return Err(PlatformError::InvalidWorkflow(
                "a workflow needs at least one edge".into(),
            ));
        }
        for (u, vs) in self.succ.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &v in vs {
                if !seen.insert(v) {
                    return Err(PlatformError::InvalidWorkflow(format!(
                        "duplicate edge `{}` -> `{}`",
                        self.names[u], self.names[v]
                    )));
                }
            }
        }
        self.topo_order().map(|_| ())?;
        // Weak connectivity: one workflow, not several stapled together.
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in self.succ[u].iter().chain(&self.pred[u]) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        if let Some(i) = seen.iter().position(|s| !s) {
            return Err(PlatformError::InvalidWorkflow(format!(
                "workflow graph is disconnected: `{}` is unreachable from `{}`",
                self.names[i], self.names[0]
            )));
        }
        Ok(())
    }

    /// Deterministic topological order (Kahn's algorithm, smallest ready
    /// node id first). The ready set is a min-heap, so the order costs
    /// O((V + E) log V) instead of the O(V²) repeated scans a plain
    /// ready-list would — same order, computed faster.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] if the graph contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, PlatformError> {
        use std::cmp::Reverse;
        let n = self.node_count();
        let mut in_deg = self.in_degrees();
        // Smallest id first keeps the order stable across runs.
        let mut ready: std::collections::BinaryHeap<Reverse<usize>> =
            (0..n).filter(|&i| in_deg[i] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(u)) = ready.pop() {
            order.push(u);
            for &v in &self.succ[u] {
                in_deg[v] -= 1;
                if in_deg[v] == 0 {
                    ready.push(Reverse(v));
                }
            }
        }
        if order.len() < n {
            let stuck: Vec<&str> = (0..n)
                .filter(|&i| in_deg[i] > 0)
                .map(|i| self.names[i].as_str())
                .collect();
            return Err(PlatformError::InvalidWorkflow(format!(
                "workflow graph contains a cycle through {}",
                stuck.join(", ")
            )));
        }
        Ok(order)
    }

    /// Edges in execution order: sources in topological order, each
    /// source's out-edges in insertion order. For the legacy shapes this
    /// reproduces exactly the order the old pattern engine used.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] if the graph contains a cycle.
    pub fn topo_edges(&self) -> Result<Vec<(usize, usize)>, PlatformError> {
        let order = self.topo_order()?;
        let mut edges = Vec::with_capacity(self.edge_count);
        for u in order {
            for &v in &self.succ[u] {
                edges.push((u, v));
            }
        }
        Ok(edges)
    }

    /// Length of the longest path where each edge `(u, v)` weighs
    /// `weight(u, v)` — the DAG's critical path, the lower bound no
    /// concurrent schedule can beat.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] if the graph contains a cycle.
    pub fn critical_path_ns(
        &self,
        mut weight: impl FnMut(usize, usize) -> u64,
    ) -> Result<u64, PlatformError> {
        let order = self.topo_order()?;
        let mut dist = vec![0u64; self.node_count()];
        let mut longest = 0;
        for u in order {
            for &v in &self.succ[u] {
                let cand = dist[u] + weight(u, v);
                dist[v] = dist[v].max(cand);
                longest = longest.max(dist[v]);
            }
        }
        Ok(longest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WorkflowDag {
        let mut dag = WorkflowDag::new();
        dag.add_edge("a", "b").add_edge("a", "c").add_edge("b", "d").add_edge("c", "d");
        dag
    }

    #[test]
    fn interning_is_idempotent() {
        let mut dag = WorkflowDag::new();
        assert_eq!(dag.add_node("a"), 0);
        assert_eq!(dag.add_node("b"), 1);
        assert_eq!(dag.add_node("a"), 0);
        assert_eq!(dag.node_count(), 2);
        assert_eq!(dag.node_index("b"), Some(1));
        assert_eq!(dag.node_index("ghost"), None);
    }

    #[test]
    fn diamond_validates_with_expected_shape() {
        let dag = diamond();
        assert!(dag.validate().is_ok());
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.leaves(), vec![3]);
        assert_eq!(dag.successors(0), &[1, 2]);
        assert_eq!(dag.predecessors(3), &[1, 2]);
        assert_eq!(dag.edge_count(), 4);
    }

    #[test]
    fn empty_graph_rejected() {
        let dag = WorkflowDag::new();
        assert!(matches!(dag.validate(), Err(PlatformError::InvalidWorkflow(_))));
        let mut lone = WorkflowDag::new();
        lone.add_node("only");
        assert!(lone.validate().is_err());
    }

    #[test]
    fn cycles_rejected() {
        let mut dag = WorkflowDag::new();
        dag.add_edge("a", "b").add_edge("b", "c").add_edge("c", "a");
        let err = dag.validate().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        let mut selfloop = WorkflowDag::new();
        selfloop.add_edge("x", "x");
        assert!(selfloop.validate().is_err());
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut dag = WorkflowDag::new();
        dag.add_edge("a", "b").add_edge("a", "b");
        let err = dag.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn disconnected_graphs_rejected() {
        let mut dag = WorkflowDag::new();
        dag.add_edge("a", "b").add_edge("x", "y");
        let err = dag.validate().unwrap_err();
        assert!(err.to_string().contains("disconnected"), "{err}");
    }

    #[test]
    fn topo_order_respects_edges_and_is_deterministic() {
        let dag = diamond();
        let order = dag.topo_order().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let pos: Vec<usize> = {
            let mut p = vec![0; dag.node_count()];
            for (rank, &i) in order.iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for (u, v) in dag.edges() {
            assert!(pos[u] < pos[v], "edge {u}->{v} violates topo order");
        }
    }

    #[test]
    fn topo_edges_match_legacy_pattern_order() {
        // fan-out: source's edges in insertion order.
        let mut fanout = WorkflowDag::new();
        fanout.add_edge("s", "t0").add_edge("s", "t1").add_edge("s", "t2");
        assert_eq!(fanout.topo_edges().unwrap(), vec![(0, 1), (0, 2), (0, 3)]);
        // fan-in: one edge per source, sources in insertion order.
        let mut fanin = WorkflowDag::new();
        fanin.add_edge("s0", "sink").add_edge("s1", "sink");
        assert_eq!(fanin.topo_edges().unwrap(), vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn critical_path_takes_the_longest_route() {
        let dag = diamond();
        // a->b->d weighs 10+1, a->c->d weighs 2+50.
        let weights = |u: usize, v: usize| match (u, v) {
            (0, 1) => 10,
            (1, 3) => 1,
            (0, 2) => 2,
            (2, 3) => 50,
            _ => unreachable!(),
        };
        assert_eq!(dag.critical_path_ns(weights).unwrap(), 52);
    }
}
