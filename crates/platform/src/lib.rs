//! Serverless platform substrate for the Roadrunner reproduction.
//!
//! Roadrunner is "a sidecar shim that lives alongside serverless
//! functions, allowing the container orchestration tool to manage
//! scalability" (paper §3.2.4). This crate is that surrounding platform:
//!
//! * [`bundle`] — OCI-style function bundles (real Wasm binaries or
//!   container-image descriptors) with workflow/tenant annotations.
//! * [`registry`] — the control plane's catalog of bundles.
//! * [`scheduler`] — placement strategies; Roadrunner adapts to whatever
//!   they decide.
//! * [`deploy`] — live instances bound to nodes, with co-location
//!   queries.
//! * [`dag`] — first-class workflow DAGs (named nodes, payload-carrying
//!   edges, cycle/connectivity validation) generalizing the paper's
//!   sequence/fan-out/fan-in shapes.
//! * [`workflow`] — the execution engines over a pluggable
//!   [`workflow::DataPlane`]: a serial engine and a discrete-event
//!   concurrent engine that overlaps independent edges in virtual time,
//!   both with [`workflow::CompiledWorkflow`] fast paths that hoist
//!   validation and topological sorting out of the per-execution loop.
//! * [`memo`] — [`memo::MemoizedPlane`], a deterministic transfer-cost
//!   memo over any [`workflow::DataPlane`]: identical edges replay their
//!   recorded outcome (bytes, timing, virtual-clock advance) instead of
//!   recomputing codec and cost-model work.
//! * [`loadgen`] — multi-tenant load generation and the elastic control
//!   loop: open- and closed-loop drivers over one completion-event
//!   engine, instances placed per arrival by a
//!   [`scheduler::PlacementPolicy`] observing the live
//!   [`ResourceView`](roadrunner_vkernel::ResourceView), optional
//!   cold-start admission, and a backlog-driven [`loadgen::Autoscaler`]
//!   resizing capacity mid-run.
//! * [`warmpool`] — warm-instance management for cold-start admission:
//!   a deterministic per-(function, node) [`warmpool::WarmPool`] with
//!   snapshot-restore tiering, keep-alive eviction
//!   ([`warmpool::KeepAlive`]: fixed TTL or hybrid histogram), and the
//!   predictive pre-warming target the [`loadgen::Autoscaler`] staffs
//!   via square-root staffing.
//! * [`overload`] — the overload-control layer: per-instance deadlines,
//!   deterministic per-(tenant, function, node) retry budgets and
//!   circuit breakers, and the bounded-queue shedding policies the load
//!   engine applies at admission. All knobs default off; breakers steer
//!   placement through the `ResourceView` backlog seam.
//! * [`metrics`] — sample collection, summaries, latency percentile
//!   digests (exact nearest-rank and streaming P²) and multi-seed
//!   [`metrics::Replicated`] summaries with order-statistic confidence
//!   intervals for the harness.
//! * [`mod@sweep`] — the parallel sweep engine: a scoped-thread worker pool
//!   fanning a declarative [`sweep::SweepGrid`] (rates × payloads ×
//!   policies × seeds) across cores, merging results in deterministic
//!   grid order so parallel output is byte-identical to the serial
//!   loop.
//!
//! ```
//! use roadrunner_platform::bundle::FunctionBundle;
//! use roadrunner_platform::deploy::Deployment;
//! use roadrunner_platform::registry::FunctionRegistry;
//! use roadrunner_platform::scheduler::Pinned;
//!
//! # fn main() -> Result<(), roadrunner_platform::PlatformError> {
//! let registry = FunctionRegistry::new();
//! registry.register(FunctionBundle::wasm("fn-a", vec![0, 97, 115, 109]));
//! registry.register(FunctionBundle::wasm("fn-b", vec![0, 97, 115, 109]));
//!
//! let scheduler = Pinned::new(0).pin("fn-b", 1);
//! let mut deployment = Deployment::new(2);
//! deployment.deploy(&registry, &scheduler, "fn-a")?;
//! deployment.deploy(&registry, &scheduler, "fn-b")?;
//! assert!(!deployment.colocated("fn-a", "fn-b"));
//! # Ok(())
//! # }
//! ```

pub mod bundle;
pub mod dag;
pub mod deploy;
pub mod error;
pub mod loadgen;
pub mod memo;
pub mod metrics;
pub mod overload;
pub mod registry;
pub mod scheduler;
pub mod sweep;
pub mod warmpool;
pub mod workflow;

pub use bundle::{BundleKind, FunctionBundle, Manifest};
pub use dag::WorkflowDag;
pub use deploy::{DeployedFunction, Deployment};
pub use error::PlatformError;
pub use loadgen::{
    ArrivalProcess, Autoscaler, AutoscalerConfig, ClosedLoop, FailurePlan, InstanceOutcome,
    LoadRun, MultiLoad, NodeKill, OpenLoop, Placed, PrewarmConfig, ScaleAction, ScaleEvent,
    TenantLoad, TenantStats,
};
pub use warmpool::{AdmissionConfig, Admitted, KeepAlive, PoolStats, WarmPool, WarmPoolConfig};
pub use metrics::{
    percentiles, percentiles_sorted, replicate, MetricsCollector, P2Quantile, PercentileSummary,
    Replicated, ReplicatedStat, Sample, StreamingPercentiles, Summary, STREAMING_EXACT_MAX,
};
pub use overload::{
    BreakerConfig, OverloadConfig, OverloadState, QueueConfig, RetryBudgetConfig, ShedPolicy,
    RETRY_COST_MILLITOKENS,
};
pub use registry::FunctionRegistry;
pub use scheduler::{
    LocalityFirst, PackThenSpill, Pinned, Placement, PlacementPolicy, RoundRobin, Scheduler,
    SpreadLoad,
};
pub use memo::MemoizedPlane;
pub use sweep::{
    available_workers, parallel_map, run_jobs, sweep, SweepGrid, SweepMode, SweepPoint,
};
pub use workflow::{
    critical_path_ns, execute, execute_compiled, execute_compiled_at, execute_compiled_faulty_at,
    execute_concurrent, execute_concurrent_at, CompiledWorkflow, DataPlane, EdgeFailure,
    EdgeResult, FaultyOutcome, RetryPolicy, TransferTiming, WorkflowRun, WorkflowSpec,
};
